//! End-to-end pipeline test: synthetic CPS archive → storage → atypical
//! forest → online queries → evaluation, across crate boundaries.

use atypical::eval::evaluate;
use atypical::pipeline::build_forest_from_store;
use atypical::{Query, QueryEngine, Strategy};
use cps_core::{DatasetId, Params};
use cps_geo::UniformGrid;
use cps_sim::{Scale, SimConfig, TrafficSim};
use cps_storage::IoStats;
use std::path::PathBuf;

fn temp_root(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("atypical-e2e-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

#[test]
fn full_pipeline_tiny_archive() {
    let root = temp_root("pipeline");
    let config = SimConfig::new(Scale::Tiny, 99)
        .with_datasets(1)
        .with_days_per_dataset(7);
    let sim = TrafficSim::new(config);
    let store = sim.write_store(&root).unwrap();

    // The archive profile matches what the catalog says.
    let meta = store.dataset(DatasetId::new(1)).unwrap();
    assert_eq!(meta.n_days, 7);
    assert!(meta.atypical_fraction() > 0.005 && meta.atypical_fraction() < 0.15);

    // Build the forest from disk.
    let params = Params::paper_defaults();
    let io = IoStats::shared();
    let built = build_forest_from_store(
        &store,
        &[DatasetId::new(1)],
        sim.network(),
        &params,
        io.clone(),
    )
    .unwrap();
    assert_eq!(built.forest.days().count(), 7);
    assert!(built.stats.n_micro_clusters > 0);
    assert_eq!(
        io.snapshot().records_read,
        meta.n_atypical_records,
        "forest construction reads each atypical record exactly once"
    );

    // Query all three strategies and evaluate.
    let partition = UniformGrid::over(sim.network(), 3.0).partition(sim.network());
    let engine = QueryEngine::new(sim.network(), &partition, params);
    let mut forest = built.forest;
    let query = Query::days(0, 7);

    let all = engine.execute(&mut forest, &query, Strategy::All);
    let gui = engine.execute(&mut forest, &query, Strategy::Gui);
    let pru = engine.execute(&mut forest, &query, Strategy::Pru);

    assert_eq!(all.input_clusters, all.candidate_clusters);
    assert!(gui.input_clusters <= all.input_clusters);
    assert!(pru.input_clusters <= gui.input_clusters);

    let truth: Vec<_> = all.significant().into_iter().cloned().collect();
    let truth_refs: Vec<&atypical::AtypicalCluster> = truth.iter().collect();
    let gui_pr = evaluate(&gui, &truth_refs);
    assert_eq!(gui_pr.recall, 1.0, "Gui must not lose significant clusters");
    let all_pr = evaluate(&all, &truth_refs);
    assert_eq!(all_pr.recall, 1.0);

    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn query_strategies_conserve_input_severity() {
    // Whatever the strategy feeds into integration comes out with the same
    // total severity (merging is lossless).
    let sim = TrafficSim::new(
        SimConfig::new(Scale::Tiny, 5)
            .with_datasets(1)
            .with_days_per_dataset(5),
    );
    let params = Params::paper_defaults();
    let built = atypical::pipeline::build_forest_from_records(
        (0..5).map(|d| (d, sim.atypical_day(d))),
        sim.network(),
        &params,
        sim.config().spec,
    );
    let mut forest = built.forest;
    let partition = UniformGrid::over(sim.network(), 3.0).partition(sim.network());
    let engine = QueryEngine::new(sim.network(), &partition, params);
    let all = engine.execute(&mut forest, &Query::days(0, 5), Strategy::All);
    let input_total: cps_core::Severity = forest
        .micros_in_days(0, 5)
        .iter()
        .map(|c| c.severity())
        .sum();
    let output_total: cps_core::Severity = all.macros.iter().map(|c| c.severity()).sum();
    assert_eq!(input_total, output_total);
}

#[test]
fn bbox_query_restricts_and_never_exceeds_city_results() {
    let sim = TrafficSim::new(
        SimConfig::new(Scale::Tiny, 11)
            .with_datasets(1)
            .with_days_per_dataset(5),
    );
    let params = Params::paper_defaults();
    let built = atypical::pipeline::build_forest_from_records(
        (0..5).map(|d| (d, sim.atypical_day(d))),
        sim.network(),
        &params,
        sim.config().spec,
    );
    let mut forest = built.forest;
    let partition = UniformGrid::over(sim.network(), 3.0).partition(sim.network());
    let engine = QueryEngine::new(sim.network(), &partition, params);

    let city = engine.execute(&mut forest, &Query::days(0, 5), Strategy::All);
    let half = sim.network().bbox();
    let half_box = cps_geo::BoundingBox::new(
        half.min_lat,
        half.min_lon,
        half.min_lat + (half.max_lat - half.min_lat) / 2.0,
        half.max_lon,
    );
    let south = engine.execute(
        &mut forest,
        &Query::days(0, 5).in_bbox(half_box),
        Strategy::All,
    );
    assert!(south.candidate_clusters <= city.candidate_clusters);
    assert!(south.n_sensors < city.n_sensors);
    assert!(south.threshold < city.threshold);
}
