//! Golden end-to-end snapshot: the serialized forest report for a fixed
//! seed is pinned byte-for-byte in `tests/golden/quickstart_forest.json`.
//!
//! The document covers everything an analyst-facing run produces —
//! leaf/roll-up shapes, merge ids, accumulated stats, and the rendered
//! [`ClusterReport`]s for the integrated range — so any unintended
//! behavior change anywhere in the pipeline (extraction, integration,
//! id allocation, report derivation, serialization) shows up as a byte
//! diff. The report is built at `parallelism` 1 **and** 8 and both must
//! serialize to the same bytes: the golden file doubles as end-to-end
//! evidence for the deterministic parallel engine.
//!
//! Regenerate after an *intended* change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p cps-bench --test golden_snapshot
//! ```
//!
//! and review the diff like any other source change.

use atypical::forest::AggregationPath;
use atypical::pipeline::build_forest_from_records_parallel;
use atypical::report::ClusterReport;
use cps_core::Params;
use cps_sim::{Scale, SimConfig, TrafficSim};
use serde::Serialize;
use std::path::PathBuf;

const SEED: u64 = 424_242;
const DAYS: u32 = 31;

/// The pinned document. Plain counters only — no wall-clock fields, no
/// host properties, nothing that varies run-to-run.
#[derive(Serialize)]
struct GoldenDoc {
    seed: u64,
    days: u32,
    weeks: Vec<u32>,
    months: Vec<u32>,
    n_records: usize,
    n_micro_clusters: usize,
    integration_comparisons: u64,
    integration_merges: u64,
    next_cluster_id: u64,
    calendar_reports: Vec<ClusterReport>,
    weekday_reports: Vec<ClusterReport>,
    weekend_reports: Vec<ClusterReport>,
}

/// One full fixed-seed run at the given thread count, serialized.
fn render(threads: usize) -> String {
    let sim = TrafficSim::new(SimConfig::new(Scale::Tiny, SEED));
    let spec = sim.config().spec;
    let params = Params::paper_defaults().with_parallelism(threads);
    let day_records: Vec<_> = (0..DAYS).map(|d| (d, sim.atypical_day(d))).collect();
    let built =
        build_forest_from_records_parallel(day_records, sim.network(), &params, spec, threads);
    let mut forest = built.forest;
    let levels = forest.materialize_range(0, DAYS);

    let reports = |clusters: &[atypical::AtypicalCluster]| -> Vec<ClusterReport> {
        clusters
            .iter()
            .map(|c| ClusterReport::of(c, spec, 3))
            .collect()
    };
    let calendar = forest.integrate_days(0, DAYS);
    let mut split = forest
        .integrate_by_path(0, DAYS, AggregationPath::WeekdayWeekend)
        .into_iter();
    let weekday = split.next().expect("weekday tree").1;
    let weekend = split.next().expect("weekend tree").1;

    let doc = GoldenDoc {
        seed: SEED,
        days: DAYS,
        weeks: levels.weeks,
        months: levels.months,
        n_records: built.stats.n_records,
        n_micro_clusters: built.stats.n_micro_clusters,
        integration_comparisons: forest.integration_stats().comparisons,
        integration_merges: forest.integration_stats().merges,
        next_cluster_id: forest.id_gen().peek(),
        calendar_reports: reports(&calendar),
        weekday_reports: reports(&weekday),
        weekend_reports: reports(&weekend),
    };
    let mut text = serde_json::to_string_pretty(&doc).expect("report serializes");
    text.push('\n');
    text
}

fn golden_path() -> PathBuf {
    // The test is wired through crates/cps-bench; the golden file lives
    // next to the cross-crate tests at the repo root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/quickstart_forest.json")
}

#[test]
fn forest_report_matches_golden_bytes() {
    let sequential = render(1);
    let parallel = render(8);
    assert_eq!(
        sequential, parallel,
        "parallel report must serialize to the sequential bytes"
    );

    let path = golden_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("golden dir");
        std::fs::write(&path, &sequential).expect("write golden");
        eprintln!("golden updated: {}", path.display());
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); generate it with \
             UPDATE_GOLDEN=1 cargo test -p cps-bench --test golden_snapshot",
            path.display()
        )
    });
    if sequential != golden {
        // Show the first diverging line — a full dump of two ~large JSON
        // documents drowns the signal.
        for (i, (got, want)) in sequential.lines().zip(golden.lines()).enumerate() {
            assert_eq!(
                got,
                want,
                "first golden divergence at line {} of {}",
                i + 1,
                path.display()
            );
        }
        panic!(
            "golden differs only in length: {} vs {} bytes ({})",
            sequential.len(),
            golden.len(),
            path.display()
        );
    }
}
