//! The paper's central guarantee, exercised across seeds: red-zone guided
//! clustering (Gui) finds every significant cluster that integrating
//! everything (All) finds, while the beforehand-pruning baseline (Pru) may
//! not.

use atypical::eval::{evaluate, matches};
use atypical::pipeline::build_forest_from_records;
use atypical::{Query, QueryEngine, Strategy};
use cps_core::Params;
use cps_geo::UniformGrid;
use cps_sim::{Scale, SimConfig, TrafficSim};

fn run_seed(seed: u64, days: u32) -> (f64, f64, usize) {
    let sim = TrafficSim::new(
        SimConfig::new(Scale::Tiny, seed)
            .with_datasets(1)
            .with_days_per_dataset(days),
    );
    let params = Params::paper_defaults();
    let built = build_forest_from_records(
        (0..days).map(|d| (d, sim.atypical_day(d))),
        sim.network(),
        &params,
        sim.config().spec,
    );
    let mut forest = built.forest;
    let partition = UniformGrid::over(sim.network(), 3.0).partition(sim.network());
    let engine = QueryEngine::new(sim.network(), &partition, params);
    let query = Query::days(0, days);

    let all = engine.execute(&mut forest, &query, Strategy::All);
    let gui = engine.execute(&mut forest, &query, Strategy::Gui);
    let truth: Vec<_> = all.significant().into_iter().cloned().collect();
    let truth_refs: Vec<&atypical::AtypicalCluster> = truth.iter().collect();
    let gui_pr = evaluate(&gui, &truth_refs);
    (gui_pr.recall, gui_pr.precision, truth.len())
}

#[test]
fn gui_has_no_false_negatives_across_seeds() {
    let mut nonempty_truths = 0;
    for seed in [1u64, 7, 42, 99, 1234] {
        let (recall, _, truth) = run_seed(seed, 7);
        if truth > 0 {
            nonempty_truths += 1;
        }
        assert_eq!(recall, 1.0, "seed {seed}: Gui lost a significant cluster");
    }
    assert!(
        nonempty_truths >= 2,
        "fixture too weak: most seeds produced no significant clusters"
    );
}

#[test]
fn final_check_makes_gui_precision_one() {
    let sim = TrafficSim::new(
        SimConfig::new(Scale::Tiny, 42)
            .with_datasets(1)
            .with_days_per_dataset(7),
    );
    let params = Params::paper_defaults();
    let built = build_forest_from_records(
        (0..7).map(|d| (d, sim.atypical_day(d))),
        sim.network(),
        &params,
        sim.config().spec,
    );
    let mut forest = built.forest;
    let partition = UniformGrid::over(sim.network(), 3.0).partition(sim.network());
    let engine = QueryEngine::new(sim.network(), &partition, params).with_final_check();
    let result = engine.execute(&mut forest, &Query::days(0, 7), Strategy::Gui);
    assert!(result
        .macros
        .iter()
        .all(|c| c.severity() > result.threshold));
}

#[test]
fn gui_significant_clusters_match_all_clusters_in_content() {
    // Beyond set-level recall: each Gui significant cluster corresponds to
    // an All cluster with high similarity (the features survive pruning
    // nearly intact, since only trivia outside red zones is dropped).
    let sim = TrafficSim::new(
        SimConfig::new(Scale::Tiny, 42)
            .with_datasets(1)
            .with_days_per_dataset(7),
    );
    let params = Params::paper_defaults();
    let built = build_forest_from_records(
        (0..7).map(|d| (d, sim.atypical_day(d))),
        sim.network(),
        &params,
        sim.config().spec,
    );
    let mut forest = built.forest;
    let partition = UniformGrid::over(sim.network(), 3.0).partition(sim.network());
    let engine = QueryEngine::new(sim.network(), &partition, params);
    let all = engine.execute(&mut forest, &Query::days(0, 7), Strategy::All);
    let gui = engine.execute(&mut forest, &Query::days(0, 7), Strategy::Gui);
    for g in gui.significant() {
        assert!(
            all.macros.iter().any(|a| matches(g, a)),
            "Gui cluster {} has no counterpart in All",
            g.id
        );
        // Severity of the Gui reconstruction is within 10% of the best
        // matching All cluster.
        let best = all
            .macros
            .iter()
            .filter(|a| matches(g, a))
            .map(|a| a.severity())
            .max()
            .unwrap();
        assert!(g.severity().as_secs() * 10 >= best.as_secs() * 9);
    }
}

#[test]
fn pru_inputs_are_subset_of_gui_quality() {
    // Pru is the most aggressive filter: it never feeds more clusters to
    // integration than Gui at paper-default parameters.
    for seed in [3u64, 21] {
        let sim = TrafficSim::new(
            SimConfig::new(Scale::Tiny, seed)
                .with_datasets(1)
                .with_days_per_dataset(7),
        );
        let params = Params::paper_defaults();
        let built = build_forest_from_records(
            (0..7).map(|d| (d, sim.atypical_day(d))),
            sim.network(),
            &params,
            sim.config().spec,
        );
        let mut forest = built.forest;
        let partition = UniformGrid::over(sim.network(), 3.0).partition(sim.network());
        let engine = QueryEngine::new(sim.network(), &partition, params);
        let pru = engine.execute(&mut forest, &Query::days(0, 7), Strategy::Pru);
        let gui = engine.execute(&mut forest, &Query::days(0, 7), Strategy::Gui);
        assert!(pru.input_clusters <= gui.input_clusters, "seed {seed}");
    }
}
