//! Streaming extraction and forest persistence, exercised end to end:
//! a live feed produces the same analytical answers as the batch pipeline,
//! and a forest saved to disk answers queries identically after reload.

use atypical::online::OnlineExtractor;
use atypical::pipeline::build_forest_from_records;
use atypical::store::{ForestLevel, ForestStore};
use atypical::{AtypicalForest, Query, QueryEngine, Strategy};
use cps_core::{Params, Severity};
use cps_geo::UniformGrid;
use cps_sim::{Scale, SimConfig, TrafficSim};

fn sim() -> TrafficSim {
    TrafficSim::new(
        SimConfig::new(Scale::Tiny, 42)
            .with_datasets(1)
            .with_days_per_dataset(5),
    )
}

#[test]
fn streamed_forest_answers_queries_like_batch_forest() {
    let sim = sim();
    let params = Params::paper_defaults();
    let spec = sim.config().spec;

    // Batch path.
    let batch = build_forest_from_records(
        (0..5).map(|d| (d, sim.atypical_day(d))),
        sim.network(),
        &params,
        spec,
    );
    let mut batch_forest = batch.forest;

    // Streaming path: feed all five days through one extractor, then place
    // sealed clusters into a forest by their onset day.
    let mut online = OnlineExtractor::new(sim.network(), params, spec);
    for day in 0..5 {
        let mut records = sim.atypical_day(day);
        records.sort_unstable_by_key(|r| (r.window, r.sensor));
        for r in records {
            online.push(r).expect("feed is window-ordered");
        }
    }
    let mut stream_forest = AtypicalForest::new(spec, params);
    let mut by_day: std::collections::BTreeMap<u32, Vec<atypical::AtypicalCluster>> =
        Default::default();
    for cluster in online.finish() {
        let day = spec.day_of(cluster.time_range().start);
        by_day.entry(day).or_default().push(cluster);
    }
    for (day, clusters) in by_day {
        stream_forest.insert_day(day, clusters);
    }

    // Same total severity in both forests.
    let total = |f: &AtypicalForest| -> Severity {
        f.micros_in_days(0, 5).iter().map(|c| c.severity()).sum()
    };
    assert_eq!(total(&batch_forest), total(&stream_forest));

    // Same significant clusters from the query engine. (Cluster *counts*
    // may differ slightly: the batch pipeline cuts events at midnight while
    // the stream lets them run on — the significant set must agree anyway.)
    let partition = UniformGrid::over(sim.network(), 3.0).partition(sim.network());
    let engine = QueryEngine::new(sim.network(), &partition, params);
    let q = Query::days(0, 5);
    let from_batch = engine.execute(&mut batch_forest, &q, Strategy::All);
    let from_stream = engine.execute(&mut stream_forest, &q, Strategy::All);
    let sig_b = from_batch.significant();
    let sig_s = from_stream.significant();
    assert_eq!(sig_b.len(), sig_s.len());
    for b in &sig_b {
        assert!(
            sig_s.iter().any(|s| atypical::eval::matches(s, b)),
            "stream lost {}",
            b.id
        );
    }
}

#[test]
fn persisted_forest_reloads_and_answers_identically() {
    let sim = sim();
    let params = Params::paper_defaults();
    let spec = sim.config().spec;
    let built = build_forest_from_records(
        (0..5).map(|d| (d, sim.atypical_day(d))),
        sim.network(),
        &params,
        spec,
    );
    let mut original = built.forest;

    let root = std::env::temp_dir().join(format!("atypical-persist-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let store = ForestStore::open(&root).unwrap();
    assert_eq!(store.save_forest_days(&original).unwrap(), 5);
    // Materialize a week level too.
    store.save(ForestLevel::Week, 0, original.week(0)).unwrap();

    let mut reloaded = store.load_forest(spec, params).unwrap();
    assert_eq!(reloaded.num_micro_clusters(), original.num_micro_clusters());

    let partition = UniformGrid::over(sim.network(), 3.0).partition(sim.network());
    let engine = QueryEngine::new(sim.network(), &partition, params);
    let q = Query::days(0, 5);
    let a = engine.execute(&mut original, &q, Strategy::Gui);
    let b = engine.execute(&mut reloaded, &q, Strategy::Gui);
    assert_eq!(a.input_clusters, b.input_clusters);
    assert_eq!(a.macros.len(), b.macros.len());
    let sev =
        |r: &atypical::QueryResult| -> Severity { r.macros.iter().map(|c| c.severity()).sum() };
    assert_eq!(sev(&a), sev(&b));
    // The materialized week level round-trips too.
    let week = store.load(ForestLevel::Week, 0).unwrap().unwrap();
    assert_eq!(week, original.week(0));
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn online_extractor_reports_long_events_once() {
    // A corridor event spanning hours must come out as exactly one cluster,
    // not one per window batch.
    let sim = sim();
    let params = Params::paper_defaults();
    let spec = sim.config().spec;
    let mut records = sim.atypical_day(0);
    records.sort_unstable_by_key(|r| (r.window, r.sensor));

    let mut online = OnlineExtractor::new(sim.network(), params, spec);
    let mut sealed_total = 0;
    for r in records {
        online.push(r).expect("feed is window-ordered");
        sealed_total += online.drain_sealed().len();
    }
    let rest = online.finish();
    let batch =
        build_forest_from_records(vec![(0, sim.atypical_day(0))], sim.network(), &params, spec);
    assert_eq!(sealed_total + rest.len(), batch.forest.day(0).len());
}
