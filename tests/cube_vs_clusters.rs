//! Cross-model consistency: the CubeView baseline (MC) and the atypical
//! forest aggregate the *same* atypical records, so their distributive
//! totals must agree exactly — Property 4 across two independent
//! implementations. Also checks the red-zone `F` values against the cube's
//! per-region aggregation.

use atypical::pipeline::build_forest_from_store;
use atypical::redzone::RedZones;
use cps_core::{DatasetId, Params, Severity};
use cps_cube::cube::build_mc;
use cps_cube::TemporalLevel;
use cps_geo::grid::RegionHierarchy;
use cps_sim::{Scale, SimConfig, TrafficSim};
use cps_storage::IoStats;

fn setup() -> (TrafficSim, cps_storage::DatasetStore, std::path::PathBuf) {
    let root = std::env::temp_dir().join(format!("atypical-xmodel-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let sim = TrafficSim::new(
        SimConfig::new(Scale::Tiny, 31)
            .with_datasets(1)
            .with_days_per_dataset(5),
    );
    let store = sim.write_store(&root).unwrap();
    (sim, store, root)
}

#[test]
fn cube_and_forest_totals_agree() {
    let (sim, store, root) = setup();
    let hierarchy = RegionHierarchy::standard(sim.network(), 3.0, 3);
    let datasets = [DatasetId::new(1)];
    let io = IoStats::shared();

    let mc = build_mc(&store, &datasets, hierarchy.clone(), io.clone()).unwrap();
    // The forest must see every record too (disable the trust filter so the
    // two models aggregate identical record sets).
    let params = Params::paper_defaults().with_min_event_records(1);
    let built = build_forest_from_store(&store, &datasets, sim.network(), &params, io).unwrap();

    let cube_total = mc.cube.grand_total().total;
    let forest_total: Severity = (0..5)
        .flat_map(|d| built.forest.day(d).iter())
        .map(|c| c.severity())
        .sum();
    assert_eq!(cube_total, forest_total);
    assert_eq!(mc.n_records as usize, built.stats.n_records);

    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn redzone_f_matches_cube_region_rollup() {
    let (sim, store, root) = setup();
    let hierarchy = RegionHierarchy::standard(sim.network(), 3.0, 3);
    let datasets = [DatasetId::new(1)];
    let io = IoStats::shared();
    let params = Params::paper_defaults().with_min_event_records(1);

    let mut mc = build_mc(&store, &datasets, hierarchy.clone(), io.clone()).unwrap();
    let built = build_forest_from_store(&store, &datasets, sim.network(), &params, io).unwrap();
    let forest = built.forest;

    let spec = forest.spec();
    let range = spec.day_range(0, 5);
    let micros = forest.micros_in_days(0, 5);
    let zones = RedZones::compute(
        &micros,
        hierarchy.finest(),
        &params,
        range,
        sim.network().num_sensors() as u32,
    );

    // Roll the cube up to (finest region × month) and compare per-region
    // totals with the red-zone F values.
    let cuboid = mc.cube.cuboid(0, TemporalLevel::Month);
    for (key, measure) in cuboid {
        assert_eq!(
            zones.f_value(key.region),
            measure.total,
            "region {} disagrees",
            key.region
        );
    }
    // Regions absent from the cube must have zero F.
    let covered: std::collections::HashSet<u32> = cuboid.keys().map(|k| k.region.raw()).collect();
    for r in 0..hierarchy.finest().num_regions() {
        if !covered.contains(&r) {
            assert_eq!(zones.f_value(cps_core::RegionId::new(r)), Severity::ZERO);
        }
    }

    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn oc_scans_more_but_answers_the_same_range_totals() {
    let (sim, store, root) = setup();
    let hierarchy = RegionHierarchy::standard(sim.network(), 3.0, 3);
    let datasets = [DatasetId::new(1)];
    let io = IoStats::shared();

    let before = io.snapshot();
    let mc = build_mc(&store, &datasets, hierarchy.clone(), io.clone()).unwrap();
    let mc_io = io.snapshot().since(before);
    let before = io.snapshot();
    let oc = cps_cube::cube::build_oc(&store, &datasets, hierarchy, io.clone()).unwrap();
    let oc_io = io.snapshot().since(before);

    assert!(
        oc_io.bytes_read > 5 * mc_io.bytes_read,
        "OC reads the full raw archive: {} vs {}",
        oc_io.bytes_read,
        mc_io.bytes_read
    );
    assert!(oc.cube.base_cells() >= mc.cube.base_cells());

    let _ = std::fs::remove_dir_all(&root);
}
