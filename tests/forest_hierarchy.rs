//! Forest-level invariants over realistic simulated data: hierarchical
//! aggregation conserves severity, week/month materializations stay
//! consistent with flat integration, and the properties of §III hold end
//! to end.

use atypical::integrate::is_fixpoint;
use atypical::pipeline::build_forest_from_records;
use atypical::similarity::similarity_folded;
use cps_core::{Params, Severity, WindowSpec};
use cps_sim::{Scale, SimConfig, TrafficSim};

fn forest_of(days: u32, seed: u64) -> (TrafficSim, atypical::AtypicalForest) {
    let sim = TrafficSim::new(
        SimConfig::new(Scale::Tiny, seed)
            .with_datasets(1)
            .with_days_per_dataset(days),
    );
    let params = Params::paper_defaults();
    let built = build_forest_from_records(
        (0..days).map(|d| (d, sim.atypical_day(d))),
        sim.network(),
        &params,
        sim.config().spec,
    );
    (sim, built.forest)
}

#[test]
fn severity_is_conserved_up_the_hierarchy() {
    let (_, mut forest) = forest_of(14, 42);
    let leaf_total: Severity = forest
        .micros_in_days(0, 14)
        .iter()
        .map(|c| c.severity())
        .sum();
    let week_total: Severity = (0..2)
        .flat_map(|w| forest.week(w).to_vec())
        .map(|c| c.severity())
        .sum();
    assert_eq!(leaf_total, week_total);
    let flat: Severity = forest
        .integrate_days(0, 14)
        .iter()
        .map(|c| c.severity())
        .sum();
    assert_eq!(leaf_total, flat);
}

#[test]
fn micro_count_is_conserved_through_merges() {
    let (_, mut forest) = forest_of(14, 7);
    let n_micros = forest.num_micro_clusters() as u32;
    let merged: u32 = forest
        .integrate_days(0, 14)
        .iter()
        .map(|c| c.merged_count)
        .sum();
    assert_eq!(n_micros, merged);
}

#[test]
fn integration_output_is_a_fixpoint_under_folded_similarity() {
    let (_, mut forest) = forest_of(7, 21);
    let params = *forest.params();
    let macros = forest.integrate_days(0, 7);
    // No pair of output clusters is still similar under the integration's
    // own (folded) measure.
    let wpd = WindowSpec::PEMS.windows_per_day();
    for (i, a) in macros.iter().enumerate() {
        for b in &macros[i + 1..] {
            assert!(
                similarity_folded(a, b, params.balance, wpd) <= params.delta_sim,
                "{} and {} should have merged",
                a.id,
                b.id
            );
        }
    }
    // Under absolute similarity the clusters are at most as similar as
    // under folded similarity (folding only adds temporal overlap for
    // same-clock windows), so the absolute fixpoint holds too.
    assert!(is_fixpoint(&macros, &params));
}

#[test]
fn recurring_corridor_appears_every_weekday_and_merges() {
    let (sim, mut forest) = forest_of(7, 42);
    let spec = sim.config().spec;
    // The strongest weekly macro-cluster should aggregate several days'
    // micro-clusters (the eternal major corridor).
    let week = forest.week(0).to_vec();
    let top = week
        .iter()
        .max_by_key(|c| c.severity())
        .expect("non-empty week");
    assert!(
        top.merged_count >= 4,
        "major corridor should recur and merge: {}",
        top.merged_count
    );
    // Its temporal feature covers several distinct days.
    let days: std::collections::HashSet<u32> = top.tf.keys().map(|w| spec.day_of(w)).collect();
    assert!(days.len() >= 4, "covers {} days", days.len());
}

#[test]
fn weekday_weekend_trees_partition_all_micros() {
    let (_, mut forest) = forest_of(14, 42);
    let n_micros = forest.num_micro_clusters() as u32;
    let parts = forest.integrate_by_path(0, 14, atypical::forest::AggregationPath::WeekdayWeekend);
    let total: u32 = parts
        .iter()
        .flat_map(|(_, cs)| cs.iter())
        .map(|c| c.merged_count)
        .sum();
    assert_eq!(total, n_micros);
}

#[test]
fn forest_is_deterministic_for_fixed_input() {
    let (_, mut a) = forest_of(7, 13);
    let (_, mut b) = forest_of(7, 13);
    assert_eq!(a.week(0), b.week(0));
    assert_eq!(a.integrate_days(0, 7), b.integrate_days(0, 7));
}
