//! Live operations-room view: the streaming extractor consumes the sensor
//! feed window by window and reports each congestion minutes after it
//! dissipates — no end-of-day batch.
//!
//! ```text
//! cargo run --release --example online_monitoring
//! ```

use atypical::online::OnlineExtractor;
use cps_core::record::AtypicalCriterion;
use cps_core::{AtypicalRecord, Params};
use cps_sim::{Scale, SimConfig, TrafficSim};

fn main() {
    let sim = TrafficSim::new(SimConfig::new(Scale::Tiny, 42));
    let spec = sim.config().spec;
    let criterion = sim.criterion();
    let params = Params::paper_defaults();

    // One day of readings arriving in window order (the live feed).
    let mut feed = sim.generate_day(0).raw;
    feed.sort_unstable_by_key(|r| (r.window, r.sensor));

    let mut extractor = OnlineExtractor::new(sim.network(), params, spec);
    let mut reported = 0;
    let mut current_window = None;

    for reading in &feed {
        if current_window != Some(reading.window) {
            // A new window begins: first surface everything that sealed.
            for cluster in extractor.drain_sealed() {
                reported += 1;
                println!(
                    "[{}] cluster closed: {}",
                    spec.clock_label(reading.window),
                    cluster.describe(spec)
                );
            }
            current_window = Some(reading.window);
        }
        if let Some(severity) = criterion.classify(reading) {
            extractor.push(AtypicalRecord::new(reading.sensor, reading.window, severity));
        } else {
            extractor.advance_to(reading.window);
        }
    }

    // End of day: close out whatever is still open.
    for cluster in extractor.finish() {
        reported += 1;
        println!("[end of day] cluster closed: {}", cluster.describe(spec));
    }
    println!("\n{reported} atypical events reported online");
}
