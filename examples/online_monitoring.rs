//! Live operations-room view, scaled out: the sharded monitoring service
//! consumes a day of readings, reconciles events across shard boundaries,
//! and answers red-zone-guided significance queries while ingesting —
//! no end-of-day batch.
//!
//! ```text
//! cargo run --release --example online_monitoring
//! ```

use cps_core::record::AtypicalCriterion;
use cps_core::AtypicalRecord;
use cps_monitor::{MonitorConfig, MonitorService};
use cps_sim::{Scale, SimConfig, TrafficSim};
use std::sync::Arc;

fn main() {
    let sim = TrafficSim::new(SimConfig::new(Scale::Tiny, 42));
    let spec = sim.config().spec;
    let criterion = sim.criterion();
    let config = MonitorConfig {
        shards: 4,
        spec,
        ..MonitorConfig::default()
    };

    // One day of readings arriving in window order (the live feed).
    let mut feed = sim.generate_day(0).raw;
    feed.sort_unstable_by_key(|r| (r.window, r.sensor));

    let network = Arc::new(sim.network().clone());
    let mut service = MonitorService::start(&config, network).expect("service starts");
    let handle = service.handle();
    println!(
        "monitoring with {} shards ({} boundary sensors)",
        config.shards,
        service.shard_map().boundary_sensor_count()
    );

    let mut reported = 0;
    for reading in &feed {
        if let Some(severity) = criterion.classify(reading) {
            let record = AtypicalRecord::new(reading.sensor, reading.window, severity);
            service.ingest(record).expect("feed is window-ordered");
        } else {
            // Quiet readings still move the shard clocks forward so open
            // events seal on time.
            service
                .advance_to(reading.window)
                .expect("advance on a healthy service");
        }

        // Surface newly reconciled micro-clusters as they finalize.
        let finalized = handle.metrics().micro_clusters;
        if finalized > reported {
            println!(
                "[{}] {} atypical event(s) on the board",
                spec.clock_label(reading.window),
                finalized
            );
            reported = finalized;
        }
    }

    // End of day: drain the pipeline, then query like an analyst would.
    let metrics = service.finish();
    println!("\n{metrics}\n");

    let result = handle.query_guided(0, 1).expect("guided query");
    println!(
        "guided day query: {} of {} micro-clusters survived {} red regions",
        result.input_clusters, result.candidate_clusters, result.num_red_regions
    );
    for cluster in result.significant() {
        println!("  significant: {}", cluster.describe(spec));
    }
}
