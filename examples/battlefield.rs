//! Battlefield surveillance (§I, §VII): the identical pipeline on acoustic
//! sensors watching for intruders — the atypical events are *moving*
//! disturbances rather than growing/shrinking congestion.
//!
//! ```text
//! cargo run --release --example battlefield
//! ```

use atypical::event::extract_events_and_clusters;
use atypical::viz;
use cps_core::ids::ClusterIdGen;
use cps_core::Params;
use cps_index::StIndex;
use cps_sim::battlefield::BattlefieldSim;
use cps_sim::{Scale, SimConfig};

fn main() {
    let sim = BattlefieldSim::new(SimConfig::new(Scale::Small, 1234));
    println!(
        "sensor field: {} acoustic sensors on a patrol lattice",
        sim.network().num_sensors()
    );

    let params = Params::paper_defaults();
    for day in 0..7 {
        let intrusions = sim.plan_intrusions(day);
        let records = sim.atypical_day(day);
        let index = StIndex::build(&records, sim.network(), &params, sim.criterion().spec);
        let mut ids = ClusterIdGen::new(1 + u64::from(day) * 100);
        let clusters: Vec<_> = extract_events_and_clusters(&index, &mut ids)
            .into_iter()
            .map(|(_, c)| c)
            .filter(|c| c.sensor_count() >= 3)
            .collect();
        println!(
            "\nday {day}: {} planned intrusions -> {} disturbance records -> {} clusters",
            intrusions.len(),
            records.len(),
            clusters.len()
        );
        if clusters.is_empty() {
            continue;
        }
        for c in &clusters {
            let range = c.time_range();
            println!(
                "  {}: {} sensors over {} windows (span {})",
                c.id,
                c.sensor_count(),
                c.window_count(),
                range,
            );
        }
        if day == 0 || !clusters.is_empty() {
            let refs: Vec<&atypical::AtypicalCluster> = clusters.iter().collect();
            println!("{}", viz::render_clusters(sim.network(), &refs, 60, 18));
        }
    }
}
