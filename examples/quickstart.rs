//! Quickstart: from raw CPS readings to atypical clusters in ~40 lines.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use atypical::event::extract_events_and_clusters;
use cps_core::ids::ClusterIdGen;
use cps_core::record::AtypicalCriterion;
use cps_core::{AtypicalRecord, Params};
use cps_index::StIndex;
use cps_sim::{Scale, SimConfig, TrafficSim};

fn main() {
    // 1. A deployment: the simulator stands in for a real CPS feed.
    let sim = TrafficSim::new(SimConfig::new(Scale::Tiny, 42));
    let network = sim.network();
    println!(
        "deployment: {} sensors on {} highways",
        network.num_sensors(),
        network.highways().len()
    );

    // 2. Pre-process one day of raw readings into atypical records
    //    (the PR step: apply the congestion criterion).
    let criterion = sim.criterion();
    let day = sim.generate_day(0);
    let records: Vec<AtypicalRecord> = day
        .raw
        .iter()
        .filter_map(|r| {
            criterion
                .classify(r)
                .map(|sev| AtypicalRecord::new(r.sensor, r.window, sev))
        })
        .collect();
    println!(
        "day 0: {} raw readings -> {} atypical records ({:.1}%)",
        day.raw.len(),
        records.len(),
        100.0 * records.len() as f64 / day.raw.len() as f64
    );

    // 3. Retrieve atypical events and summarize them as micro-clusters
    //    (Algorithm 1), using the spatio-temporal index.
    let params = Params::paper_defaults();
    let index = StIndex::build(&records, network, &params, sim.config().spec);
    let mut ids = ClusterIdGen::new(1);
    let mut pairs = extract_events_and_clusters(&index, &mut ids);
    pairs.sort_by_key(|(_, c)| std::cmp::Reverse(c.severity()));

    println!("\ntop atypical events of the day:");
    for (event, cluster) in pairs.iter().take(5) {
        println!(
            "  {} ({} records)",
            cluster.describe(sim.config().spec),
            event.len()
        );
    }
}
