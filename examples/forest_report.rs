//! The monthly analyst report: hierarchical aggregation paths, context
//! joins and the recurrence-based risk forecast (§III-C, §V-D, §VII).
//!
//! ```text
//! cargo run --release --example forest_report
//! ```

use atypical::context::{linked_events, DayLabels, PointEvent};
use atypical::forest::AggregationPath;
use atypical::pipeline::build_forest_from_records;
use atypical::predict::RecurrenceProfile;
use atypical::significant::partition_significant;
use cps_core::{Params, WindowSpec};
use cps_sim::{Scale, SimConfig, TrafficSim};

fn main() {
    let sim = TrafficSim::new(SimConfig::new(Scale::Small, 42));
    let params = Params::paper_defaults();
    let spec = WindowSpec::PEMS;
    const DAYS: u32 = 30;

    eprintln!("building one month of micro-clusters…");
    let generated: Vec<_> = (0..DAYS).map(|d| sim.generate_day(d)).collect();
    let built = build_forest_from_records(
        generated.iter().map(|g| (g.day, sim.atypical_day(g.day))),
        sim.network(),
        &params,
        spec,
    );
    let mut forest = built.forest;
    let n_sensors = sim.network().num_sensors() as u32;

    // --- Monthly summary through the calendar tree -----------------------
    let monthly = forest.month(0).to_vec();
    let (sig, trivial) = partition_significant(monthly, &params, spec.day_range(0, 30), n_sensors);
    println!(
        "month 0: {} macro-clusters ({} significant, {} trivial)",
        sig.len() + trivial.len(),
        sig.len(),
        trivial.len()
    );
    for c in &sig {
        println!("  significant: {}", c.describe(spec));
    }

    // --- The weekday/weekend aggregation path ----------------------------
    println!("\nweekday vs weekend trees:");
    for (label, clusters) in forest.integrate_by_path(0, DAYS, AggregationPath::WeekdayWeekend) {
        let total: cps_core::Severity = clusters.iter().map(|c| c.severity()).sum();
        println!(
            "  {label}: {} clusters, {total} total severity",
            clusters.len()
        );
    }

    // --- Context joins: weather and accidents ----------------------------
    let weather =
        DayLabels::from_pairs(generated.iter().map(|g| (g.day, g.weather.weather.label())));
    let accidents: Vec<PointEvent> = generated
        .iter()
        .flat_map(|g| g.accidents.iter())
        .map(|a| PointEvent {
            sensor: a.sensor,
            window: a.window,
        })
        .collect();
    println!("\ncontext joins on the significant clusters:");
    for c in &sig {
        let dominant = weather.dominant(c, spec).unwrap_or("n/a");
        let linked = linked_events(c, &accidents, 3);
        println!(
            "  {}: dominated by {dominant} days, {} accident reports linked",
            c.id,
            linked.len()
        );
    }

    // --- Recurrence-based risk forecast (§VII hook) -----------------------
    let profile = RecurrenceProfile::from_forest(&forest);
    println!("\nhighest-risk sensors at 08:00 (recurrence profile over {DAYS} days):");
    for (sensor, risk) in profile.top_sensors(8, 5) {
        let info = sim.network().sensor(sensor);
        let highway = &sim.network().highways()[info.highway.0 as usize].name;
        println!(
            "  {sensor} on {highway} mile {:.1}: risk {risk:.1}",
            info.mile_post
        );
    }
}
