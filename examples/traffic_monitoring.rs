//! The paper's Example 1, end to end: a transportation officer asks
//!
//! 1. *Where do the traffic congestions usually happen in the city?*
//! 2. *When and how do they start?*
//! 3. *On which road segment (or time period) is the congestion most
//!    serious?*
//!
//! over two weeks of archived CPS data, answered with red-zone guided
//! clustering (Algorithm 4).
//!
//! ```text
//! cargo run --release --example traffic_monitoring
//! ```

use atypical::pipeline::build_forest_from_records;
use atypical::viz;
use atypical::{Query, QueryEngine, Strategy};
use cps_core::{Params, WindowSpec};
use cps_geo::UniformGrid;
use cps_sim::{Scale, SimConfig, TrafficSim};

fn main() {
    let sim = TrafficSim::new(SimConfig::new(Scale::Small, 42));
    let params = Params::paper_defaults();
    let spec = WindowSpec::PEMS;
    const DAYS: u32 = 14;

    eprintln!("building the atypical forest over {DAYS} days…");
    let built = build_forest_from_records(
        (0..DAYS).map(|d| (d, sim.atypical_day(d))),
        sim.network(),
        &params,
        spec,
    );
    let mut forest = built.forest;
    println!(
        "forest: {} micro-clusters from {} atypical events ({} KiB vs {} KiB raw events)",
        built.stats.n_micro_clusters,
        built.stats.n_events,
        built.stats.cluster_bytes / 1024,
        built.stats.event_bytes / 1024,
    );

    // Online query: the whole city, the whole fortnight, red-zone guided,
    // with the final check on (we want clean results, not an experiment).
    let partition = UniformGrid::over(sim.network(), 3.0).partition(sim.network());
    let engine = QueryEngine::new(sim.network(), &partition, params).with_final_check();
    let result = engine.execute(&mut forest, &Query::days(0, DAYS), Strategy::Gui);
    println!(
        "\nquery: {} candidate micro-clusters, {} past the red-zone filter ({} red regions), \
         {} significant clusters in {:?}",
        result.candidate_clusters,
        result.input_clusters,
        result.num_red_regions.unwrap_or(0),
        result.macros.len(),
        result.elapsed,
    );

    let mut significant = result.macros.clone();
    significant.sort_by_key(|c| std::cmp::Reverse(c.severity()));

    // Q1: where? — the map.
    let refs: Vec<&atypical::AtypicalCluster> = significant.iter().collect();
    println!("\nwhere do congestions usually happen:\n");
    println!("{}", viz::render_clusters(sim.network(), &refs, 78, 24));
    println!("{}", viz::legend(&refs));

    // Q2/Q3: when do they start, and which part is most serious?
    println!("\nper-cluster detail:");
    for cluster in &significant {
        let (onset_w, onset_sev) = cluster.onset().expect("non-empty cluster");
        let (worst_sensor, worst_sev) = cluster.most_serious_sensor().expect("non-empty");
        let (worst_window, _) = cluster.most_serious_window().expect("non-empty");
        let info = sim.network().sensor(worst_sensor);
        let highway = &sim.network().highways()[info.highway.0 as usize].name;
        println!(
            "  {}: starts around {} (day {}, {} in the first window); worst at {} on {} \
             (mile {:.1}, {} total); peak window {}",
            cluster.id,
            spec.clock_label(onset_w),
            spec.day_of(onset_w),
            onset_sev,
            worst_sensor,
            highway,
            info.mile_post,
            worst_sev,
            spec.clock_label(worst_window),
        );
    }
}
