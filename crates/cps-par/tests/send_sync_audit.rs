//! Compile-time thread-safety audit of everything that crosses the
//! scheduler boundary.
//!
//! [`Pool::map`] requires `T: Send` (items move to workers), `U: Send`
//! (results move back) and `F: Sync` (the closure is shared by
//! reference), so the closure's captured environment must be `Sync`.
//! This file pins the *concrete* item, result, and captured types of
//! every production call site as trait bounds the compiler checks: if a
//! refactor slips an `Rc`, a `Cell`, or a raw pointer into a cluster,
//! a stats block, or a captured config, this test stops compiling —
//! before any runtime test can race on it.
//!
//! Deliberately absent: `ClusterIdGen`. The id generator is the one
//! piece of mutable integration state, and the engine's whole design
//! (see `atypical::par`) is that it never crosses the boundary — workers
//! mint scratch ids and the caller remaps them in canonical order. Keep
//! it that way; do not add an assertion that would make sharing it look
//! supported.

use atypical::forest::MaterializedLevels;
use atypical::integrate::{IntegrationStats, TimeAlignment};
use atypical::pipeline::ConstructionStats;
use atypical::AtypicalCluster;
use cps_core::measure::CountAndTotal;
use cps_core::{AtypicalRecord, Params, WindowSpec};
use cps_cube::CellKey;
use cps_geo::grid::RegionHierarchy;
use cps_geo::RoadNetwork;
use cps_par::{Pool, RunStats};

fn assert_send<T: Send>() {}
fn assert_sync<T: Sync>() {}
fn assert_send_sync<T: Send + Sync>() {}

#[test]
fn scheduler_itself_is_shareable() {
    assert_send_sync::<Pool>();
    assert_send_sync::<RunStats>();
}

#[test]
fn forest_leaf_payloads_are_thread_safe() {
    // build_forest_from_records_parallel: per-day record batches in,
    // per-day clusters + stats out, network/params/spec captured.
    assert_send::<(u32, Vec<AtypicalRecord>)>();
    assert_send::<(u32, Vec<AtypicalCluster>, ConstructionStats)>();
    assert_sync::<RoadNetwork>();
    assert_sync::<Params>();
    assert_sync::<WindowSpec>();
}

#[test]
fn rollup_payloads_are_thread_safe() {
    // integrate_siblings: sibling nodes in, macros + stats + scratch-id
    // count out, params/alignment captured.
    assert_send::<Vec<AtypicalCluster>>();
    assert_send::<(Vec<AtypicalCluster>, IntegrationStats, u64)>();
    assert_sync::<TimeAlignment>();
    assert_send_sync::<IntegrationStats>();
    assert_send_sync::<MaterializedLevels>();
}

#[test]
fn cube_payloads_are_thread_safe() {
    // SpatioTemporalCube::cuboid: base-cell chunks in, mapped entries
    // out, region hierarchy captured by the mapping closure.
    assert_send::<Vec<(CellKey, CountAndTotal)>>();
    assert_sync::<RegionHierarchy>();
    assert_send_sync::<CellKey>();
    assert_send_sync::<CountAndTotal>();
}
