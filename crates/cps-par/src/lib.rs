//! # cps-par
//!
//! A small deterministic work-stealing scheduler for the offline
//! construction paths (forest leaves, forest roll-ups, cube cuboids).
//!
//! ## Contract
//!
//! [`Pool::map`] applies a function to every item of a vector on
//! `threads` worker threads and returns the results **in input order**,
//! no matter how the OS schedules the workers or how work-stealing
//! shuffles execution. Parallelism here is therefore a pure throughput
//! knob: callers that need bit-identical output across thread counts
//! (the whole point of the forest/cube engine — see
//! `atypical::par`) get it as long as the per-item function itself is
//! deterministic, because
//!
//! * every item is executed exactly once,
//! * each result is written back to the slot of its input index, and
//! * `threads <= 1` never spawns: it runs the plain sequential loop on
//!   the caller's thread — the exact pre-parallelism code path.
//!
//! ## Scheduling
//!
//! Items are seeded round-robin into per-worker FIFO deques
//! ([`crossbeam::deque::Worker`]). A worker drains its own deque first
//! and then steals from its peers (in ring order starting at its right
//! neighbour), so an adversarially skewed workload — one huge item at
//! index 0, say — keeps every worker busy: the owner is stuck on the
//! big item while its remaining queue is emptied by thieves.
//! [`Pool::map_with_stats`] exposes the steal counter so tests can
//! force and observe that behavior.
//!
//! A worker panic is propagated to the caller after all workers have
//! been joined (no detached threads, no lost panics).

#![warn(missing_docs)]
#![warn(clippy::all)]

use crossbeam::deque::{Steal, Stealer, Worker};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Counters from one [`Pool::map_with_stats`] run.
///
/// `tasks` is deterministic (one per input item). `local_pops` and
/// `steals` describe how the run was scheduled and vary with OS timing;
/// they always sum to `tasks`. They exist for observability and for the
/// forced-stealing tests — never gate output on them.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Items executed (== input length).
    pub tasks: u64,
    /// Items a worker popped from its own deque.
    pub local_pops: u64,
    /// Items a worker stole from a peer's deque.
    pub steals: u64,
    /// Worker threads that participated (1 for the sequential path).
    pub workers: usize,
}

/// A fixed-width scheduler. Threads are scoped per call — the pool holds
/// no OS resources between calls, so it is cheap to construct ad hoc.
#[derive(Clone, Copy, Debug)]
pub struct Pool {
    threads: usize,
}

impl Pool {
    /// A pool that runs `threads` workers per call; `0` and `1` both mean
    /// the sequential path.
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// The worker count this pool fans out to.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Applies `f` to every item, returning results in input order.
    ///
    /// `f` receives `(input index, item)`. With `threads <= 1` this is
    /// exactly `items.into_iter().enumerate().map(..).collect()` on the
    /// calling thread.
    pub fn map<T, U, F>(&self, items: Vec<T>, f: F) -> Vec<U>
    where
        T: Send,
        U: Send,
        F: Fn(usize, T) -> U + Sync,
    {
        self.map_with_stats(items, f).0
    }

    /// [`map`](Self::map), also returning the scheduling counters.
    pub fn map_with_stats<T, U, F>(&self, items: Vec<T>, f: F) -> (Vec<U>, RunStats)
    where
        T: Send,
        U: Send,
        F: Fn(usize, T) -> U + Sync,
    {
        let n = items.len();
        if self.threads <= 1 || n <= 1 {
            let out: Vec<U> = items
                .into_iter()
                .enumerate()
                .map(|(i, x)| f(i, x))
                .collect();
            let stats = RunStats {
                tasks: n as u64,
                local_pops: n as u64,
                steals: 0,
                workers: 1,
            };
            return (out, stats);
        }

        let workers = self.threads.min(n);
        // Seed round-robin: worker w owns items w, w + workers, ...
        let deques: Vec<Worker<(usize, T)>> = (0..workers).map(|_| Worker::new_fifo()).collect();
        for (i, item) in items.into_iter().enumerate() {
            deques[i % workers].push((i, item));
        }
        let stealers: Vec<Stealer<(usize, T)>> = deques.iter().map(Worker::stealer).collect();

        let local_pops = AtomicU64::new(0);
        let steals = AtomicU64::new(0);
        // Each completed task lands in its input slot; distinct indices,
        // so a plain mutex-guarded slot vector keeps this simple and
        // contention stays on the (cheap) result store, not the work.
        let slots: Mutex<Vec<Option<U>>> = Mutex::new((0..n).map(|_| None).collect());

        let scope_result = crossbeam::thread::scope(|scope| {
            for (w, deque) in deques.into_iter().enumerate() {
                let (f, stealers, slots) = (&f, &stealers, &slots);
                let (local_pops, steals) = (&local_pops, &steals);
                scope.spawn(move |_| {
                    loop {
                        // Own deque first; then sweep peers ring-wise.
                        let task = deque.pop().map(|t| (t, false)).or_else(|| {
                            (1..workers).find_map(|d| {
                                let victim = &stealers[(w + d) % workers];
                                loop {
                                    match victim.steal() {
                                        Steal::Success(t) => return Some((t, true)),
                                        Steal::Empty => return None,
                                        Steal::Retry => continue,
                                    }
                                }
                            })
                        });
                        match task {
                            Some(((i, item), stolen)) => {
                                if stolen {
                                    steals.fetch_add(1, Ordering::Relaxed);
                                } else {
                                    local_pops.fetch_add(1, Ordering::Relaxed);
                                }
                                let out = f(i, item);
                                slots.lock().unwrap()[i] = Some(out);
                            }
                            None => break,
                        }
                    }
                });
            }
        });
        if let Err(payload) = scope_result {
            resume_unwind(payload);
        }

        let out: Vec<U> = slots
            .into_inner()
            .unwrap()
            .into_iter()
            .enumerate()
            .map(|(i, slot)| slot.unwrap_or_else(|| panic!("task {i} produced no result")))
            .collect();
        let stats = RunStats {
            tasks: n as u64,
            local_pops: local_pops.into_inner(),
            steals: steals.into_inner(),
            workers,
        };
        (out, stats)
    }
}

/// Resolves a parallelism knob to a worker count: `0` means "all
/// available cores", anything else is taken literally.
pub fn resolve_threads(parallelism: usize) -> usize {
    if parallelism == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        parallelism
    }
}

/// Runs `body` so that a panic inside it is returned as the panic
/// payload instead of unwinding — used by callers that must join other
/// work before re-raising.
pub fn trap_panic<R>(body: impl FnOnce() -> R) -> Result<R, Box<dyn std::any::Any + Send>> {
    catch_unwind(AssertUnwindSafe(body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    #[test]
    fn map_preserves_input_order() {
        for threads in [1, 2, 3, 8] {
            let pool = Pool::new(threads);
            let items: Vec<u64> = (0..100).collect();
            let out = pool.map(items, |i, x| {
                assert_eq!(i as u64, x);
                x * 2
            });
            assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn zero_threads_behaves_like_one() {
        let out = Pool::new(0).map(vec![1, 2, 3], |_, x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
        assert_eq!(Pool::new(0).threads(), 1);
    }

    #[test]
    fn sequential_path_runs_on_caller_thread() {
        let caller = std::thread::current().id();
        let (out, stats) = Pool::new(1).map_with_stats(vec![(); 4], |i, ()| {
            assert_eq!(std::thread::current().id(), caller);
            i
        });
        assert_eq!(out, vec![0, 1, 2, 3]);
        assert_eq!(stats.workers, 1);
        assert_eq!(stats.steals, 0);
        assert_eq!(stats.local_pops, 4);
    }

    #[test]
    fn singleton_input_never_spawns() {
        let caller = std::thread::current().id();
        let out = Pool::new(8).map(vec![7u32], |_, x| {
            assert_eq!(std::thread::current().id(), caller);
            x
        });
        assert_eq!(out, vec![7]);
    }

    #[test]
    fn empty_input_is_fine() {
        let (out, stats) = Pool::new(4).map_with_stats(Vec::<u8>::new(), |_, x| x);
        assert!(out.is_empty());
        assert_eq!(stats.tasks, 0);
    }

    #[test]
    fn pops_and_steals_account_for_every_task() {
        let (out, stats) = Pool::new(3).map_with_stats((0..50u64).collect(), |_, x| x);
        assert_eq!(out.len(), 50);
        assert_eq!(stats.tasks, 50);
        assert_eq!(stats.local_pops + stats.steals, 50);
        assert_eq!(stats.workers, 3);
    }

    /// Adversarial skew forces stealing: item 0 blocks worker 0 until
    /// every other item has been executed, so worker 0's remaining
    /// round-robin share (items 3, 6, 9, ...) must be finished by
    /// thieves.
    #[test]
    fn skewed_workload_forces_steals() {
        let done = AtomicUsize::new(0);
        let n = 30usize;
        let (out, stats) = Pool::new(3).map_with_stats((0..n).collect(), |i, x: usize| {
            if i == 0 {
                // Busy-wait until all other items completed (they can:
                // workers 1 and 2 drain their own deques, then steal the
                // rest of worker 0's).
                while done.load(Ordering::SeqCst) < n - 1 {
                    std::thread::sleep(Duration::from_millis(1));
                }
            } else {
                done.fetch_add(1, Ordering::SeqCst);
            }
            x * x
        });
        assert_eq!(out, (0..n).map(|x| x * x).collect::<Vec<_>>());
        assert!(
            stats.steals > 0,
            "worker 0 was pinned on item 0; its queue must have been stolen: {stats:?}"
        );
    }

    #[test]
    fn worker_panic_propagates() {
        let result = trap_panic(|| {
            Pool::new(2).map((0..8).collect::<Vec<u32>>(), |_, x| {
                if x == 5 {
                    panic!("boom at {x}");
                }
                x
            })
        });
        assert!(result.is_err());
    }
}
