//! Geographic points and distances.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Mean Earth radius in miles (matches the mile-denominated `δd`).
pub const EARTH_RADIUS_MILES: f64 = 3958.7613;

/// A geographic point (WGS-84 degrees).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize, Default)]
pub struct Point {
    /// Latitude in degrees, positive north.
    pub lat: f64,
    /// Longitude in degrees, positive east.
    pub lon: f64,
}

impl Point {
    /// Creates a point from latitude/longitude degrees.
    pub const fn new(lat: f64, lon: f64) -> Self {
        Self { lat, lon }
    }

    /// Great-circle (haversine) distance to `other`, in miles.
    pub fn haversine_miles(self, other: Point) -> f64 {
        let (lat1, lon1) = (self.lat.to_radians(), self.lon.to_radians());
        let (lat2, lon2) = (other.lat.to_radians(), other.lon.to_radians());
        let dlat = lat2 - lat1;
        let dlon = lon2 - lon1;
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_MILES * a.sqrt().asin()
    }

    /// Fast equirectangular-projection distance to `other`, in miles.
    ///
    /// Accurate to well under 0.1% at metropolitan scale (tens of miles) —
    /// plenty for the `δd` threshold tests on the hot neighbour-search path,
    /// and ~5× cheaper than the haversine.
    #[inline]
    pub fn fast_miles(self, other: Point) -> f64 {
        let mean_lat = ((self.lat + other.lat) * 0.5).to_radians();
        let dx = (other.lon - self.lon).to_radians() * mean_lat.cos();
        let dy = (other.lat - self.lat).to_radians();
        EARTH_RADIUS_MILES * (dx * dx + dy * dy).sqrt()
    }

    /// The point `miles_north`/`miles_east` away (small-displacement
    /// approximation, used by the network generator).
    pub fn offset_miles(self, miles_north: f64, miles_east: f64) -> Point {
        let dlat = (miles_north / EARTH_RADIUS_MILES).to_degrees();
        let dlon = (miles_east / (EARTH_RADIUS_MILES * self.lat.to_radians().cos())).to_degrees();
        Point::new(self.lat + dlat, self.lon + dlon)
    }

    /// Linear interpolation between two points (`t` in `[0, 1]`).
    pub fn lerp(self, other: Point, t: f64) -> Point {
        Point::new(
            self.lat + (other.lat - self.lat) * t,
            self.lon + (other.lon - self.lon) * t,
        )
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.5}, {:.5})", self.lat, self.lon)
    }
}

/// Downtown Los Angeles — origin of the synthetic network, chosen because the
/// paper's datasets cover the Los Angeles / Ventura freeway system.
pub const LOS_ANGELES: Point = Point::new(34.0522, -118.2437);

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zero_distance_to_self() {
        assert_eq!(LOS_ANGELES.haversine_miles(LOS_ANGELES), 0.0);
        assert_eq!(LOS_ANGELES.fast_miles(LOS_ANGELES), 0.0);
    }

    #[test]
    fn la_to_ventura_roughly_sixty_miles() {
        let ventura = Point::new(34.2805, -119.2945);
        let d = LOS_ANGELES.haversine_miles(ventura);
        assert!((55.0..70.0).contains(&d), "got {d}");
    }

    #[test]
    fn offset_roundtrip() {
        let p = LOS_ANGELES.offset_miles(3.0, 4.0);
        let d = LOS_ANGELES.haversine_miles(p);
        assert!((d - 5.0).abs() < 0.05, "got {d}");
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point::new(34.0, -118.0);
        let b = Point::new(35.0, -117.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        let m = a.lerp(b, 0.5);
        assert!((m.lat - 34.5).abs() < 1e-12 && (m.lon + 117.5).abs() < 1e-12);
    }

    proptest! {
        /// Fast distance tracks the haversine to <0.2% at metro scale.
        #[test]
        fn prop_fast_matches_haversine(
            dn in -40.0f64..40.0, de in -40.0f64..40.0,
        ) {
            let p = LOS_ANGELES;
            let q = p.offset_miles(dn, de);
            let h = p.haversine_miles(q);
            let f = p.fast_miles(q);
            prop_assert!((h - f).abs() <= 0.002 * h.max(0.1), "h={h} f={f}");
        }

        /// Distance symmetry and the triangle inequality.
        #[test]
        fn prop_metric_axioms(
            an in -30.0f64..30.0, ae in -30.0f64..30.0,
            bn in -30.0f64..30.0, be in -30.0f64..30.0,
            cn in -30.0f64..30.0, ce in -30.0f64..30.0,
        ) {
            let a = LOS_ANGELES.offset_miles(an, ae);
            let b = LOS_ANGELES.offset_miles(bn, be);
            let c = LOS_ANGELES.offset_miles(cn, ce);
            prop_assert!((a.haversine_miles(b) - b.haversine_miles(a)).abs() < 1e-9);
            prop_assert!(a.haversine_miles(c) <= a.haversine_miles(b) + b.haversine_miles(c) + 1e-9);
        }
    }
}
