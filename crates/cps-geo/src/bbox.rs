//! Axis-aligned geographic bounding boxes.

use crate::Point;
use serde::{Deserialize, Serialize};

/// Axis-aligned lat/lon rectangle.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct BoundingBox {
    /// Minimum latitude.
    pub min_lat: f64,
    /// Minimum longitude.
    pub min_lon: f64,
    /// Maximum latitude.
    pub max_lat: f64,
    /// Maximum longitude.
    pub max_lon: f64,
}

impl BoundingBox {
    /// The empty box (inverted bounds; unions with anything leave the other
    /// operand).
    pub const EMPTY: BoundingBox = BoundingBox {
        min_lat: f64::INFINITY,
        min_lon: f64::INFINITY,
        max_lat: f64::NEG_INFINITY,
        max_lon: f64::NEG_INFINITY,
    };

    /// Builds a box from explicit bounds.
    pub fn new(min_lat: f64, min_lon: f64, max_lat: f64, max_lon: f64) -> Self {
        Self {
            min_lat,
            min_lon,
            max_lat,
            max_lon,
        }
    }

    /// The degenerate box containing a single point.
    pub fn of_point(p: Point) -> Self {
        Self::new(p.lat, p.lon, p.lat, p.lon)
    }

    /// Smallest box covering an iterator of points.
    pub fn of_points<I: IntoIterator<Item = Point>>(points: I) -> Self {
        points
            .into_iter()
            .fold(Self::EMPTY, |b, p| b.expanded_to(p))
    }

    /// Whether the box contains no area (uninitialized).
    pub fn is_empty(&self) -> bool {
        self.min_lat > self.max_lat || self.min_lon > self.max_lon
    }

    /// Whether `p` lies inside (inclusive).
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        p.lat >= self.min_lat
            && p.lat <= self.max_lat
            && p.lon >= self.min_lon
            && p.lon <= self.max_lon
    }

    /// Whether two boxes share any area (inclusive edges).
    #[inline]
    pub fn intersects(&self, other: &BoundingBox) -> bool {
        !self.is_empty()
            && !other.is_empty()
            && self.min_lat <= other.max_lat
            && other.min_lat <= self.max_lat
            && self.min_lon <= other.max_lon
            && other.min_lon <= self.max_lon
    }

    /// The box grown to cover `p`.
    pub fn expanded_to(mut self, p: Point) -> Self {
        self.min_lat = self.min_lat.min(p.lat);
        self.max_lat = self.max_lat.max(p.lat);
        self.min_lon = self.min_lon.min(p.lon);
        self.max_lon = self.max_lon.max(p.lon);
        self
    }

    /// The union of two boxes.
    pub fn union(mut self, other: &BoundingBox) -> Self {
        if other.is_empty() {
            return self;
        }
        if self.is_empty() {
            return *other;
        }
        self.min_lat = self.min_lat.min(other.min_lat);
        self.max_lat = self.max_lat.max(other.max_lat);
        self.min_lon = self.min_lon.min(other.min_lon);
        self.max_lon = self.max_lon.max(other.max_lon);
        self
    }

    /// Centre point.
    pub fn center(&self) -> Point {
        Point::new(
            0.5 * (self.min_lat + self.max_lat),
            0.5 * (self.min_lon + self.max_lon),
        )
    }

    /// Area in squared degrees — only used to compare boxes during R-tree
    /// splits, never as a physical quantity.
    pub fn area_deg2(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            (self.max_lat - self.min_lat) * (self.max_lon - self.min_lon)
        }
    }

    /// The box expanded outward by approximately `miles` on every side.
    pub fn inflated_miles(&self, miles: f64) -> BoundingBox {
        let center = self.center();
        let lo = Point::new(self.min_lat, self.min_lon).offset_miles(-miles, -miles);
        let hi = Point::new(self.max_lat, self.max_lon).offset_miles(miles, miles);
        // offset_miles uses the point's own latitude for the lon scale; keep
        // the box well-formed even at extreme latitudes.
        let _ = center;
        BoundingBox::new(
            lo.lat.min(hi.lat),
            lo.lon.min(hi.lon),
            lo.lat.max(hi.lat),
            lo.lon.max(hi.lon),
        )
    }
}

impl Default for BoundingBox {
    fn default() -> Self {
        Self::EMPTY
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::LOS_ANGELES;
    use proptest::prelude::*;

    #[test]
    fn empty_box_behaviour() {
        let e = BoundingBox::EMPTY;
        assert!(e.is_empty());
        assert!(!e.contains(LOS_ANGELES));
        assert_eq!(e.area_deg2(), 0.0);
        let b = BoundingBox::of_point(LOS_ANGELES);
        assert_eq!(e.union(&b), b);
        assert_eq!(b.union(&e), b);
    }

    #[test]
    fn contains_and_intersects() {
        let b = BoundingBox::new(34.0, -119.0, 35.0, -118.0);
        assert!(b.contains(Point::new(34.5, -118.5)));
        assert!(!b.contains(Point::new(33.9, -118.5)));
        let c = BoundingBox::new(34.9, -118.1, 36.0, -117.0);
        assert!(b.intersects(&c));
        let d = BoundingBox::new(36.0, -117.0, 37.0, -116.0);
        assert!(!b.intersects(&d));
    }

    #[test]
    fn of_points_covers_all() {
        let pts = vec![
            Point::new(34.0, -118.0),
            Point::new(34.5, -119.0),
            Point::new(33.8, -118.2),
        ];
        let b = BoundingBox::of_points(pts.clone());
        for p in pts {
            assert!(b.contains(p));
        }
        assert_eq!(b.min_lat, 33.8);
        assert_eq!(b.max_lon, -118.0);
    }

    #[test]
    fn inflate_grows_box() {
        let b = BoundingBox::of_point(LOS_ANGELES).inflated_miles(2.0);
        assert!(b.contains(LOS_ANGELES.offset_miles(1.5, 1.5)));
        assert!(!b.contains(LOS_ANGELES.offset_miles(5.0, 0.0)));
    }

    proptest! {
        #[test]
        fn prop_union_contains_both(
            a1 in 33.0f64..36.0, a2 in -120.0f64..-117.0,
            b1 in 33.0f64..36.0, b2 in -120.0f64..-117.0,
            c1 in 33.0f64..36.0, c2 in -120.0f64..-117.0,
            d1 in 33.0f64..36.0, d2 in -120.0f64..-117.0,
        ) {
            let x = BoundingBox::of_point(Point::new(a1, a2)).expanded_to(Point::new(b1, b2));
            let y = BoundingBox::of_point(Point::new(c1, c2)).expanded_to(Point::new(d1, d2));
            let u = x.union(&y);
            prop_assert!(u.contains(x.center()) && u.contains(y.center()));
            prop_assert!(u.intersects(&x) && u.intersects(&y));
            prop_assert_eq!(u, y.union(&x));
        }
    }
}
