//! # cps-geo
//!
//! Spatial substrate for the atypical-cps workspace:
//!
//! * [`Point`] / [`BoundingBox`] — geographic primitives with haversine and
//!   fast equirectangular distances,
//! * [`RoadNetwork`] — the sensor topology graph (paper §II-A: *"with the
//!   help of a topology graph mapping the sensors to different regions, the
//!   spatial coverage can be represented by a set of sensors"*). Sensors sit
//!   at mile posts on highway polylines; adjacency links consecutive sensors
//!   and interchange neighbours,
//! * [`UniformGrid`] + [`RegionHierarchy`] — the pre-defined region
//!   partition (the zipcode-area stand-in) over which the bottom-up baseline
//!   and the red-zone filter aggregate,
//! * [`RTree`] — an STR bulk-loaded R-tree used for spatial range queries
//!   and the aggregate-R-tree related-work baseline in `cps-index`.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod bbox;
pub mod grid;
pub mod network;
pub mod point;
pub mod rtree;

pub use bbox::BoundingBox;
pub use grid::{RegionHierarchy, UniformGrid};
pub use network::{Highway, HighwayId, RoadNetwork, SensorInfo};
pub use point::Point;
pub use rtree::RTree;
