//! The sensor topology graph.
//!
//! The paper's CPS consists of fixed sensors on a road network (PeMS loop
//! detectors on 38 LA/Ventura freeways). [`RoadNetwork`] models exactly what
//! the algorithms need:
//!
//! * where each sensor is ([`SensorInfo`]: highway, mile post, location),
//! * which sensors are *road neighbours* (consecutive mile posts plus
//!   interchange links) — used by the congestion simulator to diffuse events
//!   along roads rather than as free-space blobs,
//! * fast `sensors within r miles of x` lookups (an internal uniform-cell
//!   locator) — used by the `δd` neighbour searches of event retrieval.

use crate::{BoundingBox, Point};
use cps_core::fx::FxHashMap;
use cps_core::SensorId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a highway within the network.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct HighwayId(pub u16);

impl fmt::Display for HighwayId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "H{}", self.0)
    }
}

/// One highway: a named polyline carrying a contiguous run of sensors.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Highway {
    /// Identifier within the network.
    pub id: HighwayId,
    /// Display name, e.g. `"I-10 E"`.
    pub name: String,
    /// Geometry waypoints (at least two).
    pub waypoints: Vec<Point>,
    /// Sensors on this highway, ordered by mile post (raw id range:
    /// `first_sensor .. first_sensor + n_sensors`).
    pub first_sensor: u32,
    /// Number of sensors on this highway.
    pub n_sensors: u32,
}

impl Highway {
    /// Iterates over the sensor ids on this highway, in mile-post order.
    pub fn sensors(&self) -> impl Iterator<Item = SensorId> + '_ {
        (self.first_sensor..self.first_sensor + self.n_sensors).map(SensorId::new)
    }

    /// Total polyline length in miles.
    pub fn length_miles(&self) -> f64 {
        self.waypoints
            .windows(2)
            .map(|w| w[0].haversine_miles(w[1]))
            .sum()
    }
}

/// Static description of one sensor.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SensorInfo {
    /// The sensor's id (equal to its index in the network's sensor table).
    pub id: SensorId,
    /// Highway it is mounted on.
    pub highway: HighwayId,
    /// Distance along the highway, in miles.
    pub mile_post: f64,
    /// Geographic location.
    pub location: Point,
}

/// Immutable sensor topology graph, built once per deployment.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RoadNetwork {
    highways: Vec<Highway>,
    sensors: Vec<SensorInfo>,
    /// Road-graph adjacency per sensor (consecutive + interchange links).
    adjacency: Vec<Vec<SensorId>>,
    bbox: BoundingBox,
    locator: Locator,
}

/// Uniform-cell point locator for radius queries over sensor locations.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct Locator {
    cell_miles: f64,
    origin: Point,
    cols: u32,
    rows: u32,
    cells: FxHashMap<u32, Vec<SensorId>>,
}

impl Locator {
    fn build(sensors: &[SensorInfo], bbox: BoundingBox, cell_miles: f64) -> Self {
        let origin = Point::new(bbox.min_lat, bbox.min_lon);
        let width = origin.fast_miles(Point::new(bbox.min_lat, bbox.max_lon));
        let height = origin.fast_miles(Point::new(bbox.max_lat, bbox.min_lon));
        let cols = (width / cell_miles).ceil().max(1.0) as u32;
        let rows = (height / cell_miles).ceil().max(1.0) as u32;
        let mut cells: FxHashMap<u32, Vec<SensorId>> = FxHashMap::default();
        let mut this = Self {
            cell_miles,
            origin,
            cols,
            rows,
            cells: FxHashMap::default(),
        };
        for s in sensors {
            cells
                .entry(this.cell_of(s.location))
                .or_default()
                .push(s.id);
        }
        this.cells = cells;
        this
    }

    fn coords_of(&self, p: Point) -> (u32, u32) {
        let east = Point::new(self.origin.lat, p.lon);
        let x = self.origin.fast_miles(east) / self.cell_miles;
        let north = Point::new(p.lat, self.origin.lon);
        let y = self.origin.fast_miles(north) / self.cell_miles;
        (
            (x.max(0.0) as u32).min(self.cols.saturating_sub(1)),
            (y.max(0.0) as u32).min(self.rows.saturating_sub(1)),
        )
    }

    fn cell_of(&self, p: Point) -> u32 {
        let (cx, cy) = self.coords_of(p);
        cy * self.cols + cx
    }

    fn candidates_within(&self, p: Point, radius_miles: f64) -> Vec<SensorId> {
        let (cx, cy) = self.coords_of(p);
        let span = (radius_miles / self.cell_miles).ceil() as i64 + 1;
        let mut out = Vec::new();
        for dy in -span..=span {
            let y = cy as i64 + dy;
            if y < 0 || y >= self.rows as i64 {
                continue;
            }
            for dx in -span..=span {
                let x = cx as i64 + dx;
                if x < 0 || x >= self.cols as i64 {
                    continue;
                }
                if let Some(v) = self.cells.get(&((y as u32) * self.cols + x as u32)) {
                    out.extend_from_slice(v);
                }
            }
        }
        out
    }
}

impl RoadNetwork {
    /// Starts building a network.
    pub fn builder() -> RoadNetworkBuilder {
        RoadNetworkBuilder::default()
    }

    /// Number of sensors in the deployment.
    pub fn num_sensors(&self) -> usize {
        self.sensors.len()
    }

    /// All sensors, indexed by raw id.
    pub fn sensors(&self) -> &[SensorInfo] {
        &self.sensors
    }

    /// Looks up one sensor.
    ///
    /// # Panics
    /// Panics if the id is out of range — sensor ids are dense per network.
    pub fn sensor(&self, id: SensorId) -> &SensorInfo {
        &self.sensors[id.index()]
    }

    /// All highways.
    pub fn highways(&self) -> &[Highway] {
        &self.highways
    }

    /// Bounding box of all sensor locations.
    pub fn bbox(&self) -> BoundingBox {
        self.bbox
    }

    /// Straight-line distance between two sensors, in miles — the
    /// `distance(si, sj)` of Definition 1.
    #[inline]
    pub fn distance_miles(&self, a: SensorId, b: SensorId) -> f64 {
        self.sensors[a.index()]
            .location
            .fast_miles(self.sensors[b.index()].location)
    }

    /// Road-graph neighbours of a sensor (consecutive mile posts on the same
    /// highway plus interchange links to other highways).
    pub fn road_neighbors(&self, id: SensorId) -> &[SensorId] {
        &self.adjacency[id.index()]
    }

    /// All sensors within `radius_miles` of `p` (excluding none).
    pub fn sensors_within_miles(&self, p: Point, radius_miles: f64) -> Vec<SensorId> {
        let mut v: Vec<SensorId> = self
            .locator
            .candidates_within(p, radius_miles)
            .into_iter()
            .filter(|&s| self.sensors[s.index()].location.fast_miles(p) <= radius_miles)
            .collect();
        v.sort_unstable();
        v
    }

    /// All sensors within `radius_miles` of sensor `id`, excluding `id`
    /// itself — the `δd` neighbourhood of Definition 1.
    pub fn sensors_near(&self, id: SensorId, radius_miles: f64) -> Vec<SensorId> {
        let p = self.sensors[id.index()].location;
        self.sensors_within_miles(p, radius_miles)
            .into_iter()
            .filter(|&s| s != id)
            .collect()
    }

    /// All sensors whose location falls inside `bbox`, sorted by id.
    pub fn sensors_in_bbox(&self, bbox: &BoundingBox) -> Vec<SensorId> {
        self.sensors
            .iter()
            .filter(|s| bbox.contains(s.location))
            .map(|s| s.id)
            .collect()
    }
}

/// Builder for [`RoadNetwork`].
#[derive(Default)]
pub struct RoadNetworkBuilder {
    highways: Vec<(String, Vec<Point>, f64)>,
    interchange_radius_miles: f64,
}

impl RoadNetworkBuilder {
    /// Adds a highway given its polyline and the sensor spacing in miles.
    pub fn highway(
        mut self,
        name: impl Into<String>,
        waypoints: Vec<Point>,
        sensor_spacing_miles: f64,
    ) -> Self {
        assert!(waypoints.len() >= 2, "highway needs at least two waypoints");
        assert!(
            sensor_spacing_miles > 0.0,
            "sensor spacing must be positive"
        );
        self.highways
            .push((name.into(), waypoints, sensor_spacing_miles));
        self
    }

    /// Sets the radius within which sensors on *different* highways are
    /// linked as interchange neighbours (default 0.4 miles).
    pub fn interchange_radius(mut self, miles: f64) -> Self {
        self.interchange_radius_miles = miles;
        self
    }

    /// Places sensors, wires adjacency and freezes the network.
    pub fn build(self) -> RoadNetwork {
        let interchange_radius = if self.interchange_radius_miles > 0.0 {
            self.interchange_radius_miles
        } else {
            0.4
        };
        let mut highways = Vec::with_capacity(self.highways.len());
        let mut sensors: Vec<SensorInfo> = Vec::new();

        for (hidx, (name, waypoints, spacing)) in self.highways.into_iter().enumerate() {
            let hid = HighwayId(hidx as u16);
            let first_sensor = sensors.len() as u32;
            // Walk the polyline, dropping a sensor every `spacing` miles.
            let mut dist_into_segment = 0.0;
            let mut mile_post = 0.0;
            let mut next_at = 0.0;
            for seg in waypoints.windows(2) {
                let seg_len = seg[0].haversine_miles(seg[1]);
                if seg_len <= 0.0 {
                    continue;
                }
                while next_at <= mile_post + seg_len {
                    let t = (next_at - mile_post) / seg_len;
                    let loc = seg[0].lerp(seg[1], t);
                    sensors.push(SensorInfo {
                        id: SensorId::new(sensors.len() as u32),
                        highway: hid,
                        mile_post: next_at,
                        location: loc,
                    });
                    next_at += spacing;
                }
                mile_post += seg_len;
                dist_into_segment = 0.0;
            }
            let _ = dist_into_segment;
            let n_sensors = sensors.len() as u32 - first_sensor;
            highways.push(Highway {
                id: hid,
                name,
                waypoints,
                first_sensor,
                n_sensors,
            });
        }

        let bbox = BoundingBox::of_points(sensors.iter().map(|s| s.location));
        let locator = Locator::build(&sensors, bbox, 1.0);

        // Adjacency: consecutive sensors along each highway…
        let mut adjacency: Vec<Vec<SensorId>> = vec![Vec::new(); sensors.len()];
        for h in &highways {
            let ids: Vec<SensorId> = h.sensors().collect();
            for w in ids.windows(2) {
                adjacency[w[0].index()].push(w[1]);
                adjacency[w[1].index()].push(w[0]);
            }
        }
        // …plus interchange links between nearby sensors of different highways.
        let net_tmp = RoadNetwork {
            highways: highways.clone(),
            sensors: sensors.clone(),
            adjacency: vec![],
            bbox,
            locator: locator.clone(),
        };
        for s in &sensors {
            for other in net_tmp.sensors_within_miles(s.location, interchange_radius) {
                if other != s.id && sensors[other.index()].highway != s.highway {
                    adjacency[s.id.index()].push(other);
                }
            }
        }
        for adj in &mut adjacency {
            adj.sort_unstable();
            adj.dedup();
        }

        RoadNetwork {
            highways,
            sensors,
            adjacency,
            bbox,
            locator,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::LOS_ANGELES;

    fn two_highway_net() -> RoadNetwork {
        // An east-west highway and a north-south highway crossing near LA.
        let ew = vec![
            LOS_ANGELES.offset_miles(0.0, -10.0),
            LOS_ANGELES.offset_miles(0.0, 10.0),
        ];
        let ns = vec![
            LOS_ANGELES.offset_miles(-10.0, 0.0),
            LOS_ANGELES.offset_miles(10.0, 0.0),
        ];
        RoadNetwork::builder()
            .highway("I-10", ew, 0.5)
            .highway("I-110", ns, 0.5)
            .build()
    }

    #[test]
    fn sensors_are_dense_and_ordered() {
        let net = two_highway_net();
        assert!(net.num_sensors() > 70, "got {}", net.num_sensors());
        for (i, s) in net.sensors().iter().enumerate() {
            assert_eq!(s.id.index(), i);
        }
        // Mile posts increase along each highway.
        for h in net.highways() {
            let posts: Vec<f64> = h.sensors().map(|s| net.sensor(s).mile_post).collect();
            assert!(posts.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn consecutive_sensors_are_road_neighbors() {
        let net = two_highway_net();
        let h = &net.highways()[0];
        let ids: Vec<SensorId> = h.sensors().collect();
        assert!(net.road_neighbors(ids[1]).contains(&ids[0]));
        assert!(net.road_neighbors(ids[1]).contains(&ids[2]));
    }

    #[test]
    fn interchange_links_cross_highways() {
        let net = two_highway_net();
        // Some sensor near the crossing must have a neighbour on the other
        // highway.
        let crossing = net
            .sensors()
            .iter()
            .filter(|s| s.highway == HighwayId(0))
            .min_by(|a, b| {
                a.location
                    .fast_miles(LOS_ANGELES)
                    .partial_cmp(&b.location.fast_miles(LOS_ANGELES))
                    .unwrap()
            })
            .unwrap();
        let cross_links: Vec<_> = net
            .road_neighbors(crossing.id)
            .iter()
            .filter(|&&n| net.sensor(n).highway != crossing.highway)
            .collect();
        assert!(!cross_links.is_empty());
    }

    #[test]
    fn radius_query_matches_brute_force() {
        let net = two_highway_net();
        for &r in &[0.6, 1.5, 3.0] {
            let p = LOS_ANGELES.offset_miles(0.2, 0.3);
            let fast = net.sensors_within_miles(p, r);
            let brute: Vec<SensorId> = net
                .sensors()
                .iter()
                .filter(|s| s.location.fast_miles(p) <= r)
                .map(|s| s.id)
                .collect();
            assert_eq!(fast, brute, "radius {r}");
        }
    }

    #[test]
    fn sensors_near_excludes_self_and_respects_delta_d() {
        let net = two_highway_net();
        let id = SensorId::new(5);
        let near = net.sensors_near(id, 1.5);
        assert!(!near.contains(&id));
        for n in near {
            assert!(net.distance_miles(id, n) <= 1.5);
        }
    }

    #[test]
    fn bbox_contains_all_sensors() {
        let net = two_highway_net();
        let bbox = net.bbox();
        assert!(net.sensors().iter().all(|s| bbox.contains(s.location)));
        let all = net.sensors_in_bbox(&bbox);
        assert_eq!(all.len(), net.num_sensors());
    }

    #[test]
    fn highway_length_close_to_construction() {
        let net = two_highway_net();
        let len = net.highways()[0].length_miles();
        assert!((len - 20.0).abs() < 0.1, "got {len}");
    }
}
