//! Pre-defined spatial regions: the uniform grid and the region hierarchy.
//!
//! The paper's bottom-up baseline (and the red-zone filter of Algorithm 4)
//! aggregates severity over *pre-defined* regions — zipcode areas in the
//! original deployment. The essential property is only that the regions form
//! a fixed partition of the sensors whose boundaries do **not** follow the
//! atypical events; a uniform grid over the network bounding box preserves
//! exactly that mismatch and is what we use here.
//!
//! [`UniformGrid`] assigns each sensor to one cell; [`RegionHierarchy`]
//! stacks partitions of increasing coarseness (cell → district → city),
//! which is the spatial concept hierarchy both `cps-cube` and the red-zone
//! granularity ablation consume.

use crate::{BoundingBox, Point, RoadNetwork};
use cps_core::{RegionId, SensorId};
use serde::{Deserialize, Serialize};

/// A fixed partition of the deployment's sensors into named regions.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SensorPartition {
    /// Level name, e.g. `"cell-2mi"` or `"district"`.
    pub name: String,
    /// Region of each sensor, indexed by raw sensor id.
    sensor_region: Vec<RegionId>,
    /// Sensors of each region, indexed by raw region id.
    region_sensors: Vec<Vec<SensorId>>,
}

impl SensorPartition {
    /// Builds a partition from a per-sensor region assignment.
    ///
    /// Region ids must be dense in `0..num_regions`.
    pub fn new(name: impl Into<String>, sensor_region: Vec<RegionId>, num_regions: u32) -> Self {
        let mut region_sensors: Vec<Vec<SensorId>> = vec![Vec::new(); num_regions as usize];
        for (i, r) in sensor_region.iter().enumerate() {
            region_sensors[r.index()].push(SensorId::new(i as u32));
        }
        Self {
            name: name.into(),
            sensor_region,
            region_sensors,
        }
    }

    /// The single-region (whole-city) partition over `n` sensors.
    pub fn whole_city(n_sensors: u32) -> Self {
        Self::new("city", vec![RegionId::new(0); n_sensors as usize], 1)
    }

    /// Region containing `sensor`.
    #[inline]
    pub fn region_of(&self, sensor: SensorId) -> RegionId {
        self.sensor_region[sensor.index()]
    }

    /// Sensors inside `region`.
    pub fn sensors_in(&self, region: RegionId) -> &[SensorId] {
        &self.region_sensors[region.index()]
    }

    /// Number of regions (including empty ones).
    pub fn num_regions(&self) -> u32 {
        self.region_sensors.len() as u32
    }

    /// Number of sensors partitioned.
    pub fn num_sensors(&self) -> usize {
        self.sensor_region.len()
    }

    /// Iterates over `(region, sensors)` for non-empty regions.
    pub fn non_empty_regions(&self) -> impl Iterator<Item = (RegionId, &[SensorId])> {
        self.region_sensors
            .iter()
            .enumerate()
            .filter(|(_, v)| !v.is_empty())
            .map(|(i, v)| (RegionId::new(i as u32), v.as_slice()))
    }

    /// Checks this partition refines `coarser`: every region of `self` maps
    /// into exactly one region of `coarser`.
    pub fn refines(&self, coarser: &SensorPartition) -> bool {
        if self.num_sensors() != coarser.num_sensors() {
            return false;
        }
        self.non_empty_regions().all(|(_, sensors)| {
            let first = coarser.region_of(sensors[0]);
            sensors.iter().all(|&s| coarser.region_of(s) == first)
        })
    }
}

/// A uniform lat/lon grid over a network's bounding box.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct UniformGrid {
    bbox: BoundingBox,
    cell_miles: f64,
    cols: u32,
    rows: u32,
}

impl UniformGrid {
    /// Lays a grid of `cell_miles`-sized cells over the network bbox
    /// (inflated slightly so boundary sensors fall strictly inside).
    pub fn over(network: &RoadNetwork, cell_miles: f64) -> Self {
        assert!(cell_miles > 0.0, "cell size must be positive");
        let bbox = network.bbox().inflated_miles(0.01);
        let origin = Point::new(bbox.min_lat, bbox.min_lon);
        let width = origin.fast_miles(Point::new(bbox.min_lat, bbox.max_lon));
        let height = origin.fast_miles(Point::new(bbox.max_lat, bbox.min_lon));
        Self {
            bbox,
            cell_miles,
            cols: (width / cell_miles).ceil().max(1.0) as u32,
            rows: (height / cell_miles).ceil().max(1.0) as u32,
        }
    }

    /// Grid dimensions `(cols, rows)`.
    pub fn dims(&self) -> (u32, u32) {
        (self.cols, self.rows)
    }

    /// Total cell count.
    pub fn num_cells(&self) -> u32 {
        self.cols * self.rows
    }

    /// Cell size in miles.
    pub fn cell_miles(&self) -> f64 {
        self.cell_miles
    }

    /// Cell containing point `p` (clamped to the grid).
    pub fn cell_of(&self, p: Point) -> RegionId {
        let origin = Point::new(self.bbox.min_lat, self.bbox.min_lon);
        let x = origin.fast_miles(Point::new(self.bbox.min_lat, p.lon)) / self.cell_miles;
        let y = origin.fast_miles(Point::new(p.lat, self.bbox.min_lon)) / self.cell_miles;
        let cx = (x.max(0.0) as u32).min(self.cols - 1);
        let cy = (y.max(0.0) as u32).min(self.rows - 1);
        RegionId::new(cy * self.cols + cx)
    }

    /// Approximate bounding box of a cell.
    pub fn cell_bbox(&self, region: RegionId) -> BoundingBox {
        let cx = region.raw() % self.cols;
        let cy = region.raw() / self.cols;
        let origin = Point::new(self.bbox.min_lat, self.bbox.min_lon);
        let sw = origin.offset_miles(cy as f64 * self.cell_miles, cx as f64 * self.cell_miles);
        let ne = origin.offset_miles(
            (cy + 1) as f64 * self.cell_miles,
            (cx + 1) as f64 * self.cell_miles,
        );
        BoundingBox::new(sw.lat, sw.lon, ne.lat, ne.lon)
    }

    /// Builds the sensor partition induced by this grid.
    pub fn partition(&self, network: &RoadNetwork) -> SensorPartition {
        let assignment: Vec<RegionId> = network
            .sensors()
            .iter()
            .map(|s| self.cell_of(s.location))
            .collect();
        SensorPartition::new(
            format!("cell-{:.1}mi", self.cell_miles),
            assignment,
            self.num_cells(),
        )
    }

    /// Builds the partition of `k × k` cell blocks ("districts").
    pub fn coarsened_partition(&self, network: &RoadNetwork, k: u32) -> SensorPartition {
        assert!(k > 0);
        let dcols = self.cols.div_ceil(k);
        let drows = self.rows.div_ceil(k);
        let assignment: Vec<RegionId> = network
            .sensors()
            .iter()
            .map(|s| {
                let cell = self.cell_of(s.location).raw();
                let (cx, cy) = (cell % self.cols, cell / self.cols);
                RegionId::new((cy / k) * dcols + cx / k)
            })
            .collect();
        SensorPartition::new(format!("district-{k}x{k}"), assignment, dcols * drows)
    }
}

/// Spatial concept hierarchy: partitions from finest to coarsest.
///
/// Level 0 is the finest (grid cell), the last level is the whole city.
/// Every level must refine the next — validated at construction.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RegionHierarchy {
    levels: Vec<SensorPartition>,
}

impl RegionHierarchy {
    /// Builds a hierarchy from fine-to-coarse partitions.
    ///
    /// # Panics
    /// Panics if any level fails to refine the next-coarser level.
    pub fn new(levels: Vec<SensorPartition>) -> Self {
        assert!(!levels.is_empty(), "hierarchy needs at least one level");
        for pair in levels.windows(2) {
            assert!(
                pair[0].refines(&pair[1]),
                "partition '{}' does not refine '{}'",
                pair[0].name,
                pair[1].name
            );
        }
        Self { levels }
    }

    /// The standard 3-level hierarchy the experiments use: grid cell →
    /// `k × k` district → city.
    pub fn standard(network: &RoadNetwork, cell_miles: f64, district_k: u32) -> Self {
        let grid = UniformGrid::over(network, cell_miles);
        Self::new(vec![
            grid.partition(network),
            grid.coarsened_partition(network, district_k),
            SensorPartition::whole_city(network.num_sensors() as u32),
        ])
    }

    /// Number of levels.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// The partition at `level` (0 = finest).
    pub fn level(&self, level: usize) -> &SensorPartition {
        &self.levels[level]
    }

    /// The finest partition.
    pub fn finest(&self) -> &SensorPartition {
        &self.levels[0]
    }

    /// The coarsest partition.
    pub fn coarsest(&self) -> &SensorPartition {
        self.levels.last().expect("non-empty by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::LOS_ANGELES;

    fn net() -> RoadNetwork {
        RoadNetwork::builder()
            .highway(
                "I-10",
                vec![
                    LOS_ANGELES.offset_miles(0.0, -8.0),
                    LOS_ANGELES.offset_miles(0.0, 8.0),
                ],
                0.5,
            )
            .highway(
                "I-110",
                vec![
                    LOS_ANGELES.offset_miles(-8.0, 0.0),
                    LOS_ANGELES.offset_miles(8.0, 0.0),
                ],
                0.5,
            )
            .build()
    }

    #[test]
    fn every_sensor_gets_a_cell() {
        let net = net();
        let grid = UniformGrid::over(&net, 2.0);
        let part = grid.partition(&net);
        assert_eq!(part.num_sensors(), net.num_sensors());
        let covered: usize = part.non_empty_regions().map(|(_, s)| s.len()).sum();
        assert_eq!(covered, net.num_sensors());
    }

    #[test]
    fn partition_is_consistent_both_ways() {
        let net = net();
        let part = UniformGrid::over(&net, 2.0).partition(&net);
        for s in net.sensors() {
            let r = part.region_of(s.id);
            assert!(part.sensors_in(r).contains(&s.id));
        }
    }

    #[test]
    fn cell_of_is_inside_cell_bbox() {
        let net = net();
        let grid = UniformGrid::over(&net, 2.0);
        for s in net.sensors() {
            let cell = grid.cell_of(s.location);
            let bbox = grid.cell_bbox(cell).inflated_miles(0.05);
            assert!(bbox.contains(s.location), "sensor {} cell {}", s.id, cell);
        }
    }

    #[test]
    fn coarsening_refines() {
        let net = net();
        let grid = UniformGrid::over(&net, 1.0);
        let fine = grid.partition(&net);
        let coarse = grid.coarsened_partition(&net, 4);
        assert!(fine.refines(&coarse));
        assert!(coarse.num_regions() < fine.num_regions());
        assert!(coarse.refines(&SensorPartition::whole_city(net.num_sensors() as u32)));
    }

    #[test]
    fn standard_hierarchy_builds_and_validates() {
        let net = net();
        let h = RegionHierarchy::standard(&net, 2.0, 3);
        assert_eq!(h.num_levels(), 3);
        assert_eq!(h.coarsest().num_regions(), 1);
        assert!(h.finest().num_regions() > 1);
    }

    #[test]
    #[should_panic(expected = "does not refine")]
    fn hierarchy_rejects_non_refining_levels() {
        let net = net();
        let grid = UniformGrid::over(&net, 2.0);
        // Reversed order: coarse does not refine fine.
        RegionHierarchy::new(vec![
            grid.coarsened_partition(&net, 4),
            grid.partition(&net),
        ]);
    }

    #[test]
    fn whole_city_has_single_region() {
        let p = SensorPartition::whole_city(10);
        assert_eq!(p.num_regions(), 1);
        assert_eq!(p.sensors_in(RegionId::new(0)).len(), 10);
    }

    #[test]
    fn finer_grid_means_more_regions() {
        let net = net();
        let coarse = UniformGrid::over(&net, 4.0);
        let fine = UniformGrid::over(&net, 1.0);
        assert!(fine.num_cells() > coarse.num_cells());
        let (c, r) = fine.dims();
        assert_eq!(fine.num_cells(), c * r);
    }
}
