//! An STR bulk-loaded R-tree.
//!
//! The related-work section of the paper contrasts the atypical-cluster
//! model with R-tree based spatial OLAP (Papadias et al.). This tree is the
//! shared substrate: `cps-index` builds its aggregate R-tree baseline on the
//! same Sort-Tile-Recursive packing, and the geometry layer uses it for
//! box/radius queries over arbitrary payloads.

use crate::{BoundingBox, Point};

const NODE_CAPACITY: usize = 16;

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        /// Indices into the item table.
        entries: Vec<u32>,
        bbox: BoundingBox,
    },
    Inner {
        children: Vec<Node>,
        bbox: BoundingBox,
    },
}

impl Node {
    fn bbox(&self) -> &BoundingBox {
        match self {
            Node::Leaf { bbox, .. } | Node::Inner { bbox, .. } => bbox,
        }
    }
}

/// Immutable R-tree over items with a point or box footprint.
#[derive(Debug, Clone)]
pub struct RTree<T> {
    items: Vec<(BoundingBox, T)>,
    root: Option<Node>,
}

impl<T> RTree<T> {
    /// Bulk-loads the tree with Sort-Tile-Recursive packing.
    pub fn bulk_load(items: Vec<(BoundingBox, T)>) -> Self {
        if items.is_empty() {
            return Self { items, root: None };
        }
        let mut idx: Vec<u32> = (0..items.len() as u32).collect();
        let root = Self::pack_leaves(&items, &mut idx);
        Self {
            items,
            root: Some(root),
        }
    }

    /// Convenience constructor for point payloads.
    pub fn from_points(points: Vec<(Point, T)>) -> Self {
        Self::bulk_load(
            points
                .into_iter()
                .map(|(p, t)| (BoundingBox::of_point(p), t))
                .collect(),
        )
    }

    fn pack_leaves(items: &[(BoundingBox, T)], idx: &mut [u32]) -> Node {
        // STR: sort by x (lon centre), slice into vertical runs, sort each by
        // y (lat centre), then chop into capacity-sized leaves.
        let n = idx.len();
        let n_leaves = n.div_ceil(NODE_CAPACITY);
        let n_strips = (n_leaves as f64).sqrt().ceil() as usize;
        let strip_len = n.div_ceil(n_strips);

        idx.sort_by(|&a, &b| {
            let ca = items[a as usize].0.center().lon;
            let cb = items[b as usize].0.center().lon;
            ca.partial_cmp(&cb).unwrap()
        });

        let mut leaves: Vec<Node> = Vec::with_capacity(n_leaves);
        for strip in idx.chunks_mut(strip_len.max(1)) {
            strip.sort_by(|&a, &b| {
                let ca = items[a as usize].0.center().lat;
                let cb = items[b as usize].0.center().lat;
                ca.partial_cmp(&cb).unwrap()
            });
            for chunk in strip.chunks(NODE_CAPACITY) {
                let bbox = chunk
                    .iter()
                    .fold(BoundingBox::EMPTY, |b, &i| b.union(&items[i as usize].0));
                leaves.push(Node::Leaf {
                    entries: chunk.to_vec(),
                    bbox,
                });
            }
        }
        Self::pack_upward(leaves)
    }

    fn pack_upward(mut nodes: Vec<Node>) -> Node {
        while nodes.len() > 1 {
            let mut next = Vec::with_capacity(nodes.len().div_ceil(NODE_CAPACITY));
            // Nodes are already in STR order; group consecutively.
            let mut iter = nodes.into_iter().peekable();
            while iter.peek().is_some() {
                let children: Vec<Node> = iter.by_ref().take(NODE_CAPACITY).collect();
                let bbox = children
                    .iter()
                    .fold(BoundingBox::EMPTY, |b, c| b.union(c.bbox()));
                next.push(Node::Inner { children, bbox });
            }
            nodes = next;
        }
        nodes.into_iter().next().expect("at least one node")
    }

    /// Number of items in the tree.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// All items whose box intersects `query`, in arbitrary order.
    pub fn query_box<'a>(&'a self, query: &BoundingBox) -> Vec<&'a T> {
        let mut out = Vec::new();
        if let Some(root) = &self.root {
            self.query_node(root, query, &mut out);
        }
        out
    }

    fn query_node<'a>(&'a self, node: &'a Node, query: &BoundingBox, out: &mut Vec<&'a T>) {
        match node {
            Node::Leaf { entries, bbox } => {
                if bbox.intersects(query) {
                    for &i in entries {
                        let (b, t) = &self.items[i as usize];
                        if b.intersects(query) {
                            out.push(t);
                        }
                    }
                }
            }
            Node::Inner { children, bbox } => {
                if bbox.intersects(query) {
                    for c in children {
                        self.query_node(c, query, out);
                    }
                }
            }
        }
    }

    /// All items within `radius_miles` of `p` (item footprint centre used
    /// for the distance test).
    pub fn query_radius(&self, p: Point, radius_miles: f64) -> Vec<&T> {
        let probe = BoundingBox::of_point(p).inflated_miles(radius_miles * 1.05);
        let mut out = Vec::new();
        if let Some(root) = &self.root {
            self.query_radius_node(root, &probe, p, radius_miles, &mut out);
        }
        out
    }

    fn query_radius_node<'a>(
        &'a self,
        node: &'a Node,
        probe: &BoundingBox,
        p: Point,
        radius_miles: f64,
        out: &mut Vec<&'a T>,
    ) {
        match node {
            Node::Leaf { entries, bbox } => {
                if bbox.intersects(probe) {
                    for &i in entries {
                        let (b, t) = &self.items[i as usize];
                        if b.center().fast_miles(p) <= radius_miles {
                            out.push(t);
                        }
                    }
                }
            }
            Node::Inner { children, bbox } => {
                if bbox.intersects(probe) {
                    for c in children {
                        self.query_radius_node(c, probe, p, radius_miles, out);
                    }
                }
            }
        }
    }

    /// Depth of the tree (0 for empty).
    pub fn depth(&self) -> usize {
        fn d(node: &Node) -> usize {
            match node {
                Node::Leaf { .. } => 1,
                Node::Inner { children, .. } => 1 + children.iter().map(d).max().unwrap_or(0),
            }
        }
        self.root.as_ref().map_or(0, d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::LOS_ANGELES;
    use proptest::prelude::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_points(n: usize, seed: u64) -> Vec<(Point, usize)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let p = LOS_ANGELES
                    .offset_miles(rng.gen_range(-20.0..20.0), rng.gen_range(-20.0..20.0));
                (p, i)
            })
            .collect()
    }

    #[test]
    fn empty_tree() {
        let t: RTree<u32> = RTree::bulk_load(vec![]);
        assert!(t.is_empty());
        assert_eq!(t.depth(), 0);
        assert!(t
            .query_box(&BoundingBox::new(-90.0, -180.0, 90.0, 180.0))
            .is_empty());
    }

    #[test]
    fn box_query_matches_brute_force() {
        let pts = random_points(500, 7);
        let tree = RTree::from_points(pts.clone());
        let q = BoundingBox::of_point(LOS_ANGELES).inflated_miles(8.0);
        let mut got: Vec<usize> = tree.query_box(&q).into_iter().copied().collect();
        got.sort_unstable();
        let mut want: Vec<usize> = pts
            .iter()
            .filter(|(p, _)| q.contains(*p))
            .map(|&(_, i)| i)
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
        assert!(!got.is_empty());
    }

    #[test]
    fn radius_query_matches_brute_force() {
        let pts = random_points(400, 11);
        let tree = RTree::from_points(pts.clone());
        for &r in &[1.0, 5.0, 12.0] {
            let mut got: Vec<usize> = tree
                .query_radius(LOS_ANGELES, r)
                .into_iter()
                .copied()
                .collect();
            got.sort_unstable();
            let mut want: Vec<usize> = pts
                .iter()
                .filter(|(p, _)| p.fast_miles(LOS_ANGELES) <= r)
                .map(|&(_, i)| i)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want, "radius {r}");
        }
    }

    #[test]
    fn tree_is_balanced_and_shallow() {
        let tree = RTree::from_points(random_points(2000, 3));
        // 2000 items at fanout 16: depth ⌈log16(125)⌉ + 1 = 3.
        assert!(tree.depth() <= 4, "depth {}", tree.depth());
        assert_eq!(tree.len(), 2000);
    }

    proptest! {
        #[test]
        fn prop_query_complete(seed in 0u64..50, dn in -15.0f64..15.0, de in -15.0f64..15.0, r in 0.5f64..10.0) {
            let pts = random_points(200, seed);
            let tree = RTree::from_points(pts.clone());
            let center = LOS_ANGELES.offset_miles(dn, de);
            let mut got: Vec<usize> = tree.query_radius(center, r).into_iter().copied().collect();
            got.sort_unstable();
            let mut want: Vec<usize> = pts.iter()
                .filter(|(p, _)| p.fast_miles(center) <= r)
                .map(|&(_, i)| i)
                .collect();
            want.sort_unstable();
            prop_assert_eq!(got, want);
        }
    }
}
