//! Sharded result cache over [`ReadView`](crate::view::ReadView) queries,
//! with epoch-based invalidation.
//!
//! ## Validity stamps
//!
//! Every entry records how long its value stays correct:
//!
//! - [`Stamp::Immutable`] — the query range was fully sealed (every day in
//!   `persisted_days`) when the entry was computed. Sealed day buckets and
//!   their retained `F` vectors never change again, so the entry is valid
//!   forever. This is where the hit rate comes from: operators hammer
//!   recent *historical* ranges (the dashboard's trends panel) whose
//!   answers are stable.
//! - [`Stamp::Epoch(e)`] — the range overlapped live days at computation
//!   time; the entry is valid only while the current publication epoch is
//!   still `e`. Any publication — a finalized cluster, a window advance,
//!   or a day seal — invalidates it, so a reader can never observe a
//!   result older than the snapshot it pins.
//!
//! A lookup that finds an entry with a dead stamp removes it and counts a
//! *stale* (distinct from a plain miss) — the hit/miss/stale triple is the
//! operator's signal for tuning the publication cadence against the cache
//! size.

use cps_core::fx::FxHashMap;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Which query produced a cached value; part of the key.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum QueryKind {
    /// [`ReadView::red_regions`](crate::view::ReadView::red_regions).
    RedRegions,
    /// [`ReadView::query_guided`](crate::view::ReadView::query_guided).
    Guided,
    /// [`ReadView::significant_clusters`](crate::view::ReadView::significant_clusters).
    Significant,
    /// [`ReadView::micro_clusters_for_day`](crate::view::ReadView::micro_clusters_for_day).
    MicrosForDay,
}

/// Cache key: the query kind plus its whole-day range. Thresholds and the
/// region partition are service-global (fixed at start), so they live in
/// the [`ServeContext`](crate::view::ServeContext) rather than the key.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct QueryKey {
    /// The query kind.
    pub kind: QueryKind,
    /// First day of the range.
    pub first_day: u32,
    /// Days in the range (1 for [`QueryKind::MicrosForDay`]).
    pub n_days: u32,
}

/// Validity stamp of one cache entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stamp {
    /// Computed over a fully-sealed range: valid forever.
    Immutable,
    /// Valid only while the publication epoch equals the payload.
    Epoch(u64),
}

impl Stamp {
    fn valid_at(self, epoch: u64) -> bool {
        match self {
            Stamp::Immutable => true,
            Stamp::Epoch(e) => e == epoch,
        }
    }
}

struct Entry<V> {
    value: V,
    stamp: Stamp,
}

/// One cache shard: an independently locked map.
type Shard<V> = Mutex<FxHashMap<QueryKey, Entry<V>>>;

/// Hit/miss/stale counters (point-in-time copy).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from a valid entry.
    pub hits: u64,
    /// Lookups with no entry present.
    pub misses: u64,
    /// Lookups that found an entry invalidated by a newer epoch (the
    /// entry is evicted on the spot).
    pub stale: u64,
    /// Entries currently resident.
    pub entries: u64,
    /// Entries evicted to respect the per-shard capacity.
    pub evictions: u64,
}

impl CacheStats {
    /// Hits over all lookups (0.0 when none happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses + self.stale;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A sharded query-result cache. Shards are independent mutexes picked by
/// key hash, so concurrent readers on different ranges rarely contend;
/// the value type is an `Arc`-style cheap clone chosen by the caller.
pub struct ResultCache<V> {
    shards: Box<[Shard<V>]>,
    capacity_per_shard: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    stale: AtomicU64,
    evictions: AtomicU64,
}

impl<V: Clone> ResultCache<V> {
    /// A cache of `shards` independent maps, `capacity` entries total.
    pub fn new(shards: usize, capacity: usize) -> Self {
        let shards = shards.max(1);
        let capacity_per_shard = (capacity / shards).max(1);
        Self {
            shards: (0..shards)
                .map(|_| Mutex::new(FxHashMap::default()))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            capacity_per_shard,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stale: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, key: &QueryKey) -> usize {
        // A cheap deterministic spread: kind ⊕ day-range, golden-ratio
        // mixed. The key space is small and structured, so multiplication
        // beats relying on the low bits.
        let raw = (key.first_day as u64) << 32 | (key.n_days as u64) << 3 | key.kind as u64;
        (raw.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % self.shards.len()
    }

    /// Looks up `key`, treating entries whose stamp died before `epoch`
    /// as absent (and evicting them).
    pub fn get(&self, key: &QueryKey, epoch: u64) -> Option<V> {
        let mut shard = self.shards[self.shard_of(key)].lock();
        match shard.get(key) {
            Some(entry) if entry.stamp.valid_at(epoch) => {
                self.hits.fetch_add(1, Relaxed);
                Some(entry.value.clone())
            }
            Some(_) => {
                shard.remove(key);
                self.stale.fetch_add(1, Relaxed);
                None
            }
            None => {
                self.misses.fetch_add(1, Relaxed);
                None
            }
        }
    }

    /// Inserts a computed value. When the shard is full, dead-stamped
    /// entries are evicted first; if none are dead, an arbitrary resident
    /// entry makes room (the map is small and rebuilt cheaply — an LRU
    /// chain is not worth its locking overhead here).
    pub fn insert(&self, key: QueryKey, value: V, stamp: Stamp, epoch: u64) {
        let mut shard = self.shards[self.shard_of(&key)].lock();
        if shard.len() >= self.capacity_per_shard && !shard.contains_key(&key) {
            let before = shard.len();
            shard.retain(|_, e| e.stamp.valid_at(epoch));
            if shard.len() >= self.capacity_per_shard {
                if let Some(&victim) = shard.keys().next() {
                    shard.remove(&victim);
                }
            }
            self.evictions
                .fetch_add((before - shard.len()) as u64, Relaxed);
        }
        shard.insert(key, Entry { value, stamp });
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Relaxed),
            misses: self.misses.load(Relaxed),
            stale: self.stale.load(Relaxed),
            entries: self.shards.iter().map(|s| s.lock().len() as u64).sum(),
            evictions: self.evictions.load(Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(first_day: u32, n_days: u32) -> QueryKey {
        QueryKey {
            kind: QueryKind::RedRegions,
            first_day,
            n_days,
        }
    }

    #[test]
    fn immutable_entries_survive_epoch_changes() {
        let cache: ResultCache<u64> = ResultCache::new(4, 64);
        cache.insert(key(0, 3), 42, Stamp::Immutable, 1);
        assert_eq!(cache.get(&key(0, 3), 1), Some(42));
        assert_eq!(cache.get(&key(0, 3), 999), Some(42));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.stale), (2, 0, 0));
        assert!(stats.hit_rate() > 0.99);
    }

    #[test]
    fn epoch_entries_go_stale_on_publication() {
        let cache: ResultCache<u64> = ResultCache::new(1, 8);
        cache.insert(key(5, 1), 7, Stamp::Epoch(10), 10);
        assert_eq!(cache.get(&key(5, 1), 10), Some(7));
        assert_eq!(cache.get(&key(5, 1), 11), None, "newer epoch invalidates");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.stale), (1, 1));
        // The stale lookup evicted the entry: the next one is a plain miss.
        assert_eq!(cache.get(&key(5, 1), 11), None);
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn capacity_evicts_dead_entries_first() {
        let cache: ResultCache<u64> = ResultCache::new(1, 2);
        cache.insert(key(0, 1), 1, Stamp::Epoch(1), 1);
        cache.insert(key(1, 1), 2, Stamp::Immutable, 1);
        // Shard full; inserting at epoch 2 sweeps the dead epoch-1 entry.
        cache.insert(key(2, 1), 3, Stamp::Immutable, 2);
        assert_eq!(cache.get(&key(1, 1), 2), Some(2), "live entry kept");
        assert_eq!(cache.get(&key(2, 1), 2), Some(3));
        assert!(cache.stats().evictions >= 1);
        assert!(cache.stats().entries <= 2);
    }

    #[test]
    fn distinct_kinds_do_not_collide() {
        let cache: ResultCache<u64> = ResultCache::new(2, 16);
        let guided = QueryKey {
            kind: QueryKind::Guided,
            first_day: 0,
            n_days: 1,
        };
        cache.insert(key(0, 1), 1, Stamp::Immutable, 0);
        cache.insert(guided, 2, Stamp::Immutable, 0);
        assert_eq!(cache.get(&key(0, 1), 0), Some(1));
        assert_eq!(cache.get(&guided, 0), Some(2));
    }
}
