//! Lock-free snapshot publication: a single cell holding the current
//! immutable snapshot, replaced atomically by the writer and pinned by
//! readers without ever blocking either side.
//!
//! ## Why hand-rolled hazard pointers
//!
//! The classic tool here is `arc-swap` (or `crossbeam-epoch`), neither of
//! which exists among the vendored third-party stand-ins — so the cell
//! implements the minimal hazard-pointer protocol those crates build on:
//!
//! - The current snapshot lives behind an [`AtomicPtr`] obtained from
//!   [`Arc::into_raw`], so the cell owns one strong count per published
//!   value.
//! - A reader *pins* the snapshot by claiming one of a fixed array of
//!   hazard slots with the candidate pointer, then re-loading the current
//!   pointer. If it still matches, the value provably cannot have been
//!   freed (the writer scans hazards only *after* swapping the pointer,
//!   so either the writer sees the hazard, or the reader's re-load sees
//!   the new pointer and retries). Only then is the strong count bumped
//!   and the slot released — the slot is held for nanoseconds.
//! - The writer swaps in the new pointer, pushes the old one onto a
//!   retired list, and frees every retired pointer no hazard slot
//!   references. Retirement is behind a mutex, but only writers take it —
//!   the merger publishes; readers never touch it.
//!
//! ABA is benign: validation compares the *pointer* the reader already
//! stored as its hazard, and a pointer can only be recycled after it was
//! freed, which the protocol prevents while the hazard is visible. All
//! operations use `SeqCst`: publication is rare (per finalized cluster at
//! the default cadence) and reads are two loads plus one CAS, so the
//! fences are noise next to the queries they protect.

use parking_lot::Mutex;
use std::ptr;
use std::sync::atomic::{AtomicPtr, Ordering::SeqCst};
use std::sync::Arc;

/// Number of hazard slots — the maximum number of readers simultaneously
/// *inside* a pin operation (not holding snapshots; those are plain
/// `Arc`s). Excess readers spin briefly until a slot frees.
const HAZARD_SLOTS: usize = 64;

/// A lock-free publication cell: the writer [`publish`](SnapshotCell::publish)es
/// immutable values, readers [`load`](SnapshotCell::load) the current one
/// as a pinned `Arc` without blocking the writer or each other.
pub struct SnapshotCell<T> {
    current: AtomicPtr<T>,
    hazards: Box<[AtomicPtr<T>]>,
    /// Previously-published values still possibly pinned by an in-flight
    /// reader; scanned and drained on every publish (writer-side only).
    retired: Mutex<Vec<*const T>>,
}

// SAFETY: the cell hands out `Arc<T>` across threads and the raw pointers
// it stores are only ever dereferenced through the hazard protocol above.
unsafe impl<T: Send + Sync> Send for SnapshotCell<T> {}
unsafe impl<T: Send + Sync> Sync for SnapshotCell<T> {}

impl<T> SnapshotCell<T> {
    /// A cell holding `initial`; the current pointer is never null.
    pub fn new(initial: T) -> Self {
        let hazards: Vec<AtomicPtr<T>> = (0..HAZARD_SLOTS)
            .map(|_| AtomicPtr::new(ptr::null_mut()))
            .collect();
        Self {
            current: AtomicPtr::new(Arc::into_raw(Arc::new(initial)) as *mut T),
            hazards: hazards.into_boxed_slice(),
            retired: Mutex::new(Vec::new()),
        }
    }

    /// Pins and returns the current snapshot. Wait-free for the writer,
    /// lock-free for readers (a reader retries only if a publication or a
    /// slot collision races it).
    pub fn load(&self) -> Arc<T> {
        loop {
            let candidate = self.current.load(SeqCst);
            // Claim a free slot with the candidate already in it, so the
            // claim and the hazard announcement are one atomic step.
            let Some(slot) = self.try_claim(candidate) else {
                std::hint::spin_loop();
                continue;
            };
            let mut hazard = candidate;
            loop {
                let now = self.current.load(SeqCst);
                if now == hazard {
                    // The writer cannot have freed `hazard`: it was the
                    // current pointer after our hazard became visible.
                    // SAFETY: `hazard` came from `Arc::into_raw` and is
                    // protected by the validated hazard slot.
                    let pinned = unsafe {
                        Arc::increment_strong_count(hazard);
                        Arc::from_raw(hazard)
                    };
                    self.hazards[slot].store(ptr::null_mut(), SeqCst);
                    return pinned;
                }
                // A publication raced us; chase the new pointer in the
                // slot we already own.
                hazard = now;
                self.hazards[slot].store(hazard, SeqCst);
            }
        }
    }

    /// Publishes a new snapshot and frees every retired predecessor no
    /// in-flight reader still pins.
    pub fn publish(&self, value: T) {
        let fresh = Arc::into_raw(Arc::new(value)) as *mut T;
        let old = self.current.swap(fresh, SeqCst);
        let mut retired = self.retired.lock();
        retired.push(old as *const T);
        retired.retain(|&p| {
            if self.is_hazard(p) {
                true
            } else {
                // SAFETY: `p` came from `Arc::into_raw`, was swapped out
                // of `current`, and no hazard slot references it — no
                // reader can still be between claim and pin on it (such a
                // reader's validation re-load cannot return `p` again).
                unsafe { drop(Arc::from_raw(p)) };
                false
            }
        });
    }

    /// CAS-claims a free hazard slot with `p` already published in it.
    fn try_claim(&self, p: *mut T) -> Option<usize> {
        for (i, slot) in self.hazards.iter().enumerate() {
            if slot
                .compare_exchange(ptr::null_mut(), p, SeqCst, SeqCst)
                .is_ok()
            {
                return Some(i);
            }
        }
        None
    }

    fn is_hazard(&self, p: *const T) -> bool {
        self.hazards
            .iter()
            .any(|slot| ptr::eq(slot.load(SeqCst), p))
    }

    /// Retired-but-unfreed snapshot count (writer-side observability).
    pub fn retired_len(&self) -> usize {
        self.retired.lock().len()
    }
}

impl<T> Drop for SnapshotCell<T> {
    fn drop(&mut self) {
        // `&mut self`: no reader can be mid-pin, so every pointer the
        // cell still owns (current + retired) drops its strong count.
        // SAFETY: each pointer was produced by `Arc::into_raw` exactly
        // once and freed nowhere else.
        unsafe {
            drop(Arc::from_raw(self.current.load(SeqCst)));
            for p in self.retired.get_mut().drain(..) {
                drop(Arc::from_raw(p));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    /// Payload whose drops are counted, to prove no leak and no double
    /// free across publication churn.
    struct Counted {
        value: u64,
        drops: Arc<AtomicUsize>,
    }

    impl Drop for Counted {
        fn drop(&mut self) {
            self.drops.fetch_add(1, SeqCst);
        }
    }

    #[test]
    fn load_sees_latest_publish() {
        let drops = Arc::new(AtomicUsize::new(0));
        let cell = SnapshotCell::new(Counted {
            value: 0,
            drops: drops.clone(),
        });
        assert_eq!(cell.load().value, 0);
        for v in 1..=10 {
            cell.publish(Counted {
                value: v,
                drops: drops.clone(),
            });
            assert_eq!(cell.load().value, v);
        }
        // No reader holds a pin, so every predecessor was freed.
        assert_eq!(drops.load(SeqCst), 10);
        drop(cell);
        assert_eq!(drops.load(SeqCst), 11);
    }

    #[test]
    fn pinned_snapshot_survives_publication() {
        let drops = Arc::new(AtomicUsize::new(0));
        let cell = SnapshotCell::new(Counted {
            value: 7,
            drops: drops.clone(),
        });
        let pinned = cell.load();
        for v in 0..5 {
            cell.publish(Counted {
                value: v,
                drops: drops.clone(),
            });
        }
        assert_eq!(pinned.value, 7, "a pin is an immutable point-in-time view");
        assert_eq!(drops.load(SeqCst), 4, "only unpinned predecessors freed");
        drop(pinned);
        drop(cell);
        assert_eq!(drops.load(SeqCst), 6, "everything freed exactly once");
    }

    #[test]
    fn concurrent_readers_never_tear_or_leak() {
        const PUBLISHES: u64 = 2_000;
        const READERS: usize = 4;
        let drops = Arc::new(AtomicUsize::new(0));
        let cell = Arc::new(SnapshotCell::new(Counted {
            value: 0,
            drops: drops.clone(),
        }));
        let stop = Arc::new(AtomicUsize::new(0));
        let readers: Vec<_> = (0..READERS)
            .map(|_| {
                let cell = cell.clone();
                let stop = stop.clone();
                std::thread::spawn(move || {
                    let mut last = 0u64;
                    let mut reads = 0u64;
                    // `reads == 0` keeps a late-scheduled reader (single
                    // core: the writer may finish first) reading at least
                    // once, so the monotonicity assertion always runs.
                    while stop.load(SeqCst) == 0 || reads == 0 {
                        let snap = cell.load();
                        assert!(snap.value >= last, "publication order is monotone");
                        last = snap.value;
                        reads += 1;
                    }
                    reads
                })
            })
            .collect();
        for v in 1..=PUBLISHES {
            cell.publish(Counted {
                value: v,
                drops: drops.clone(),
            });
        }
        stop.store(1, SeqCst);
        for r in readers {
            assert!(r.join().unwrap() > 0);
        }
        drop(cell);
        assert_eq!(
            drops.load(SeqCst),
            PUBLISHES as usize + 1,
            "every published snapshot dropped exactly once"
        );
    }
}
