//! Epoch-stamped snapshots of the monitor's live query state and the
//! [`ReadView`] that answers the full query surface against one pinned
//! epoch.
//!
//! The merger publishes a [`LiveSnapshot`] through the
//! [`SnapshotCell`](crate::epoch::SnapshotCell) whenever its live state
//! changes (at a configurable cadence); the snapshot's containers are
//! copy-on-write `Arc`s shared with the live state, so a publication is a
//! handful of pointer clones — no cluster is copied. A [`ReadView`] pins
//! one snapshot: every query it answers sees the same epoch, so a
//! multi-step drill-down (red regions, then guided integration, then a
//! day's micro-clusters) is internally consistent even while ingest keeps
//! mutating the live state behind it.

use crate::QUERY_ID_BASE;
use atypical::integrate::{integrate_aligned, TimeAlignment};
use atypical::significant::significance_threshold;
use atypical::store::{ForestLevel, ForestStore};
use atypical::AtypicalCluster;
use cps_core::ids::ClusterIdGen;
use cps_core::{Params, RegionId, Severity, TimeRange, WindowSpec};
use cps_geo::grid::SensorPartition;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// One immutable, epoch-stamped publication of the monitor's query-side
/// state. Day maps hold `Arc`s shared copy-on-write with the live state.
#[derive(Clone)]
pub struct LiveSnapshot {
    /// Publication sequence number, strictly increasing.
    pub epoch: u64,
    /// Day-seal sequence number: bumped once per day evicted to the
    /// snapshot store. Cache entries over not-fully-sealed ranges key
    /// their validity to `epoch`; fully-sealed ranges never change.
    pub seal_epoch: u64,
    /// Live (not yet persisted) micro-clusters per day.
    pub micros_by_day: BTreeMap<u32, Arc<Vec<AtypicalCluster>>>,
    /// Per-day per-region severity totals; retained after day eviction.
    pub region_f_by_day: BTreeMap<u32, Arc<Vec<Severity>>>,
    /// The live macro-cluster fixpoint set.
    pub macros: Arc<Vec<AtypicalCluster>>,
    /// Days whose micro-clusters moved to the snapshot store.
    pub persisted_days: Arc<BTreeSet<u32>>,
}

impl LiveSnapshot {
    /// An empty snapshot at epoch 0 (pre-ingest).
    pub fn empty() -> Self {
        Self {
            epoch: 0,
            seal_epoch: 0,
            micros_by_day: BTreeMap::new(),
            region_f_by_day: BTreeMap::new(),
            macros: Arc::new(Vec::new()),
            persisted_days: Arc::new(BTreeSet::new()),
        }
    }

    /// Whether every day of `[first_day, first_day + n_days)` is sealed —
    /// its data can no longer change under any future epoch.
    pub fn range_sealed(&self, first_day: u32, n_days: u32) -> bool {
        (first_day..first_day.saturating_add(n_days)).all(|day| self.persisted_days.contains(&day))
    }
}

/// Immutable query context shared by every [`ReadView`] of one service:
/// the deployment's partition, parameters, and snapshot store.
pub struct ServeContext {
    /// Red-zone region partition of the deployment.
    pub partition: Arc<SensorPartition>,
    /// Extraction/integration parameters.
    pub params: Params,
    /// Time discretization.
    pub spec: WindowSpec,
    /// Deployment sensor count (query-scale significance threshold).
    pub num_sensors: u32,
    /// Persisted day buckets; `None` when persistence is off.
    pub store: Option<Arc<ForestStore>>,
}

/// Outcome of one red-zone-guided window query (Algorithm 4 over the
/// live + persisted day levels).
#[derive(Clone, Debug, PartialEq)]
pub struct GuidedQuery {
    /// Window range of the query.
    pub range: TimeRange,
    /// Macro-clusters integrated from the guided inputs.
    pub macros: Vec<AtypicalCluster>,
    /// Significance threshold at the query scale (Definition 5).
    pub threshold: Severity,
    /// Regions marked red by the incrementally maintained `F` values.
    pub num_red_regions: usize,
    /// Micro-clusters in the query range before guidance.
    pub candidate_clusters: usize,
    /// Micro-clusters that survived the red-zone filter.
    pub input_clusters: usize,
}

impl GuidedQuery {
    /// The macro-clusters significant at the query scale.
    pub fn significant(&self) -> Vec<&AtypicalCluster> {
        self.macros
            .iter()
            .filter(|c| c.severity() > self.threshold)
            .collect()
    }
}

/// A pinned-epoch view over one [`LiveSnapshot`]: the monitor's whole
/// query surface, answered without touching the merger's mutex. `Clone`
/// is cheap (two `Arc`s) and every clone pins the same epoch.
#[derive(Clone)]
pub struct ReadView {
    snapshot: Arc<LiveSnapshot>,
    ctx: Arc<ServeContext>,
}

impl ReadView {
    /// Wraps a pinned snapshot with its query context.
    pub fn new(snapshot: Arc<LiveSnapshot>, ctx: Arc<ServeContext>) -> Self {
        Self { snapshot, ctx }
    }

    /// The pinned publication epoch.
    pub fn epoch(&self) -> u64 {
        self.snapshot.epoch
    }

    /// The pinned day-seal epoch.
    pub fn seal_epoch(&self) -> u64 {
        self.snapshot.seal_epoch
    }

    /// The pinned snapshot itself.
    pub fn snapshot(&self) -> &LiveSnapshot {
        &self.snapshot
    }

    /// The live macro-clusters (Algorithm 3 fixpoint over every finalized
    /// micro-cluster as of the pinned epoch).
    pub fn live_macro_clusters(&self) -> Arc<Vec<AtypicalCluster>> {
        self.snapshot.macros.clone()
    }

    /// Every live (not yet persisted) micro-cluster at the pinned epoch.
    pub fn live_micro_clusters(&self) -> Vec<AtypicalCluster> {
        self.snapshot
            .micros_by_day
            .values()
            .flat_map(|v| v.iter().cloned())
            .collect()
    }

    /// One day's micro-clusters: from the pinned snapshot when the day is
    /// still live, from the store once sealed (sealed buckets are
    /// immutable, so the answer is epoch-independent).
    pub fn micro_clusters_for_day(&self, day: u32) -> cps_core::Result<Arc<Vec<AtypicalCluster>>> {
        if let Some(micros) = self.snapshot.micros_by_day.get(&day) {
            return Ok(micros.clone());
        }
        match &self.ctx.store {
            Some(store) => Ok(Arc::new(
                store.load(ForestLevel::Day, day)?.unwrap_or_default(),
            )),
            None => Ok(Arc::new(Vec::new())),
        }
    }

    /// Red regions over a whole-day range, with their `F` values, from the
    /// pinned per-day severity vectors (equal to
    /// [`atypical::redzone::RedZones::compute`] on the same micro-clusters
    /// by distributivity, Property 4).
    pub fn red_regions(&self, first_day: u32, n_days: u32) -> Vec<(RegionId, Severity)> {
        let range = self.ctx.spec.day_range(first_day, n_days);
        let f = self.compose_region_f(first_day, n_days);
        self.mark_red(&f, range)
            .into_iter()
            .enumerate()
            .filter(|&(_, red)| red)
            .map(|(i, _)| (RegionId::new(i as u32), f[i]))
            .collect()
    }

    /// Red-zone-guided query over whole days (Algorithm 4): micro-clusters
    /// outside every red region are pruned — safely, per Property 5 —
    /// before time-of-day-aligned integration. Deterministic: merge ids
    /// come from a query-local generator starting at [`QUERY_ID_BASE`], so
    /// the same pinned epoch always yields the same result.
    pub fn query_guided(&self, first_day: u32, n_days: u32) -> cps_core::Result<GuidedQuery> {
        let spec = self.ctx.spec;
        let params = &self.ctx.params;
        let range = spec.day_range(first_day, n_days);
        let threshold = significance_threshold(params, range, self.ctx.num_sensors);

        let f = self.compose_region_f(first_day, n_days);
        let red = self.mark_red(&f, range);
        let num_red_regions = red.iter().filter(|&&r| r).count();

        let mut candidates = Vec::new();
        for day in first_day..first_day.saturating_add(n_days) {
            candidates.extend(self.micro_clusters_for_day(day)?.iter().cloned());
        }
        let candidate_clusters = candidates.len();
        let partition = &self.ctx.partition;
        let inputs: Vec<AtypicalCluster> = candidates
            .into_iter()
            .filter(|c| c.sf.keys().any(|s| red[partition.region_of(s).index()]))
            .collect();
        let input_clusters = inputs.len();

        let alignment = TimeAlignment::TimeOfDay {
            windows_per_day: spec.windows_per_day(),
        };
        let mut ids = ClusterIdGen::new(QUERY_ID_BASE);
        let (macros, _stats) = integrate_aligned(inputs, params, alignment, &mut ids);
        Ok(GuidedQuery {
            range,
            macros,
            threshold,
            num_red_regions,
            candidate_clusters,
            input_clusters,
        })
    }

    /// The significant clusters of a whole-day range (Definition 5), via
    /// [`query_guided`](Self::query_guided).
    pub fn significant_clusters(
        &self,
        first_day: u32,
        n_days: u32,
    ) -> cps_core::Result<Vec<AtypicalCluster>> {
        let mut result = self.query_guided(first_day, n_days)?;
        result.macros.retain(|c| c.severity() > result.threshold);
        Ok(result.macros)
    }

    /// Sums the pinned per-day region `F` vectors over
    /// `[first_day, first_day + n_days)`.
    fn compose_region_f(&self, first_day: u32, n_days: u32) -> Vec<Severity> {
        let num_regions = self.ctx.partition.num_regions() as usize;
        let mut f = vec![Severity::ZERO; num_regions];
        for (_, day_f) in self
            .snapshot
            .region_f_by_day
            .range(first_day..first_day.saturating_add(n_days))
        {
            for (acc, &s) in f.iter_mut().zip(day_f.iter()) {
                *acc += s;
            }
        }
        f
    }

    /// Applies the per-region significance-density test of
    /// [`atypical::redzone::RedZones::compute`] to composed `F` values.
    fn mark_red(&self, f: &[Severity], range: TimeRange) -> Vec<bool> {
        let partition = &self.ctx.partition;
        let params = &self.ctx.params;
        f.iter()
            .enumerate()
            .map(|(i, &fv)| {
                let n_i = partition.sensors_in(RegionId::new(i as u32)).len() as u32;
                n_i > 0 && fv >= significance_threshold(params, range, n_i)
            })
            .collect()
    }
}
