//! # cps-serve
//!
//! The monitor's read side, split from its mutable ingest state: the
//! merger publishes immutable epoch-stamped [`LiveSnapshot`]s through a
//! lock-free [`SnapshotCell`]; readers pin one snapshot as a [`ReadView`]
//! with a single atomic load and answer the whole query surface
//! (`red_regions`, `query_guided`, `live_macro_clusters`,
//! `micro_clusters_for_day`, `significant_clusters`) without ever taking
//! the merger's mutex. A sharded [`ResultCache`] keyed by
//! `(kind, day-range)` sits in front, with epoch-based invalidation on
//! day-seal and hit/miss/stale metrics.
//!
//! The crate is deliberately monitor-agnostic: `cps-monitor` depends on
//! it (building the [`ServeContext`] at service start and publishing from
//! the merger), never the other way around, so the serving layer is
//! testable against synthetic snapshots.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod cache;
pub mod epoch;
pub mod view;

pub use cache::{CacheStats, QueryKey, QueryKind, ResultCache, Stamp};
pub use epoch::SnapshotCell;
pub use view::{GuidedQuery, LiveSnapshot, ReadView, ServeContext};

use atypical::AtypicalCluster;
use cps_core::{RegionId, Severity};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;

/// First merge id handed out by a query-local
/// [`ClusterIdGen`](cps_core::ids::ClusterIdGen). Query-time integration
/// must not consume service ids (that would make queries perturb ingest
/// state and each other), so every guided query counts from this fixed
/// base: far above the live generator (which starts at 1) and distinct
/// from `cps-par`'s temporary-id base (`1 << 62`), so a query-minted id
/// can never collide with either.
pub const QUERY_ID_BASE: u64 = 1 << 61;

/// One cached query result. The variant always matches the key's
/// [`QueryKind`]; values are `Arc`s so a hit is a pointer clone.
#[derive(Clone)]
pub enum CachedValue {
    /// Red regions with their composed `F` values.
    Red(Arc<Vec<(RegionId, Severity)>>),
    /// A guided-query outcome.
    Guided(Arc<GuidedQuery>),
    /// A plain cluster list (significant clusters, day micro-clusters).
    Clusters(Arc<Vec<AtypicalCluster>>),
}

/// The serving state one monitor owns: publication cell, result cache,
/// and the immutable query context. Shared as an `Arc` between the
/// service (publisher) and any number of [`ServeHandle`]s (readers).
pub struct ServeState {
    cell: SnapshotCell<LiveSnapshot>,
    cache: ResultCache<CachedValue>,
    ctx: Arc<ServeContext>,
    next_epoch: AtomicU64,
    cache_enabled: bool,
}

impl ServeState {
    /// Builds the serving state around an initial snapshot (epoch 0 for a
    /// fresh service; a recovered service publishes its restored state).
    pub fn new(
        ctx: ServeContext,
        initial: LiveSnapshot,
        cache_shards: usize,
        cache_capacity: usize,
        cache_enabled: bool,
    ) -> Self {
        let next_epoch = AtomicU64::new(initial.epoch + 1);
        Self {
            cell: SnapshotCell::new(initial),
            cache: ResultCache::new(cache_shards, cache_capacity),
            ctx: Arc::new(ctx),
            next_epoch,
            cache_enabled,
        }
    }

    /// Allocates the next publication epoch (strictly increasing).
    pub fn next_epoch(&self) -> u64 {
        self.next_epoch.fetch_add(1, Relaxed)
    }

    /// Publishes a snapshot; readers see it on their next pin.
    pub fn publish(&self, snapshot: LiveSnapshot) {
        self.cell.publish(snapshot);
    }

    /// The query context (partition, params, store).
    pub fn ctx(&self) -> &Arc<ServeContext> {
        &self.ctx
    }
}

/// A `Send + Clone` snapshot-backed query handle. Every call pins the
/// freshest published epoch; use [`view`](Self::view) directly when a
/// multi-step query must see one consistent epoch across steps.
#[derive(Clone)]
pub struct ServeHandle {
    state: Arc<ServeState>,
}

impl ServeHandle {
    /// Wraps the shared serving state.
    pub fn new(state: Arc<ServeState>) -> Self {
        Self { state }
    }

    /// Pins the current snapshot as a consistent [`ReadView`].
    pub fn view(&self) -> ReadView {
        ReadView::new(self.state.cell.load(), self.state.ctx.clone())
    }

    /// The current publication epoch.
    pub fn epoch(&self) -> u64 {
        self.view().epoch()
    }

    /// Cache hit/miss/stale counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.state.cache.stats()
    }

    /// Whether results are cached (from the `[serving]` config).
    pub fn cache_enabled(&self) -> bool {
        self.state.cache_enabled
    }

    /// Cached [`ReadView::red_regions`].
    pub fn red_regions(&self, first_day: u32, n_days: u32) -> Arc<Vec<(RegionId, Severity)>> {
        let view = self.view();
        let key = QueryKey {
            kind: QueryKind::RedRegions,
            first_day,
            n_days,
        };
        if let Some(CachedValue::Red(v)) = self.lookup(&key, &view) {
            return v;
        }
        let value = Arc::new(view.red_regions(first_day, n_days));
        self.store(
            key,
            CachedValue::Red(value.clone()),
            &view,
            first_day,
            n_days,
        );
        value
    }

    /// Cached [`ReadView::query_guided`].
    pub fn query_guided(&self, first_day: u32, n_days: u32) -> cps_core::Result<Arc<GuidedQuery>> {
        let view = self.view();
        let key = QueryKey {
            kind: QueryKind::Guided,
            first_day,
            n_days,
        };
        if let Some(CachedValue::Guided(v)) = self.lookup(&key, &view) {
            return Ok(v);
        }
        let value = Arc::new(view.query_guided(first_day, n_days)?);
        self.store(
            key,
            CachedValue::Guided(value.clone()),
            &view,
            first_day,
            n_days,
        );
        Ok(value)
    }

    /// Cached [`ReadView::significant_clusters`].
    pub fn significant_clusters(
        &self,
        first_day: u32,
        n_days: u32,
    ) -> cps_core::Result<Arc<Vec<AtypicalCluster>>> {
        let view = self.view();
        let key = QueryKey {
            kind: QueryKind::Significant,
            first_day,
            n_days,
        };
        if let Some(CachedValue::Clusters(v)) = self.lookup(&key, &view) {
            return Ok(v);
        }
        let value = Arc::new(view.significant_clusters(first_day, n_days)?);
        self.store(
            key,
            CachedValue::Clusters(value.clone()),
            &view,
            first_day,
            n_days,
        );
        Ok(value)
    }

    /// Cached [`ReadView::micro_clusters_for_day`].
    pub fn micro_clusters_for_day(&self, day: u32) -> cps_core::Result<Arc<Vec<AtypicalCluster>>> {
        let view = self.view();
        let key = QueryKey {
            kind: QueryKind::MicrosForDay,
            first_day: day,
            n_days: 1,
        };
        if let Some(CachedValue::Clusters(v)) = self.lookup(&key, &view) {
            return Ok(v);
        }
        let value = view.micro_clusters_for_day(day)?;
        self.store(key, CachedValue::Clusters(value.clone()), &view, day, 1);
        Ok(value)
    }

    /// Uncached [`ReadView::live_macro_clusters`] — the snapshot already
    /// holds the fixpoint set as one `Arc`, so a cache adds nothing.
    pub fn live_macro_clusters(&self) -> Arc<Vec<AtypicalCluster>> {
        self.view().live_macro_clusters()
    }

    fn lookup(&self, key: &QueryKey, view: &ReadView) -> Option<CachedValue> {
        if !self.state.cache_enabled {
            return None;
        }
        self.state.cache.get(key, view.epoch())
    }

    fn store(
        &self,
        key: QueryKey,
        value: CachedValue,
        view: &ReadView,
        first_day: u32,
        n_days: u32,
    ) {
        if !self.state.cache_enabled {
            return;
        }
        let stamp = if view.snapshot().range_sealed(first_day, n_days) {
            Stamp::Immutable
        } else {
            Stamp::Epoch(view.epoch())
        };
        self.state.cache.insert(key, value, stamp, view.epoch());
    }
}
