//! Property 3 (§IV-B): integration output as a *set of events* does not
//! depend on the order clusters are admitted to the queue.
//!
//! The property holds unconditionally only when no pairwise similarity
//! straddles δsim under some-but-not-all merge orders: a pair at exactly
//! the threshold can merge in one admission order and stay split in
//! another, which is why the parallel engine (`atypical::par`) never
//! relies on permutation invariance — it fixes the per-node input order
//! and reproduces the sequential schedule bit-for-bit
//! (determinism-given-order, the stronger operational guarantee).
//!
//! These tests pin the paper's property on inputs where it *is* exact:
//! well-separated groups whose members share their whole key set
//! (within-group similarity ≡ 1 for every balance function, because both
//! overlap fractions are 1 regardless of severities) and whose groups
//! share nothing (cross-group similarity ≡ 0). Every admission order
//! must then collapse each group to one macro-cluster — the same
//! multiset of `(SF, TF)` contents, checked with
//! [`cps_testkit::canonicalize`] — with the same merge count.

use atypical::integrate::{integrate_aligned, is_fixpoint_aligned, TimeAlignment};
use atypical::AtypicalCluster;
use cps_core::ids::ClusterIdGen;
use cps_core::{BalanceFunction, ClusterId, Params, SensorId, Severity, TimeWindow};
use cps_testkit::{canonicalize, run_seeded};

const ALIGNMENTS: [TimeAlignment; 2] = [
    TimeAlignment::Absolute,
    TimeAlignment::TimeOfDay {
        windows_per_day: 96,
    },
];

/// One member of group `group`: the group's full sensor/window key set,
/// with a per-member severity so merged masses differ member-to-member.
/// SF and TF totals are equal by construction (no sink key — a shared
/// sink would couple the groups).
fn member(group: u32, index: u32, mass_secs: u64) -> AtypicalCluster {
    let base = group * 100;
    let sf = [
        (SensorId::new(base), Severity::from_secs(mass_secs)),
        (SensorId::new(base + 1), Severity::from_secs(mass_secs)),
    ];
    let tf = [
        (TimeWindow::new(base), Severity::from_secs(mass_secs)),
        (TimeWindow::new(base + 1), Severity::from_secs(mass_secs)),
    ];
    AtypicalCluster::new(
        ClusterId::new(u64::from(group) * 1_000 + u64::from(index)),
        sf.into_iter().collect(),
        tf.into_iter().collect(),
    )
}

/// `n_groups` disjoint groups of `per_group` clusters with wildly varying
/// member masses (1 s … hours), to rule out any hidden mass-order
/// dependence in the merged totals.
fn separated_groups(n_groups: u32, per_group: u32) -> Vec<AtypicalCluster> {
    (0..n_groups)
        .flat_map(|g| {
            (0..per_group).map(move |j| {
                let mass = [1, 60, 3_600, 7, 600][(g + j) as usize % 5] * (u64::from(j) + 1);
                member(g, j, mass)
            })
        })
        .collect()
}

/// Deterministic Fisher–Yates from an LCG stream, as in the other
/// differential suites.
fn shuffle(input: &mut [AtypicalCluster], state: &mut u64) {
    for i in (1..input.len()).rev() {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (*state >> 33) as usize % (i + 1);
        input.swap(i, j);
    }
}

#[test]
fn integration_is_permutation_invariant_on_separated_groups() {
    run_seeded(
        "integration_is_permutation_invariant_on_separated_groups",
        |seed| {
            let n_groups = 7u32;
            let per_group = 5u32;
            let input = separated_groups(n_groups, per_group);
            for alignment in ALIGNMENTS {
                for g in BalanceFunction::ALL {
                    let params = Params::paper_defaults().with_balance(g);
                    let mut ids = ClusterIdGen::new(1);
                    let (baseline, baseline_stats) =
                        integrate_aligned(input.clone(), &params, alignment, &mut ids);
                    assert_eq!(baseline.len(), n_groups as usize, "{alignment:?} {g:?}");
                    assert_eq!(
                        baseline_stats.merges,
                        u64::from(n_groups * (per_group - 1)),
                        "{alignment:?} {g:?}: each group must chain its merges"
                    );
                    let canonical_baseline = canonicalize(&baseline);

                    let mut state = seed | 1;
                    for round in 0..12 {
                        let mut permuted = input.clone();
                        shuffle(&mut permuted, &mut state);
                        let mut ids = ClusterIdGen::new(1);
                        let (out, stats) =
                            integrate_aligned(permuted, &params, alignment, &mut ids);
                        assert!(
                            is_fixpoint_aligned(&out, &params, alignment),
                            "seed {seed} round {round} {alignment:?} {g:?}: not a fixpoint"
                        );
                        assert_eq!(
                            canonicalize(&out),
                            canonical_baseline,
                            "seed {seed} round {round} {alignment:?} {g:?}: \
                             macro-cluster multiset changed under permutation"
                        );
                        assert_eq!(
                            stats.merges, baseline_stats.merges,
                            "seed {seed} round {round} {alignment:?} {g:?}: merge count changed"
                        );
                    }
                }
            }
        },
    );
}

#[test]
fn permutation_invariance_survives_threshold_sweeps() {
    // With within-group similarity pinned at 1 and cross-group at 0, the
    // grouping is invariant for *every* δsim in (0, 1) — sweeping it
    // checks that no threshold interacts with admission order here.
    run_seeded("permutation_invariance_survives_threshold_sweeps", |seed| {
        let input = separated_groups(5, 4);
        for &delta_sim in &[0.01, 0.3, 0.5, 0.8, 0.99] {
            let params = Params::paper_defaults().with_delta_sim(delta_sim);
            let mut ids = ClusterIdGen::new(1);
            let (baseline, _) =
                integrate_aligned(input.clone(), &params, TimeAlignment::Absolute, &mut ids);
            let canonical_baseline = canonicalize(&baseline);
            assert_eq!(baseline.len(), 5, "δsim {delta_sim}");

            let mut state = seed.wrapping_add(delta_sim.to_bits()) | 1;
            for round in 0..6 {
                let mut permuted = input.clone();
                shuffle(&mut permuted, &mut state);
                let mut ids = ClusterIdGen::new(1);
                let (out, _) =
                    integrate_aligned(permuted, &params, TimeAlignment::Absolute, &mut ids);
                assert_eq!(
                    canonicalize(&out),
                    canonical_baseline,
                    "seed {seed} δsim {delta_sim} round {round}"
                );
            }
        }
    });
}
