//! Differential tests: the parallel construction engine against the
//! sequential oracle.
//!
//! Every parallel path — sibling roll-ups ([`integrate_siblings`]), leaf
//! construction ([`build_forest_from_records_parallel`]), batch
//! materialization ([`AtypicalForest::materialize_range`]) and the
//! aggregation paths ([`AtypicalForest::integrate_by_path`]) — claims to
//! be **bit-identical** to the `threads == 1` build: same clusters, same
//! result order, same fresh merge IDs, same id-generator position, same
//! accumulated stats. These tests check that claim across the full
//! matrix of thread counts {1, 2, 3, 8}, both time alignments, all five
//! balance functions, and an adversarially skewed workload that forces
//! the scheduler to actually steal.
//!
//! Random inputs are seeded through `cps-testkit`; rerun any failure
//! with `CPS_FAULT_SEED=<seed>`. CI additionally reruns this suite with
//! `CPS_PAR_THREADS=<n,n,...>` to pin the sweep (see `scripts/ci.sh`).

use atypical::forest::{AggregationPath, AtypicalForest, MaterializedLevels};
use atypical::integrate::{integrate_aligned, IntegrationStats, TimeAlignment};
use atypical::par::integrate_siblings;
use atypical::pipeline::{build_forest_from_records_parallel, ConstructionStats};
use atypical::AtypicalCluster;
use cps_core::ids::ClusterIdGen;
use cps_core::{BalanceFunction, Params};
use cps_sim::{SimConfig, TrafficSim};
use cps_testkit::fixtures::random_clusters;
use cps_testkit::run_seeded;

const ALIGNMENTS: [TimeAlignment; 2] = [
    TimeAlignment::Absolute,
    TimeAlignment::TimeOfDay {
        windows_per_day: 96,
    },
];

/// Parallel thread counts to test against the sequential baseline.
/// `CPS_PAR_THREADS=n,n,...` overrides the default {2, 3, 8} sweep so CI
/// can pin specific widths.
fn thread_matrix() -> Vec<usize> {
    match std::env::var("CPS_PAR_THREADS") {
        Ok(text) => text
            .split(',')
            .map(|s| {
                s.trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("CPS_PAR_THREADS is not a thread list: {text:?}"))
            })
            .collect(),
        Err(_) => vec![2, 3, 8],
    }
}

/// Runs the sibling roll-up at one thread count from a fresh id
/// generator; returns everything that must match bit-for-bit.
fn siblings_at(
    nodes: &[Vec<AtypicalCluster>],
    params: &Params,
    alignment: TimeAlignment,
    threads: usize,
) -> (Vec<Vec<AtypicalCluster>>, IntegrationStats, u64) {
    let mut ids = ClusterIdGen::new(1_000_000);
    let (outs, stats) = integrate_siblings(nodes.to_vec(), params, alignment, &mut ids, threads);
    (outs, stats, ids.peek())
}

#[test]
fn sibling_rollups_bit_identical_for_all_alignments_and_balances() {
    run_seeded(
        "sibling_rollups_bit_identical_for_all_alignments_and_balances",
        |seed| {
            // Six sibling nodes of random micro-clusters — the shape of a
            // week wave (or a month's week fan-out).
            let nodes: Vec<Vec<AtypicalCluster>> = (0..6u64)
                .map(|i| random_clusters(seed.wrapping_add(i), 25, 6))
                .collect();
            let mut any_merges = false;
            for alignment in ALIGNMENTS {
                for g in BalanceFunction::ALL {
                    let params = Params::paper_defaults().with_balance(g);
                    let baseline = siblings_at(&nodes, &params, alignment, 1);
                    any_merges |= baseline.1.merges > 0;
                    for threads in thread_matrix() {
                        let parallel = siblings_at(&nodes, &params, alignment, threads);
                        assert_eq!(
                            parallel, baseline,
                            "seed {seed} {alignment:?} {g:?} diverged at {threads} threads"
                        );
                    }
                }
            }
            // The matrix is vacuous unless fresh merge IDs were actually
            // minted somewhere — that is the hard part of bit-identity.
            assert!(any_merges, "seed {seed}: no config merged anything");
        },
    );
}

#[test]
fn sibling_rollups_bit_identical_across_thresholds() {
    run_seeded("sibling_rollups_bit_identical_across_thresholds", |seed| {
        // Low δsim forces merge cascades inside every node (long fresh-id
        // runs to remap); high δsim makes most clusters pass through with
        // their input ids. Both regimes must commit identically.
        let nodes: Vec<Vec<AtypicalCluster>> = (0..4u64)
            .map(|i| random_clusters(seed.wrapping_add(10 + i), 30, 5))
            .collect();
        for &delta_sim in &[0.05, 0.3, 0.5, 0.9] {
            let params = Params::paper_defaults().with_delta_sim(delta_sim);
            for alignment in ALIGNMENTS {
                let baseline = siblings_at(&nodes, &params, alignment, 1);
                for threads in thread_matrix() {
                    assert_eq!(
                        siblings_at(&nodes, &params, alignment, threads),
                        baseline,
                        "seed {seed} δsim {delta_sim} {alignment:?} at {threads} threads"
                    );
                }
            }
        }
    });
}

/// One full forest build — leaves, week/month waves, both aggregation
/// paths — at a given thread count, from simulated records.
#[allow(clippy::type_complexity)]
fn forest_at(
    day_records: &[(u32, Vec<cps_core::AtypicalRecord>)],
    sim: &TrafficSim,
    threads: usize,
) -> (
    Vec<Vec<AtypicalCluster>>,           // day leaves
    MaterializedLevels,                  // which weeks/months built
    Vec<Vec<AtypicalCluster>>,           // week level
    Vec<Vec<AtypicalCluster>>,           // month level
    Vec<(String, Vec<AtypicalCluster>)>, // calendar path
    Vec<(String, Vec<AtypicalCluster>)>, // weekday/weekend path
    ConstructionStats,
    IntegrationStats,
    u64, // id-generator position after everything
) {
    let params = Params::paper_defaults().with_parallelism(threads);
    let spec = sim.config().spec;
    let n_days = day_records.len() as u32;
    let built = build_forest_from_records_parallel(
        day_records.to_vec(),
        sim.network(),
        &params,
        spec,
        threads,
    );
    let mut forest: AtypicalForest = built.forest;
    let levels = forest.materialize_range(0, n_days);
    let weeks = levels
        .weeks
        .iter()
        .map(|&w| forest.week(w).to_vec())
        .collect();
    let months = levels
        .months
        .iter()
        .map(|&m| forest.month(m).to_vec())
        .collect();
    let calendar = forest.integrate_by_path(0, n_days, AggregationPath::Calendar);
    let split = forest.integrate_by_path(0, n_days, AggregationPath::WeekdayWeekend);
    let integration = forest.integration_stats();
    let peek = forest.id_gen().peek();
    (
        (0..n_days).map(|d| forest.day(d).to_vec()).collect(),
        levels,
        weeks,
        months,
        calendar,
        split,
        built.stats,
        integration,
        peek,
    )
}

#[test]
fn forest_pipeline_bit_identical_across_thread_counts() {
    run_seeded(
        "forest_pipeline_bit_identical_across_thread_counts",
        |seed| {
            // 31 simulated days: 4 whole weeks + 1 whole month, so every
            // level and both aggregation paths exercise the parallel waves.
            let sim = TrafficSim::new(SimConfig::new(cps_sim::Scale::Tiny, seed));
            let day_records: Vec<_> = (0..31).map(|d| (d, sim.atypical_day(d))).collect();
            let baseline = forest_at(&day_records, &sim, 1);
            assert_eq!(baseline.1.weeks, vec![0, 1, 2, 3], "seed {seed}");
            assert_eq!(baseline.1.months, vec![0], "seed {seed}");
            for threads in thread_matrix() {
                let parallel = forest_at(&day_records, &sim, threads);
                assert_eq!(
                    parallel, baseline,
                    "seed {seed}: forest diverged at {threads} threads"
                );
            }
        },
    );
}

#[test]
fn skewed_sibling_sizes_stay_bit_identical() {
    run_seeded("skewed_sibling_sizes_stay_bit_identical", |seed| {
        // Adversarial skew: node 0 dwarfs the rest, so with w workers the
        // owner is pinned on it while thieves drain its queued siblings —
        // the schedule that most reorders physical execution.
        let mut nodes = vec![random_clusters(seed, 220, 6)];
        nodes.extend((1..8u64).map(|i| random_clusters(seed.wrapping_add(i), 3, 4)));
        // δsim low enough that the big node cascades merges no matter the
        // seed — fresh-id remapping is what the skew test must stress.
        let params = Params::paper_defaults().with_delta_sim(0.2);
        for alignment in ALIGNMENTS {
            let baseline = siblings_at(&nodes, &params, alignment, 1);
            assert!(baseline.1.merges > 0, "seed {seed}: skew case must merge");
            for threads in thread_matrix() {
                assert_eq!(
                    siblings_at(&nodes, &params, alignment, threads),
                    baseline,
                    "seed {seed} {alignment:?}: skewed nodes diverged at {threads} threads"
                );
            }
        }
    });
}

#[test]
fn forced_steals_with_real_integration_payloads() {
    run_seeded("forced_steals_with_real_integration_payloads", |seed| {
        use std::sync::atomic::{AtomicUsize, Ordering};

        // Deterministically force stealing: the task at index 0 spins
        // until every other task has finished, so its owner's remaining
        // queue items can only complete by being stolen. Each task is a
        // real node integration; outputs must still land in input order
        // and match the sequential per-node results exactly.
        let nodes: Vec<Vec<AtypicalCluster>> = (0..9u64)
            .map(|i| random_clusters(seed.wrapping_add(i), 12, 5))
            .collect();
        let params = Params::paper_defaults();
        let expected: Vec<_> = nodes
            .iter()
            .enumerate()
            .map(|(i, node)| {
                let mut ids = ClusterIdGen::new(1_000_000 * (i as u64 + 1));
                integrate_aligned(node.clone(), &params, TimeAlignment::Absolute, &mut ids)
            })
            .collect();

        let n = nodes.len();
        let done = AtomicUsize::new(0);
        let pool = cps_par::Pool::new(3);
        let (outs, run_stats) = pool.map_with_stats(nodes, |i, node| {
            if i == 0 {
                while done.load(Ordering::SeqCst) < n - 1 {
                    // Yield rather than spin: the CI host may have a
                    // single CPU, where spinning starves the thieves.
                    std::thread::yield_now();
                }
            }
            let mut ids = ClusterIdGen::new(1_000_000 * (i as u64 + 1));
            let out = integrate_aligned(node, &params, TimeAlignment::Absolute, &mut ids);
            if i != 0 {
                done.fetch_add(1, Ordering::SeqCst);
            }
            out
        });
        assert_eq!(outs, expected, "seed {seed}: stolen tasks changed output");
        assert_eq!(run_stats.tasks, n as u64);
        assert!(
            run_stats.steals > 0,
            "seed {seed}: blocking worker 0 must force at least one steal"
        );
    });
}
