//! Differential tests: indexed integration against the naive oracle.
//!
//! [`integrate_aligned`] dispatches on [`Params::indexed_integration`]
//! between two implementations of Algorithm 3. The indexed path claims to
//! be **bit-identical** to the naive scan — same clusters, same IDs, same
//! result order, same merge count — while skipping only comparisons the
//! inverted indexes or the admissible similarity bound prove are
//! ≤ `δsim`. These tests check that claim across random inputs (seeded
//! through `cps-testkit`; rerun a failure with `CPS_FAULT_SEED=<seed>`),
//! both time alignments, all five balance functions, and the adversarial
//! shapes that stress each pruning rule.

use atypical::integrate::{
    integrate_aligned, is_fixpoint_aligned, IntegrationStats, TimeAlignment,
};
use atypical::AtypicalCluster;
use cps_core::ids::ClusterIdGen;
use cps_core::{BalanceFunction, ClusterId, Params, SensorId, Severity, TimeWindow};
use cps_testkit::fixtures::random_clusters;
use cps_testkit::{canonicalize, run_seeded};

const ALIGNMENTS: [TimeAlignment; 2] = [
    TimeAlignment::Absolute,
    TimeAlignment::TimeOfDay {
        windows_per_day: 96,
    },
];

/// Runs both strategies on the same input and checks every differential
/// invariant; returns `(naive, indexed)` stats for extra assertions.
fn check_equivalence(
    input: &[AtypicalCluster],
    params: &Params,
    alignment: TimeAlignment,
    context: &str,
) -> (IntegrationStats, IntegrationStats) {
    let naive_params = params.with_indexed_integration(false);
    let indexed_params = params.with_indexed_integration(true);
    let mut naive_ids = ClusterIdGen::new(1_000_000);
    let mut indexed_ids = ClusterIdGen::new(1_000_000);
    let (naive, naive_stats) =
        integrate_aligned(input.to_vec(), &naive_params, alignment, &mut naive_ids);
    let (indexed, indexed_stats) =
        integrate_aligned(input.to_vec(), &indexed_params, alignment, &mut indexed_ids);

    // Both outputs reach the Algorithm 3 fixpoint.
    assert!(
        is_fixpoint_aligned(&naive, params, alignment),
        "{context}: naive output is not a fixpoint"
    );
    assert!(
        is_fixpoint_aligned(&indexed, params, alignment),
        "{context}: indexed output is not a fixpoint"
    );
    // Identical multiset of cluster contents (order- and ID-free)...
    assert_eq!(
        canonicalize(&naive),
        canonicalize(&indexed),
        "{context}: cluster multisets diverge"
    );
    // ...and in fact bit-identical output: same order, same fresh IDs.
    assert_eq!(naive, indexed, "{context}: outputs are not bit-identical");
    assert_eq!(
        naive_stats.merges, indexed_stats.merges,
        "{context}: merge counts diverge"
    );
    // The index only ever *skips* evaluations.
    assert!(
        indexed_stats.comparisons <= naive_stats.comparisons,
        "{context}: indexed did {} comparisons, naive {}",
        indexed_stats.comparisons,
        naive_stats.comparisons
    );
    // Evaluations plus bound skips never exceed the naive scan: both
    // count result members at positions up to the first hit, and the
    // indexed side only considers the candidate subset of those.
    // (`candidates_pruned` is excluded — it is charged for the whole
    // result set upfront, including positions past the hit that a naive
    // scan never reaches, so exact accounting only holds merge-free.)
    assert!(
        indexed_stats.comparisons + indexed_stats.bound_skips <= naive_stats.comparisons,
        "{context}: indexed evaluated {} + skipped {}, naive evaluated {}",
        indexed_stats.comparisons,
        indexed_stats.bound_skips,
        naive_stats.comparisons
    );
    if naive_stats.merges == 0 {
        // Merge-free, the scan lengths match member-for-member, so every
        // naive evaluation is accounted for: evaluated exactly, pruned by
        // the indexes, or skipped by the bound.
        assert_eq!(
            indexed_stats.comparisons + indexed_stats.candidates_pruned + indexed_stats.bound_skips,
            naive_stats.comparisons,
            "{context}: merge-free comparison accounting diverges"
        );
    }
    (naive_stats, indexed_stats)
}

/// Hand-built cluster over explicit `(key, severity-seconds)` pairs. SF
/// and TF totals are balanced with a sink key only when they differ, so
/// disjointness of the listed keys is preserved.
fn cluster(id: u64, sf: &[(u32, u64)], tf: &[(u32, u64)]) -> AtypicalCluster {
    let mut sf: Vec<(SensorId, Severity)> = sf
        .iter()
        .map(|&(s, secs)| (SensorId::new(s), Severity::from_secs(secs)))
        .collect();
    let mut tf: Vec<(TimeWindow, Severity)> = tf
        .iter()
        .map(|&(w, secs)| (TimeWindow::new(w), Severity::from_secs(secs)))
        .collect();
    let st: u64 = sf.iter().map(|(_, s)| s.as_secs()).sum();
    let tt: u64 = tf.iter().map(|(_, s)| s.as_secs()).sum();
    if st < tt {
        sf.push((SensorId::new(999_999), Severity::from_secs(tt - st)));
    } else if tt < st {
        tf.push((TimeWindow::new(999_999), Severity::from_secs(st - tt)));
    }
    AtypicalCluster::new(
        ClusterId::new(id),
        sf.into_iter().collect(),
        tf.into_iter().collect(),
    )
}

#[test]
fn random_inputs_all_alignments_all_balances() {
    run_seeded("random_inputs_all_alignments_all_balances", |seed| {
        for round in 0..8u64 {
            let input = random_clusters(seed.wrapping_add(round), 40, 8);
            for alignment in ALIGNMENTS {
                for g in BalanceFunction::ALL {
                    let params = Params::paper_defaults().with_balance(g);
                    check_equivalence(
                        &input,
                        &params,
                        alignment,
                        &format!("seed {seed} round {round} {alignment:?} {g:?}"),
                    );
                }
            }
        }
    });
}

#[test]
fn random_inputs_across_thresholds() {
    run_seeded("random_inputs_across_thresholds", |seed| {
        // Low thresholds force merge cascades (re-enqueues), high ones
        // force full scans; both paths must stay identical throughout.
        for &delta_sim in &[0.0, 0.05, 0.2, 0.5, 0.8, 0.99] {
            let input = random_clusters(seed, 60, 6);
            for alignment in ALIGNMENTS {
                let params = Params::paper_defaults().with_delta_sim(delta_sim);
                check_equivalence(
                    &input,
                    &params,
                    alignment,
                    &format!("seed {seed} δsim {delta_sim} {alignment:?}"),
                );
            }
        }
    });
}

#[test]
fn disjoint_sensor_sets_prune_everything() {
    // Pairwise-disjoint sensors AND windows: similarity is exactly 0 for
    // every pair, so the indexed path must do zero exact evaluations.
    let input: Vec<AtypicalCluster> = (0..25u64)
        .map(|i| {
            let base = (i as u32) * 10;
            cluster(
                i,
                &[(base, 600), (base + 1, 300)],
                &[(base, 450), (base + 1, 450)],
            )
        })
        .collect();
    for alignment in [TimeAlignment::Absolute] {
        for g in BalanceFunction::ALL {
            let params = Params::paper_defaults().with_balance(g);
            let (naive_stats, indexed_stats) = check_equivalence(
                &input,
                &params,
                alignment,
                &format!("disjoint {alignment:?} {g:?}"),
            );
            assert_eq!(indexed_stats.comparisons, 0, "{g:?}");
            assert_eq!(indexed_stats.bound_skips, 0, "{g:?}");
            assert_eq!(
                indexed_stats.candidates_pruned, naive_stats.comparisons,
                "{g:?}"
            );
        }
    }
}

#[test]
fn identical_clusters_collapse_to_one() {
    // N copies of one cluster: every admission merges with the sole
    // result member, so both strategies chain N-1 merges into one
    // macro-cluster. (Copies share every key — nothing is prunable on
    // the first comparison of each admission.)
    let input: Vec<AtypicalCluster> = (0..12u64)
        .map(|i| cluster(i, &[(5, 600), (6, 600)], &[(7, 600), (8, 600)]))
        .collect();
    for alignment in ALIGNMENTS {
        for g in BalanceFunction::ALL {
            let params = Params::paper_defaults().with_balance(g);
            let (naive_stats, indexed_stats) = check_equivalence(
                &input,
                &params,
                alignment,
                &format!("identical {alignment:?} {g:?}"),
            );
            assert_eq!(naive_stats.merges, 11, "{g:?}");
            assert_eq!(indexed_stats.merges, 11, "{g:?}");
        }
    }
}

#[test]
fn severity_ties_straddle_the_threshold() {
    // Engineered overlaps that land exactly on, just under, and just over
    // δsim. Algorithm 3 merges on *strictly greater*, so the boundary
    // pair must NOT merge — and the indexed bound (which skips on
    // `bound ≤ δsim`) must agree with the exact evaluation in all three
    // regimes.
    //
    // With arithmetic-mean balance and full window overlap,
    // Sim = ½(SimSF + 1): SimSF = 0.0 → 0.5 (= δsim, no merge);
    // a tiny shared sensor fraction pushes it just over.
    let params = Params::paper_defaults(); // δsim = 0.5, arithmetic mean
    assert_eq!(params.delta_sim, 0.5, "test assumes the paper's δsim");

    // Shared window 7 with identical mass; sensors disjoint → Sim = 0.5.
    let at_threshold = vec![
        cluster(0, &[(1, 600)], &[(7, 600)]),
        cluster(1, &[(2, 600)], &[(7, 600)]),
    ];
    // Same, plus a shared sensor carrying 1 of 600 seconds → Sim > 0.5.
    let just_over = vec![
        cluster(0, &[(1, 599), (3, 1)], &[(7, 600)]),
        cluster(1, &[(2, 599), (3, 1)], &[(7, 600)]),
    ];
    // Shared window carries half the mass; sensors disjoint → Sim = 0.25.
    let under = vec![
        cluster(0, &[(1, 600)], &[(7, 300), (8, 300)]),
        cluster(1, &[(2, 600)], &[(7, 300), (9, 300)]),
    ];

    for (input, expected_merges, label) in [
        (at_threshold, 0u64, "at-threshold"),
        (just_over, 1, "just-over"),
        (under, 0, "under"),
    ] {
        for alignment in ALIGNMENTS {
            let (naive_stats, indexed_stats) = check_equivalence(
                &input,
                &params,
                alignment,
                &format!("{label} {alignment:?}"),
            );
            assert_eq!(naive_stats.merges, expected_merges, "{label} naive");
            assert_eq!(indexed_stats.merges, expected_merges, "{label} indexed");
        }
    }
}

#[test]
fn time_of_day_folding_merges_across_days() {
    // Same time-of-day on consecutive days: disjoint absolute windows
    // (no merge) but identical folded windows (merge under TimeOfDay).
    // Exercises the folded-window index keys.
    let wpd = 96u32;
    let input = vec![
        cluster(0, &[(1, 600)], &[(10, 600)]),
        cluster(1, &[(1, 600)], &[(10 + wpd, 600)]),
    ];
    let params = Params::paper_defaults();
    let (_, abs_stats) =
        check_equivalence(&input, &params, TimeAlignment::Absolute, "tod absolute");
    let (_, tod_stats) = check_equivalence(
        &input,
        &params,
        TimeAlignment::TimeOfDay {
            windows_per_day: wpd,
        },
        "tod folded",
    );
    assert_eq!(abs_stats.merges, 0);
    assert_eq!(tod_stats.merges, 1);
}

#[test]
fn empty_and_singleton_inputs() {
    let params = Params::paper_defaults();
    for alignment in ALIGNMENTS {
        check_equivalence(&[], &params, alignment, "empty");
        let one = vec![cluster(0, &[(1, 600)], &[(2, 600)])];
        let (naive_stats, indexed_stats) = check_equivalence(&one, &params, alignment, "singleton");
        assert_eq!(naive_stats.comparisons, 0);
        assert_eq!(indexed_stats.comparisons, 0);
    }
}

#[test]
fn merge_cascades_stay_identical() {
    run_seeded("merge_cascades_stay_identical", |seed| {
        // A chain a₀~a₁~…~aₙ where consecutive clusters overlap heavily:
        // each admission merges and the merged cluster re-enqueues,
        // exercising swap_remove order perturbation and queue-back
        // re-insertion on both paths.
        let n = 30u64;
        let mut input: Vec<AtypicalCluster> = (0..n)
            .map(|i| {
                let base = i as u32;
                cluster(
                    i,
                    &[(base, 600), (base + 1, 600)],
                    &[(base, 600), (base + 1, 600)],
                )
            })
            .collect();
        // Deterministic shuffle from the test seed so the admission order
        // varies run-to-run under CPS_FAULT_SEED replay.
        let mut state = seed | 1;
        for i in (1..input.len()).rev() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            input.swap(i, j);
        }
        for alignment in ALIGNMENTS {
            let params = Params::paper_defaults().with_delta_sim(0.3);
            let (naive_stats, _) = check_equivalence(
                &input,
                &params,
                alignment,
                &format!("cascade seed {seed} {alignment:?}"),
            );
            assert!(naive_stats.merges > 0, "cascade must actually merge");
        }
    });
}
