//! Indexed cluster integration: Algorithm 3 with inverted-index candidate
//! generation.
//!
//! The naive integration loop evaluates every incoming cluster against the
//! entire tentative result set — `O(n²)` similarity computations to reach
//! the fixpoint. But Equation 2's similarity is *zero-overlap-zero*: the
//! numerators of Equations 3/4 are sums over the key intersections, so a
//! pair sharing no sensor has `SimSF = g(0, 0) = 0` and a pair sharing no
//! (aligned) time window has `SimTF = 0`. A cluster sharing **neither** has
//! `Sim = 0 ≤ δsim` and can never merge. Two inverted indexes — `sensor →
//! result slot` and `(folded) window → result slot` — therefore produce an
//! **exact** candidate set; everything else is pruned without evaluation
//! (`IntegrationStats::candidates_pruned`).
//!
//! Candidates are further screened by an admissible upper bound before the
//! exact similarity is computed. Gathering candidates walks the incoming
//! cluster's own features, so the incoming-side overlap mass `o₁ = Σ_{K₁∩K₂}
//! μ¹` is known exactly for free; the other side's fraction is at most 1.
//! Every balance function `g` is monotone in each argument, hence per
//! dimension
//!
//! ```text
//! SimSF = g(o₁/Σμ¹, o₂/Σμ²) ≤ g(min(1, o₁/Σμ¹), 1)
//! ```
//!
//! and `Sim ≤ ½·(bound_SF + bound_TF)`, where a dimension with no shared
//! keys contributes exactly 0 (not the one-sided bound — `g(0,0) = 0` for
//! all five `g`, including `max`). If the bound is ≤ `δsim` the candidate
//! is skipped (`IntegrationStats::bound_skips`); otherwise
//! [`similarity_parts`] decides. Concretely the per-dimension bound is
//! `p ↦ p` for `min`, `(1+p)/2` for the arithmetic mean, `√p` for the
//! geometric, `2p/(1+p)` for the harmonic, and the vacuous `1` for `max`
//! (admissible but never selective — `max` relies on candidate pruning
//! alone). See DESIGN.md for the admissibility argument.
//!
//! **The indexed path is exact, not approximate.** Candidates are evaluated
//! in result-set order (the same order the naive scan walks, including the
//! `swap_remove` perturbation on merges) and the first above-threshold hit
//! merges, so the indexed integrator reproduces the naive fixpoint
//! *bit-for-bit* — same clusters, same ids, same merge count. The
//! differential suite (`tests/integrate_differential.rs`) asserts this
//! across alignments, balance functions, and adversarial inputs.

use crate::cluster::AtypicalCluster;
use crate::integrate::{is_fixpoint_aligned, Aligned, IntegrationStats, TimeAlignment};
use crate::similarity::similarity_parts;
use cps_core::ids::ClusterIdGen;
use cps_core::{BalanceFunction, Params, SensorId, Severity, TimeWindow};
use cps_index::InvertedIndex;
use std::collections::VecDeque;

/// Per-probe scratch: epoch-stamped overlap accumulators, one lane per
/// result slot, reused across probes so candidate gathering allocates only
/// when the slot universe grows.
#[derive(Default)]
struct Scratch {
    epoch: u32,
    /// Stamp marking slots that share ≥ 1 sensor with the probe.
    sf_stamp: Vec<u32>,
    /// Stamp marking slots that share ≥ 1 (aligned) window with the probe.
    tf_stamp: Vec<u32>,
    /// Probe-side severity mass (seconds) on the shared sensors.
    sf_overlap: Vec<u64>,
    /// Probe-side severity mass (seconds) on the shared windows.
    tf_overlap: Vec<u64>,
    /// Slots touched this epoch, in discovery order.
    touched: Vec<u32>,
}

impl Scratch {
    fn begin(&mut self, num_slots: usize) {
        if self.sf_stamp.len() < num_slots {
            self.sf_stamp.resize(num_slots, 0);
            self.tf_stamp.resize(num_slots, 0);
            self.sf_overlap.resize(num_slots, 0);
            self.tf_overlap.resize(num_slots, 0);
        }
        self.touched.clear();
        if self.epoch == u32::MAX {
            self.sf_stamp.fill(0);
            self.tf_stamp.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
    }

    #[inline]
    fn touch_sf(&mut self, slot: u32, secs: u64) {
        let i = slot as usize;
        if self.sf_stamp[i] != self.epoch {
            self.sf_stamp[i] = self.epoch;
            self.sf_overlap[i] = 0;
            if self.tf_stamp[i] != self.epoch {
                self.touched.push(slot);
            }
        }
        self.sf_overlap[i] = self.sf_overlap[i].saturating_add(secs);
    }

    #[inline]
    fn touch_tf(&mut self, slot: u32, secs: u64) {
        let i = slot as usize;
        if self.tf_stamp[i] != self.epoch {
            self.tf_stamp[i] = self.epoch;
            self.tf_overlap[i] = 0;
            if self.sf_stamp[i] != self.epoch {
                self.touched.push(slot);
            }
        }
        self.tf_overlap[i] = self.tf_overlap[i].saturating_add(secs);
    }
}

/// One dimension of the admissible bound: 0 when no key is shared (then the
/// dimension's similarity is exactly `g(0,0) = 0`), otherwise the one-sided
/// `g(min(1, probe-overlap/probe-total), 1)`.
#[inline]
fn side_bound(g: BalanceFunction, shared: bool, overlap_secs: u64, total: Severity) -> f64 {
    if !shared {
        return 0.0;
    }
    let frac = Severity::from_secs(overlap_secs)
        .fraction_of(total)
        .min(1.0);
    g.apply(frac, 1.0)
}

/// Maintains the Algorithm 3 result set (pairwise similarity ≤ `δsim`)
/// together with inverted indexes over its sensor and (aligned) window
/// keys, supporting incremental admission and exact candidate generation.
///
/// Two modes of use:
///
/// * **batch** — [`integrate_aligned_indexed`] drives the same FIFO work
///   queue as the naive oracle and produces identical output;
/// * **persistent** — `cps-monitor` keeps one integrator alive and
///   [`Self::admit`]s each finalized micro-cluster, so the live
///   macro-cluster set stays at the fixpoint without rescanning.
pub struct IndexedIntegrator {
    params: Params,
    alignment: TimeAlignment,
    /// Slab of result entries; `None` marks a free slot.
    slots: Vec<Option<Aligned>>,
    free: Vec<u32>,
    /// Result-set order: mirrors the naive path's result `Vec` exactly,
    /// including `swap_remove` on merge, so candidate evaluation order (and
    /// hence the chosen merge partner) matches the oracle.
    order: Vec<u32>,
    /// `pos[slot]` = index of `slot` in `order` (valid for live slots).
    pos: Vec<usize>,
    sensors: InvertedIndex<SensorId>,
    windows: InvertedIndex<TimeWindow>,
    scratch: Scratch,
    stats: IntegrationStats,
}

impl IndexedIntegrator {
    /// An empty integrator for the given parameters and alignment.
    pub fn new(params: &Params, alignment: TimeAlignment) -> Self {
        debug_assert!(
            params.delta_sim >= 0.0,
            "index pruning assumes zero-similarity pairs never merge (δsim ≥ 0)"
        );
        Self {
            params: *params,
            alignment,
            slots: Vec::new(),
            free: Vec::new(),
            order: Vec::new(),
            pos: Vec::new(),
            sensors: InvertedIndex::new(),
            windows: InvertedIndex::new(),
            scratch: Scratch::default(),
            stats: IntegrationStats::default(),
        }
    }

    /// Number of clusters currently in the result set.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the result set is empty.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Counters accumulated over every admission so far.
    pub fn stats(&self) -> IntegrationStats {
        self.stats
    }

    /// Clones the current result set, in result order.
    pub fn snapshot(&self) -> Vec<AtypicalCluster> {
        self.order
            .iter()
            .map(|&slot| {
                self.slots[slot as usize]
                    .as_ref()
                    .expect("ordered slot is live")
                    .cluster
                    .clone()
            })
            .collect()
    }

    /// Consumes the integrator, returning the result set in result order.
    pub fn into_clusters(mut self) -> Vec<AtypicalCluster> {
        self.order
            .iter()
            .map(|&slot| {
                self.slots[slot as usize]
                    .take()
                    .expect("ordered slot is live")
                    .cluster
            })
            .collect()
    }

    /// Admits one cluster, restoring the fixpoint before returning: the
    /// incremental step of Algorithm 3 (merge, then re-place the merged
    /// cluster, until it lands without a hit).
    pub fn admit(&mut self, cluster: AtypicalCluster, ids: &mut ClusterIdGen) {
        let mut entry = Aligned::new(cluster, self.alignment);
        while let Some(merged) = self.place(entry, ids) {
            entry = merged;
        }
    }

    /// One placement attempt: evaluates `entry` against the result set in
    /// order. On the first above-threshold hit the partner is removed and
    /// the merged cluster returned (the caller decides where it re-enters
    /// the work queue); otherwise `entry` is inserted and `None` returned.
    pub(crate) fn place(&mut self, entry: Aligned, ids: &mut ClusterIdGen) -> Option<Aligned> {
        let g = self.params.balance;
        let delta_sim = self.params.delta_sim;

        // Gather candidates: walk the probe's keys through the postings,
        // accumulating the probe-side overlap mass per touched slot.
        self.scratch.begin(self.slots.len());
        for (sensor, severity) in entry.cluster.sf.iter() {
            for &slot in self.sensors.slots(sensor) {
                self.scratch.touch_sf(slot, severity.as_secs());
            }
        }
        for (window, severity) in entry.tf().iter() {
            for &slot in self.windows.slots(window) {
                self.scratch.touch_tf(slot, severity.as_secs());
            }
        }
        self.stats.candidates_pruned += (self.order.len() - self.scratch.touched.len()) as u64;

        // Evaluate candidates in result order — the naive scan order — so
        // the first hit is the same cluster the oracle would merge with.
        let pos = &self.pos;
        self.scratch
            .touched
            .sort_unstable_by_key(|&slot| pos[slot as usize]);
        let sf_total = entry.cluster.sf.total();
        let tf_total = entry.tf().total();

        let mut hit: Option<u32> = None;
        for i in 0..self.scratch.touched.len() {
            let slot = self.scratch.touched[i];
            let idx = slot as usize;
            let epoch = self.scratch.epoch;
            let bound = 0.5
                * (side_bound(
                    g,
                    self.scratch.sf_stamp[idx] == epoch,
                    self.scratch.sf_overlap[idx],
                    sf_total,
                ) + side_bound(
                    g,
                    self.scratch.tf_stamp[idx] == epoch,
                    self.scratch.tf_overlap[idx],
                    tf_total,
                ));
            if bound <= delta_sim {
                self.stats.bound_skips += 1;
                continue;
            }
            self.stats.comparisons += 1;
            let existing = self.slots[idx].as_ref().expect("candidate slot is live");
            let sim = similarity_parts(
                &entry.cluster.sf,
                entry.tf(),
                &existing.cluster.sf,
                existing.tf(),
                g,
            );
            if sim > delta_sim {
                hit = Some(slot);
                break;
            }
        }

        match hit {
            Some(slot) => {
                let existing = self.remove_slot(slot);
                self.stats.merges += 1;
                Some(entry.merge(existing, ids.next_id()))
            }
            None => {
                self.insert_entry(entry);
                None
            }
        }
    }

    /// Inserts a fixpoint-compatible entry at the back of the result order
    /// and registers its keys.
    fn insert_entry(&mut self, entry: Aligned) {
        let slot = match self.free.pop() {
            Some(slot) => slot,
            None => {
                self.slots.push(None);
                self.pos.push(usize::MAX);
                (self.slots.len() - 1) as u32
            }
        };
        self.sensors.insert(slot, entry.cluster.sf.keys());
        self.windows.insert(slot, entry.tf().keys());
        self.pos[slot as usize] = self.order.len();
        self.order.push(slot);
        self.slots[slot as usize] = Some(entry);
    }

    /// Removes a live slot: deregisters its keys and applies the same
    /// `swap_remove` to the result order the naive path applies to its
    /// result `Vec`.
    fn remove_slot(&mut self, slot: u32) -> Aligned {
        let entry = self.slots[slot as usize]
            .take()
            .expect("removed slot is live");
        self.sensors.remove(slot, entry.cluster.sf.keys());
        self.windows.remove(slot, entry.tf().keys());
        let at = self.pos[slot as usize];
        self.order.swap_remove(at);
        if at < self.order.len() {
            self.pos[self.order[at] as usize] = at;
        }
        self.free.push(slot);
        entry
    }
}

/// [`crate::integrate::integrate_aligned_naive`] with inverted-index
/// candidate generation — identical output, fewer similarity evaluations.
/// See the module docs for why the result is exact.
pub fn integrate_aligned_indexed(
    clusters: Vec<AtypicalCluster>,
    params: &Params,
    alignment: TimeAlignment,
    ids: &mut ClusterIdGen,
) -> (Vec<AtypicalCluster>, IntegrationStats) {
    let mut integrator = IndexedIntegrator::new(params, alignment);
    let mut queue: VecDeque<Aligned> = clusters
        .into_iter()
        .map(|c| Aligned::new(c, alignment))
        .collect();
    while let Some(entry) = queue.pop_front() {
        if let Some(merged) = integrator.place(entry, ids) {
            // Re-enqueue at the back, exactly like the naive work queue.
            queue.push_back(merged);
        }
    }
    let stats = integrator.stats();
    let out = integrator.into_clusters();
    debug_assert!(
        is_fixpoint_aligned(&out, params, alignment),
        "indexed integration must return a pairwise-non-similar set"
    );
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feature::{SpatialFeature, TemporalFeature};
    use crate::integrate::integrate_aligned_naive;
    use cps_core::ClusterId;

    fn cluster(id: u64, sensors: &[(u32, f64)], windows: &[(u32, f64)]) -> AtypicalCluster {
        let sf: SpatialFeature = sensors
            .iter()
            .map(|&(s, m)| (SensorId::new(s), Severity::from_minutes(m)))
            .collect();
        let tf: TemporalFeature = windows
            .iter()
            .map(|&(w, m)| (TimeWindow::new(w), Severity::from_minutes(m)))
            .collect();
        // Balance SF/TF totals with a sink key only when they differ, so
        // tests over disjoint key sets stay genuinely disjoint.
        let (st, tt) = (sf.total(), tf.total());
        let mut sf = sf;
        let mut tf = tf;
        if st < tt {
            sf.add(SensorId::new(9999), tt.saturating_sub(st));
        } else if tt < st {
            tf.add(TimeWindow::new(999_999), st.saturating_sub(tt));
        }
        AtypicalCluster::new(ClusterId::new(id), sf, tf)
    }

    fn uniform(id: u64, sensors: &[u32], windows: &[u32]) -> AtypicalCluster {
        cluster(
            id,
            &sensors.iter().map(|&s| (s, 10.0)).collect::<Vec<_>>(),
            &windows.iter().map(|&w| (w, 10.0)).collect::<Vec<_>>(),
        )
    }

    #[test]
    fn disjoint_clusters_are_all_pruned() {
        let params = Params::paper_defaults();
        let inputs: Vec<AtypicalCluster> = (0..10)
            .map(|i| {
                uniform(
                    i,
                    &[i as u32 * 10, i as u32 * 10 + 1],
                    &[i as u32 * 10, i as u32 * 10 + 1],
                )
            })
            .collect();
        let mut ids = ClusterIdGen::new(100);
        let (out, stats) =
            integrate_aligned_indexed(inputs, &params, TimeAlignment::Absolute, &mut ids);
        assert_eq!(out.len(), 10);
        assert_eq!(stats.comparisons, 0, "no pair shares a key");
        assert_eq!(stats.bound_skips, 0);
        assert_eq!(stats.candidates_pruned, 45, "all 10·9/2 pairs pruned");
    }

    #[test]
    fn identical_clusters_collapse_with_one_comparison_each() {
        let params = Params::paper_defaults();
        let inputs: Vec<AtypicalCluster> =
            (0..5).map(|i| uniform(i, &[1, 2, 3], &[7, 8, 9])).collect();
        let mut ids = ClusterIdGen::new(100);
        let (out, stats) =
            integrate_aligned_indexed(inputs, &params, TimeAlignment::Absolute, &mut ids);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].merged_count, 5);
        assert_eq!(stats.merges, 4);
        assert_eq!(stats.candidates_pruned, 0);
    }

    #[test]
    fn min_balance_bound_skips_weak_overlaps() {
        // Under g = min the one-sided bound equals the probe's own overlap
        // fraction: a probe putting 1/11 of its mass on the shared sensor
        // (and nothing on shared windows) is bounded by ½·(1/11 + 0) ≤ δsim
        // and skipped without an exact evaluation.
        let params = Params::paper_defaults().with_balance(BalanceFunction::Min);
        let a = cluster(1, &[(1, 100.0), (2, 10.0)], &[(5, 110.0)]);
        let b = cluster(2, &[(2, 1.0), (3, 100.0)], &[(9, 101.0)]);
        let mut ids = ClusterIdGen::new(10);
        let (out, stats) =
            integrate_aligned_indexed(vec![a, b], &params, TimeAlignment::Absolute, &mut ids);
        assert_eq!(out.len(), 2);
        assert_eq!(stats.bound_skips, 1, "shared sensor, but bound ≤ δsim");
        assert_eq!(stats.comparisons, 0);
    }

    #[test]
    fn persistent_admission_matches_batch_result() {
        let params = Params::paper_defaults();
        // Six groups of identical clusters, disjoint across groups, so the
        // fixpoint partition is order-independent and batch vs eager
        // admission must agree on content.
        let inputs: Vec<AtypicalCluster> = (0..20)
            .map(|i| {
                let base = (i % 6) as u32 * 4;
                uniform(i, &[base, base + 1, base + 2], &[base, base + 1, base + 2])
            })
            .collect();
        let mut ids_batch = ClusterIdGen::new(500);
        let (batch, _) = integrate_aligned_indexed(
            inputs.clone(),
            &params,
            TimeAlignment::Absolute,
            &mut ids_batch,
        );

        let mut ids_live = ClusterIdGen::new(500);
        let mut live = IndexedIntegrator::new(&params, TimeAlignment::Absolute);
        for c in inputs {
            live.admit(c, &mut ids_live);
        }
        assert_eq!(live.len(), batch.len());
        // Content equality as multisets: ids can differ because the batch
        // queue defers merged clusters while admission re-places eagerly.
        let mut batch_sets: Vec<_> = batch
            .iter()
            .map(|c| (c.sf.clone(), c.tf.clone(), c.merged_count))
            .collect();
        let mut live_sets: Vec<_> = live
            .snapshot()
            .iter()
            .map(|c| (c.sf.clone(), c.tf.clone(), c.merged_count))
            .collect();
        batch_sets.sort_by_key(|t| format!("{t:?}"));
        live_sets.sort_by_key(|t| format!("{t:?}"));
        assert_eq!(batch_sets, live_sets);
        assert!(live.stats().merges > 0);
    }

    #[test]
    fn slab_reuses_slots_across_merges() {
        // Repeated merges churn slots; the free list must recycle them and
        // keep postings consistent (exercised by naive equivalence).
        let params = Params::paper_defaults().with_delta_sim(0.3);
        let inputs: Vec<AtypicalCluster> = (0..30)
            .map(|i| {
                let base = (i % 3) as u32;
                uniform(i, &[base, base + 1], &[10, 11])
            })
            .collect();
        let mut ids_a = ClusterIdGen::new(1000);
        let mut ids_b = ClusterIdGen::new(1000);
        let (indexed, is) =
            integrate_aligned_indexed(inputs.clone(), &params, TimeAlignment::Absolute, &mut ids_a);
        let (naive, ns) =
            integrate_aligned_naive(inputs, &params, TimeAlignment::Absolute, &mut ids_b);
        assert_eq!(indexed, naive);
        assert_eq!(is.merges, ns.merges);
        assert!(is.comparisons <= ns.comparisons);
    }
}
