//! Context-dimension joins (§V-D).
//!
//! "The weather dimension can be joined with temporal dimension with the
//! date and the accident dimension can be joined with temporal and spatial
//! dimensions by the accident time and location." Both joins are generic:
//! any per-day label stream and any point-event stream work, so the module
//! has no dependency on a specific simulator.

use crate::cluster::AtypicalCluster;
use cps_core::fx::FxHashMap;
use cps_core::{SensorId, Severity, TimeWindow, WindowSpec};

/// Per-day labels (weather conditions, holidays, …).
#[derive(Clone, Debug, Default)]
pub struct DayLabels<L: Clone> {
    labels: FxHashMap<u32, L>,
}

impl<L: Clone> DayLabels<L> {
    /// Builds from `(day, label)` pairs; later pairs win.
    pub fn from_pairs<I: IntoIterator<Item = (u32, L)>>(pairs: I) -> Self {
        Self {
            labels: pairs.into_iter().collect(),
        }
    }

    /// Label of one day.
    pub fn get(&self, day: u32) -> Option<&L> {
        self.labels.get(&day)
    }

    /// Severity-weighted label distribution of a cluster: how much of the
    /// cluster's severity fell on days with each label.
    pub fn distribution(&self, cluster: &AtypicalCluster, spec: WindowSpec) -> Vec<(L, Severity)>
    where
        L: PartialEq,
    {
        let mut out: Vec<(L, Severity)> = Vec::new();
        for (window, severity) in cluster.tf.iter() {
            let Some(label) = self.get(spec.day_of(window)) else {
                continue;
            };
            match out.iter_mut().find(|(l, _)| l == label) {
                Some((_, s)) => *s += severity,
                None => out.push((label.clone(), severity)),
            }
        }
        out
    }

    /// The label carrying the most of the cluster's severity.
    pub fn dominant(&self, cluster: &AtypicalCluster, spec: WindowSpec) -> Option<L>
    where
        L: PartialEq,
    {
        self.distribution(cluster, spec)
            .into_iter()
            .max_by_key(|&(_, s)| s)
            .map(|(l, _)| l)
    }
}

/// A point event in (sensor, window) space — e.g. an accident report.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PointEvent {
    /// Sensor nearest the event.
    pub sensor: SensorId,
    /// Window the event was reported in.
    pub window: TimeWindow,
}

/// Joins point events onto a cluster: an event is *linked* when its sensor
/// is in the cluster's spatial feature and its window within
/// `slack_windows` of some covered window (an accident just before the jam
/// forms still counts).
pub fn linked_events<'a>(
    cluster: &AtypicalCluster,
    events: &'a [PointEvent],
    slack_windows: u32,
) -> Vec<&'a PointEvent> {
    let Some((w_lo, w_hi)) = cluster.tf.key_span() else {
        return Vec::new();
    };
    let lo = w_lo.raw().saturating_sub(slack_windows);
    let hi = w_hi.raw().saturating_add(slack_windows);
    events
        .iter()
        .filter(|e| e.window.raw() >= lo && e.window.raw() <= hi && cluster.sf.contains(e.sensor))
        .collect()
}

/// Clusters whose dominant label equals `wanted` — "show me the congestions
/// related to bad weather".
pub fn clusters_with_label<'a, L: Clone + PartialEq>(
    clusters: &'a [AtypicalCluster],
    labels: &DayLabels<L>,
    spec: WindowSpec,
    wanted: &L,
) -> Vec<&'a AtypicalCluster> {
    clusters
        .iter()
        .filter(|c| labels.dominant(c, spec).as_ref() == Some(wanted))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feature::{SpatialFeature, TemporalFeature};
    use cps_core::ClusterId;

    fn cluster_on_windows(windows: &[(u32, f64)], sensors: &[u32]) -> AtypicalCluster {
        let tf: TemporalFeature = windows
            .iter()
            .map(|&(w, m)| (TimeWindow::new(w), Severity::from_minutes(m)))
            .collect();
        let total = tf.total();
        let per = Severity::from_secs(total.as_secs() / sensors.len() as u64);
        let mut sf: SpatialFeature = sensors.iter().map(|&s| (SensorId::new(s), per)).collect();
        // Fix rounding drift so the invariant holds.
        let drift = total.saturating_sub(sf.total());
        if !drift.is_zero() {
            sf.add(SensorId::new(sensors[0]), drift);
        }
        AtypicalCluster::new(ClusterId::new(1), sf, tf)
    }

    #[test]
    fn dominant_label_follows_severity_mass() {
        let spec = WindowSpec::PEMS;
        let labels = DayLabels::from_pairs([(0u32, "clear"), (1, "rain")]);
        // 100 min on day 0, 300 min on day 1.
        let c = cluster_on_windows(&[(100, 100.0), (388, 300.0)], &[1, 2]);
        assert_eq!(labels.dominant(&c, spec), Some("rain"));
        let dist = labels.distribution(&c, spec);
        assert_eq!(dist.len(), 2);
    }

    #[test]
    fn unlabeled_days_are_skipped() {
        let spec = WindowSpec::PEMS;
        let labels: DayLabels<&str> = DayLabels::from_pairs([(0u32, "clear")]);
        let c = cluster_on_windows(&[(10_000, 300.0)], &[1]);
        assert_eq!(labels.dominant(&c, spec), None);
        assert!(labels.get(34).is_none());
    }

    #[test]
    fn linked_events_need_space_and_time_overlap() {
        let c = cluster_on_windows(&[(100, 50.0), (101, 50.0)], &[1, 2]);
        let events = vec![
            PointEvent {
                sensor: SensorId::new(1),
                window: TimeWindow::new(99),
            }, // slack hit
            PointEvent {
                sensor: SensorId::new(1),
                window: TimeWindow::new(50),
            }, // too early
            PointEvent {
                sensor: SensorId::new(9),
                window: TimeWindow::new(100),
            }, // wrong place
            PointEvent {
                sensor: SensorId::new(2),
                window: TimeWindow::new(101),
            }, // direct hit
        ];
        let linked = linked_events(&c, &events, 2);
        assert_eq!(linked.len(), 2);
        assert!(linked.iter().all(|e| e.sensor.raw() <= 2));
    }

    #[test]
    fn filter_by_label() {
        let spec = WindowSpec::PEMS;
        let labels = DayLabels::from_pairs([(0u32, "clear"), (1, "rain")]);
        let clear_day = cluster_on_windows(&[(100, 100.0)], &[1]);
        let rain_day = cluster_on_windows(&[(388, 100.0)], &[2]);
        let clusters = vec![clear_day, rain_day];
        let rainy = clusters_with_label(&clusters, &labels, spec, &"rain");
        assert_eq!(rainy.len(), 1);
        assert!(rainy[0].sf.contains(SensorId::new(2)));
    }

    #[test]
    fn empty_cluster_links_nothing() {
        let c = AtypicalCluster::new(
            ClusterId::new(1),
            SpatialFeature::new(),
            TemporalFeature::new(),
        );
        let events = vec![PointEvent {
            sensor: SensorId::new(1),
            window: TimeWindow::new(1),
        }];
        assert!(linked_events(&c, &events, 5).is_empty());
    }
}
