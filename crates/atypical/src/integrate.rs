//! Cluster integration (Algorithm 3).
//!
//! Repeatedly merges any pair of clusters whose similarity exceeds `δsim`
//! until no pair qualifies. The output set is a *fixpoint*: pairwise
//! similarity ≤ `δsim`. Because the merge operation is commutative and
//! associative (Property 3), any merge order yields a valid result; like
//! the paper's hard clustering, the *partition* itself can depend on order
//! when similarities straddle the threshold (§V-D discusses why that is
//! acceptable) — `integrate` is deterministic for a given input order, and
//! the test-suite quantifies the order effect explicitly.

use crate::cluster::AtypicalCluster;
use crate::feature::TemporalFeature;
use crate::integrate_index::integrate_aligned_indexed;
use crate::similarity::{fold_tf, similarity, similarity_folded, similarity_parts};
use cps_core::ids::ClusterIdGen;
use cps_core::{ClusterId, Params};
use std::collections::VecDeque;

/// How temporal features are compared during integration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TimeAlignment {
    /// Compare absolute time windows. Events on different days never look
    /// temporally similar — appropriate for within-day integration only.
    Absolute,
    /// Compare time-of-day windows (fold by `windows_per_day`): recurring
    /// daily events at the same clock time align, which is how the forest
    /// integrates a month of rush-hour jams into one macro-cluster while
    /// keeping the morning/evening pair of Example 5 apart.
    TimeOfDay {
        /// Windows per day of the deployment's [`cps_core::WindowSpec`].
        windows_per_day: u32,
    },
}

/// Statistics from one integration run.
///
/// `comparisons` counts similarity *evaluations*, not distinct unordered
/// cluster pairs: when a merge re-enqueues the merged cluster at the back of
/// the work queue, it is compared afresh against result members its
/// constituents were already compared with (the merged cluster is a new
/// cluster, so those evaluations are not redundant — but they do mean the
/// count exceeds `n·(n−1)/2` on merge-heavy inputs). The
/// `naive_comparisons_count_reevaluations_after_merge` regression test pins
/// this behavior for the naive oracle.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IntegrationStats {
    /// Pairwise similarity evaluations performed (exact `Sim` computations;
    /// on the indexed path this excludes pruned candidates and bound skips).
    pub comparisons: u64,
    /// Merge operations performed.
    pub merges: u64,
    /// Result-set members never evaluated against an incoming cluster
    /// because they share no sensor and no (aligned) window with it — the
    /// inverted index proves their similarity is exactly zero. Always zero
    /// on the naive path.
    pub candidates_pruned: u64,
    /// Candidates skipped because an admissible upper bound on their
    /// similarity was already ≤ `δsim`, without computing the exact value.
    /// Always zero on the naive path.
    pub bound_skips: u64,
}

impl IntegrationStats {
    /// Folds another run's counters into this one (forest roll-ups
    /// accumulate stats across many integration calls).
    ///
    /// **Invariant: order-independent.** Every field is a plain counter
    /// sum, so absorbing a set of per-node stats yields the same totals
    /// in any order. The deterministic parallel engine (`crate::par`)
    /// depends on this to report identical stats at every thread count;
    /// `par::tests::stats_absorb_is_order_independent` is the regression
    /// test that gates adding any order-sensitive field here.
    pub fn absorb(&mut self, other: IntegrationStats) {
        self.comparisons += other.comparisons;
        self.merges += other.merges;
        self.candidates_pruned += other.candidates_pruned;
        self.bound_skips += other.bound_skips;
    }
}

/// A cluster paired with its alignment-folded temporal feature, the unit
/// both integration strategies operate on. Folding is done once per input
/// and maintained incrementally through merges (folded features are
/// algebraic too).
pub(crate) struct Aligned {
    pub(crate) cluster: AtypicalCluster,
    /// `Some(folded TF)` under [`TimeAlignment::TimeOfDay`], `None` under
    /// [`TimeAlignment::Absolute`].
    pub(crate) folded: Option<TemporalFeature>,
}

impl Aligned {
    /// Wraps an input cluster, folding its temporal feature if needed.
    pub(crate) fn new(cluster: AtypicalCluster, alignment: TimeAlignment) -> Self {
        let folded = match alignment {
            TimeAlignment::Absolute => None,
            TimeAlignment::TimeOfDay { windows_per_day } => {
                Some(fold_tf(&cluster.tf, windows_per_day))
            }
        };
        Self { cluster, folded }
    }

    /// The temporal feature similarity is computed on: the folded one when
    /// present, the raw one otherwise.
    pub(crate) fn tf(&self) -> &TemporalFeature {
        self.folded.as_ref().unwrap_or(&self.cluster.tf)
    }

    /// Equation 2 against another aligned cluster.
    pub(crate) fn similarity_to(&self, other: &Aligned, g: cps_core::BalanceFunction) -> f64 {
        similarity_parts(
            &self.cluster.sf,
            self.tf(),
            &other.cluster.sf,
            other.tf(),
            g,
        )
    }

    /// Merges two aligned clusters (Algorithm 2 plus incremental fold
    /// maintenance).
    pub(crate) fn merge(self, other: Aligned, id: ClusterId) -> Aligned {
        let folded = match (self.folded, other.folded) {
            (Some(a), Some(b)) => Some(a.merge(&b)),
            _ => None,
        };
        Aligned {
            cluster: self.cluster.merge(&other.cluster, id),
            folded,
        }
    }
}

/// Integrates clusters into macro-clusters (Algorithm 3) with absolute time
/// comparison. See [`integrate_aligned`] for the cross-day variant.
pub fn integrate(
    clusters: Vec<AtypicalCluster>,
    params: &Params,
    ids: &mut ClusterIdGen,
) -> Vec<AtypicalCluster> {
    integrate_aligned(clusters, params, TimeAlignment::Absolute, ids).0
}

/// [`integrate`] with stats and absolute alignment.
pub fn integrate_with_stats(
    clusters: Vec<AtypicalCluster>,
    params: &Params,
    ids: &mut ClusterIdGen,
) -> (Vec<AtypicalCluster>, IntegrationStats) {
    integrate_aligned(clusters, params, TimeAlignment::Absolute, ids)
}

/// Integrates clusters into macro-clusters (Algorithm 3), dispatching on
/// [`Params::indexed_integration`]: inverted-index candidate generation
/// (default) or the naive pairwise scan. Both strategies walk the same work
/// queue in the same order and merge with the same first above-threshold
/// result member, so they produce **identical** outputs — the indexed path
/// only skips evaluations the index proves are ≤ `δsim`
/// (`tests/integrate_differential.rs` asserts the equivalence).
pub fn integrate_aligned(
    clusters: Vec<AtypicalCluster>,
    params: &Params,
    alignment: TimeAlignment,
    ids: &mut ClusterIdGen,
) -> (Vec<AtypicalCluster>, IntegrationStats) {
    if params.indexed_integration {
        integrate_aligned_indexed(clusters, params, alignment, ids)
    } else {
        integrate_aligned_naive(clusters, params, alignment, ids)
    }
}

/// Integrates clusters into macro-clusters (Algorithm 3) with the naive
/// full pairwise scan — the differential-test oracle for the indexed path.
///
/// Work-queue formulation: every cluster is compared against the tentative
/// result set (an invariant: pairwise non-similar). On a hit the pair is
/// merged and re-enqueued, re-examining it against everything — exactly the
/// fixpoint Algorithm 3 reaches, in `O(n²)` comparisons when nothing merges
/// and `O(n·m)` extra work for `m` merges (Proposition 3's bound). Note the
/// re-enqueue means [`IntegrationStats::comparisons`] counts evaluations,
/// not distinct pairs: a merged cluster is compared against result members
/// its constituents already saw (see the stats type's docs).
///
/// Folded temporal features are computed once per input and merged
/// incrementally (they are algebraic too), so alignment adds `O(l)` per
/// cluster, not per comparison.
pub fn integrate_aligned_naive(
    clusters: Vec<AtypicalCluster>,
    params: &Params,
    alignment: TimeAlignment,
    ids: &mut ClusterIdGen,
) -> (Vec<AtypicalCluster>, IntegrationStats) {
    let mut stats = IntegrationStats::default();
    let mut queue: VecDeque<Aligned> = clusters
        .into_iter()
        .map(|c| Aligned::new(c, alignment))
        .collect();
    let mut result: Vec<Aligned> = Vec::with_capacity(queue.len());

    while let Some(candidate) = queue.pop_front() {
        let mut hit = None;
        for (i, existing) in result.iter().enumerate() {
            stats.comparisons += 1;
            if candidate.similarity_to(existing, params.balance) > params.delta_sim {
                hit = Some(i);
                break;
            }
        }
        match hit {
            Some(i) => {
                let existing = result.swap_remove(i);
                stats.merges += 1;
                queue.push_back(candidate.merge(existing, ids.next_id()));
            }
            None => result.push(candidate),
        }
    }
    let out: Vec<AtypicalCluster> = result.into_iter().map(|e| e.cluster).collect();
    debug_assert!(
        is_fixpoint_aligned(&out, params, alignment),
        "naive integration must return a pairwise-non-similar set"
    );
    (out, stats)
}

/// Checks the Algorithm-3 fixpoint condition: no pair in `clusters` exceeds
/// `δsim`. Used by tests and debug assertions.
pub fn is_fixpoint(clusters: &[AtypicalCluster], params: &Params) -> bool {
    is_fixpoint_aligned(clusters, params, TimeAlignment::Absolute)
}

/// [`is_fixpoint`] under an explicit [`TimeAlignment`]: the pairwise check
/// uses the same similarity the integration run used, so every `integrate*`
/// return site can `debug_assert!` it. `O(n²)` — debug builds only.
pub fn is_fixpoint_aligned(
    clusters: &[AtypicalCluster],
    params: &Params,
    alignment: TimeAlignment,
) -> bool {
    for (i, a) in clusters.iter().enumerate() {
        for b in &clusters[i + 1..] {
            let sim = match alignment {
                TimeAlignment::Absolute => similarity(a, b, params.balance),
                TimeAlignment::TimeOfDay { windows_per_day } => {
                    similarity_folded(a, b, params.balance, windows_per_day)
                }
            };
            if sim > params.delta_sim {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feature::{SpatialFeature, TemporalFeature};
    use cps_core::{ClusterId, SensorId, Severity, TimeWindow};

    fn cluster(id: u64, sensors: &[u32], windows: &[u32]) -> AtypicalCluster {
        let sf: SpatialFeature = sensors
            .iter()
            .map(|&s| (SensorId::new(s), Severity::from_minutes(10.0)))
            .collect();
        let tf: TemporalFeature = windows
            .iter()
            .map(|&w| (TimeWindow::new(w), Severity::from_minutes(10.0)))
            .collect();
        // Balance totals through uniform weights: give TF the same total as
        // SF by scaling — simplest is to require equal counts in tests.
        assert_eq!(
            sensors.len(),
            windows.len(),
            "test helper needs equal sizes"
        );
        AtypicalCluster::new(ClusterId::new(id), sf, tf)
    }

    fn params() -> Params {
        Params::paper_defaults()
    }

    #[test]
    fn similar_chain_collapses_to_one() {
        // a~b, b~c (transitively mergeable through the macro).
        let a = cluster(1, &[1, 2, 3, 4], &[10, 11, 12, 13]);
        let b = cluster(2, &[2, 3, 4, 5], &[11, 12, 13, 14]);
        let c = cluster(3, &[3, 4, 5, 6], &[12, 13, 14, 15]);
        let mut ids = ClusterIdGen::new(100);
        let out = integrate(vec![a, b, c], &params(), &mut ids);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].merged_count, 3);
        assert_eq!(out[0].severity(), Severity::from_minutes(120.0));
    }

    #[test]
    fn dissimilar_clusters_stay_apart() {
        let a = cluster(1, &[1, 2], &[10, 11]);
        let b = cluster(2, &[50, 51], &[10, 11]); // same time, disjoint space
        let c = cluster(3, &[1, 2], &[500, 501]); // same space, disjoint time
        let mut ids = ClusterIdGen::new(100);
        let out = integrate(vec![a, b, c], &params(), &mut ids);
        // sim(a,b) = ½(0 + 1) = 0.5, not > 0.5 ⇒ no merge; sim(a,c) likewise.
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn result_is_a_fixpoint() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        let clusters: Vec<AtypicalCluster> = (0..40)
            .map(|i| {
                let base_s = rng.gen_range(0..30u32);
                let base_w = rng.gen_range(0..30u32);
                let keys_s: Vec<u32> = (0..4).map(|k| base_s + k).collect();
                let keys_w: Vec<u32> = (0..4).map(|k| base_w + k).collect();
                cluster(i, &keys_s, &keys_w)
            })
            .collect();
        let p = params();
        let mut ids = ClusterIdGen::new(1000);
        let (out, stats) = integrate_with_stats(clusters, &p, &mut ids);
        assert!(is_fixpoint(&out, &p));
        assert!(stats.comparisons > 0);
    }

    #[test]
    fn severity_is_conserved() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(8);
        let clusters: Vec<AtypicalCluster> = (0..30)
            .map(|i| {
                let b = rng.gen_range(0..20u32);
                cluster(i, &[b, b + 1, b + 2], &[b, b + 1, b + 2])
            })
            .collect();
        let total_before: Severity = clusters.iter().map(|c| c.severity()).sum();
        let mut ids = ClusterIdGen::new(1000);
        let out = integrate(clusters, &params(), &mut ids);
        let total_after: Severity = out.iter().map(|c| c.severity()).sum();
        assert_eq!(total_before, total_after);
    }

    #[test]
    fn merged_counts_sum_to_input_count() {
        let clusters: Vec<AtypicalCluster> = (0..10)
            .map(|i| cluster(i, &[i as u32 / 2], &[i as u32 / 2]))
            .collect();
        let mut ids = ClusterIdGen::new(1000);
        let out = integrate(clusters, &params(), &mut ids);
        let merged: u32 = out.iter().map(|c| c.merged_count).sum();
        assert_eq!(merged, 10);
    }

    #[test]
    fn order_shuffling_keeps_significant_mass_stable() {
        // §V-D: hard clustering is order-sensitive, but the effect on large
        // clusters is bounded. Verify total severity of big clusters varies
        // by < 20 % across shuffles.
        use rand::{rngs::StdRng, seq::SliceRandom, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(17);
        let clusters: Vec<AtypicalCluster> = (0..60)
            .map(|i| {
                let b = rng.gen_range(0..12u32) * 3;
                cluster(i, &[b, b + 1, b + 2, b + 3], &[b, b + 1, b + 2, b + 3])
            })
            .collect();
        let p = params();
        let mut biggest = Vec::new();
        for shuffle in 0..5 {
            let mut input = clusters.clone();
            let mut srng = StdRng::seed_from_u64(shuffle);
            input.shuffle(&mut srng);
            let mut ids = ClusterIdGen::new(1000);
            let out = integrate(input, &p, &mut ids);
            let max_sev = out.iter().map(|c| c.severity()).max().unwrap();
            biggest.push(max_sev.as_minutes());
        }
        let lo = biggest.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = biggest.iter().cloned().fold(0.0, f64::max);
        assert!(hi / lo < 1.2, "order effect too large: {biggest:?}");
    }

    #[test]
    fn time_of_day_alignment_merges_recurring_days() {
        // The same cluster shape on three consecutive days (windows shifted
        // by 288 each day).
        let wpd = 288u32;
        let daily: Vec<AtypicalCluster> = (0..3u32)
            .map(|d| {
                cluster(
                    u64::from(d),
                    &[1, 2, 3],
                    &[d * wpd + 100, d * wpd + 101, d * wpd + 102],
                )
            })
            .collect();
        let p = params();
        let mut ids = ClusterIdGen::new(50);
        let (absolute, _) = integrate_aligned(daily.clone(), &p, TimeAlignment::Absolute, &mut ids);
        assert_eq!(
            absolute.len(),
            3,
            "absolute windows never align across days"
        );
        let (folded, stats) = integrate_aligned(
            daily,
            &p,
            TimeAlignment::TimeOfDay {
                windows_per_day: wpd,
            },
            &mut ids,
        );
        assert_eq!(folded.len(), 1, "recurring event integrates when folded");
        assert_eq!(folded[0].merged_count, 3);
        assert_eq!(stats.merges, 2);
        // Absolute windows are preserved in the merged temporal feature.
        assert_eq!(folded[0].tf.len(), 9);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        /// Strategy: a random cluster over a small key universe (SF and TF
        /// key counts equal so the invariant helper applies).
        fn arb_cluster(id: u64) -> impl Strategy<Value = AtypicalCluster> {
            (0u32..24, 2u32..6).prop_map(move |(base, n)| {
                let keys_s: Vec<u32> = (base..base + n).collect();
                let keys_w: Vec<u32> = (base..base + n).collect();
                cluster(id, &keys_s, &keys_w)
            })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// Severity and micro counts are conserved by integration,
            /// regardless of input, threshold or balance function.
            #[test]
            fn prop_integration_conserves_mass(
                seeds in prop::collection::vec(0u64..100, 1..25),
                delta_sim in 0.05f64..0.95,
                g_idx in 0usize..5,
            ) {
                let clusters: Vec<AtypicalCluster> = seeds
                    .iter()
                    .enumerate()
                    .map(|(i, &s)| {
                        let base = (s % 20) as u32;
                        let n = 2 + (s % 4) as u32;
                        let keys: Vec<u32> = (base..base + n).collect();
                        cluster(i as u64, &keys, &keys)
                    })
                    .collect();
                let p = Params::paper_defaults()
                    .with_delta_sim(delta_sim)
                    .with_balance(cps_core::BalanceFunction::ALL[g_idx]);
                let total_before: Severity = clusters.iter().map(|c| c.severity()).sum();
                let n_before = clusters.len() as u32;
                let mut ids = ClusterIdGen::new(10_000);
                let (out, stats) = integrate_with_stats(clusters, &p, &mut ids);
                let total_after: Severity = out.iter().map(|c| c.severity()).sum();
                let merged: u32 = out.iter().map(|c| c.merged_count).sum();
                prop_assert_eq!(total_before, total_after);
                prop_assert_eq!(merged, n_before);
                prop_assert_eq!(out.len() as u64, u64::from(n_before) - stats.merges);
                prop_assert!(is_fixpoint(&out, &p));
            }

            /// Folded integration also conserves mass and reaches a folded
            /// fixpoint.
            #[test]
            fn prop_folded_integration_conserves_mass(
                pair in (prop::collection::vec(0u64..50, 1..15), 1u32..4),
            ) {
                let (seeds, day_span) = pair;
                let wpd = 288u32;
                let clusters: Vec<AtypicalCluster> = seeds
                    .iter()
                    .enumerate()
                    .map(|(i, &s)| {
                        let day = (s % u64::from(day_span)) as u32;
                        let base = (s % 15) as u32;
                        let keys_s: Vec<u32> = (base..base + 3).collect();
                        let keys_w: Vec<u32> = (0..3).map(|k| day * wpd + base + k).collect();
                        cluster(i as u64, &keys_s, &keys_w)
                    })
                    .collect();
                let p = Params::paper_defaults();
                let total_before: Severity = clusters.iter().map(|c| c.severity()).sum();
                let mut ids = ClusterIdGen::new(10_000);
                let (out, _) = integrate_aligned(
                    clusters,
                    &p,
                    TimeAlignment::TimeOfDay { windows_per_day: wpd },
                    &mut ids,
                );
                let total_after: Severity = out.iter().map(|c| c.severity()).sum();
                prop_assert_eq!(total_before, total_after);
                for (i, a) in out.iter().enumerate() {
                    for b in &out[i + 1..] {
                        prop_assert!(
                            crate::similarity::similarity_folded(a, b, p.balance, wpd)
                                <= p.delta_sim
                        );
                    }
                }
            }

            /// Single-use check used by arb_cluster (keeps the strategy
            /// honest about the SF/TF invariant).
            #[test]
            fn prop_arb_cluster_valid(c in arb_cluster(7)) {
                prop_assert_eq!(c.sf.total(), c.tf.total());
            }
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let mut ids = ClusterIdGen::new(1);
        assert!(integrate(vec![], &params(), &mut ids).is_empty());
        let one = cluster(1, &[1], &[1]);
        let out = integrate(vec![one.clone()], &params(), &mut ids);
        assert_eq!(out, vec![one]);
    }

    /// Pins the naive oracle's `comparisons` accounting: the work-queue
    /// re-enqueues merged clusters at the back, so result members already
    /// examined by a merge's constituents are evaluated again against the
    /// merged cluster. With input `[a, b, c]` where only `b ~ c`:
    ///
    /// * `a` enters an empty result — 0 evaluations;
    /// * `b` vs `a` — 1 evaluation, no hit;
    /// * `c` vs `a` (miss), `c` vs `b` (hit, merge) — 2 evaluations;
    /// * merged `b∪c` re-enqueued, vs `a` — 1 evaluation (a *new* cluster,
    ///   but `a` was already compared against both constituents).
    ///
    /// Total: 4 evaluations for 3 distinct input pairs, 1 merge. This is an
    /// evaluation count by design (the merged cluster's similarity to `a`
    /// is genuinely unknown); this test exists so any future change to the
    /// accounting is a conscious one.
    #[test]
    fn naive_comparisons_count_reevaluations_after_merge() {
        let a = cluster(1, &[100, 101], &[100, 101]);
        let b = cluster(2, &[1, 2, 3, 4], &[10, 11, 12, 13]);
        let c = cluster(3, &[2, 3, 4, 5], &[11, 12, 13, 14]);
        let p = params().with_indexed_integration(false);
        let mut ids = ClusterIdGen::new(50);
        let (out, stats) = integrate_aligned(vec![a, b, c], &p, TimeAlignment::Absolute, &mut ids);
        assert_eq!(out.len(), 2);
        assert_eq!(stats.merges, 1);
        assert_eq!(stats.comparisons, 4, "3 distinct pairs + 1 re-evaluation");
        assert_eq!(stats.candidates_pruned, 0, "naive path never prunes");
        assert_eq!(stats.bound_skips, 0, "naive path never bound-skips");
    }

    /// The `Params::indexed_integration` flag selects the strategy; both
    /// strategies return identical clusters (ids included) and identical
    /// merge counts, and the indexed one never evaluates more pairs.
    #[test]
    fn dispatch_strategies_agree_exactly() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(12);
        let clusters: Vec<AtypicalCluster> = (0..50)
            .map(|i| {
                let base = rng.gen_range(0..40u32);
                let keys: Vec<u32> = (base..base + 3).collect();
                cluster(i, &keys, &keys)
            })
            .collect();
        for alignment in [
            TimeAlignment::Absolute,
            TimeAlignment::TimeOfDay {
                windows_per_day: 288,
            },
        ] {
            let naive_params = params().with_indexed_integration(false);
            let indexed_params = params().with_indexed_integration(true);
            let mut ids_n = ClusterIdGen::new(1000);
            let mut ids_i = ClusterIdGen::new(1000);
            let (naive, ns) =
                integrate_aligned(clusters.clone(), &naive_params, alignment, &mut ids_n);
            let (indexed, is) =
                integrate_aligned(clusters.clone(), &indexed_params, alignment, &mut ids_i);
            assert_eq!(naive, indexed, "{alignment:?}");
            assert_eq!(ns.merges, is.merges, "{alignment:?}");
            assert!(is.comparisons <= ns.comparisons, "{alignment:?}");
        }
    }
}
