//! Deterministic parallel integration of sibling forest nodes.
//!
//! Sibling aggregation nodes (the weeks of a month, the weekday/weekend
//! trees, the months of a range) are independent: each one integrates its
//! own input multiset, and Property 3 (commutative/associative merge)
//! guarantees each node's fixpoint depends only on its own input order —
//! never on when its siblings run. That makes the forest embarrassingly
//! parallel *across* nodes while staying sequential (and therefore
//! byte-for-byte reproducible) *within* each node.
//!
//! The one shared resource is the cluster-id generator: Algorithm 2
//! allocates a fresh id per merge, and the sequential code hands ids out
//! in node-path order (node 0's merges first, then node 1's, ...). To
//! keep parallel output **bit-identical** — fresh merge ids included —
//! each parallel node integrates against a scratch generator based at
//! [`TEMP_ID_BASE`], and results are committed in canonical node-path
//! order: node `k`'s scratch ids `TEMP_ID_BASE + t` are rewritten to
//! `base_k + t`, where `base_k` is the shared generator's position after
//! nodes `0..k` committed. Because one merge allocates exactly one id,
//! the rewritten sequence is the sequence the sequential run would have
//! produced. Unmerged pass-through clusters keep their input ids and are
//! never rewritten (their ids sit far below [`TEMP_ID_BASE`]).
//!
//! Statistics are committed in the same canonical order; every
//! [`IntegrationStats`] field is a plain sum, so the totals are
//! order-independent anyway (`stats_absorb_is_order_independent` pins
//! that).

use crate::cluster::AtypicalCluster;
use crate::integrate::{integrate_aligned, IntegrationStats, TimeAlignment};
use cps_core::ids::ClusterIdGen;
use cps_core::{ClusterId, Params};

/// Base of the scratch id range used while a sibling node integrates off
/// to the side. Real cluster ids never reach this range (leaf ids are
/// dense from 1, forest roll-up ids from 1 000 000), which is what lets
/// the commit step tell fresh merge ids from pass-through input ids.
pub const TEMP_ID_BASE: u64 = 1 << 62;

/// Integrates each sibling node's input independently and returns the
/// per-node macro-clusters, in the same node order.
///
/// `threads <= 1` runs the exact sequential path: one
/// [`integrate_aligned`] call per node, in order, against the shared
/// generator. Any other thread count fans the nodes out over a
/// [`cps_par::Pool`] and commits results in node order as described in
/// the module docs — the output (ids included) and the accumulated
/// stats are bit-identical to the sequential path.
pub fn integrate_siblings(
    nodes: Vec<Vec<AtypicalCluster>>,
    params: &Params,
    alignment: TimeAlignment,
    ids: &mut ClusterIdGen,
    threads: usize,
) -> (Vec<Vec<AtypicalCluster>>, IntegrationStats) {
    let mut total = IntegrationStats::default();
    if threads <= 1 || nodes.len() <= 1 {
        // The pre-parallelism code path, bit for bit.
        let mut out = Vec::with_capacity(nodes.len());
        for inputs in nodes {
            let (macros, stats) = integrate_aligned(inputs, params, alignment, ids);
            total.absorb(stats);
            out.push(macros);
        }
        return (out, total);
    }

    debug_assert!(
        nodes.iter().flatten().all(|c| c.id.raw() < TEMP_ID_BASE),
        "input ids must stay below the scratch id range"
    );
    let pool = cps_par::Pool::new(threads);
    let results = pool.map(nodes, |_, inputs| {
        let mut scratch = ClusterIdGen::new(TEMP_ID_BASE);
        let (macros, stats) = integrate_aligned(inputs, params, alignment, &mut scratch);
        (macros, stats, scratch.allocated(TEMP_ID_BASE))
    });

    // Commit in canonical node-path order: rebase each node's scratch ids
    // onto the shared sequence, exactly where the sequential run would
    // have allocated them.
    let mut out = Vec::with_capacity(results.len());
    for (mut macros, stats, allocated) in results {
        let base = ids.peek();
        for cluster in &mut macros {
            if cluster.id.raw() >= TEMP_ID_BASE {
                cluster.id = ClusterId::new(base + (cluster.id.raw() - TEMP_ID_BASE));
            }
        }
        ids.advance(allocated);
        total.absorb(stats);
        out.push(macros);
    }
    (out, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feature::{SpatialFeature, TemporalFeature};
    use cps_core::{SensorId, Severity, TimeWindow};

    fn cluster(id: u64, base: u32, n: u32) -> AtypicalCluster {
        let sf: SpatialFeature = (base..base + n)
            .map(|s| (SensorId::new(s), Severity::from_secs(60)))
            .collect();
        let tf: TemporalFeature = (base..base + n)
            .map(|w| (TimeWindow::new(w), Severity::from_secs(60)))
            .collect();
        AtypicalCluster::new(ClusterId::new(id), sf, tf)
    }

    /// Three mergeable clusters around `site`, plus one loner.
    fn node(site: u32, first_id: u64) -> Vec<AtypicalCluster> {
        vec![
            cluster(first_id, site, 4),
            cluster(first_id + 1, site + 1, 4),
            cluster(first_id + 2, site + 2, 4),
            cluster(first_id + 3, site + 100, 3),
        ]
    }

    #[test]
    fn parallel_commit_reproduces_sequential_ids() {
        let params = Params::paper_defaults();
        let nodes: Vec<Vec<AtypicalCluster>> =
            (0..6).map(|k| node(k * 300, u64::from(k) * 10)).collect();
        let mut seq_ids = ClusterIdGen::new(500);
        let (seq, seq_stats) = integrate_siblings(
            nodes.clone(),
            &params,
            TimeAlignment::Absolute,
            &mut seq_ids,
            1,
        );
        for threads in [2, 3, 8] {
            let mut par_ids = ClusterIdGen::new(500);
            let (par, par_stats) = integrate_siblings(
                nodes.clone(),
                &params,
                TimeAlignment::Absolute,
                &mut par_ids,
                threads,
            );
            assert_eq!(par, seq, "{threads} threads");
            assert_eq!(par_stats, seq_stats, "{threads} threads");
            assert_eq!(par_ids.peek(), seq_ids.peek(), "{threads} threads");
        }
        // The merge-heavy nodes really did allocate fresh ids.
        assert!(seq_stats.merges > 0);
        assert!(seq.iter().flatten().any(|c| c.id.raw() >= 500));
    }

    #[test]
    fn pass_through_clusters_keep_their_input_ids() {
        let params = Params::paper_defaults();
        // Two nodes of mutually dissimilar clusters: nothing merges, so
        // nothing may be renumbered and no id may be consumed.
        let nodes = vec![
            vec![cluster(7, 0, 3), cluster(8, 500, 3)],
            vec![cluster(9, 1000, 3)],
        ];
        let mut ids = ClusterIdGen::new(42);
        let (out, stats) = integrate_siblings(nodes, &params, TimeAlignment::Absolute, &mut ids, 4);
        assert_eq!(stats.merges, 0);
        assert_eq!(ids.peek(), 42, "no merge, no id allocated");
        let got: Vec<u64> = out.iter().flatten().map(|c| c.id.raw()).collect();
        assert_eq!(got, vec![7, 8, 9]);
    }

    #[test]
    fn empty_and_single_node_inputs() {
        let params = Params::paper_defaults();
        let mut ids = ClusterIdGen::new(1);
        let (out, stats) =
            integrate_siblings(vec![], &params, TimeAlignment::Absolute, &mut ids, 8);
        assert!(out.is_empty());
        assert_eq!(stats, IntegrationStats::default());
        let (out, _) = integrate_siblings(
            vec![vec![cluster(1, 0, 3)]],
            &params,
            TimeAlignment::Absolute,
            &mut ids,
            8,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].len(), 1);
    }

    /// The regression test for order-independent stats accumulation:
    /// absorbing per-node stats in any order yields the same totals,
    /// because every field is a plain counter sum. If a traversal-order-
    /// dependent field (a "last seen", a max over an unspecified order,
    /// an average of averages) is ever added to [`IntegrationStats`],
    /// this test fails and the field must either be dropped or replaced
    /// by an order-free formulation before the parallel engine can
    /// accumulate it.
    #[test]
    fn stats_absorb_is_order_independent() {
        let parts: Vec<IntegrationStats> = (0..7)
            .map(|k| IntegrationStats {
                comparisons: 100 + k,
                merges: 10 + k,
                candidates_pruned: 1000 + 3 * k,
                bound_skips: 7 * k,
            })
            .collect();
        let mut forward = IntegrationStats::default();
        for s in &parts {
            forward.absorb(*s);
        }
        // Reverse order and a rotated order must agree with forward.
        let mut reverse = IntegrationStats::default();
        for s in parts.iter().rev() {
            reverse.absorb(*s);
        }
        let mut rotated = IntegrationStats::default();
        for i in 0..parts.len() {
            rotated.absorb(parts[(i + 3) % parts.len()]);
        }
        assert_eq!(forward, reverse);
        assert_eq!(forward, rotated);
    }
}
