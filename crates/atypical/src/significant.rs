//! Significant clusters (Definition 5).
//!
//! A cluster is *significant* for query `Q(W, T)` when
//! `severity(C) > δs · length(T) · N`, with `length(T)` the number of time
//! windows in `T` and `N` the number of sensors in `W`. The threshold is
//! relative: it scales with both the query's temporal extent and spatial
//! scope, so "significant for a day" and "significant for a month" mean
//! proportionally different things (the paper's discussion under
//! Definition 5).
//!
//! Unit note: severity is measured in minutes (atypical duration) while
//! `length(T)` counts windows, matching the magnitudes the paper reports
//! (e.g. Figure 21's ~10⁶-minute monthly significant clusters against
//! `δs·8640·4000`-minute thresholds).

use crate::cluster::AtypicalCluster;
use cps_core::{Params, Severity, TimeRange};

/// The significance threshold `δs · length(T) · N`, in severity units.
pub fn significance_threshold(params: &Params, range: TimeRange, n_sensors: u32) -> Severity {
    Severity::from_minutes(params.delta_s * f64::from(range.len()) * f64::from(n_sensors))
}

/// Whether `cluster` is significant for a query over `range` and
/// `n_sensors` (Definition 5).
pub fn is_significant(
    cluster: &AtypicalCluster,
    params: &Params,
    range: TimeRange,
    n_sensors: u32,
) -> bool {
    cluster.severity() > significance_threshold(params, range, n_sensors)
}

/// Splits clusters into `(significant, trivial)` for the given query scale.
pub fn partition_significant(
    clusters: Vec<AtypicalCluster>,
    params: &Params,
    range: TimeRange,
    n_sensors: u32,
) -> (Vec<AtypicalCluster>, Vec<AtypicalCluster>) {
    let threshold = significance_threshold(params, range, n_sensors);
    clusters.into_iter().partition(|c| c.severity() > threshold)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feature::{SpatialFeature, TemporalFeature};
    use cps_core::{ClusterId, SensorId, TimeWindow, WindowSpec};

    fn cluster_with_severity(minutes: f64) -> AtypicalCluster {
        let sf: SpatialFeature =
            std::iter::once((SensorId::new(1), Severity::from_minutes(minutes))).collect();
        let tf: TemporalFeature =
            std::iter::once((TimeWindow::new(1), Severity::from_minutes(minutes))).collect();
        AtypicalCluster::new(ClusterId::new(1), sf, tf)
    }

    #[test]
    fn threshold_scales_with_range_and_sensors() {
        let p = Params::paper_defaults(); // δs = 5 %
        let spec = WindowSpec::PEMS;
        let day = spec.day_range(0, 1);
        let week = spec.day_range(0, 7);
        let t_day = significance_threshold(&p, day, 100);
        let t_week = significance_threshold(&p, week, 100);
        assert_eq!(t_day, Severity::from_minutes(0.05 * 288.0 * 100.0));
        assert_eq!(t_week.as_secs(), 7 * t_day.as_secs());
        let t_more_sensors = significance_threshold(&p, day, 200);
        assert_eq!(t_more_sensors.as_secs(), 2 * t_day.as_secs());
    }

    #[test]
    fn significance_is_strict_inequality() {
        let p = Params::paper_defaults();
        let spec = WindowSpec::PEMS;
        let day = spec.day_range(0, 1);
        let threshold_min = 0.05 * 288.0 * 10.0;
        let at = cluster_with_severity(threshold_min);
        let above = cluster_with_severity(threshold_min + 1.0);
        assert!(!is_significant(&at, &p, day, 10));
        assert!(is_significant(&above, &p, day, 10));
    }

    #[test]
    fn partition_splits_correctly() {
        let p = Params::paper_defaults();
        let spec = WindowSpec::PEMS;
        let day = spec.day_range(0, 1);
        let clusters = vec![
            cluster_with_severity(10.0),
            cluster_with_severity(100_000.0),
            cluster_with_severity(20.0),
        ];
        let (sig, trivial) = partition_significant(clusters, &p, day, 10);
        assert_eq!(sig.len(), 1);
        assert_eq!(trivial.len(), 2);
        assert_eq!(sig[0].severity(), Severity::from_minutes(100_000.0));
    }

    #[test]
    fn monthly_cluster_insignificant_at_month_scale_unless_huge() {
        let p = Params::paper_defaults();
        let spec = WindowSpec::PEMS;
        let month = spec.day_range(0, 30);
        // A strong daily event (2,000 min) is significant for its day with
        // 100 sensors…
        let daily = cluster_with_severity(2_000.0);
        assert!(is_significant(&daily, &p, spec.day_range(0, 1), 100));
        // …but not for the month.
        assert!(!is_significant(&daily, &p, month, 100));
        // Twenty-five recurrences are significant for the month.
        let monthly = cluster_with_severity(2_000.0 * 25.0);
        assert!(is_significant(&monthly, &p, month, 100));
    }
}
