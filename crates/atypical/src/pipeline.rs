//! Offline construction pipeline: CPS dataset → atypical forest.
//!
//! Runs Algorithm 1 (event retrieval + micro-cluster summarization) over
//! each day partition and stores the results at the forest's leaf level.
//! Days are processed independently — matching the paper's setup where
//! "the system only pre-computes the micro-clusters of each day" — so an
//! event that straddles midnight is summarized as one cluster per day and
//! re-joined, if similar enough, during integration.

use crate::cluster::AtypicalCluster;

use crate::forest::AtypicalForest;
use cps_core::ids::ClusterIdGen;
use cps_core::{AtypicalRecord, DatasetId, Params, Result, WindowSpec};
use cps_geo::RoadNetwork;
use cps_index::StIndex;
use cps_storage::{DatasetStore, IoStats};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Size/work accounting from a construction run (Figures 15 and 16).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ConstructionStats {
    /// Atypical events extracted.
    pub n_events: usize,
    /// Micro-clusters produced (== events).
    pub n_micro_clusters: usize,
    /// Approximate bytes of the raw atypical-event model (`AE`).
    pub event_bytes: usize,
    /// Approximate bytes of the micro-cluster model (`AC`).
    pub cluster_bytes: usize,
    /// Atypical records consumed.
    pub n_records: usize,
}

impl ConstructionStats {
    /// Adds another run's counters into this one. Every field is a plain
    /// sum, so accumulation order does not matter — the parallel leaf
    /// build commits per-day stats in day order purely for consistency
    /// with the id rebase, not because the totals need it.
    pub fn absorb(&mut self, other: ConstructionStats) {
        self.n_events += other.n_events;
        self.n_micro_clusters += other.n_micro_clusters;
        self.event_bytes += other.event_bytes;
        self.cluster_bytes += other.cluster_bytes;
        self.n_records += other.n_records;
    }
}

/// Elapsed-time + size result of a construction run.
#[derive(Debug)]
pub struct Construction {
    /// The populated forest.
    pub forest: AtypicalForest,
    /// Size/work accounting.
    pub stats: ConstructionStats,
    /// Wall-clock construction time (excluding any raw-data pre-processing).
    pub elapsed: Duration,
}

/// Extracts one day's micro-clusters from its atypical records.
pub fn day_micro_clusters(
    records: &[AtypicalRecord],
    network: &RoadNetwork,
    params: &Params,
    spec: WindowSpec,
    ids: &mut ClusterIdGen,
    stats: &mut ConstructionStats,
) -> Vec<AtypicalCluster> {
    let index = StIndex::build(records, network, params, spec);
    let mut events = crate::event::extract_events(&index);
    // Trustworthiness filter (§II-A): drop uncorroborated tiny events.
    // Ids are allocated *after* filtering so they are dense and independent
    // of how many events were discarded (which also keeps the parallel
    // construction byte-identical to the sequential one).
    events.retain(|event| event.len() >= params.min_event_records as usize);
    stats.n_events += events.len();
    stats.n_micro_clusters += events.len();
    stats.n_records += records.len();
    let mut clusters = Vec::with_capacity(events.len());
    for event in &events {
        let cluster = AtypicalCluster::from_event(ids.next_id(), event);
        stats.event_bytes += event.approx_bytes();
        stats.cluster_bytes += cluster.approx_bytes();
        clusters.push(cluster);
    }
    clusters
}

/// Builds a forest from in-memory per-day record sets.
///
/// Leaf extraction fans out over [`Params::parallelism`] worker threads;
/// the result is bit-identical at every setting (see
/// [`build_forest_from_records_parallel`]), and `parallelism = 1` runs
/// the plain sequential loop on the calling thread.
pub fn build_forest_from_records<I>(
    days: I,
    network: &RoadNetwork,
    params: &Params,
    spec: WindowSpec,
) -> Construction
where
    I: IntoIterator<Item = (u32, Vec<AtypicalRecord>)>,
{
    build_forest_from_records_parallel(
        days.into_iter().collect(),
        network,
        params,
        spec,
        params.effective_parallelism(),
    )
}

/// Builds a forest from in-memory per-day record sets, extracting days in
/// parallel on an explicit number of worker threads.
///
/// Days are independent units of Algorithm 1 (events never span the
/// per-day partition the forest stores), so extraction parallelizes
/// embarrassingly. Each worker allocates scratch cluster ids; afterwards
/// ids are rebased deterministically in input order, so the result is
/// byte-identical to the sequential pipeline regardless of thread count
/// or scheduling. `threads <= 1` runs the exact sequential code path.
pub fn build_forest_from_records_parallel(
    days: Vec<(u32, Vec<AtypicalRecord>)>,
    network: &RoadNetwork,
    params: &Params,
    spec: WindowSpec,
    threads: usize,
) -> Construction {
    let start = Instant::now();
    let mut forest = AtypicalForest::new(spec, *params);
    let mut stats = ConstructionStats::default();
    let mut ids = ClusterIdGen::new(1);
    if threads <= 1 {
        for (day, records) in days {
            let clusters =
                day_micro_clusters(&records, network, params, spec, &mut ids, &mut stats);
            forest.insert_day(day, clusters);
        }
        return Construction {
            forest,
            stats,
            elapsed: start.elapsed(),
        };
    }

    let pool = cps_par::Pool::new(threads);
    let per_day = pool.map(days, |_, (day, records)| {
        // Worker-local ids are scratch; rebased below in input order.
        let mut ids = ClusterIdGen::new(1);
        let mut day_stats = ConstructionStats::default();
        let clusters =
            day_micro_clusters(&records, network, params, spec, &mut ids, &mut day_stats);
        (day, clusters, day_stats)
    });
    // Commit in input order — the order the sequential loop would have
    // processed — rebasing each day's dense scratch ids onto the shared
    // sequence.
    for (day, mut clusters, day_stats) in per_day {
        for c in &mut clusters {
            c.id = ids.next_id();
        }
        stats.absorb(day_stats);
        forest.insert_day(day, clusters);
    }
    Construction {
        forest,
        stats,
        elapsed: start.elapsed(),
    }
}

/// Builds a forest from the atypical partitions of the given datasets in a
/// store (the paper's offline construction over `D1..Dk`).
pub fn build_forest_from_store(
    store: &DatasetStore,
    datasets: &[DatasetId],
    network: &RoadNetwork,
    params: &Params,
    io: Arc<IoStats>,
) -> Result<Construction> {
    let start = Instant::now();
    let spec = store.catalog().spec;
    let mut forest = AtypicalForest::new(spec, *params);
    let mut stats = ConstructionStats::default();
    let mut ids = ClusterIdGen::new(1);
    let wpd = spec.windows_per_day();
    for &id in datasets {
        let meta = store.dataset(id)?.clone();
        // Stream the dataset once, cutting the stream at day boundaries.
        let mut current_day = meta.first_day;
        let mut buffer: Vec<AtypicalRecord> = Vec::new();
        for record in store.scan_atypical(id, Arc::clone(&io))? {
            let record = record?;
            let day = record.window.raw() / wpd;
            if day != current_day {
                let clusters =
                    day_micro_clusters(&buffer, network, params, spec, &mut ids, &mut stats);
                forest.insert_day(current_day, clusters);
                buffer.clear();
                current_day = day;
            }
            buffer.push(record);
        }
        if !buffer.is_empty() {
            let clusters = day_micro_clusters(&buffer, network, params, spec, &mut ids, &mut stats);
            forest.insert_day(current_day, clusters);
        }
    }
    Ok(Construction {
        forest,
        stats,
        elapsed: start.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cps_sim::{Scale, SimConfig, TrafficSim};

    fn sim() -> TrafficSim {
        TrafficSim::new(SimConfig::new(Scale::Tiny, 21))
    }

    #[test]
    fn in_memory_construction_produces_micro_clusters() {
        let sim = sim();
        let params = Params::paper_defaults();
        let days = (0..3).map(|d| (d, sim.atypical_day(d)));
        let built = build_forest_from_records(days, sim.network(), &params, sim.config().spec);
        assert_eq!(built.forest.days().count(), 3);
        assert!(built.stats.n_micro_clusters > 0);
        assert_eq!(built.stats.n_events, built.stats.n_micro_clusters);
        // Micro-cluster model is much smaller than the raw event model —
        // the Figure 16 compression claim (AC ≈ 0.5–1 % of AE at paper
        // scale; looser here because tiny events have less redundancy).
        assert!(built.stats.cluster_bytes < built.stats.event_bytes);
    }

    #[test]
    fn severity_is_conserved_records_to_forest() {
        let sim = sim();
        // Keep every event (including singletons) so severity is conserved
        // exactly.
        let params = Params::paper_defaults().with_min_event_records(1);
        let records = sim.atypical_day(0);
        let want: cps_core::Severity = records.iter().map(|r| r.severity).sum();
        let built = build_forest_from_records(
            vec![(0, records)],
            sim.network(),
            &params,
            sim.config().spec,
        );
        let got: cps_core::Severity = built.forest.day(0).iter().map(|c| c.severity()).sum();
        assert_eq!(want, got);
    }

    #[test]
    fn store_and_memory_paths_agree() {
        let root = std::env::temp_dir().join(format!("atypical-pipeline-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let config = SimConfig::new(Scale::Tiny, 21)
            .with_datasets(1)
            .with_days_per_dataset(3);
        let sim = TrafficSim::new(config);
        let store = sim.write_store(&root).unwrap();
        let params = Params::paper_defaults();

        let from_store = build_forest_from_store(
            &store,
            &[DatasetId::new(1)],
            sim.network(),
            &params,
            IoStats::shared(),
        )
        .unwrap();
        let from_memory = build_forest_from_records(
            (0..3).map(|d| (d, sim.atypical_day(d))),
            sim.network(),
            &params,
            sim.config().spec,
        );
        assert_eq!(
            from_store.stats.n_micro_clusters,
            from_memory.stats.n_micro_clusters
        );
        for day in 0..3 {
            assert_eq!(
                from_store.forest.day(day),
                from_memory.forest.day(day),
                "day {day}"
            );
        }
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn parallel_construction_matches_sequential_exactly() {
        let sim = sim();
        let params = Params::paper_defaults();
        let spec = sim.config().spec;
        let days: Vec<(u32, Vec<cps_core::AtypicalRecord>)> =
            (0..6).map(|d| (d, sim.atypical_day(d))).collect();
        let sequential = build_forest_from_records(days.clone(), sim.network(), &params, spec);
        for threads in [1usize, 2, 4] {
            let parallel = build_forest_from_records_parallel(
                days.clone(),
                sim.network(),
                &params,
                spec,
                threads,
            );
            assert_eq!(parallel.stats, sequential.stats, "{threads} threads");
            for day in 0..6 {
                assert_eq!(
                    parallel.forest.day(day),
                    sequential.forest.day(day),
                    "day {day}, {threads} threads"
                );
            }
        }
    }

    #[test]
    fn empty_day_yields_empty_leaf() {
        let sim = sim();
        let params = Params::paper_defaults();
        let built = build_forest_from_records(
            vec![(0, Vec::new())],
            sim.network(),
            &params,
            sim.config().spec,
        );
        assert_eq!(built.forest.day(0).len(), 0);
        assert_eq!(built.stats.n_records, 0);
    }
}
