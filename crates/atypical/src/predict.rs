//! Recurrence profiles — the event-prediction hook (§VII future work).
//!
//! The forest's day-level micro-clusters are a history of where and when
//! atypical events occur. A [`RecurrenceProfile`] folds that history into
//! per-(sensor, hour-of-day) statistics, answering the paper's motivating
//! questions prospectively: *where do congestions usually happen* and *when
//! do they usually start*.

use crate::forest::AtypicalForest;
use cps_core::fx::FxHashMap;
use cps_core::{SensorId, Severity};

/// Aggregated recurrence statistics per (sensor, hour-of-day).
#[derive(Debug, Default, Clone)]
pub struct RecurrenceProfile {
    /// (sensor, hour) → (total severity, days on which it was atypical).
    cells: FxHashMap<(SensorId, u32), (Severity, u32)>,
    n_days: u32,
}

impl RecurrenceProfile {
    /// Builds the profile from every day stored in the forest.
    pub fn from_forest(forest: &AtypicalForest) -> Self {
        let spec = forest.spec();
        let mut cells: FxHashMap<(SensorId, u32), (Severity, u32)> = FxHashMap::default();
        // Track which (sensor, hour, day) combinations were seen so the
        // day-count increments once per day.
        let mut n_days = 0;
        for day in forest.days().collect::<Vec<_>>() {
            n_days += 1;
            let mut seen_today: FxHashMap<(SensorId, u32), Severity> = FxHashMap::default();
            for cluster in forest.day(day) {
                // Distribute the cluster's per-sensor severity across the
                // hours its windows cover, proportionally to window mass.
                let tf_total = cluster.tf.total();
                if tf_total.is_zero() {
                    continue;
                }
                for (window, wsev) in cluster.tf.iter() {
                    let hour = spec.hour_of_day(window);
                    let fraction = wsev.fraction_of(tf_total);
                    for (sensor, ssev) in cluster.sf.iter() {
                        let share = ssev.scale(fraction);
                        if share.is_zero() {
                            continue;
                        }
                        *seen_today.entry((sensor, hour)).or_default() += share;
                    }
                }
            }
            for (key, sev) in seen_today {
                let cell = cells.entry(key).or_default();
                cell.0 += sev;
                cell.1 += 1;
            }
        }
        Self { cells, n_days }
    }

    /// Days of history folded in.
    pub fn n_days(&self) -> u32 {
        self.n_days
    }

    /// Risk score for (sensor, hour): fraction of history days with
    /// atypical activity there, weighted by mean severity. Zero when never
    /// seen.
    pub fn risk(&self, sensor: SensorId, hour: u32) -> f64 {
        let Some(&(sev, days)) = self.cells.get(&(sensor, hour)) else {
            return 0.0;
        };
        if self.n_days == 0 {
            return 0.0;
        }
        let frequency = f64::from(days) / f64::from(self.n_days);
        let mean_minutes = sev.as_minutes() / f64::from(days);
        frequency * mean_minutes
    }

    /// The `k` highest-risk sensors for a given hour of day.
    pub fn top_sensors(&self, hour: u32, k: usize) -> Vec<(SensorId, f64)> {
        let mut scored: Vec<(SensorId, f64)> = self
            .cells
            .keys()
            .filter(|&&(_, h)| h == hour)
            .map(|&(s, _)| (s, self.risk(s, hour)))
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        scored.truncate(k);
        scored
    }

    /// Hourly risk curve for one sensor (24 values).
    pub fn hourly_curve(&self, sensor: SensorId) -> [f64; 24] {
        let mut out = [0.0; 24];
        for (h, slot) in out.iter_mut().enumerate() {
            *slot = self.risk(sensor, h as u32);
        }
        out
    }
}

/// Hold-out evaluation of the recurrence profile: hit rate of the top-`k`
/// predicted sensors against a day that was *not* in the training history.
///
/// Returns the fraction of hours `h ∈ hours` for which at least one of the
/// `k` highest-risk sensors was actually atypical at hour `h` on the
/// held-out day — a simple operational metric: "if we staffed the top-k
/// sites, would we have caught something?".
pub fn holdout_hit_rate(
    profile: &RecurrenceProfile,
    holdout_day: &[crate::cluster::AtypicalCluster],
    spec: cps_core::WindowSpec,
    hours: &[u32],
    k: usize,
) -> f64 {
    if hours.is_empty() {
        return 0.0;
    }
    // Actual (sensor, hour) activity on the held-out day.
    let mut actual: cps_core::fx::FxHashSet<(SensorId, u32)> = Default::default();
    for cluster in holdout_day {
        for (window, _) in cluster.tf.iter() {
            let hour = spec.hour_of_day(window);
            for (sensor, _) in cluster.sf.iter() {
                actual.insert((sensor, hour));
            }
        }
    }
    let hits = hours
        .iter()
        .filter(|&&h| {
            profile
                .top_sensors(h, k)
                .iter()
                .any(|&(s, _)| actual.contains(&(s, h)))
        })
        .count();
    hits as f64 / hours.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::AtypicalCluster;
    use crate::feature::{SpatialFeature, TemporalFeature};
    use crate::pipeline::build_forest_from_records;
    use cps_core::{ClusterId, Params, TimeWindow, WindowSpec};
    use cps_sim::{Scale, SimConfig, TrafficSim};

    /// A micro-cluster at sensor `s`, hour `h` of `day`, 30 minutes.
    fn micro(id: u64, day: u32, s: u32, h: u32) -> AtypicalCluster {
        let spec = WindowSpec::PEMS;
        let w = day * spec.windows_per_day() + h * spec.windows_per_hour();
        let sf: SpatialFeature =
            std::iter::once((SensorId::new(s), Severity::from_minutes(30.0))).collect();
        let tf: TemporalFeature =
            std::iter::once((TimeWindow::new(w), Severity::from_minutes(30.0))).collect();
        AtypicalCluster::new(ClusterId::new(id), sf, tf)
    }

    fn forest() -> AtypicalForest {
        let mut f = AtypicalForest::new(WindowSpec::PEMS, Params::paper_defaults());
        // Sensor 1 congests at 8am every day; sensor 2 once at 5pm.
        for day in 0..10 {
            let mut micros = vec![micro(u64::from(day) * 10, day, 1, 8)];
            if day == 3 {
                micros.push(micro(u64::from(day) * 10 + 1, day, 2, 17));
            }
            f.insert_day(day, micros);
        }
        f
    }

    #[test]
    fn recurring_sensor_scores_higher_than_one_off() {
        let p = RecurrenceProfile::from_forest(&forest());
        assert_eq!(p.n_days(), 10);
        let recurring = p.risk(SensorId::new(1), 8);
        let one_off = p.risk(SensorId::new(2), 17);
        assert!(recurring > one_off, "{recurring} vs {one_off}");
        assert_eq!(p.risk(SensorId::new(1), 12), 0.0);
        assert_eq!(p.risk(SensorId::new(99), 8), 0.0);
    }

    #[test]
    fn top_sensors_ranked() {
        let p = RecurrenceProfile::from_forest(&forest());
        let top = p.top_sensors(8, 5);
        assert_eq!(top[0].0, SensorId::new(1));
        assert!(top[0].1 > 0.0);
        assert!(p.top_sensors(3, 5).is_empty());
    }

    #[test]
    fn hourly_curve_peaks_at_rush_hour() {
        let p = RecurrenceProfile::from_forest(&forest());
        let curve = p.hourly_curve(SensorId::new(1));
        let peak_hour = curve
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(peak_hour, 8);
    }

    #[test]
    fn holdout_prediction_beats_chance_on_simulated_traffic() {
        // Train on days 0–9, hold out day 10: the eternal major corridors
        // recur, so the top-5 predicted sensors at rush hours should
        // regularly be atypical on the held-out day.
        let sim = TrafficSim::new(SimConfig::new(Scale::Tiny, 42));
        let params = cps_core::Params::paper_defaults();
        let spec = sim.config().spec;
        let built = build_forest_from_records(
            (0..10).map(|d| (d, sim.atypical_day(d))),
            sim.network(),
            &params,
            spec,
        );
        let profile = RecurrenceProfile::from_forest(&built.forest);
        let holdout = build_forest_from_records(
            std::iter::once((10, sim.atypical_day(10))),
            sim.network(),
            &params,
            spec,
        );
        let rush_hours = [8u32, 9, 17, 18];
        let hit = holdout_hit_rate(&profile, holdout.forest.day(10), spec, &rush_hours, 5);
        // Day 10 is a weekday; majors fire with p≈0.9, so expect most rush
        // hours covered.
        assert!(hit >= 0.5, "hit rate {hit}");
        // Sanity: predicting for 3am should find nothing to hit.
        let off_peak = holdout_hit_rate(&profile, holdout.forest.day(10), spec, &[3], 5);
        assert!(off_peak <= hit);
    }

    #[test]
    fn empty_forest_is_safe() {
        let f = AtypicalForest::new(WindowSpec::PEMS, Params::paper_defaults());
        let p = RecurrenceProfile::from_forest(&f);
        assert_eq!(p.n_days(), 0);
        assert_eq!(p.risk(SensorId::new(1), 8), 0.0);
    }
}
