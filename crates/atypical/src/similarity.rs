//! Cluster similarity (Equations 2–4).
//!
//! ```text
//! Sim(C₁,C₂)      = ½ (SimSF + SimTF)                              (2)
//! SimSF(C₁,C₂)    = g( Σ_{S₁∩S₂} μ¹ / Σ_{S₁} μ¹ ,
//!                      Σ_{S₁∩S₂} μ² / Σ_{S₂} μ² )                  (3)
//! SimTF(C₁,C₂)    = g( … same over time windows … )                 (4)
//! ```
//!
//! `g` balances the two per-cluster overlap fractions; see
//! [`cps_core::BalanceFunction`] for the five choices and why `max` is the
//! forgiving one when cluster sizes differ.

use crate::cluster::AtypicalCluster;
use cps_core::BalanceFunction;

/// Spatial similarity (Equation 3).
pub fn spatial_similarity(a: &AtypicalCluster, b: &AtypicalCluster, g: BalanceFunction) -> f64 {
    let (oa, ob) = a.sf.overlap(&b.sf);
    g.apply(oa.fraction_of(a.sf.total()), ob.fraction_of(b.sf.total()))
}

/// Temporal similarity (Equation 4).
pub fn temporal_similarity(a: &AtypicalCluster, b: &AtypicalCluster, g: BalanceFunction) -> f64 {
    let (oa, ob) = a.tf.overlap(&b.tf);
    g.apply(oa.fraction_of(a.tf.total()), ob.fraction_of(b.tf.total()))
}

/// Combined similarity (Equation 2). Routed through [`similarity_parts`] so
/// its debug-build NaN/Inf guard covers every caller.
pub fn similarity(a: &AtypicalCluster, b: &AtypicalCluster, g: BalanceFunction) -> f64 {
    similarity_parts(&a.sf, &a.tf, &b.sf, &b.tf, g)
}

/// Folds a temporal feature to time-of-day granularity: window `w` maps to
/// `w mod windows_per_day`, accumulating severities.
///
/// The paper's temporal features are clock-time windows ("8:05am–8:10am" in
/// Figure 5, no date attached): two events are temporally similar when they
/// happen at the same *time of day*, which is what lets a month of daily
/// rush-hour jams integrate into one macro-cluster ("the 10E freeway often
/// jams near downtown in the evening rush hours") while keeping the
/// morning/evening pair of Example 5 apart. Within a single day folding is
/// the identity, so micro-cluster comparisons are unaffected.
pub fn fold_tf(
    tf: &crate::feature::TemporalFeature,
    windows_per_day: u32,
) -> crate::feature::TemporalFeature {
    tf.iter()
        .map(|(w, s)| (cps_core::TimeWindow::new(w.raw() % windows_per_day), s))
        .collect()
}

/// Equation 2 computed from explicit feature parts — used by integration,
/// which caches folded temporal features instead of refolding per
/// comparison.
pub fn similarity_parts(
    sf1: &crate::feature::SpatialFeature,
    tf1: &crate::feature::TemporalFeature,
    sf2: &crate::feature::SpatialFeature,
    tf2: &crate::feature::TemporalFeature,
    g: BalanceFunction,
) -> f64 {
    let (sa, sb) = sf1.overlap(sf2);
    let sim_sf = g.apply(sa.fraction_of(sf1.total()), sb.fraction_of(sf2.total()));
    let (ta, tb) = tf1.overlap(tf2);
    let sim_tf = g.apply(ta.fraction_of(tf1.total()), tb.fraction_of(tf2.total()));
    let sim = 0.5 * (sim_sf + sim_tf);
    // `fraction_of` maps 0/0 to 0 and every `g` maps [0,1]² into [0,1]
    // (harmonic handles its 0/0 pole explicitly), so no input — empty
    // features, zero severities, degenerate overlaps — may ever produce a
    // NaN/Inf or leave the unit interval. Integration thresholds would
    // silently misbehave on such a value, hence the guard.
    debug_assert!(
        sim.is_finite() && (0.0..=1.0 + 1e-12).contains(&sim),
        "similarity must stay in [0, 1]: got {sim} (sf {sim_sf}, tf {sim_tf})"
    );
    sim
}

/// Similarity with time-of-day alignment: spatial on absolute sensors,
/// temporal on folded windows.
pub fn similarity_folded(
    a: &AtypicalCluster,
    b: &AtypicalCluster,
    g: BalanceFunction,
    windows_per_day: u32,
) -> f64 {
    similarity_parts(
        &a.sf,
        &fold_tf(&a.tf, windows_per_day),
        &b.sf,
        &fold_tf(&b.tf, windows_per_day),
        g,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feature::{SpatialFeature, TemporalFeature};
    use cps_core::{ClusterId, SensorId, Severity, TimeWindow};
    use proptest::prelude::*;

    fn cluster(id: u64, sensors: &[(u32, f64)], windows: &[(u32, f64)]) -> AtypicalCluster {
        let sf: SpatialFeature = sensors
            .iter()
            .map(|&(s, m)| (SensorId::new(s), Severity::from_minutes(m)))
            .collect();
        let tf: TemporalFeature = windows
            .iter()
            .map(|&(w, m)| (TimeWindow::new(w), Severity::from_minutes(m)))
            .collect();
        // Tests construct SF/TF totals independently; bypass the invariant
        // by balancing totals with a sink key when necessary.
        let (st, tt) = (sf.total(), tf.total());
        let mut sf = sf;
        let mut tf = tf;
        if st < tt {
            sf.add(SensorId::new(9999), tt.saturating_sub(st));
        } else {
            tf.add(TimeWindow::new(99999), st.saturating_sub(tt));
        }
        AtypicalCluster::new(ClusterId::new(id), sf, tf)
    }

    /// The paper's Example 5: CA and CB share sensors but not windows — they
    /// must not look similar; CA and CC share both — they must.
    #[test]
    fn example_5_morning_vs_evening() {
        let g = BalanceFunction::ArithmeticMean;
        // CA: morning event on sensors 1–4.
        let ca = cluster(
            1,
            &[(1, 182.0), (2, 97.0), (3, 33.0), (4, 12.0)],
            &[(97, 100.0), (98, 120.0), (99, 104.0)],
        );
        // CB: evening event on the same sensors.
        let cb = cluster(
            2,
            &[(1, 12.0), (2, 51.0), (3, 34.0), (4, 140.0)],
            &[(220, 80.0), (221, 90.0), (222, 67.0)],
        );
        // CC: morning event, overlapping sensors 1–2.
        let cc = cluster(
            3,
            &[(1, 103.0), (2, 75.0), (7, 54.0), (9, 60.0)],
            &[(98, 110.0), (99, 100.0), (100, 82.0)],
        );
        let sim_ab = similarity(&ca, &cb, g);
        let sim_ac = similarity(&ca, &cc, g);
        assert_eq!(temporal_similarity(&ca, &cb, g), 0.0, "no common windows");
        assert!(
            sim_ac > sim_ab,
            "morning pair must beat morning/evening pair: {sim_ac} vs {sim_ab}"
        );
        assert!(
            sim_ac > 0.5,
            "CA/CC should clear the default δsim: {sim_ac}"
        );
    }

    #[test]
    fn identical_clusters_have_similarity_one() {
        let c = cluster(1, &[(1, 10.0), (2, 20.0)], &[(5, 15.0), (6, 15.0)]);
        for g in BalanceFunction::ALL {
            assert!((similarity(&c, &c, g) - 1.0).abs() < 1e-12, "{g}");
        }
    }

    #[test]
    fn disjoint_clusters_have_similarity_zero() {
        let a = cluster(1, &[(1, 10.0)], &[(5, 10.0)]);
        let b = cluster(2, &[(2, 10.0)], &[(9, 10.0)]);
        for g in BalanceFunction::ALL {
            assert_eq!(similarity(&a, &b, g), 0.0, "{g}");
        }
    }

    #[test]
    fn max_is_forgiving_to_size_imbalance() {
        // A huge cluster fully containing a small one: the small cluster's
        // fraction is 1.0, the huge one's tiny.
        let big = cluster(
            1,
            &(0..100).map(|i| (i, 10.0)).collect::<Vec<_>>(),
            &(0..100).map(|i| (i, 10.0)).collect::<Vec<_>>(),
        );
        let small = cluster(2, &[(0, 10.0), (1, 10.0)], &[(0, 10.0), (1, 10.0)]);
        let with_max = similarity(&big, &small, BalanceFunction::Max);
        let with_min = similarity(&big, &small, BalanceFunction::Min);
        assert!(with_max > 0.9, "max sees the containment: {with_max}");
        assert!(with_min < 0.1, "min penalizes the big side: {with_min}");
    }

    #[test]
    fn folding_aligns_recurring_daily_events() {
        // The same rush-hour jam on two consecutive days: absolute windows
        // are disjoint (similarity capped at 0.5), folded windows coincide.
        let wpd = 288;
        let day0 = cluster(1, &[(1, 50.0), (2, 50.0)], &[(100, 60.0), (101, 40.0)]);
        let day1 = cluster(
            2,
            &[(1, 50.0), (2, 50.0)],
            &[(wpd + 100, 60.0), (wpd + 101, 40.0)],
        );
        let g = BalanceFunction::ArithmeticMean;
        assert_eq!(temporal_similarity(&day0, &day1, g), 0.0);
        assert!(similarity(&day0, &day1, g) <= 0.5);
        let folded = similarity_folded(&day0, &day1, g, wpd);
        assert!(
            folded > 0.95,
            "recurring events align when folded: {folded}"
        );
    }

    #[test]
    fn folding_keeps_morning_and_evening_apart() {
        let wpd = 288;
        let morning = cluster(1, &[(1, 50.0)], &[(100, 50.0)]);
        let evening_next_day = cluster(2, &[(1, 50.0)], &[(wpd + 210, 50.0)]);
        let g = BalanceFunction::ArithmeticMean;
        let folded = similarity_folded(&morning, &evening_next_day, g, wpd);
        assert_eq!(folded, 0.5, "spatial 1, temporal 0");
    }

    #[test]
    fn folding_is_identity_within_a_day() {
        let a = cluster(1, &[(1, 10.0), (2, 20.0)], &[(100, 15.0), (102, 15.0)]);
        let b = cluster(2, &[(2, 10.0), (3, 20.0)], &[(102, 25.0), (103, 5.0)]);
        let g = BalanceFunction::GeometricMean;
        let plain = similarity(&a, &b, g);
        let folded = similarity_folded(&a, &b, g, 288);
        assert!((plain - folded).abs() < 1e-12);
    }

    #[test]
    fn fold_accumulates_same_clock_windows() {
        let tf: crate::feature::TemporalFeature = [
            (TimeWindow::new(100), Severity::from_minutes(10.0)),
            (TimeWindow::new(388), Severity::from_minutes(20.0)), // 100 + 288
        ]
        .into_iter()
        .collect();
        let folded = fold_tf(&tf, 288);
        assert_eq!(folded.len(), 1);
        assert_eq!(
            folded.get(TimeWindow::new(100)),
            Severity::from_minutes(30.0)
        );
        assert_eq!(folded.total(), tf.total());
    }

    /// Degenerate-input sweep: no NaN/Inf may ever leave `similarity_parts`
    /// (the debug_assert inside it fires first in debug builds; the
    /// assertions here also hold in release).
    #[test]
    fn degenerate_inputs_never_produce_nan() {
        let empty = AtypicalCluster::new(
            ClusterId::new(1),
            SpatialFeature::new(),
            TemporalFeature::new(),
        );
        let zero_sev = cluster(2, &[(1, 0.0), (2, 0.0)], &[(5, 0.0), (6, 0.0)]);
        let normal = cluster(3, &[(1, 10.0), (2, 20.0)], &[(5, 15.0), (6, 15.0)]);
        let single = cluster(4, &[(1, 10.0)], &[(5, 10.0)]);
        let cases = [&empty, &zero_sev, &normal, &single];
        for g in BalanceFunction::ALL {
            for a in cases {
                for b in cases {
                    let sim = similarity(a, b, g);
                    assert!(
                        sim.is_finite() && (0.0..=1.0 + 1e-12).contains(&sim),
                        "{g}: sim({:?}, {:?}) = {sim}",
                        a.id,
                        b.id
                    );
                    let folded = similarity_folded(a, b, g, 288);
                    assert!(folded.is_finite(), "{g}: folded = {folded}");
                }
            }
        }
    }

    /// Empty features overlap nothing: similarity against anything is 0,
    /// for every balance function (0/0 fractions collapse to 0, not NaN).
    #[test]
    fn empty_cluster_is_similar_to_nothing() {
        let empty = AtypicalCluster::new(
            ClusterId::new(1),
            SpatialFeature::new(),
            TemporalFeature::new(),
        );
        let other = cluster(2, &[(1, 10.0)], &[(5, 10.0)]);
        for g in BalanceFunction::ALL {
            assert_eq!(similarity(&empty, &other, g), 0.0, "{g}");
            assert_eq!(similarity(&empty, &empty, g), 0.0, "{g} self");
        }
    }

    /// A single shared sensor with all of both clusters' spatial mass:
    /// SimSF = g(1, 1) = 1 for every g, SimTF = 0 ⇒ Sim = 0.5 exactly.
    #[test]
    fn single_sensor_full_overlap_scores_half() {
        let a = cluster(1, &[(7, 30.0)], &[(100, 30.0)]);
        let b = cluster(2, &[(7, 99.0)], &[(200, 99.0)]);
        for g in BalanceFunction::ALL {
            assert_eq!(similarity(&a, &b, g), 0.5, "{g}");
        }
    }

    /// Harmonic and geometric means hit their 0·0 / 0+0 poles when the
    /// shared keys carry zero severity on one or both sides — the result
    /// must be 0, not NaN.
    #[test]
    fn harmonic_and_geometric_handle_zero_severity_overlap() {
        // Shared sensor 1 and shared window 5, but `a` carries zero
        // severity on both shared keys (its mass sits on sensor 2/window 6).
        let a = cluster(1, &[(1, 0.0), (2, 40.0)], &[(5, 0.0), (6, 40.0)]);
        let b = cluster(2, &[(1, 40.0), (3, 0.0)], &[(5, 40.0), (7, 0.0)]);
        for g in [
            BalanceFunction::HarmonicMean,
            BalanceFunction::GeometricMean,
        ] {
            let sim = similarity(&a, &b, g);
            assert_eq!(sim, 0.0, "{g}: zero-mass overlap must score 0");
        }
        // All-zero totals on both sides: every fraction is 0/0 ⇒ 0.
        let za = cluster(3, &[(1, 0.0)], &[(5, 0.0)]);
        let zb = cluster(4, &[(1, 0.0)], &[(5, 0.0)]);
        for g in BalanceFunction::ALL {
            let sim = similarity(&za, &zb, g);
            assert!(sim.is_finite() && sim == 0.0, "{g}: {sim}");
        }
    }

    proptest! {
        /// Similarity is symmetric and in [0, 1] for every balance function.
        #[test]
        fn prop_symmetric_unit_interval(
            xs in prop::collection::vec((0u32..20, 1.0f64..50.0), 1..15),
            ys in prop::collection::vec((0u32..20, 1.0f64..50.0), 1..15),
            ws in prop::collection::vec((0u32..20, 1.0f64..50.0), 1..15),
            vs in prop::collection::vec((0u32..20, 1.0f64..50.0), 1..15),
        ) {
            let a = cluster(1, &xs, &ws);
            let b = cluster(2, &ys, &vs);
            for g in BalanceFunction::ALL {
                let sab = similarity(&a, &b, g);
                let sba = similarity(&b, &a, g);
                prop_assert!((sab - sba).abs() < 1e-12);
                prop_assert!((0.0..=1.0 + 1e-12).contains(&sab));
            }
        }

        /// For fixed clusters the g functions are ordered min ≤ har ≤ geo ≤
        /// avg ≤ max (drives the Figure 21 ordering).
        #[test]
        fn prop_balance_ordering_carries_over(
            xs in prop::collection::vec((0u32..20, 1.0f64..50.0), 1..15),
            ys in prop::collection::vec((0u32..20, 1.0f64..50.0), 1..15),
        ) {
            let a = cluster(1, &xs, &xs);
            let b = cluster(2, &ys, &ys);
            let sims: Vec<f64> = BalanceFunction::ALL
                .iter()
                .map(|&g| similarity(&a, &b, g))
                .collect();
            for w in sims.windows(2) {
                prop_assert!(w[0] <= w[1] + 1e-12);
            }
        }
    }
}
