//! Atypical clusters (Definition 4) and the merge operation (Algorithm 2).

use crate::event::AtypicalEvent;
use crate::feature::{SpatialFeature, TemporalFeature};
use cps_core::{ClusterId, Severity, TimeRange, TimeWindow, WindowSpec};
use serde::{Deserialize, Serialize};
use std::fmt;

/// An atypical cluster `⟨ID, SF, TF⟩` — micro when built from a single
/// event, macro when merged from several clusters.
///
/// Invariant: `SF.total() == TF.total()` — both features aggregate exactly
/// the severities of the underlying records, only along different
/// dimensions. Constructors and merges preserve it (checked in debug
/// builds).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AtypicalCluster {
    /// Cluster id; merges allocate fresh ids (Algorithm 2, line 1).
    pub id: ClusterId,
    /// Spatial feature: severity per sensor.
    pub sf: SpatialFeature,
    /// Temporal feature: severity per time window.
    pub tf: TemporalFeature,
    /// Number of micro-clusters merged into this cluster (1 for a micro).
    pub merged_count: u32,
}

impl AtypicalCluster {
    /// Builds a cluster from features.
    ///
    /// # Panics
    /// Debug builds panic when the SF/TF totals disagree.
    pub fn new(id: ClusterId, sf: SpatialFeature, tf: TemporalFeature) -> Self {
        debug_assert_eq!(
            sf.total(),
            tf.total(),
            "SF and TF must aggregate the same records"
        );
        Self {
            id,
            sf,
            tf,
            merged_count: 1,
        }
    }

    /// Summarizes an atypical event into its micro-cluster (Algorithm 1,
    /// lines 6–12).
    pub fn from_event(id: ClusterId, event: &AtypicalEvent) -> Self {
        let sf: SpatialFeature = event
            .records()
            .iter()
            .map(|r| (r.sensor, r.severity))
            .collect();
        let tf: TemporalFeature = event
            .records()
            .iter()
            .map(|r| (r.window, r.severity))
            .collect();
        Self::new(id, sf, tf)
    }

    /// Total severity `Σ μᵢ = Σ νⱼ` (Definition 5's measure).
    pub fn severity(&self) -> Severity {
        self.sf.total()
    }

    /// Number of distinct sensors covered.
    pub fn sensor_count(&self) -> usize {
        self.sf.len()
    }

    /// Number of distinct time windows covered.
    pub fn window_count(&self) -> usize {
        self.tf.len()
    }

    /// The covering time range `[first, last + 1)` of the temporal feature.
    pub fn time_range(&self) -> TimeRange {
        match self.tf.key_span() {
            Some((lo, hi)) => TimeRange::new(lo, TimeWindow::new(hi.raw() + 1)),
            None => TimeRange::EMPTY,
        }
    }

    /// Merges two clusters into a macro-cluster with a fresh id (Algorithm
    /// 2). `O(m₁+m₂+l₁+l₂)` per Proposition 2.
    pub fn merge(&self, other: &AtypicalCluster, id: ClusterId) -> AtypicalCluster {
        AtypicalCluster {
            id,
            sf: self.sf.merge(&other.sf),
            tf: self.tf.merge(&other.tf),
            merged_count: self.merged_count + other.merged_count,
        }
    }

    /// When did the event start, and how hard? Answers the paper's
    /// motivating query "when and how do they start": the first window and
    /// its severity.
    pub fn onset(&self) -> Option<(TimeWindow, Severity)> {
        self.tf.iter().next()
    }

    /// Where is it most serious? (Example 4: "the most serious part is the
    /// road segment monitored by s1".)
    pub fn most_serious_sensor(&self) -> Option<(cps_core::SensorId, Severity)> {
        self.sf.peak()
    }

    /// The window with the widest impact.
    pub fn most_serious_window(&self) -> Option<(TimeWindow, Severity)> {
        self.tf.peak()
    }

    /// Approximate model size in bytes (Figure 16's `AC` series).
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.sf.approx_bytes() + self.tf.approx_bytes()
    }

    /// Human-readable one-line summary.
    pub fn describe(&self, spec: WindowSpec) -> String {
        let onset = self
            .onset()
            .map(|(w, _)| format!("day {} {}", spec.day_of(w), spec.clock_label(w)))
            .unwrap_or_else(|| "-".to_string());
        let peak = self
            .most_serious_sensor()
            .map(|(s, sev)| format!("{s} ({sev})"))
            .unwrap_or_else(|| "-".to_string());
        format!(
            "{}: severity {}, {} sensors x {} windows, starts {}, worst at {}",
            self.id,
            self.severity(),
            self.sensor_count(),
            self.window_count(),
            onset,
            peak
        )
    }
}

impl fmt::Display for AtypicalCluster {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}(sev={}, |S|={}, |T|={})",
            self.id,
            self.severity(),
            self.sensor_count(),
            self.window_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cps_core::{AtypicalRecord, SensorId};

    fn rec(sensor: u32, window: u32, mins: f64) -> AtypicalRecord {
        AtypicalRecord::new(
            SensorId::new(sensor),
            TimeWindow::new(window),
            Severity::from_minutes(mins),
        )
    }

    fn cluster_from(records: Vec<AtypicalRecord>, id: u64) -> AtypicalCluster {
        let event = AtypicalEvent::new(records);
        AtypicalCluster::from_event(ClusterId::new(id), &event)
    }

    /// The running example of Figures 4/5: event A.
    fn example_a() -> AtypicalCluster {
        cluster_from(
            vec![
                rec(1, 97, 4.0), // 8:05–8:10, 4 min
                rec(1, 98, 5.0), // 8:10–8:15, 5 min
                rec(2, 98, 5.0),
                rec(3, 99, 5.0),
                rec(4, 99, 2.0),
            ],
            1,
        )
    }

    #[test]
    fn micro_cluster_aggregates_like_figure_5() {
        let c = example_a();
        assert_eq!(c.sf.get(SensorId::new(1)), Severity::from_minutes(9.0));
        assert_eq!(c.tf.get(TimeWindow::new(97)), Severity::from_minutes(4.0));
        assert_eq!(c.tf.get(TimeWindow::new(98)), Severity::from_minutes(10.0));
        assert_eq!(c.tf.get(TimeWindow::new(99)), Severity::from_minutes(7.0));
        assert_eq!(c.severity(), Severity::from_minutes(21.0));
        assert_eq!(c.sensor_count(), 4);
        assert_eq!(c.window_count(), 3);
        assert_eq!(c.merged_count, 1);
    }

    #[test]
    fn sf_tf_totals_always_agree() {
        let c = example_a();
        assert_eq!(c.sf.total(), c.tf.total());
    }

    #[test]
    fn onset_and_peaks() {
        let c = example_a();
        let (w, s) = c.onset().unwrap();
        assert_eq!(w, TimeWindow::new(97));
        assert_eq!(s, Severity::from_minutes(4.0));
        let (sensor, sev) = c.most_serious_sensor().unwrap();
        assert_eq!(sensor, SensorId::new(1));
        assert_eq!(sev, Severity::from_minutes(9.0));
        let (win, wsev) = c.most_serious_window().unwrap();
        assert_eq!(win, TimeWindow::new(98));
        assert_eq!(wsev, Severity::from_minutes(10.0));
    }

    #[test]
    fn time_range_covers_all_windows() {
        let c = example_a();
        assert_eq!(
            c.time_range(),
            TimeRange::new(TimeWindow::new(97), TimeWindow::new(100))
        );
    }

    #[test]
    fn merge_accumulates_and_allocates_new_id() {
        let a = example_a();
        let b = cluster_from(vec![rec(1, 100, 5.0), rec(9, 100, 5.0)], 2);
        let m = a.merge(&b, ClusterId::new(99));
        assert_eq!(m.id, ClusterId::new(99));
        assert_eq!(m.severity(), a.severity() + b.severity());
        assert_eq!(m.sf.get(SensorId::new(1)), Severity::from_minutes(14.0));
        assert_eq!(m.sensor_count(), 5);
        assert_eq!(m.merged_count, 2);
        assert_eq!(m.sf.total(), m.tf.total());
    }

    #[test]
    fn merge_is_commutative_in_content() {
        let a = example_a();
        let b = cluster_from(vec![rec(2, 101, 3.0)], 2);
        let ab = a.merge(&b, ClusterId::new(10));
        let ba = b.merge(&a, ClusterId::new(10));
        assert_eq!(ab, ba);
    }

    #[test]
    fn describe_mentions_key_facts() {
        let c = example_a();
        let d = c.describe(WindowSpec::PEMS);
        assert!(d.contains("21 min"));
        assert!(d.contains("4 sensors"));
        assert!(d.contains("08:05"), "{d}");
        let display = format!("{c}");
        assert!(display.contains("|S|=4"));
    }
}
