//! Online analytical query processing (§IV, Algorithm 4).
//!
//! A query `Q(W, T)` asks for the significant atypical clusters inside
//! spatial region `W` during time range `T`. Three strategies are
//! implemented, exactly the three of the evaluation:
//!
//! * [`Strategy::All`] — integrate every micro-cluster in range. Exact and
//!   exhaustive; the ground truth of the effectiveness experiments.
//! * [`Strategy::Pru`] — *beforehand pruning*: keep only micro-clusters
//!   that are significant at day scale, then integrate. Fast and precise
//!   but loses recall (a significant macro can be built from individually
//!   trivial micros — the paper's Figure 11).
//! * [`Strategy::Gui`] — *red-zone guided*: compute the distributive
//!   `F(Wᵢ, T)` per pre-defined region, prune micro-clusters entirely
//!   outside regions that can host a significant cluster (Property 5),
//!   then integrate. No false negatives.

use crate::cluster::AtypicalCluster;
use crate::forest::AtypicalForest;
use crate::integrate::{integrate_aligned, IntegrationStats, TimeAlignment};
use crate::redzone::RedZones;
use crate::significant::significance_threshold;
use cps_core::fx::FxHashSet;
use cps_core::{Params, SensorId, Severity, TimeRange};
use cps_geo::grid::SensorPartition;
use cps_geo::{BoundingBox, RoadNetwork};
use std::time::{Duration, Instant};

/// Query processing strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Integrate all micro-clusters (exact, slow).
    All,
    /// Prune insignificant micro-clusters beforehand (fast, misses results).
    Pru,
    /// Red-zone guided clustering (fast, no false negatives).
    Gui,
}

impl Strategy {
    /// Display label matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            Strategy::All => "All",
            Strategy::Pru => "Pru",
            Strategy::Gui => "Gui",
        }
    }
}

/// An analytical query `Q(W, T)`.
#[derive(Clone, Copy, Debug)]
pub struct Query {
    /// First day of `T` (global index).
    pub first_day: u32,
    /// Number of days in `T`.
    pub n_days: u32,
    /// Spatial region `W`; `None` = the whole deployment.
    pub bbox: Option<BoundingBox>,
}

impl Query {
    /// Whole-city query over a day range.
    pub fn days(first_day: u32, n_days: u32) -> Self {
        Self {
            first_day,
            n_days,
            bbox: None,
        }
    }

    /// Restricts the query to a bounding box.
    pub fn in_bbox(mut self, bbox: BoundingBox) -> Self {
        self.bbox = Some(bbox);
        self
    }
}

/// The outcome of one query execution.
#[derive(Clone, Debug)]
pub struct QueryResult {
    /// Strategy that produced it.
    pub strategy: Strategy,
    /// Generated macro-clusters (the "returned query results").
    pub macros: Vec<AtypicalCluster>,
    /// Micro-clusters in the query range before strategy filtering.
    pub candidate_clusters: usize,
    /// Micro-clusters actually fed to integration — the I/O measure of
    /// Figure 17(b).
    pub input_clusters: usize,
    /// Red regions found (`Gui` only).
    pub num_red_regions: Option<usize>,
    /// Significance threshold at this query's scale.
    pub threshold: Severity,
    /// Sensors in `W`.
    pub n_sensors: u32,
    /// Window range of `T`.
    pub range: TimeRange,
    /// Wall-clock time of the execution.
    pub elapsed: Duration,
    /// Integration work counters.
    pub integration: IntegrationStats,
    /// Macro-clusters removed by the final severity check (0 when the check
    /// is disabled).
    pub final_check_removed: usize,
}

impl QueryResult {
    /// The returned clusters that are significant at the query scale.
    pub fn significant(&self) -> Vec<&AtypicalCluster> {
        self.macros
            .iter()
            .filter(|c| c.severity() > self.threshold)
            .collect()
    }
}

/// Query engine bound to a deployment (network + pre-defined regions).
pub struct QueryEngine<'a> {
    network: &'a RoadNetwork,
    partition: &'a SensorPartition,
    params: Params,
    /// Whether to run Algorithm 4's final severity check (lines 5–7).
    /// Disabled by default to mirror the paper's experimental setting
    /// ("this procedure is turned off in the experiments for a fair play").
    pub final_check: bool,
}

impl<'a> QueryEngine<'a> {
    /// Creates an engine over a deployment.
    pub fn new(network: &'a RoadNetwork, partition: &'a SensorPartition, params: Params) -> Self {
        assert_eq!(
            network.num_sensors(),
            partition.num_sensors(),
            "partition must cover the network's sensors"
        );
        Self {
            network,
            partition,
            params,
            final_check: false,
        }
    }

    /// Enables the final severity check (guarantees 100 % precision).
    pub fn with_final_check(mut self) -> Self {
        self.final_check = true;
        self
    }

    /// The engine's parameters.
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// Executes `query` with `strategy` against the forest's day-level
    /// micro-clusters (Algorithm 4 for `Gui`).
    pub fn execute(
        &self,
        forest: &mut AtypicalForest,
        query: &Query,
        strategy: Strategy,
    ) -> QueryResult {
        let start = Instant::now();
        let spec = forest.spec();
        let range = spec.day_range(query.first_day, query.n_days);

        // Resolve W: the sensor scope and count.
        let (scope, n_sensors): (Option<FxHashSet<SensorId>>, u32) = match &query.bbox {
            Some(bbox) => {
                let sensors = self.network.sensors_in_bbox(bbox);
                let n = sensors.len() as u32;
                (Some(sensors.into_iter().collect()), n)
            }
            None => (None, self.network.num_sensors() as u32),
        };
        let threshold = significance_threshold(&self.params, range, n_sensors);

        // Candidate micro-clusters: in T, intersecting W.
        let mut candidates = forest.micros_in_days(query.first_day, query.n_days);
        if let Some(scope) = &scope {
            candidates.retain(|c| c.sf.keys().any(|s| scope.contains(&s)));
        }
        let candidate_clusters = candidates.len();

        // Strategy-specific filtering.
        let mut num_red_regions = None;
        let inputs = match strategy {
            Strategy::All => candidates,
            Strategy::Pru => {
                // Beforehand pruning: only micro-clusters significant at
                // their own (day) scale survive.
                let day_range = spec.day_range(query.first_day, 1);
                let day_threshold = significance_threshold(&self.params, day_range, n_sensors);
                candidates
                    .into_iter()
                    .filter(|c| c.severity() > day_threshold)
                    .collect()
            }
            Strategy::Gui => {
                let zones =
                    RedZones::compute(&candidates, self.partition, &self.params, range, n_sensors);
                num_red_regions = Some(zones.num_red());
                let (kept, _pruned) = zones.filter(candidates, self.partition);
                kept
            }
        };
        let input_clusters = inputs.len();

        // Integrate (Algorithm 3) with time-of-day alignment, so recurring
        // daily events aggregate across the query range.
        let alignment = TimeAlignment::TimeOfDay {
            windows_per_day: spec.windows_per_day(),
        };
        let (mut macros, integration) =
            integrate_aligned(inputs, &self.params, alignment, forest.id_gen());

        // Optional final check (Algorithm 4, lines 5–7).
        let mut final_check_removed = 0;
        if self.final_check {
            let before = macros.len();
            macros.retain(|c| c.severity() > threshold);
            final_check_removed = before - macros.len();
        }

        QueryResult {
            strategy,
            macros,
            candidate_clusters,
            input_clusters,
            num_red_regions,
            threshold,
            n_sensors,
            range,
            elapsed: start.elapsed(),
            integration,
            final_check_removed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feature::{SpatialFeature, TemporalFeature};
    use cps_core::{ClusterId, Severity, TimeWindow, WindowSpec};
    use cps_geo::point::LOS_ANGELES;
    use cps_geo::UniformGrid;

    fn network() -> RoadNetwork {
        RoadNetwork::builder()
            .highway(
                "EW",
                vec![
                    LOS_ANGELES.offset_miles(0.0, -10.0),
                    LOS_ANGELES.offset_miles(0.0, 10.0),
                ],
                0.5,
            )
            .highway(
                "NS",
                vec![
                    LOS_ANGELES.offset_miles(-10.0, 0.0),
                    LOS_ANGELES.offset_miles(10.0, 0.0),
                ],
                0.5,
            )
            .build()
    }

    /// A micro-cluster over `n_sensors` sensors starting at `base`, one
    /// window each of `per_sensor_minutes`, on `day`.
    fn micro(
        id: u64,
        day: u32,
        base: u32,
        n_sensors: u32,
        per_sensor_minutes: f64,
    ) -> AtypicalCluster {
        let spec = WindowSpec::PEMS;
        let w0 = day * spec.windows_per_day() + 96;
        let sf: SpatialFeature = (base..base + n_sensors)
            .map(|s| {
                (
                    cps_core::SensorId::new(s),
                    Severity::from_minutes(per_sensor_minutes),
                )
            })
            .collect();
        let tf: TemporalFeature = (0..n_sensors)
            .map(|k| {
                (
                    TimeWindow::new(w0 + k),
                    Severity::from_minutes(per_sensor_minutes),
                )
            })
            .collect();
        AtypicalCluster::new(ClusterId::new(id), sf, tf)
    }

    struct Fixture {
        network: RoadNetwork,
        partition: cps_geo::grid::SensorPartition,
        forest: AtypicalForest,
    }

    fn fixture() -> Fixture {
        let network = network();
        let partition = UniformGrid::over(&network, 3.0).partition(&network);
        let params = Params::paper_defaults();
        let mut forest = AtypicalForest::new(WindowSpec::PEMS, params);
        // 14 days: a strong recurring event at sensors 0–9 (2,500 min/day —
        // significant at the 14-day scale: threshold = 0.05·4032·N), plus
        // daily trivial noise at scattered sensors (3 min).
        for day in 0..14 {
            let mut micros = vec![micro(u64::from(day) * 100, day, 0, 10, 250.0)];
            for k in 0..5u32 {
                micros.push(micro(
                    u64::from(day) * 100 + u64::from(k) + 1,
                    day,
                    20 + k * 4,
                    1,
                    3.0,
                ));
            }
            forest.insert_day(day, micros);
        }
        Fixture {
            network,
            partition,
            forest,
        }
    }

    #[test]
    fn all_processes_every_candidate() {
        let mut fx = fixture();
        let engine = QueryEngine::new(&fx.network, &fx.partition, *fx.forest.params());
        let q = Query::days(0, 14);
        let r = engine.execute(&mut fx.forest, &q, Strategy::All);
        assert_eq!(r.candidate_clusters, 14 * 6);
        assert_eq!(r.input_clusters, r.candidate_clusters);
        assert!(r.num_red_regions.is_none());
        assert!(!r.macros.is_empty());
    }

    #[test]
    fn gui_prunes_but_keeps_all_significant() {
        let mut fx = fixture();
        let params = *fx.forest.params();
        let engine = QueryEngine::new(&fx.network, &fx.partition, params);
        let q = Query::days(0, 14);
        let all = engine.execute(&mut fx.forest, &q, Strategy::All);
        let gui = engine.execute(&mut fx.forest, &q, Strategy::Gui);
        assert!(
            gui.input_clusters < all.input_clusters,
            "gui {} vs all {}",
            gui.input_clusters,
            all.input_clusters
        );
        assert!(gui.num_red_regions.unwrap() > 0);
        // No false negatives: every significant All-cluster is matched by a
        // significant Gui-cluster.
        let truth = all.significant();
        let found = gui.significant();
        assert!(
            !truth.is_empty(),
            "fixture must produce significant clusters"
        );
        for t in &truth {
            let matched = found.iter().any(|g| {
                crate::similarity::similarity(g, t, cps_core::BalanceFunction::Max) >= 0.5
            });
            assert!(matched, "significant cluster lost by Gui");
        }
    }

    #[test]
    fn pru_reduces_inputs_most() {
        let mut fx = fixture();
        let params = *fx.forest.params();
        let engine = QueryEngine::new(&fx.network, &fx.partition, params);
        let q = Query::days(0, 14);
        let pru = engine.execute(&mut fx.forest, &q, Strategy::Pru);
        let gui = engine.execute(&mut fx.forest, &q, Strategy::Gui);
        assert!(pru.input_clusters <= gui.input_clusters);
    }

    #[test]
    fn bbox_restricts_scope_and_sensor_count() {
        let mut fx = fixture();
        let params = *fx.forest.params();
        let engine = QueryEngine::new(&fx.network, &fx.partition, params);
        let bbox = BoundingBox::of_point(LOS_ANGELES).inflated_miles(2.0);
        let q = Query::days(0, 7).in_bbox(bbox);
        let r = engine.execute(&mut fx.forest, &q, Strategy::All);
        assert!(r.n_sensors < fx.network.num_sensors() as u32);
        assert!(r.candidate_clusters < 7 * 6);
    }

    #[test]
    fn final_check_guarantees_precision() {
        let mut fx = fixture();
        let params = *fx.forest.params();
        let engine = QueryEngine::new(&fx.network, &fx.partition, params).with_final_check();
        let q = Query::days(0, 14);
        let r = engine.execute(&mut fx.forest, &q, Strategy::All);
        assert!(r.macros.iter().all(|c| c.severity() > r.threshold));
        assert!(r.final_check_removed > 0, "noise macros must be removed");
    }

    #[test]
    fn threshold_grows_with_query_range() {
        let mut fx = fixture();
        let params = *fx.forest.params();
        let engine = QueryEngine::new(&fx.network, &fx.partition, params);
        let week = engine.execute(&mut fx.forest, &Query::days(0, 7), Strategy::All);
        let fortnight = engine.execute(&mut fx.forest, &Query::days(0, 14), Strategy::All);
        assert_eq!(fortnight.threshold.as_secs(), 2 * week.threshold.as_secs());
    }

    #[test]
    fn strategy_labels() {
        assert_eq!(Strategy::All.label(), "All");
        assert_eq!(Strategy::Pru.label(), "Pru");
        assert_eq!(Strategy::Gui.label(), "Gui");
    }
}
