//! Spatial and temporal features (Definition 4).
//!
//! `SF = {⟨s₁,μ₁⟩,…}` aggregates an event's severity per sensor; `TF =
//! {⟨t₁,ν₁⟩,…}` per time window. Both are stored as key-sorted vectors:
//! merging, overlap computation and equality are then linear merge-walks
//! with deterministic iteration order (which the paper's Property 3 —
//! exact commutativity/associativity — relies on in our tests).

use cps_core::measure::AlgebraicSummary;
use cps_core::{SensorId, Severity, TimeWindow};
use serde::{Deserialize, Serialize};

/// A severity-weighted feature over ordered keys.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Feature<K: Copy + Ord> {
    /// `(key, aggregated severity)`, strictly sorted by key.
    entries: Vec<(K, Severity)>,
}

/// The spatial feature: severity per sensor.
pub type SpatialFeature = Feature<SensorId>;

/// The temporal feature: severity per time window.
pub type TemporalFeature = Feature<TimeWindow>;

impl<K: Copy + Ord> Feature<K> {
    /// The empty feature.
    pub fn new() -> Self {
        Self {
            entries: Vec::new(),
        }
    }

    /// Builds from arbitrary `(key, severity)` pairs, combining duplicates.
    pub fn from_pairs<I: IntoIterator<Item = (K, Severity)>>(pairs: I) -> Self {
        let mut entries: Vec<(K, Severity)> = pairs.into_iter().collect();
        entries.sort_unstable_by_key(|&(k, _)| k);
        let mut out: Vec<(K, Severity)> = Vec::with_capacity(entries.len());
        for (k, s) in entries {
            match out.last_mut() {
                Some((lk, ls)) if *lk == k => *ls += s,
                _ => out.push((k, s)),
            }
        }
        Self { entries: out }
    }

    /// Adds severity to one key.
    pub fn add(&mut self, key: K, severity: Severity) {
        match self.entries.binary_search_by_key(&key, |&(k, _)| k) {
            Ok(i) => self.entries[i].1 += severity,
            Err(i) => self.entries.insert(i, (key, severity)),
        }
    }

    /// Aggregated severity of `key` (zero if absent).
    pub fn get(&self, key: K) -> Severity {
        self.entries
            .binary_search_by_key(&key, |&(k, _)| k)
            .map(|i| self.entries[i].1)
            .unwrap_or(Severity::ZERO)
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: K) -> bool {
        self.entries.binary_search_by_key(&key, |&(k, _)| k).is_ok()
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the feature is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total severity over all keys.
    pub fn total(&self) -> Severity {
        self.entries.iter().map(|&(_, s)| s).sum()
    }

    /// Iterates `(key, severity)` in key order.
    pub fn iter(&self) -> impl Iterator<Item = (K, Severity)> + '_ {
        self.entries.iter().copied()
    }

    /// The keys, in order.
    pub fn keys(&self) -> impl Iterator<Item = K> + '_ {
        self.entries.iter().map(|&(k, _)| k)
    }

    /// The key with the highest severity (ties broken by key order) — used
    /// to answer "which part is most serious".
    pub fn peak(&self) -> Option<(K, Severity)> {
        self.entries
            .iter()
            .copied()
            .max_by_key(|&(k, s)| (s, std::cmp::Reverse(k)))
    }

    /// Smallest and largest key, if non-empty.
    pub fn key_span(&self) -> Option<(K, K)> {
        match (self.entries.first(), self.entries.last()) {
            (Some(&(lo, _)), Some(&(hi, _))) => Some((lo, hi)),
            _ => None,
        }
    }

    /// The merged feature of two disjoint record sets (Algorithm 2, per
    /// feature): common keys accumulate, the rest copy over. Linear in
    /// `self.len() + other.len()` (Proposition 2).
    pub fn merge(&self, other: &Feature<K>) -> Feature<K> {
        let mut out = Vec::with_capacity(self.entries.len() + other.entries.len());
        let (mut i, mut j) = (0, 0);
        while i < self.entries.len() && j < other.entries.len() {
            let (ka, sa) = self.entries[i];
            let (kb, sb) = other.entries[j];
            match ka.cmp(&kb) {
                std::cmp::Ordering::Less => {
                    out.push((ka, sa));
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push((kb, sb));
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push((ka, sa + sb));
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.entries[i..]);
        out.extend_from_slice(&other.entries[j..]);
        Feature { entries: out }
    }

    /// Severity mass each side puts on the *common* keys:
    /// `(Σ_{K₁∩K₂} self, Σ_{K₁∩K₂} other)` — the numerators of Equations
    /// (3)/(4).
    pub fn overlap(&self, other: &Feature<K>) -> (Severity, Severity) {
        let (mut i, mut j) = (0, 0);
        let (mut a, mut b) = (Severity::ZERO, Severity::ZERO);
        while i < self.entries.len() && j < other.entries.len() {
            let (ka, sa) = self.entries[i];
            let (kb, sb) = other.entries[j];
            match ka.cmp(&kb) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    a += sa;
                    b += sb;
                    i += 1;
                    j += 1;
                }
            }
        }
        (a, b)
    }

    /// Restricts the feature to keys satisfying `keep`.
    pub fn filtered(&self, mut keep: impl FnMut(K) -> bool) -> Feature<K> {
        Feature {
            entries: self
                .entries
                .iter()
                .copied()
                .filter(|&(k, _)| keep(k))
                .collect(),
        }
    }

    /// Approximate in-memory footprint in bytes (model-size experiments).
    pub fn approx_bytes(&self) -> usize {
        self.entries.len() * std::mem::size_of::<(K, Severity)>()
    }
}

impl<K: Copy + Ord> AlgebraicSummary for Feature<K> {
    fn merge_with(&mut self, other: &Self) {
        *self = self.merge(other);
    }
}

impl<K: Copy + Ord> FromIterator<(K, Severity)> for Feature<K> {
    fn from_iter<I: IntoIterator<Item = (K, Severity)>>(iter: I) -> Self {
        Self::from_pairs(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sf(pairs: &[(u32, u64)]) -> SpatialFeature {
        pairs
            .iter()
            .map(|&(k, s)| (SensorId::new(k), Severity::from_secs(s)))
            .collect()
    }

    #[test]
    fn from_pairs_combines_duplicates() {
        let f = sf(&[(3, 10), (1, 5), (3, 7)]);
        assert_eq!(f.len(), 2);
        assert_eq!(f.get(SensorId::new(3)), Severity::from_secs(17));
        assert_eq!(f.get(SensorId::new(1)), Severity::from_secs(5));
        assert_eq!(f.get(SensorId::new(9)), Severity::ZERO);
        assert_eq!(f.total(), Severity::from_secs(22));
    }

    #[test]
    fn add_keeps_order() {
        let mut f = SpatialFeature::new();
        f.add(SensorId::new(5), Severity::from_secs(1));
        f.add(SensorId::new(2), Severity::from_secs(2));
        f.add(SensorId::new(5), Severity::from_secs(3));
        let keys: Vec<u32> = f.keys().map(|k| k.raw()).collect();
        assert_eq!(keys, vec![2, 5]);
        assert_eq!(f.get(SensorId::new(5)), Severity::from_secs(4));
    }

    #[test]
    fn merge_matches_paper_example() {
        // Figure 5 / Example 4 style: CA and CC share sensors s1, s2.
        let ca = sf(&[(1, 182 * 60), (2, 97 * 60), (3, 33 * 60), (4, 12 * 60)]);
        let cc = sf(&[(1, 103 * 60), (2, 75 * 60), (7, 54 * 60), (9, 60 * 60)]);
        let merged = ca.merge(&cc);
        assert_eq!(merged.len(), 6);
        assert_eq!(merged.get(SensorId::new(1)), Severity::from_minutes(285.0));
        assert_eq!(merged.get(SensorId::new(4)), Severity::from_minutes(12.0));
        assert_eq!(merged.get(SensorId::new(9)), Severity::from_minutes(60.0));
        assert_eq!(merged.total(), ca.total() + cc.total());
    }

    #[test]
    fn overlap_sums_common_keys_only() {
        let a = sf(&[(1, 10), (2, 20), (3, 30)]);
        let b = sf(&[(2, 5), (3, 5), (4, 100)]);
        let (oa, ob) = a.overlap(&b);
        assert_eq!(oa, Severity::from_secs(50));
        assert_eq!(ob, Severity::from_secs(10));
        let (ba, bb) = b.overlap(&a);
        assert_eq!((ba, bb), (ob, oa));
    }

    #[test]
    fn peak_and_span() {
        let f = sf(&[(1, 10), (2, 99), (7, 99), (9, 1)]);
        let (k, s) = f.peak().unwrap();
        assert_eq!(s, Severity::from_secs(99));
        assert_eq!(k, SensorId::new(2), "ties break to the smaller key");
        assert_eq!(f.key_span().unwrap(), (SensorId::new(1), SensorId::new(9)));
        assert!(SpatialFeature::new().peak().is_none());
    }

    #[test]
    fn filtered_keeps_predicate() {
        let f = sf(&[(1, 10), (2, 20), (3, 30)]);
        let g = f.filtered(|k| k.raw() % 2 == 1);
        assert_eq!(g.len(), 2);
        assert_eq!(g.total(), Severity::from_secs(40));
    }

    proptest! {
        /// Property 3, per-feature: merge is commutative and associative,
        /// exactly.
        #[test]
        fn prop_merge_commutative_associative(
            xs in prop::collection::vec((0u32..40, 1u64..1000), 0..30),
            ys in prop::collection::vec((0u32..40, 1u64..1000), 0..30),
            zs in prop::collection::vec((0u32..40, 1u64..1000), 0..30),
        ) {
            let a = sf(&xs.iter().map(|&(k, s)| (k, s)).collect::<Vec<_>>());
            let b = sf(&ys.iter().map(|&(k, s)| (k, s)).collect::<Vec<_>>());
            let c = sf(&zs.iter().map(|&(k, s)| (k, s)).collect::<Vec<_>>());
            prop_assert_eq!(a.merge(&b), b.merge(&a));
            prop_assert_eq!(a.merge(&b).merge(&c), a.merge(&b.merge(&c)));
        }

        /// Property 2: merging preserves the (distributive) total.
        #[test]
        fn prop_merge_preserves_total(
            xs in prop::collection::vec((0u32..40, 1u64..1000), 0..30),
            ys in prop::collection::vec((0u32..40, 1u64..1000), 0..30),
        ) {
            let a = sf(&xs.iter().map(|&(k, s)| (k, s)).collect::<Vec<_>>());
            let b = sf(&ys.iter().map(|&(k, s)| (k, s)).collect::<Vec<_>>());
            prop_assert_eq!(a.merge(&b).total(), a.total() + b.total());
        }

        /// Overlap severities are bounded by each side's total.
        #[test]
        fn prop_overlap_bounded(
            xs in prop::collection::vec((0u32..40, 1u64..1000), 0..30),
            ys in prop::collection::vec((0u32..40, 1u64..1000), 0..30),
        ) {
            let a = sf(&xs.iter().map(|&(k, s)| (k, s)).collect::<Vec<_>>());
            let b = sf(&ys.iter().map(|&(k, s)| (k, s)).collect::<Vec<_>>());
            let (oa, ob) = a.overlap(&b);
            prop_assert!(oa <= a.total());
            prop_assert!(ob <= b.total());
        }
    }
}
