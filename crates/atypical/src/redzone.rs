//! Red zones (Algorithm 4, lines 1–3; Properties 4–5).
//!
//! The total severity `F(W′, T)` over a pre-defined region `W′` is
//! distributive (Property 4), hence cheap to compute bottom-up. Property 5
//! turns it into a *safe* pruning bound: if `F(W′,T)` is below the
//! significance threshold, no significant macro-cluster can live entirely
//! inside `W′` — so micro-clusters whose sensors all fall in non-red
//! regions can be discarded before the quadratic integration without
//! introducing false negatives.

use crate::cluster::AtypicalCluster;
use cps_core::{Params, RegionId, Severity, TimeRange};
use cps_geo::grid::SensorPartition;

/// The red-zone classification of a region partition for one query.
#[derive(Clone, Debug)]
pub struct RedZones {
    f_values: Vec<Severity>,
    red: Vec<bool>,
    threshold: Severity,
}

impl RedZones {
    /// Computes `F(Wᵢ, T)` for every region from the query's micro-clusters
    /// and marks regions whose severity *density* meets `δs` as red:
    /// `F(Wᵢ, T) ≥ δs · length(T) · Nᵢ` with `Nᵢ` the sensors in `Wᵢ`.
    ///
    /// Property 5 is stated with the query-wide sensor count `N`; scaling
    /// the bound to each region's own `Nᵢ ≤ N` only *lowers* the bar, so
    /// every region the paper's literal rule would mark red is still red —
    /// the filter stays free of false negatives while remaining useful at
    /// any deployment scale (with the global `N`, a single zipcode-sized
    /// region could almost never amass a whole significant cluster's worth
    /// of severity by itself).
    ///
    /// The micro-clusters passed in must already be restricted to the query
    /// range `T`; their spatial features then sum to exactly the bottom-up
    /// aggregate `F` (both add the same atypical records — Property 4).
    pub fn compute(
        micros: &[AtypicalCluster],
        partition: &SensorPartition,
        params: &Params,
        range: TimeRange,
        n_sensors: u32,
    ) -> Self {
        let threshold = crate::significant::significance_threshold(params, range, n_sensors);
        let mut f_values = vec![Severity::ZERO; partition.num_regions() as usize];
        for cluster in micros {
            for (sensor, severity) in cluster.sf.iter() {
                let region = partition.region_of(sensor);
                f_values[region.index()] += severity;
            }
        }
        let red = f_values
            .iter()
            .enumerate()
            .map(|(i, &f)| {
                let n_i = partition
                    .sensors_in(cps_core::RegionId::new(i as u32))
                    .len() as u32;
                n_i > 0 && f >= crate::significant::significance_threshold(params, range, n_i)
            })
            .collect();
        Self {
            f_values,
            red,
            threshold,
        }
    }

    /// Whether `region` is red.
    #[inline]
    pub fn is_red(&self, region: RegionId) -> bool {
        self.red[region.index()]
    }

    /// `F(Wᵢ, T)` of one region.
    pub fn f_value(&self, region: RegionId) -> Severity {
        self.f_values[region.index()]
    }

    /// Number of red regions.
    pub fn num_red(&self) -> usize {
        self.red.iter().filter(|&&r| r).count()
    }

    /// The query-scale significance threshold (`N` = sensors in `W`) — for
    /// reporting; the red marking itself uses per-region densities.
    pub fn threshold(&self) -> Severity {
        self.threshold
    }

    /// Whether a micro-cluster touches any red zone (Algorithm 4's keep
    /// rule: clusters inside or intersecting red zones survive; clusters
    /// entirely outside are pruned).
    pub fn qualifies(&self, cluster: &AtypicalCluster, partition: &SensorPartition) -> bool {
        cluster
            .sf
            .keys()
            .any(|s| self.is_red(partition.region_of(s)))
    }

    /// Partitions micro-clusters into `(qualified, pruned)`.
    pub fn filter(
        &self,
        micros: Vec<AtypicalCluster>,
        partition: &SensorPartition,
    ) -> (Vec<AtypicalCluster>, Vec<AtypicalCluster>) {
        micros
            .into_iter()
            .partition(|c| self.qualifies(c, partition))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feature::{SpatialFeature, TemporalFeature};
    use cps_core::{ClusterId, SensorId, Severity, TimeWindow, WindowSpec};

    /// Ten sensors, two regions: sensors 0–4 in region 0, 5–9 in region 1.
    fn two_region_partition() -> SensorPartition {
        let assignment: Vec<RegionId> = (0..10)
            .map(|i| RegionId::new(if i < 5 { 0 } else { 1 }))
            .collect();
        SensorPartition::new("halves", assignment, 2)
    }

    fn cluster(id: u64, sensors: &[(u32, f64)]) -> AtypicalCluster {
        let sf: SpatialFeature = sensors
            .iter()
            .map(|&(s, m)| (SensorId::new(s), Severity::from_minutes(m)))
            .collect();
        let total = sf.total();
        let tf: TemporalFeature = std::iter::once((TimeWindow::new(0), total)).collect();
        AtypicalCluster::new(ClusterId::new(id), sf, tf)
    }

    #[test]
    fn f_values_sum_cluster_severities_per_region() {
        let part = two_region_partition();
        let micros = vec![
            cluster(1, &[(0, 100.0), (1, 50.0)]),
            cluster(2, &[(4, 25.0), (5, 75.0)]),
        ];
        let params = Params::paper_defaults();
        let range = WindowSpec::PEMS.day_range(0, 1);
        let zones = RedZones::compute(&micros, &part, &params, range, 10);
        assert_eq!(
            zones.f_value(RegionId::new(0)),
            Severity::from_minutes(175.0)
        );
        assert_eq!(
            zones.f_value(RegionId::new(1)),
            Severity::from_minutes(75.0)
        );
    }

    #[test]
    fn red_marking_uses_query_scale_threshold() {
        let part = two_region_partition();
        // Per-region threshold = 0.05 · 288 · 5 = 72 min (5 sensors each);
        // the reported query threshold stays 0.05 · 288 · 10 = 144 min.
        let micros = vec![
            cluster(1, &[(0, 200.0)]), // region 0: F = 200 ≥ 72, red
            cluster(2, &[(5, 50.0)]),  // region 1: F = 50 < 72, not red
        ];
        let params = Params::paper_defaults();
        let range = WindowSpec::PEMS.day_range(0, 1);
        let zones = RedZones::compute(&micros, &part, &params, range, 10);
        assert!(zones.is_red(RegionId::new(0)));
        assert!(!zones.is_red(RegionId::new(1)));
        assert_eq!(zones.num_red(), 1);
        assert_eq!(zones.threshold(), Severity::from_minutes(144.0));
    }

    #[test]
    fn intersecting_clusters_survive_filtering() {
        let part = two_region_partition();
        let micros = vec![
            cluster(1, &[(0, 200.0)]),           // inside red zone
            cluster(2, &[(4, 10.0), (5, 10.0)]), // straddles red/non-red: keep
            cluster(3, &[(6, 10.0)]),            // entirely outside: prune
        ];
        let params = Params::paper_defaults();
        let range = WindowSpec::PEMS.day_range(0, 1);
        let zones = RedZones::compute(&micros, &part, &params, range, 10);
        let (kept, pruned) = zones.filter(micros, &part);
        let kept_ids: Vec<u64> = kept.iter().map(|c| c.id.raw()).collect();
        assert_eq!(kept_ids, vec![1, 2]);
        assert_eq!(pruned.len(), 1);
        assert_eq!(pruned[0].id, ClusterId::new(3));
    }

    /// Property 5 as stated: no significant macro-cluster can be formed
    /// entirely from pruned micro-clusters.
    #[test]
    fn property_5_no_significant_cluster_outside_red_zones() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let part = two_region_partition();
        let params = Params::paper_defaults();
        let range = WindowSpec::PEMS.day_range(0, 1);
        let mut rng = StdRng::seed_from_u64(11);
        for trial in 0..50 {
            let micros: Vec<AtypicalCluster> = (0u64..rng.gen_range(1..10))
                .map(|i| {
                    let s = rng.gen_range(0..10u32);
                    cluster(i, &[(s, rng.gen_range(1.0..400.0))])
                })
                .collect();
            let zones = RedZones::compute(&micros, &part, &params, range, 10);
            let (_, pruned) = zones.filter(micros, &part);
            // Merge *all* pruned clusters together (the most severity any
            // macro-cluster built purely from pruned micros could have):
            // it must still be below the threshold.
            let total_pruned: Severity = pruned.iter().map(|c| c.severity()).sum();
            // All pruned clusters live in non-red regions, whose total F is
            // below threshold per region. With clusters confined to single
            // regions here, the bound applies per region.
            for region in [RegionId::new(0), RegionId::new(1)] {
                if !zones.is_red(region) {
                    let region_pruned: Severity = pruned
                        .iter()
                        .filter(|c| c.sf.keys().all(|s| part.region_of(s) == region))
                        .map(|c| c.severity())
                        .sum();
                    assert!(
                        region_pruned < zones.threshold(),
                        "trial {trial}: significant mass pruned"
                    );
                }
            }
            let _ = total_pruned;
        }
    }
}
