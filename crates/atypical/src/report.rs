//! Analyst reports: structured answers to the paper's motivating questions.
//!
//! Example 1 asks: *(1) Where do the traffic congestions usually happen in
//! the city? (2) When and how do they start? (3) On which road segment (or
//! time period) is the congestion most serious?* — and notes the user wants
//! them "summarized and analytical …, integrated in the unit of atypical
//! event", not thousands of raw rows. [`ClusterReport`] is that unit of
//! answer, derived from one (macro-)cluster; [`AnalysisReport`] collects the
//! significant ones for a query.

use crate::cluster::AtypicalCluster;
use crate::query::QueryResult;
use cps_core::{SensorId, Severity, TimeWindow, WindowSpec};
use serde::Serialize;

/// Structured summary of one atypical cluster.
#[derive(Clone, Debug, Serialize)]
pub struct ClusterReport {
    /// Cluster id.
    pub id: String,
    /// Total severity in minutes.
    pub severity_minutes: f64,
    /// Sensors covered (answers *where*).
    pub sensor_count: usize,
    /// The `k` most severe sensors, worst first (answers *which segment*).
    pub worst_sensors: Vec<(SensorId, Severity)>,
    /// First affected window (answers *when it starts*).
    pub onset: Option<TimeWindow>,
    /// Onset clock label, e.g. `"07:50"`.
    pub onset_clock: Option<String>,
    /// Severity in the onset window (answers *how it starts*).
    pub onset_severity: Option<Severity>,
    /// Window with the widest impact (answers *which time period*).
    pub peak_window: Option<TimeWindow>,
    /// Peak window clock label.
    pub peak_clock: Option<String>,
    /// Distinct days the cluster spans.
    pub days_covered: usize,
    /// Micro-clusters merged in.
    pub merged_from: u32,
}

impl ClusterReport {
    /// Builds the report for one cluster.
    pub fn of(cluster: &AtypicalCluster, spec: WindowSpec, k_worst: usize) -> Self {
        let mut worst: Vec<(SensorId, Severity)> = cluster.sf.iter().collect();
        worst.sort_by_key(|&(s, sev)| (std::cmp::Reverse(sev), s));
        worst.truncate(k_worst);
        let onset = cluster.onset();
        let peak = cluster.most_serious_window();
        let days: std::collections::BTreeSet<u32> =
            cluster.tf.keys().map(|w| spec.day_of(w)).collect();
        Self {
            id: cluster.id.to_string(),
            severity_minutes: cluster.severity().as_minutes(),
            sensor_count: cluster.sensor_count(),
            worst_sensors: worst,
            onset: onset.map(|(w, _)| w),
            onset_clock: onset.map(|(w, _)| spec.clock_label(w)),
            onset_severity: onset.map(|(_, s)| s),
            peak_window: peak.map(|(w, _)| w),
            peak_clock: peak.map(|(w, _)| spec.clock_label(w)),
            days_covered: days.len(),
            merged_from: cluster.merged_count,
        }
    }
}

/// The full answer to one analytical query: the significant clusters,
/// reported worst-first, plus the query's bookkeeping.
#[derive(Clone, Debug, Serialize)]
pub struct AnalysisReport {
    /// Strategy that produced the result.
    pub strategy: String,
    /// Significance threshold applied, minutes.
    pub threshold_minutes: f64,
    /// Reports for the significant clusters, most severe first.
    pub clusters: Vec<ClusterReport>,
    /// Macro-clusters generated in total (incl. trivial ones).
    pub total_macro_clusters: usize,
    /// Micro-clusters fed into integration.
    pub input_clusters: usize,
    /// Query wall-clock, seconds.
    pub elapsed_seconds: f64,
}

impl AnalysisReport {
    /// Builds the report from a query result.
    pub fn of(result: &QueryResult, spec: WindowSpec) -> Self {
        let mut significant: Vec<&AtypicalCluster> = result.significant();
        significant.sort_by_key(|c| std::cmp::Reverse(c.severity()));
        Self {
            strategy: result.strategy.label().to_string(),
            threshold_minutes: result.threshold.as_minutes(),
            clusters: significant
                .iter()
                .map(|c| ClusterReport::of(c, spec, 5))
                .collect(),
            total_macro_clusters: result.macros.len(),
            input_clusters: result.input_clusters,
            elapsed_seconds: result.elapsed.as_secs_f64(),
        }
    }

    /// Renders the report as human-readable text.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} significant cluster(s) [{}], threshold {:.0} min, \
             {} macro-clusters from {} inputs in {:.3}s",
            self.clusters.len(),
            self.strategy,
            self.threshold_minutes,
            self.total_macro_clusters,
            self.input_clusters,
            self.elapsed_seconds,
        );
        for (rank, c) in self.clusters.iter().enumerate() {
            let _ = writeln!(
                out,
                "#{} {}: {:.0} min over {} sensors, {} day(s), from {} events",
                rank + 1,
                c.id,
                c.severity_minutes,
                c.sensor_count,
                c.days_covered,
                c.merged_from,
            );
            if let (Some(clock), Some(sev)) = (&c.onset_clock, c.onset_severity) {
                let _ = writeln!(out, "   starts ~{clock} ({sev} in the first window)");
            }
            if let Some(peak) = &c.peak_clock {
                let _ = writeln!(out, "   peak period around {peak}");
            }
            if let Some(&(sensor, sev)) = c.worst_sensors.first() {
                let _ = writeln!(out, "   most serious segment: {sensor} ({sev})");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feature::{SpatialFeature, TemporalFeature};
    use crate::integrate::IntegrationStats;
    use crate::query::Strategy;
    use cps_core::{ClusterId, TimeRange};

    fn cluster(id: u64) -> AtypicalCluster {
        let sf: SpatialFeature = [
            (SensorId::new(1), Severity::from_minutes(100.0)),
            (SensorId::new(2), Severity::from_minutes(300.0)),
            (SensorId::new(3), Severity::from_minutes(50.0)),
        ]
        .into_iter()
        .collect();
        let tf: TemporalFeature = [
            (TimeWindow::new(97), Severity::from_minutes(50.0)), // day 0, 08:05
            (TimeWindow::new(98), Severity::from_minutes(250.0)), // day 0, 08:10
            (TimeWindow::new(385), Severity::from_minutes(150.0)), // day 1
        ]
        .into_iter()
        .collect();
        AtypicalCluster::new(ClusterId::new(id), sf, tf)
    }

    #[test]
    fn cluster_report_answers_the_three_questions() {
        let spec = WindowSpec::PEMS;
        let r = ClusterReport::of(&cluster(9), spec, 2);
        // Where: coverage + worst segments.
        assert_eq!(r.sensor_count, 3);
        assert_eq!(r.worst_sensors[0].0, SensorId::new(2));
        assert_eq!(r.worst_sensors.len(), 2);
        // When/how it starts.
        assert_eq!(r.onset, Some(TimeWindow::new(97)));
        assert_eq!(r.onset_clock.as_deref(), Some("08:05"));
        assert_eq!(r.onset_severity, Some(Severity::from_minutes(50.0)));
        // Most serious period.
        assert_eq!(r.peak_window, Some(TimeWindow::new(98)));
        assert_eq!(r.days_covered, 2);
        assert_eq!(r.severity_minutes, 450.0);
    }

    #[test]
    fn analysis_report_sorts_and_renders() {
        let spec = WindowSpec::PEMS;
        let small = {
            let sf: SpatialFeature =
                std::iter::once((SensorId::new(9), Severity::from_minutes(400.0))).collect();
            let tf: TemporalFeature =
                std::iter::once((TimeWindow::new(5), Severity::from_minutes(400.0))).collect();
            AtypicalCluster::new(ClusterId::new(2), sf, tf)
        };
        let result = QueryResult {
            strategy: Strategy::Gui,
            macros: vec![small, cluster(1)],
            candidate_clusters: 10,
            input_clusters: 6,
            num_red_regions: Some(2),
            threshold: Severity::from_minutes(100.0),
            n_sensors: 50,
            range: TimeRange::new(TimeWindow::new(0), TimeWindow::new(576)),
            elapsed: std::time::Duration::from_millis(12),
            integration: IntegrationStats::default(),
            final_check_removed: 0,
        };
        let report = AnalysisReport::of(&result, spec);
        assert_eq!(report.clusters.len(), 2);
        assert!(report.clusters[0].severity_minutes >= report.clusters[1].severity_minutes);
        let text = report.render();
        assert!(text.contains("2 significant cluster(s) [Gui]"));
        assert!(text.contains("most serious segment"));
        // JSON-serializable for dashboards.
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("\"strategy\":\"Gui\""));
    }

    #[test]
    fn empty_result_reports_cleanly() {
        let spec = WindowSpec::PEMS;
        let result = QueryResult {
            strategy: Strategy::All,
            macros: vec![],
            candidate_clusters: 0,
            input_clusters: 0,
            num_red_regions: None,
            threshold: Severity::from_minutes(1.0),
            n_sensors: 1,
            range: TimeRange::EMPTY,
            elapsed: std::time::Duration::ZERO,
            integration: IntegrationStats::default(),
            final_check_removed: 0,
        };
        let report = AnalysisReport::of(&result, spec);
        assert!(report.clusters.is_empty());
        assert!(report.render().contains("0 significant cluster(s)"));
    }
}
