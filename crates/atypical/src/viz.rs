//! ASCII rendering of clusters on the deployment map.
//!
//! The paper illustrates results on Google-Maps screenshots (Figures 1, 7,
//! 11, 12); the examples in this repository render the same information as
//! terminal maps: the network's sensors as dots, each cluster's sensors as
//! a letter, intensity by case.

use crate::cluster::AtypicalCluster;
use cps_core::Severity;
use cps_geo::RoadNetwork;

/// Renders `clusters` over the network as a `width × height` character map.
///
/// Sensors not in any cluster print as `·`; the sensors of cluster `i`
/// print as the letter `A + (i mod 26)` — uppercase where that sensor's
/// severity is above the cluster's per-sensor mean, lowercase otherwise.
pub fn render_clusters(
    network: &RoadNetwork,
    clusters: &[&AtypicalCluster],
    width: usize,
    height: usize,
) -> String {
    assert!(width >= 2 && height >= 2, "canvas too small");
    let bbox = network.bbox();
    let mut canvas = vec![vec![' '; width]; height];

    let place = |lat: f64, lon: f64| -> (usize, usize) {
        let x = (lon - bbox.min_lon) / (bbox.max_lon - bbox.min_lon).max(1e-12);
        let y = (lat - bbox.min_lat) / (bbox.max_lat - bbox.min_lat).max(1e-12);
        (
            ((1.0 - y) * (height - 1) as f64).round() as usize,
            (x * (width - 1) as f64).round() as usize,
        )
    };

    for sensor in network.sensors() {
        let (r, c) = place(sensor.location.lat, sensor.location.lon);
        canvas[r][c] = '.';
    }

    for (i, cluster) in clusters.iter().enumerate() {
        let letter = (b'a' + (i % 26) as u8) as char;
        let mean = if cluster.sensor_count() == 0 {
            Severity::ZERO
        } else {
            Severity::from_secs(cluster.severity().as_secs() / cluster.sensor_count() as u64)
        };
        for (sensor, severity) in cluster.sf.iter() {
            let info = network.sensor(sensor);
            let (r, c) = place(info.location.lat, info.location.lon);
            canvas[r][c] = if severity > mean {
                letter.to_ascii_uppercase()
            } else {
                letter
            };
        }
    }

    let mut out = String::with_capacity((width + 1) * height);
    for row in canvas {
        out.extend(row);
        // Trim trailing spaces per line to keep output tidy.
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    }
    out
}

/// One-line textual legend for a cluster list.
pub fn legend(clusters: &[&AtypicalCluster]) -> String {
    clusters
        .iter()
        .enumerate()
        .map(|(i, c)| {
            format!(
                "{} = {} ({} sensors, {})",
                (b'a' + (i % 26) as u8) as char,
                c.id,
                c.sensor_count(),
                c.severity()
            )
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feature::{SpatialFeature, TemporalFeature};
    use cps_core::{ClusterId, SensorId, TimeWindow};
    use cps_geo::point::LOS_ANGELES;

    fn network() -> RoadNetwork {
        RoadNetwork::builder()
            .highway(
                "EW",
                vec![
                    LOS_ANGELES.offset_miles(0.0, -5.0),
                    LOS_ANGELES.offset_miles(0.0, 5.0),
                ],
                0.5,
            )
            .highway(
                "NS",
                vec![
                    LOS_ANGELES.offset_miles(-5.0, 0.0),
                    LOS_ANGELES.offset_miles(5.0, 0.0),
                ],
                0.5,
            )
            .build()
    }

    fn cluster(sensors: &[(u32, f64)]) -> AtypicalCluster {
        let sf: SpatialFeature = sensors
            .iter()
            .map(|&(s, m)| (SensorId::new(s), Severity::from_minutes(m)))
            .collect();
        let tf: TemporalFeature = std::iter::once((TimeWindow::new(0), sf.total())).collect();
        AtypicalCluster::new(ClusterId::new(1), sf, tf)
    }

    #[test]
    fn map_contains_cluster_letters_and_dots() {
        let net = network();
        let c = cluster(&[(0, 100.0), (1, 5.0), (2, 5.0)]);
        let map = render_clusters(&net, &[&c], 60, 20);
        assert!(map.contains('.'), "uncovered sensors render as dots");
        assert!(map.contains('A'), "above-mean sensor is uppercase");
        assert!(map.contains('a'), "below-mean sensors are lowercase");
    }

    #[test]
    fn distinct_clusters_get_distinct_letters() {
        let net = network();
        let c1 = cluster(&[(0, 10.0)]);
        let c2 = cluster(&[(15, 10.0)]);
        let map = render_clusters(&net, &[&c1, &c2], 60, 20);
        let has = |ch: char| map.contains(ch) || map.contains(ch.to_ascii_uppercase());
        assert!(has('a') && has('b'));
    }

    #[test]
    fn legend_lists_every_cluster() {
        let c1 = cluster(&[(0, 10.0)]);
        let c2 = cluster(&[(1, 10.0), (2, 10.0)]);
        let text = legend(&[&c1, &c2]);
        assert!(text.contains("a = "));
        assert!(text.contains("b = "));
        assert!(text.contains("2 sensors"));
    }

    #[test]
    #[should_panic(expected = "canvas too small")]
    fn tiny_canvas_rejected() {
        let net = network();
        render_clusters(&net, &[], 1, 1);
    }
}
