//! # atypical
//!
//! The paper's contribution: **atypical clusters** for multidimensional
//! analysis of atypical events in cyber-physical data (Tang et al., ICDE
//! 2012).
//!
//! ## Model
//!
//! * [`event`] — atypical events (Definitions 1–3): maximal sets of records
//!   chained by the *direct atypical related* relation; a holistic model
//!   (Property 1).
//! * [`feature`] / [`cluster`] — atypical micro-clusters (Definition 4):
//!   the succinct summary `⟨ID, SF, TF⟩` whose spatial/temporal features
//!   are *algebraic* (Property 2).
//! * [`mod@similarity`] — cluster similarity (Equations 2–4) under the five
//!   balance functions.
//! * [`merge` in `cluster`] + [`mod@integrate`] — Algorithms 2 and 3:
//!   commutative/associative merging (Property 3) and fixpoint integration
//!   into macro-clusters.
//! * [`integrate_index`] — the indexed integration hot path: inverted-index
//!   candidate generation with admissible similarity upper bounds,
//!   bit-identical to the naive scan (differential-tested) but pruning
//!   provably sub-threshold pairs.
//! * [`forest`] — hierarchical clustering trees over aggregation paths
//!   (day → week → month, weekday/weekend), partially materialized.
//! * [`significant`] — significant clusters (Definition 5).
//! * [`redzone`] + [`query`] — Algorithm 4: red-zone guided online
//!   clustering with the `All` / `Pru` / `Gui` strategies, backed by
//!   Properties 4–5 (no false negatives).
//! * [`eval`] — precision/recall harness against the `All` ground truth.
//! * [`par`] — deterministic parallel sibling integration: forest
//!   roll-ups fan out over `cps-par` workers and commit in canonical
//!   node-path order, bit-identical to sequential at any thread count.
//! * [`pipeline`] — end-to-end offline construction (Algorithm 1 over a
//!   dataset store).
//! * [`context`] — weather/accident context joins (§V-D extension).
//! * [`predict`] — per-sensor recurrence profiles (§VII future-work hook).
//! * [`viz`] — ASCII rendering of clusters for the examples.
//!
//! ## Example
//!
//! From atypical records to the day's worst event:
//!
//! ```
//! use atypical::event::extract_micro_clusters;
//! use cps_core::ids::ClusterIdGen;
//! use cps_core::{AtypicalRecord, Params, SensorId, Severity, TimeWindow, WindowSpec};
//! use cps_geo::{point::LOS_ANGELES, RoadNetwork};
//! use cps_index::StIndex;
//!
//! // A one-highway deployment and a short burst of congestion.
//! let network = RoadNetwork::builder()
//!     .highway(
//!         "I-10",
//!         vec![LOS_ANGELES.offset_miles(0.0, -5.0), LOS_ANGELES.offset_miles(0.0, 5.0)],
//!         0.5,
//!     )
//!     .build();
//! let records: Vec<AtypicalRecord> = [(0u32, 97u32, 4.0), (0, 98, 5.0), (1, 98, 5.0), (2, 99, 5.0)]
//!     .into_iter()
//!     .map(|(s, w, m)| {
//!         AtypicalRecord::new(SensorId::new(s), TimeWindow::new(w), Severity::from_minutes(m))
//!     })
//!     .collect();
//!
//! // Algorithm 1: events → micro-clusters.
//! let params = Params::paper_defaults();
//! let index = StIndex::build(&records, &network, &params, WindowSpec::PEMS);
//! let mut ids = ClusterIdGen::new(1);
//! let clusters = extract_micro_clusters(&index, &mut ids);
//!
//! assert_eq!(clusters.len(), 1, "the records chain into one event");
//! assert_eq!(clusters[0].severity(), Severity::from_minutes(19.0));
//! assert_eq!(clusters[0].sensor_count(), 3);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod cluster;
pub mod context;
pub mod eval;
pub mod event;
pub mod feature;
pub mod forest;
pub mod integrate;
pub mod integrate_index;
pub mod online;
pub mod par;
pub mod pipeline;
pub mod predict;
pub mod query;
pub mod redzone;
pub mod report;
pub mod significant;
pub mod similarity;
pub mod store;
pub mod viz;

pub use cluster::AtypicalCluster;
pub use event::AtypicalEvent;
pub use feature::{Feature, SpatialFeature, TemporalFeature};
pub use forest::AtypicalForest;
pub use integrate::integrate;
pub use integrate_index::IndexedIntegrator;
pub use query::{Query, QueryEngine, QueryResult, Strategy};
pub use significant::significance_threshold;
pub use similarity::similarity;
