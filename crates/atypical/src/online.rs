//! Online (streaming) event extraction.
//!
//! The abstract promises "scalable, flexible and **online** analysis". The
//! offline pipeline (Algorithm 1) assumes a day's records are all on disk;
//! this module maintains atypical events *as records arrive*, window by
//! window:
//!
//! * records are appended in non-decreasing window order,
//! * an incoming record joins every open event containing a record within
//!   `δd`/`δt` (Definition 1); if it bridges several, those events merge
//!   (the relation is transitive — Definition 2);
//! * an open event with no record within `δt` of the current window can
//!   never gain another member, so it is **sealed** and its micro-cluster
//!   emitted immediately — the analyst sees a finished congestion minutes
//!   after it dissipates, not at end-of-day.
//!
//! The emitted micro-clusters are identical to the batch pipeline's (tested
//! against it), so the forest can be fed from a live stream.

use crate::cluster::AtypicalCluster;
use crate::event::AtypicalEvent;
use cps_core::fx::FxHashMap;
use cps_core::ids::ClusterIdGen;
use cps_core::{AtypicalRecord, Params, SensorId, TimeWindow, WindowSpec};
use cps_geo::RoadNetwork;
use cps_index::st_index::max_gap_windows;

/// An event still open for extension.
#[derive(Debug)]
struct OpenEvent {
    records: Vec<AtypicalRecord>,
    /// Most recent window per member sensor — the only part of the frontier
    /// a new record can relate to.
    frontier: FxHashMap<SensorId, TimeWindow>,
    /// Largest window seen (for sealing).
    last_window: TimeWindow,
}

impl OpenEvent {
    fn new(record: AtypicalRecord) -> Self {
        let mut frontier = FxHashMap::default();
        frontier.insert(record.sensor, record.window);
        Self {
            records: vec![record],
            frontier,
            last_window: record.window,
        }
    }

    fn push(&mut self, record: AtypicalRecord) {
        let slot = self.frontier.entry(record.sensor).or_insert(record.window);
        if record.window > *slot {
            *slot = record.window;
        }
        if record.window > self.last_window {
            self.last_window = record.window;
        }
        self.records.push(record);
    }

    fn absorb(&mut self, other: OpenEvent) {
        for (sensor, window) in other.frontier {
            let slot = self.frontier.entry(sensor).or_insert(window);
            if window > *slot {
                *slot = window;
            }
        }
        if other.last_window > self.last_window {
            self.last_window = other.last_window;
        }
        self.records.extend(other.records);
    }
}

/// A record rejected by [`OnlineExtractor::push`] because its window
/// precedes the extractor clock.
///
/// Accepting such a record would corrupt the per-sensor frontier: sealing
/// is driven by `current_window`, so an already-sealed event could have
/// deserved the record, silently splitting one event into two. Callers
/// that cannot guarantee ordering (e.g. multi-source feeds) should buffer
/// and re-sort upstream, or drop the record and count it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfOrderRecord {
    /// The rejected record.
    pub record: AtypicalRecord,
    /// The extractor clock the record fell behind.
    pub current_window: TimeWindow,
}

impl std::fmt::Display for OutOfOrderRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "record for sensor {} at window {} regresses behind extractor window {}",
            self.record.sensor, self.record.window, self.current_window
        )
    }
}

impl std::error::Error for OutOfOrderRecord {}

/// A sealed event with its member records intact, emitted instead of a
/// micro-cluster when [`OnlineExtractor::retain_raw_events`] is on.
///
/// The trust filter (`min_event_records`) is **not** applied: raw mode
/// exists for consumers that recombine partial events — e.g. a sharded
/// monitor reconciling events that straddle a shard boundary — where the
/// filter must run on the recombined whole, not the parts.
#[derive(Clone, Debug, PartialEq)]
pub struct SealedRawEvent {
    /// Member records, sorted by `(window, sensor)`.
    pub records: Vec<AtypicalRecord>,
    /// Largest member window (the sealing deadline driver).
    pub last_window: TimeWindow,
}

/// Streaming extractor: push records in window order, take sealed
/// micro-clusters out as they finish.
pub struct OnlineExtractor<'a> {
    network: &'a RoadNetwork,
    params: Params,
    max_gap: u32,
    open: Vec<OpenEvent>,
    sealed: Vec<AtypicalCluster>,
    sealed_raw: Vec<SealedRawEvent>,
    raw_mode: bool,
    ids: ClusterIdGen,
    current_window: TimeWindow,
    /// δd neighbourhoods, resolved lazily per sensor.
    neighborhoods: FxHashMap<SensorId, Vec<SensorId>>,
}

impl<'a> OnlineExtractor<'a> {
    /// Creates an extractor for a deployment.
    pub fn new(network: &'a RoadNetwork, params: Params, spec: WindowSpec) -> Self {
        Self {
            network,
            params,
            max_gap: max_gap_windows(&params, spec),
            open: Vec::new(),
            sealed: Vec::new(),
            sealed_raw: Vec::new(),
            raw_mode: false,
            ids: ClusterIdGen::new(1),
            current_window: TimeWindow::new(0),
            neighborhoods: FxHashMap::default(),
        }
    }

    fn neighborhood(&mut self, sensor: SensorId) -> &[SensorId] {
        let network = self.network;
        let delta_d = self.params.delta_d_miles;
        self.neighborhoods.entry(sensor).or_insert_with(|| {
            let mut near = network.sensors_near(sensor, delta_d);
            near.push(sensor);
            near
        })
    }

    /// Feeds one record. Records must arrive in non-decreasing window
    /// order.
    ///
    /// # Errors
    /// Returns [`OutOfOrderRecord`] (and leaves all state untouched) if
    /// `record.window` precedes a previously pushed window.
    pub fn push(&mut self, record: AtypicalRecord) -> Result<(), OutOfOrderRecord> {
        if record.window < self.current_window {
            return Err(OutOfOrderRecord {
                record,
                current_window: self.current_window,
            });
        }
        self.advance_to(record.window);

        // Find every open event this record relates to: it must contain a
        // frontier entry for a δd-near sensor within δt.
        let near: Vec<SensorId> = self.neighborhood(record.sensor).to_vec();
        let mut hits: Vec<usize> = Vec::new();
        for (i, event) in self.open.iter().enumerate() {
            let related = near.iter().any(|s| {
                event
                    .frontier
                    .get(s)
                    .is_some_and(|w| record.window.gap(*w) <= self.max_gap)
            });
            if related {
                hits.push(i);
            }
        }
        match hits.as_slice() {
            [] => self.open.push(OpenEvent::new(record)),
            [first, rest @ ..] => {
                // Merge every hit into the first (drain from the back so
                // indices stay valid), then add the record.
                for &i in rest.iter().rev() {
                    let absorbed = self.open.swap_remove(i);
                    self.open[*first].absorb(absorbed);
                }
                self.open[*first].push(record);
            }
        }
        Ok(())
    }

    /// Advances the clock, sealing events that can no longer grow.
    pub fn advance_to(&mut self, window: TimeWindow) {
        if window > self.current_window {
            self.current_window = window;
        }
        let max_gap = self.max_gap;
        let current = self.current_window;
        let mut i = 0;
        while i < self.open.len() {
            if current.gap(self.open[i].last_window) > max_gap {
                let done = self.open.swap_remove(i);
                self.seal(done);
            } else {
                i += 1;
            }
        }
    }

    /// Switches between micro-cluster sealing (default) and raw-event
    /// sealing (see [`SealedRawEvent`]). Affects only events sealed after
    /// the call.
    pub fn retain_raw_events(&mut self, on: bool) {
        self.raw_mode = on;
    }

    /// The extractor clock: the largest window pushed or advanced to.
    pub fn current_window(&self) -> TimeWindow {
        self.current_window
    }

    /// Smallest window among open-event records whose sensor satisfies
    /// `pred` — `None` when no open record matches. A sharded monitor uses
    /// this as a holdback watermark: no event sealed in the future can
    /// contain a `pred`-matching record older than this.
    pub fn open_min_window_where(&self, pred: impl Fn(SensorId) -> bool) -> Option<TimeWindow> {
        self.open
            .iter()
            .flat_map(|e| e.records.iter())
            .filter(|r| pred(r.sensor))
            .map(|r| r.window)
            .min()
    }

    fn seal(&mut self, mut event: OpenEvent) {
        if self.raw_mode {
            event.records.sort_unstable_by_key(|r| (r.window, r.sensor));
            self.sealed_raw.push(SealedRawEvent {
                last_window: event.last_window,
                records: event.records,
            });
            return;
        }
        if (event.records.len() as u32) < self.params.min_event_records {
            return; // trustworthiness filter, as in the batch pipeline
        }
        event.records.sort_unstable_by_key(|r| (r.window, r.sensor));
        let event = AtypicalEvent::new(event.records);
        self.sealed
            .push(AtypicalCluster::from_event(self.ids.next_id(), &event));
    }

    /// Takes the micro-clusters sealed so far.
    pub fn drain_sealed(&mut self) -> Vec<AtypicalCluster> {
        std::mem::take(&mut self.sealed)
    }

    /// Takes the raw events sealed so far (raw mode only).
    pub fn drain_sealed_raw(&mut self) -> Vec<SealedRawEvent> {
        std::mem::take(&mut self.sealed_raw)
    }

    /// Number of events still open.
    pub fn open_events(&self) -> usize {
        self.open.len()
    }

    /// Serializes the open-event state for a checkpoint: each open
    /// event's member records, in slab order (insertion order within each
    /// event). Together with [`Self::current_window`] this is the whole
    /// recoverable state — the frontier and sealing deadline are derived
    /// from the records by [`Self::restore_open_events`].
    pub fn export_open_events(&self) -> Vec<Vec<AtypicalRecord>> {
        self.open.iter().map(|e| e.records.clone()).collect()
    }

    /// Restores state captured by [`Self::export_open_events`] into a
    /// fresh extractor. Slab order is preserved, so a restored extractor's
    /// subsequent merge/seal decisions are bit-identical to the original's
    /// (merge order follows slab indices).
    ///
    /// # Panics
    /// Panics if the extractor has already ingested records (restore is a
    /// construction step, not a merge).
    pub fn restore_open_events(&mut self, clock: TimeWindow, open: Vec<Vec<AtypicalRecord>>) {
        assert!(
            self.open.is_empty() && self.current_window == TimeWindow::new(0),
            "restore_open_events on a non-fresh extractor"
        );
        for records in open {
            let mut it = records.into_iter();
            let first = it
                .next()
                .expect("checkpointed open event has at least one record");
            let mut event = OpenEvent::new(first);
            for r in it {
                event.push(r);
            }
            self.open.push(event);
        }
        self.current_window = clock;
    }

    /// Seals everything (end of stream) and returns all remaining
    /// micro-clusters.
    pub fn finish(mut self) -> Vec<AtypicalCluster> {
        let open = std::mem::take(&mut self.open);
        for event in open {
            self.seal(event);
        }
        self.sealed
    }

    /// Seals everything and returns all remaining raw events (raw mode).
    pub fn finish_raw(mut self) -> Vec<SealedRawEvent> {
        let open = std::mem::take(&mut self.open);
        for event in open {
            self.seal(event);
        }
        self.sealed_raw
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::build_forest_from_records;
    use cps_core::Severity;
    use cps_sim::{Scale, SimConfig, TrafficSim};

    fn sorted_key(c: &AtypicalCluster) -> (TimeWindow, usize, Severity) {
        (c.time_range().start, c.sensor_count(), c.severity())
    }

    #[test]
    fn streaming_matches_batch_extraction() {
        let sim = TrafficSim::new(SimConfig::new(Scale::Tiny, 42));
        let params = Params::paper_defaults();
        let spec = sim.config().spec;
        let mut records = sim.atypical_day(0);
        records.sort_unstable_by_key(|r| (r.window, r.sensor));

        let mut online = OnlineExtractor::new(sim.network(), params, spec);
        for r in &records {
            online.push(*r).unwrap();
        }
        let mut streamed = online.finish();

        let batch = build_forest_from_records(vec![(0, records)], sim.network(), &params, spec);
        let mut batched = batch.forest.day(0).to_vec();

        streamed.sort_by_key(sorted_key);
        batched.sort_by_key(sorted_key);
        assert_eq!(streamed.len(), batched.len());
        for (s, b) in streamed.iter().zip(&batched) {
            assert_eq!(s.sf, b.sf);
            assert_eq!(s.tf, b.tf);
        }
    }

    #[test]
    fn events_seal_as_soon_as_they_expire() {
        let net = TrafficSim::new(SimConfig::new(Scale::Tiny, 1));
        let params = Params::paper_defaults();
        let spec = net.config().spec;
        let mut online = OnlineExtractor::new(net.network(), params, spec);
        let rec = |s: u32, w: u32| {
            AtypicalRecord::new(
                SensorId::new(s),
                TimeWindow::new(w),
                Severity::from_secs(120),
            )
        };
        online.push(rec(0, 100)).unwrap();
        online.push(rec(1, 101)).unwrap();
        assert_eq!(online.open_events(), 1);
        assert!(online.drain_sealed().is_empty());
        // Advance past δt: the event can no longer grow and seals.
        online.advance_to(TimeWindow::new(105));
        let sealed = online.drain_sealed();
        assert_eq!(sealed.len(), 1);
        assert_eq!(sealed[0].sensor_count(), 2);
        assert_eq!(online.open_events(), 0);
    }

    #[test]
    fn bridging_record_merges_open_events() {
        let sim = TrafficSim::new(SimConfig::new(Scale::Tiny, 1));
        let params = Params::paper_defaults();
        let spec = sim.config().spec;
        let mut online = OnlineExtractor::new(sim.network(), params, spec);
        let rec = |s: u32, w: u32| {
            AtypicalRecord::new(
                SensorId::new(s),
                TimeWindow::new(w),
                Severity::from_secs(120),
            )
        };
        // Two separate events (sensors 0 and 4 are ~2 miles apart on the
        // same highway — beyond δd), then sensor 2 bridges them.
        online.push(rec(0, 100)).unwrap();
        online.push(rec(4, 100)).unwrap();
        assert_eq!(online.open_events(), 2);
        online.push(rec(2, 101)).unwrap();
        assert_eq!(online.open_events(), 1);
        let all = online.finish();
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].sensor_count(), 3);
    }

    #[test]
    fn trust_filter_applies_to_sealed_events() {
        let sim = TrafficSim::new(SimConfig::new(Scale::Tiny, 1));
        let params = Params::paper_defaults(); // min_event_records = 2
        let spec = sim.config().spec;
        let mut online = OnlineExtractor::new(sim.network(), params, spec);
        online
            .push(AtypicalRecord::new(
                SensorId::new(0),
                TimeWindow::new(100),
                Severity::from_secs(60),
            ))
            .unwrap();
        let out = online.finish();
        assert!(out.is_empty(), "singleton must be dropped");
    }

    #[test]
    fn out_of_order_push_is_rejected_without_state_damage() {
        let sim = TrafficSim::new(SimConfig::new(Scale::Tiny, 1));
        let params = Params::paper_defaults();
        let mut online = OnlineExtractor::new(sim.network(), params, sim.config().spec);
        let rec = |w: u32| {
            AtypicalRecord::new(
                SensorId::new(0),
                TimeWindow::new(w),
                Severity::from_secs(60),
            )
        };
        online.push(rec(100)).unwrap();
        let err = online.push(rec(99)).unwrap_err();
        assert_eq!(err.record.window, TimeWindow::new(99));
        assert_eq!(err.current_window, TimeWindow::new(100));
        assert!(err.to_string().contains("regresses"));
        // The rejected record left the open event untouched.
        assert_eq!(online.open_events(), 1);
        online.push(rec(101)).unwrap();
        let out = online.finish();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].window_count(), 2, "windows 100 and 101 only");
    }
}
