//! On-disk materialization of the atypical forest.
//!
//! §IV: *"In practical applications we do not pre-compute the entire
//! atypical forest due to storage limits. In most cases only the
//! micro-clusters and some low level macro-clusters are pre-computed."*
//! This module is that persistence layer: cluster sets are written as
//! CRC-checked binary files, one per (level, bucket) — e.g. the
//! micro-clusters of day 17 or the macro-clusters of week 3 — and loaded
//! on demand when a query touches the bucket.
//!
//! Format (little-endian):
//!
//! ```text
//! file    := magic "ACF1" | count u32 | crc u32 | cluster*
//! cluster := id u64 | merged u32 | |SF| u32 | |TF| u32
//!            (sensor u32, severity u64)^|SF|
//!            (window u32, severity u64)^|TF|
//! ```

use crate::cluster::AtypicalCluster;
use crate::feature::{SpatialFeature, TemporalFeature};
use bytes::{Buf, BufMut};
use cps_core::{ClusterId, CpsError, Result, SensorId, Severity, TimeWindow};
use cps_storage::crc::crc32;
use cps_storage::Io;
use std::io::Write;
use std::path::{Path, PathBuf};

const MAGIC: [u8; 4] = *b"ACF1";

/// Encodes one cluster into `buf`. Public so other durable formats (the
/// monitor's checkpoint) reuse the exact `⟨ID, SF, TF⟩` byte layout —
/// and so bit-identity tests can compare states via this serialization.
pub fn encode_cluster(c: &AtypicalCluster, buf: &mut Vec<u8>) {
    buf.put_u64_le(c.id.raw());
    buf.put_u32_le(c.merged_count);
    buf.put_u32_le(c.sf.len() as u32);
    buf.put_u32_le(c.tf.len() as u32);
    for (s, sev) in c.sf.iter() {
        buf.put_u32_le(s.raw());
        buf.put_u64_le(sev.as_secs());
    }
    for (w, sev) in c.tf.iter() {
        buf.put_u32_le(w.raw());
        buf.put_u64_le(sev.as_secs());
    }
}

/// Decodes one cluster, advancing `buf`. Inverse of [`encode_cluster`].
pub fn decode_cluster(buf: &mut &[u8]) -> Result<AtypicalCluster> {
    if buf.remaining() < 20 {
        return Err(CpsError::corrupt(
            "cluster file",
            "truncated cluster header",
        ));
    }
    let id = ClusterId::new(buf.get_u64_le());
    let merged_count = buf.get_u32_le();
    let sf_len = buf.get_u32_le() as usize;
    let tf_len = buf.get_u32_le() as usize;
    if buf.remaining() < (sf_len + tf_len) * 12 {
        return Err(CpsError::corrupt("cluster file", "truncated feature data"));
    }
    let mut sf_pairs = Vec::with_capacity(sf_len);
    for _ in 0..sf_len {
        let s = SensorId::new(buf.get_u32_le());
        let sev = Severity::from_secs(buf.get_u64_le());
        sf_pairs.push((s, sev));
    }
    let mut tf_pairs = Vec::with_capacity(tf_len);
    for _ in 0..tf_len {
        let w = TimeWindow::new(buf.get_u32_le());
        let sev = Severity::from_secs(buf.get_u64_le());
        tf_pairs.push((w, sev));
    }
    let sf: SpatialFeature = sf_pairs.into_iter().collect();
    let tf: TemporalFeature = tf_pairs.into_iter().collect();
    if sf.total() != tf.total() {
        return Err(CpsError::corrupt(
            "cluster file",
            format!("cluster {id}: SF/TF totals disagree"),
        ));
    }
    let mut cluster = AtypicalCluster::new(id, sf, tf);
    cluster.merged_count = merged_count;
    Ok(cluster)
}

/// Writes a cluster set to `path` (atomically via a temp file + rename).
pub fn write_clusters(path: &Path, clusters: &[AtypicalCluster]) -> Result<()> {
    write_clusters_with(&Io::real(), path, clusters)
}

/// [`write_clusters`] through an explicit I/O backend.
///
/// The write protocol is: create temp file, write header, write payload,
/// fsync, rename over `path`. Each step is one backend operation, so a
/// fault-injecting backend can crash the protocol at every point and a
/// recovery test can check the absent-or-complete guarantee.
pub fn write_clusters_with(io: &Io, path: &Path, clusters: &[AtypicalCluster]) -> Result<()> {
    if let Some(parent) = path.parent() {
        io.create_dir_all(parent)?;
    }
    let mut payload = Vec::new();
    for c in clusters {
        encode_cluster(c, &mut payload);
    }
    let mut header = Vec::with_capacity(12);
    header.put_slice(&MAGIC);
    header.put_u32_le(clusters.len() as u32);
    header.put_u32_le(crc32(&payload));

    let tmp = path.with_extension("tmp");
    {
        let mut f = io.create(&tmp)?;
        f.write_all(&header)?;
        f.write_all(&payload)?;
        f.sync()?;
    }
    io.rename(&tmp, path)?;
    Ok(())
}

/// Reads a cluster set from `path`, verifying the checksum.
pub fn read_clusters(path: &Path) -> Result<Vec<AtypicalCluster>> {
    read_clusters_with(&Io::real(), path)
}

/// [`read_clusters`] through an explicit I/O backend.
pub fn read_clusters_with(io: &Io, path: &Path) -> Result<Vec<AtypicalCluster>> {
    let raw = io.read_to_vec(path)?;
    if raw.len() < 12 || raw[..4] != MAGIC {
        return Err(CpsError::corrupt(
            path.display().to_string(),
            "bad magic or truncated header",
        ));
    }
    let mut header = &raw[4..12];
    let count = header.get_u32_le() as usize;
    let expected_crc = header.get_u32_le();
    let payload = &raw[12..];
    if crc32(payload) != expected_crc {
        return Err(CpsError::corrupt(
            path.display().to_string(),
            "checksum mismatch",
        ));
    }
    let mut buf = payload;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        out.push(decode_cluster(&mut buf)?);
    }
    if buf.has_remaining() {
        return Err(CpsError::corrupt(
            path.display().to_string(),
            "trailing bytes after last cluster",
        ));
    }
    Ok(out)
}

/// A forest level that can be materialized (mirrors the aggregation
/// hierarchy of §III-C).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ForestLevel {
    /// Day-level micro-clusters.
    Day,
    /// Week-level macro-clusters.
    Week,
    /// Month-level macro-clusters.
    Month,
}

impl ForestLevel {
    fn prefix(self) -> &'static str {
        match self {
            ForestLevel::Day => "day",
            ForestLevel::Week => "week",
            ForestLevel::Month => "month",
        }
    }
}

/// Directory-backed store of materialized forest levels.
///
/// Layout: `<root>/clusters/<level>-<bucket>.acf`.
pub struct ForestStore {
    root: PathBuf,
    io: Io,
}

impl ForestStore {
    /// Opens (creating if needed) a forest store under `root`.
    pub fn open(root: &Path) -> Result<Self> {
        Self::open_with(root, Io::real())
    }

    /// Opens a forest store whose file operations go through `io`.
    pub fn open_with(root: &Path, io: Io) -> Result<Self> {
        io.create_dir_all(&root.join("clusters"))?;
        Ok(Self {
            root: root.to_owned(),
            io,
        })
    }

    fn path(&self, level: ForestLevel, bucket: u32) -> PathBuf {
        self.root
            .join("clusters")
            .join(format!("{}-{bucket:05}.acf", level.prefix()))
    }

    /// Filesystem path of one bucket, for observability (e.g. reporting
    /// snapshot sizes); the file may not exist yet.
    pub fn bucket_path(&self, level: ForestLevel, bucket: u32) -> PathBuf {
        self.path(level, bucket)
    }

    /// Persists one bucket of a level.
    pub fn save(
        &self,
        level: ForestLevel,
        bucket: u32,
        clusters: &[AtypicalCluster],
    ) -> Result<()> {
        write_clusters_with(&self.io, &self.path(level, bucket), clusters)
    }

    /// Loads one bucket, or `None` if it was never materialized.
    pub fn load(&self, level: ForestLevel, bucket: u32) -> Result<Option<Vec<AtypicalCluster>>> {
        let path = self.path(level, bucket);
        if !path.exists() {
            return Ok(None);
        }
        read_clusters_with(&self.io, &path).map(Some)
    }

    /// Whether a bucket is materialized.
    pub fn contains(&self, level: ForestLevel, bucket: u32) -> bool {
        self.path(level, bucket).exists()
    }

    /// Buckets materialized at a level, sorted.
    pub fn buckets(&self, level: ForestLevel) -> Result<Vec<u32>> {
        let mut out = Vec::new();
        let prefix = format!("{}-", level.prefix());
        for entry in std::fs::read_dir(self.root.join("clusters"))? {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            if let Some(rest) = name.strip_prefix(&prefix) {
                if let Some(num) = rest.strip_suffix(".acf") {
                    if let Ok(b) = num.parse() {
                        out.push(b);
                    }
                }
            }
        }
        out.sort_unstable();
        Ok(out)
    }

    /// Persists a forest's day level (the "pre-compute the micro-clusters
    /// of each day" setting the paper's experiments use).
    pub fn save_forest_days(&self, forest: &crate::forest::AtypicalForest) -> Result<usize> {
        let mut n = 0;
        for day in forest.days().collect::<Vec<_>>() {
            self.save(ForestLevel::Day, day, forest.day(day))?;
            n += 1;
        }
        Ok(n)
    }

    /// Rebuilds an in-memory forest from every materialized day bucket.
    pub fn load_forest(
        &self,
        spec: cps_core::WindowSpec,
        params: cps_core::Params,
    ) -> Result<crate::forest::AtypicalForest> {
        let mut forest = crate::forest::AtypicalForest::new(spec, params);
        for day in self.buckets(ForestLevel::Day)? {
            if let Some(clusters) = self.load(ForestLevel::Day, day)? {
                forest.insert_day(day, clusters);
            }
        }
        Ok(forest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cps_core::{Params, WindowSpec};

    fn cluster(id: u64, base: u32, n: u32) -> AtypicalCluster {
        let sf: SpatialFeature = (base..base + n)
            .map(|s| (SensorId::new(s), Severity::from_secs(60 + u64::from(s))))
            .collect();
        let tf: TemporalFeature = (base..base + n)
            .map(|w| (TimeWindow::new(w), Severity::from_secs(60 + u64::from(w))))
            .collect();
        AtypicalCluster::new(ClusterId::new(id), sf, tf)
    }

    fn tmp(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("atypical-store-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn roundtrip_preserves_clusters_exactly() {
        let dir = tmp("roundtrip");
        let clusters: Vec<AtypicalCluster> =
            (0..20).map(|i| cluster(i, (i as u32) * 3, 5)).collect();
        let path = dir.join("x.acf");
        write_clusters(&path, &clusters).unwrap();
        let back = read_clusters(&path).unwrap();
        assert_eq!(clusters, back);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_set_roundtrips() {
        let dir = tmp("empty");
        let path = dir.join("x.acf");
        write_clusters(&path, &[]).unwrap();
        assert!(read_clusters(&path).unwrap().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_is_detected() {
        let dir = tmp("corrupt");
        let path = dir.join("x.acf");
        write_clusters(&path, &[cluster(1, 0, 4)]).unwrap();
        let mut raw = std::fs::read(&path).unwrap();
        let len = raw.len();
        raw[len - 3] ^= 0xFF;
        std::fs::write(&path, raw).unwrap();
        let err = read_clusters(&path).unwrap_err();
        assert!(err.to_string().contains("checksum"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncation_at_every_byte_boundary_is_a_corrupt_error() {
        let dir = tmp("truncate");
        let path = dir.join("x.acf");
        let clusters: Vec<AtypicalCluster> =
            (0..3).map(|i| cluster(i, (i as u32) * 4, 4)).collect();
        write_clusters(&path, &clusters).unwrap();
        let full = std::fs::read(&path).unwrap();
        assert!(full.len() > 12, "payload must be non-trivial");
        for len in 0..full.len() {
            std::fs::write(&path, &full[..len]).unwrap();
            // Must be a structured Corrupt error — never a panic and never
            // a silent partial read.
            match read_clusters(&path) {
                Err(CpsError::Corrupt { .. }) => {}
                Err(other) => panic!("truncation at byte {len}: wrong error kind {other:?}"),
                Ok(read) => panic!(
                    "truncation at byte {len} silently read {} cluster(s)",
                    read.len()
                ),
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn garbage_header_is_rejected() {
        let dir = tmp("garbage");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("x.acf");
        std::fs::write(&path, b"not a cluster file").unwrap();
        assert!(read_clusters(&path).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn forest_store_levels_and_buckets() {
        let dir = tmp("levels");
        let store = ForestStore::open(&dir).unwrap();
        store
            .save(ForestLevel::Day, 3, &[cluster(1, 0, 3)])
            .unwrap();
        store
            .save(ForestLevel::Day, 10, &[cluster(2, 5, 3)])
            .unwrap();
        store
            .save(ForestLevel::Week, 0, &[cluster(3, 0, 6)])
            .unwrap();
        assert!(store.contains(ForestLevel::Day, 3));
        assert!(!store.contains(ForestLevel::Day, 4));
        assert_eq!(store.buckets(ForestLevel::Day).unwrap(), vec![3, 10]);
        assert_eq!(store.buckets(ForestLevel::Week).unwrap(), vec![0]);
        assert_eq!(
            store.buckets(ForestLevel::Month).unwrap(),
            Vec::<u32>::new()
        );
        let loaded = store.load(ForestLevel::Week, 0).unwrap().unwrap();
        assert_eq!(loaded[0].id, ClusterId::new(3));
        assert!(store.load(ForestLevel::Month, 0).unwrap().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn forest_persistence_roundtrip() {
        let dir = tmp("forest");
        let store = ForestStore::open(&dir).unwrap();
        let spec = WindowSpec::PEMS;
        let params = Params::paper_defaults();
        let mut forest = crate::forest::AtypicalForest::new(spec, params);
        forest.insert_day(0, vec![cluster(1, 0, 4)]);
        forest.insert_day(1, vec![cluster(2, 10, 4), cluster(3, 20, 4)]);
        assert_eq!(store.save_forest_days(&forest).unwrap(), 2);

        let loaded = store.load_forest(spec, params).unwrap();
        assert_eq!(loaded.num_micro_clusters(), 3);
        assert_eq!(loaded.day(0), forest.day(0));
        assert_eq!(loaded.day(1), forest.day(1));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
