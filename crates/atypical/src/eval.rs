//! Effectiveness evaluation: precision and recall of significant clusters.
//!
//! The paper's protocol (§V-B): `All` prunes nothing, so its significant
//! clusters are the ground truth. For a strategy's returned macro-cluster
//! set:
//!
//! * **precision** — "the proportion of significant clusters in the
//!   returned query results": of all macro-clusters returned, how many are
//!   significant at the query scale,
//! * **recall** — "the proportion of retrieved significant clusters over
//!   the ground truth": a truth cluster counts as retrieved when some
//!   returned *significant* cluster matches it (similarity ≥ 0.5 under the
//!   forgiving `max` balance — a pruned strategy reconstructs clusters with
//!   slightly reduced features, so exact equality would be wrong).

use crate::cluster::AtypicalCluster;
use crate::query::QueryResult;
use crate::similarity::similarity;
use cps_core::BalanceFunction;

/// Matching threshold for pairing returned clusters with ground truth.
pub const MATCH_THRESHOLD: f64 = 0.5;

/// Precision/recall of one query result.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PrecisionRecall {
    /// Fraction of returned clusters that are significant.
    pub precision: f64,
    /// Fraction of ground-truth significant clusters recovered.
    pub recall: f64,
    /// Clusters returned.
    pub returned: usize,
    /// Returned clusters that are significant at query scale.
    pub returned_significant: usize,
    /// Ground-truth significant clusters.
    pub truth: usize,
}

/// Whether returned cluster `r` matches ground-truth cluster `g`.
pub fn matches(r: &AtypicalCluster, g: &AtypicalCluster) -> bool {
    similarity(r, g, BalanceFunction::Max) >= MATCH_THRESHOLD
}

/// Evaluates a strategy's result against the ground-truth significant set.
pub fn evaluate(result: &QueryResult, truth: &[&AtypicalCluster]) -> PrecisionRecall {
    let returned = result.macros.len();
    let significant = result.significant();
    let returned_significant = significant.len();

    let precision = if returned == 0 {
        1.0
    } else {
        returned_significant as f64 / returned as f64
    };

    let recovered = truth
        .iter()
        .filter(|g| significant.iter().any(|r| matches(r, g)))
        .count();
    let recall = if truth.is_empty() {
        1.0
    } else {
        recovered as f64 / truth.len() as f64
    };

    PrecisionRecall {
        precision,
        recall,
        returned,
        returned_significant,
        truth: truth.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feature::{SpatialFeature, TemporalFeature};
    use crate::integrate::IntegrationStats;
    use crate::query::Strategy;
    use cps_core::{ClusterId, SensorId, Severity, TimeRange, TimeWindow};

    fn cluster(id: u64, base: u32, n: u32, minutes_per_key: f64) -> AtypicalCluster {
        let sf: SpatialFeature = (base..base + n)
            .map(|s| (SensorId::new(s), Severity::from_minutes(minutes_per_key)))
            .collect();
        let tf: TemporalFeature = (base..base + n)
            .map(|w| (TimeWindow::new(w), Severity::from_minutes(minutes_per_key)))
            .collect();
        AtypicalCluster::new(ClusterId::new(id), sf, tf)
    }

    fn result_with(macros: Vec<AtypicalCluster>, threshold_minutes: f64) -> QueryResult {
        QueryResult {
            strategy: Strategy::Gui,
            macros,
            candidate_clusters: 0,
            input_clusters: 0,
            num_red_regions: None,
            threshold: Severity::from_minutes(threshold_minutes),
            n_sensors: 100,
            range: TimeRange::new(TimeWindow::new(0), TimeWindow::new(288)),
            elapsed: std::time::Duration::ZERO,
            integration: IntegrationStats::default(),
            final_check_removed: 0,
        }
    }

    #[test]
    fn perfect_result_scores_one() {
        let big = cluster(1, 0, 10, 50.0); // 500 min
        let result = result_with(vec![big.clone()], 100.0);
        let truth_store = [big];
        let truth: Vec<&AtypicalCluster> = truth_store.iter().collect();
        let pr = evaluate(&result, &truth);
        assert_eq!(pr.precision, 1.0);
        assert_eq!(pr.recall, 1.0);
        assert_eq!(pr.returned_significant, 1);
    }

    #[test]
    fn trivial_returns_hurt_precision_only() {
        let big = cluster(1, 0, 10, 50.0);
        let noise1 = cluster(2, 100, 1, 1.0);
        let noise2 = cluster(3, 200, 1, 1.0);
        let result = result_with(vec![big.clone(), noise1, noise2], 100.0);
        let truth_store = [big];
        let truth: Vec<&AtypicalCluster> = truth_store.iter().collect();
        let pr = evaluate(&result, &truth);
        assert!((pr.precision - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(pr.recall, 1.0);
    }

    #[test]
    fn missing_truth_hurts_recall() {
        let a = cluster(1, 0, 10, 50.0);
        let b = cluster(2, 100, 10, 50.0);
        let result = result_with(vec![a.clone()], 100.0);
        let truth_store = [a, b];
        let truth: Vec<&AtypicalCluster> = truth_store.iter().collect();
        let pr = evaluate(&result, &truth);
        assert_eq!(pr.precision, 1.0);
        assert_eq!(pr.recall, 0.5);
    }

    #[test]
    fn partial_reconstruction_still_matches() {
        // A Pru-style reconstruction missing 2 of 10 sensors still matches
        // the truth cluster.
        let truth_cluster = cluster(1, 0, 10, 50.0);
        let partial = cluster(2, 0, 8, 50.0);
        assert!(matches(&partial, &truth_cluster));
        let result = result_with(vec![partial], 100.0);
        let truth_store = [truth_cluster];
        let truth: Vec<&AtypicalCluster> = truth_store.iter().collect();
        let pr = evaluate(&result, &truth);
        assert_eq!(pr.recall, 1.0);
    }

    #[test]
    fn unrelated_cluster_does_not_match() {
        let a = cluster(1, 0, 10, 50.0);
        let b = cluster(2, 500, 10, 50.0);
        assert!(!matches(&a, &b));
    }

    #[test]
    fn empty_cases_use_conventions() {
        let result = result_with(vec![], 100.0);
        let pr = evaluate(&result, &[]);
        assert_eq!(pr.precision, 1.0);
        assert_eq!(pr.recall, 1.0);
        let truth_store = [cluster(1, 0, 10, 50.0)];
        let truth: Vec<&AtypicalCluster> = truth_store.iter().collect();
        let pr = evaluate(&result, &truth);
        assert_eq!(pr.recall, 0.0);
    }

    #[test]
    fn insignificant_returns_cannot_recover_truth() {
        // A matching cluster that is itself below the threshold does not
        // count as retrieving the truth.
        let truth_cluster = cluster(1, 0, 10, 50.0); // 500 min
        let weak = cluster(2, 0, 10, 5.0); // 50 min < threshold
        let result = result_with(vec![weak], 100.0);
        let truth_store = [truth_cluster];
        let truth: Vec<&AtypicalCluster> = truth_store.iter().collect();
        let pr = evaluate(&result, &truth);
        assert_eq!(pr.recall, 0.0);
        assert_eq!(pr.precision, 0.0);
    }
}
