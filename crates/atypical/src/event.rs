//! Atypical events (Definitions 1–3) and their extraction (Algorithm 1).
//!
//! An atypical event is a maximal set of atypical records closed under the
//! *atypical related* relation — i.e. a connected component of the
//! direct-relation graph. Extraction walks components from random seeds
//! exactly as Algorithm 1 does; the neighbour query is abstracted behind
//! [`cps_index::NeighborSource`], so the same code runs the naive `O(N+n²)`
//! and indexed `O(N + n·log n)` variants of Proposition 1.

use crate::cluster::AtypicalCluster;
use cps_core::ids::ClusterIdGen;
use cps_core::measure::HolisticModel;
use cps_core::{AtypicalRecord, Severity};
use cps_index::NeighborSource;

/// A raw atypical event: the full set of member records.
///
/// Holistic (Property 1): there is no constant-size summary of a
/// sub-aggregation — which is precisely why the pipeline converts events to
/// micro-clusters immediately.
#[derive(Clone, Debug, PartialEq)]
pub struct AtypicalEvent {
    records: Vec<AtypicalRecord>,
}

impl HolisticModel for AtypicalEvent {}

impl AtypicalEvent {
    /// Wraps a set of records as an event.
    pub fn new(records: Vec<AtypicalRecord>) -> Self {
        Self { records }
    }

    /// Member records.
    pub fn records(&self) -> &[AtypicalRecord] {
        &self.records
    }

    /// Number of member records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the event has no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total severity of the event.
    pub fn severity(&self) -> Severity {
        self.records.iter().map(|r| r.severity).sum()
    }

    /// Approximate storage size in bytes (Figure 16's `AE` series).
    pub fn approx_bytes(&self) -> usize {
        self.records.len() * std::mem::size_of::<AtypicalRecord>()
    }
}

/// Extracts all atypical events as connected components (Algorithm 1,
/// lines 2–5, run to exhaustion).
pub fn extract_events<S: NeighborSource>(source: &S) -> Vec<AtypicalEvent> {
    let records = source.records();
    let n = records.len();
    let mut visited = vec![false; n];
    let mut events = Vec::new();
    let mut frontier: Vec<u32> = Vec::new();
    let mut neighbors: Vec<u32> = Vec::new();

    for seed in 0..n as u32 {
        if visited[seed as usize] {
            continue;
        }
        // BFS the component of `seed`.
        let mut members = Vec::new();
        visited[seed as usize] = true;
        frontier.clear();
        frontier.push(seed);
        while let Some(idx) = frontier.pop() {
            members.push(records[idx as usize]);
            neighbors.clear();
            source.direct_related(idx, &mut neighbors);
            for &n_idx in &neighbors {
                if !visited[n_idx as usize] {
                    visited[n_idx as usize] = true;
                    frontier.push(n_idx);
                }
            }
        }
        members.sort_unstable_by_key(|r| (r.window, r.sensor));
        events.push(AtypicalEvent::new(members));
    }
    events
}

/// Algorithm 1 end-to-end: extracts events and summarizes each into a
/// micro-cluster, allocating ids from `ids`.
pub fn extract_micro_clusters<S: NeighborSource>(
    source: &S,
    ids: &mut ClusterIdGen,
) -> Vec<AtypicalCluster> {
    extract_events(source)
        .iter()
        .map(|event| AtypicalCluster::from_event(ids.next_id(), event))
        .collect()
}

/// Convenience wrapper keeping events and their micro-clusters paired
/// (model-size experiments need both).
pub fn extract_events_and_clusters<S: NeighborSource>(
    source: &S,
    ids: &mut ClusterIdGen,
) -> Vec<(AtypicalEvent, AtypicalCluster)> {
    extract_events(source)
        .into_iter()
        .map(|event| {
            let cluster = AtypicalCluster::from_event(ids.next_id(), &event);
            (event, cluster)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cps_core::{ClusterId, Params, SensorId, TimeWindow, WindowSpec};
    use cps_geo::{point::LOS_ANGELES, RoadNetwork};
    use cps_index::{NaiveNeighbors, StIndex};

    fn line_network() -> RoadNetwork {
        RoadNetwork::builder()
            .highway(
                "line",
                vec![
                    LOS_ANGELES.offset_miles(0.0, -10.0),
                    LOS_ANGELES.offset_miles(0.0, 10.0),
                ],
                0.5,
            )
            .build()
    }

    fn rec(sensor: u32, window: u32) -> AtypicalRecord {
        AtypicalRecord::new(
            SensorId::new(sensor),
            TimeWindow::new(window),
            Severity::from_minutes(3.0),
        )
    }

    #[test]
    fn chained_records_form_one_event() {
        // Records chained pairwise within δd/δt: a–b–c–d, where a and d are
        // NOT directly related but are transitively (Definition 2).
        let net = line_network();
        let records = vec![rec(0, 100), rec(2, 102), rec(4, 104), rec(6, 106)];
        let params = Params::paper_defaults(); // δd=1.5mi (3 hops), δt=15min (2 windows)
        let idx = StIndex::build(&records, &net, &params, WindowSpec::PEMS);
        let events = extract_events(&idx);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].len(), 4);
    }

    #[test]
    fn disjoint_groups_form_separate_events() {
        let net = line_network();
        // Two groups far apart in space, one far apart in time.
        let records = vec![
            rec(0, 100),
            rec(1, 100),
            rec(30, 100), // ≥ 14 miles away
            rec(31, 100),
            rec(0, 500), // same place, hours later
        ];
        let params = Params::paper_defaults();
        let idx = StIndex::build(&records, &net, &params, WindowSpec::PEMS);
        let mut events = extract_events(&idx);
        events.sort_by_key(|e| e.records()[0].sensor);
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].len(), 2);
        assert_eq!(events[1].len(), 1); // the late lone record
        assert_eq!(events[2].len(), 2);
    }

    #[test]
    fn events_partition_the_records() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let net = line_network();
        let mut rng = StdRng::seed_from_u64(5);
        let records: Vec<AtypicalRecord> = (0..300)
            .map(|_| {
                rec(
                    rng.gen_range(0..net.num_sensors() as u32),
                    rng.gen_range(0..300),
                )
            })
            .collect();
        let params = Params::paper_defaults();
        let idx = StIndex::build(&records, &net, &params, WindowSpec::PEMS);
        let events = extract_events(&idx);
        let total: usize = events.iter().map(AtypicalEvent::len).sum();
        assert_eq!(total, records.len());
        // Each record appears exactly once.
        let mut seen: Vec<AtypicalRecord> = events
            .iter()
            .flat_map(|e| e.records().iter().copied())
            .collect();
        seen.sort_unstable_by_key(|r| (r.sensor, r.window));
        let mut want = records.clone();
        want.sort_unstable_by_key(|r| (r.sensor, r.window));
        assert_eq!(seen, want);
    }

    #[test]
    fn naive_and_indexed_extraction_agree() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let net = line_network();
        let mut rng = StdRng::seed_from_u64(9);
        let records: Vec<AtypicalRecord> = (0..200)
            .map(|_| {
                rec(
                    rng.gen_range(0..net.num_sensors() as u32),
                    rng.gen_range(0..150),
                )
            })
            .collect();
        let params = Params::paper_defaults();
        let idx = StIndex::build(&records, &net, &params, WindowSpec::PEMS);
        let naive = NaiveNeighbors::new(&records, &net, &params, WindowSpec::PEMS);
        let mut ev_a = extract_events(&idx);
        let mut ev_b = extract_events(&naive);
        let key = |e: &AtypicalEvent| (e.records()[0].window, e.records()[0].sensor);
        ev_a.sort_by_key(key);
        ev_b.sort_by_key(key);
        assert_eq!(ev_a, ev_b);
    }

    #[test]
    fn micro_clusters_carry_event_severity() {
        let net = line_network();
        let records = vec![rec(0, 100), rec(1, 100), rec(0, 101)];
        let params = Params::paper_defaults();
        let idx = StIndex::build(&records, &net, &params, WindowSpec::PEMS);
        let mut ids = ClusterIdGen::new(1);
        let clusters = extract_micro_clusters(&idx, &mut ids);
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].id, ClusterId::new(1));
        assert_eq!(clusters[0].severity(), Severity::from_minutes(9.0));
        assert_eq!(clusters[0].sensor_count(), 2);
    }

    #[test]
    fn paired_extraction_matches() {
        let net = line_network();
        let records = vec![rec(0, 100), rec(20, 400)];
        let params = Params::paper_defaults();
        let idx = StIndex::build(&records, &net, &params, WindowSpec::PEMS);
        let mut ids = ClusterIdGen::new(1);
        let pairs = extract_events_and_clusters(&idx, &mut ids);
        assert_eq!(pairs.len(), 2);
        for (event, cluster) in &pairs {
            assert_eq!(event.severity(), cluster.severity());
        }
    }

    #[test]
    fn empty_input_gives_no_events() {
        let net = line_network();
        let records: Vec<AtypicalRecord> = vec![];
        let params = Params::paper_defaults();
        let idx = StIndex::build(&records, &net, &params, WindowSpec::PEMS);
        assert!(extract_events(&idx).is_empty());
    }
}
