//! The atypical forest: hierarchical clustering trees (§III-C).
//!
//! Micro-clusters of each day sit at the leaves; macro-clusters are
//! integrated level by level (day → week → month). Because merging is
//! commutative and associative (Property 3), a month can be integrated from
//! its weeks' macro-clusters instead of re-clustering 30 days of micros —
//! that is the hierarchical speed-up the forest exists for. Multiple
//! aggregation paths (calendar weeks vs a weekday/weekend split) form the
//! different *trees* of the forest; which levels are materialized is a
//! storage/latency trade-off (§IV notes only low levels are usually
//! pre-computed).

use crate::cluster::AtypicalCluster;
use crate::integrate::{integrate_aligned, IntegrationStats, TimeAlignment};
use cps_core::fx::FxHashMap;
use cps_core::ids::ClusterIdGen;
use cps_core::{Params, TimeRange, WindowSpec};
use std::collections::BTreeMap;

/// Aggregation paths supported by the forest.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AggregationPath {
    /// day → calendar week → month.
    Calendar,
    /// day → {weekday, weekend} groups per week → month.
    WeekdayWeekend,
}

/// Partially materialized forest of atypical clusters.
#[derive(Debug)]
pub struct AtypicalForest {
    spec: WindowSpec,
    params: Params,
    /// Day-level micro-clusters (always materialized).
    days: BTreeMap<u32, Vec<AtypicalCluster>>,
    /// Cached week-level macro-clusters, by week index.
    weeks: FxHashMap<u32, Vec<AtypicalCluster>>,
    /// Cached month-level macro-clusters, by month index.
    months: FxHashMap<u32, Vec<AtypicalCluster>>,
    ids: ClusterIdGen,
    /// Counters accumulated across every roll-up integration this forest
    /// has run — comparisons saved by the indexed path (candidates pruned,
    /// bound skips) are observable here.
    integration_stats: IntegrationStats,
}

impl AtypicalForest {
    /// Creates an empty forest.
    pub fn new(spec: WindowSpec, params: Params) -> Self {
        Self {
            spec,
            params,
            days: BTreeMap::new(),
            weeks: FxHashMap::default(),
            months: FxHashMap::default(),
            ids: ClusterIdGen::new(1_000_000),
            integration_stats: IntegrationStats::default(),
        }
    }

    /// The time discretization.
    pub fn spec(&self) -> WindowSpec {
        self.spec
    }

    /// The clustering parameters.
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// Integration with the forest's time-of-day alignment (recurring daily
    /// events at the same clock time integrate across days). The strategy —
    /// indexed candidate generation or naive scan — follows
    /// [`Params::indexed_integration`]; both produce identical roll-ups.
    fn run_integration(&mut self, inputs: Vec<AtypicalCluster>) -> Vec<AtypicalCluster> {
        let alignment = TimeAlignment::TimeOfDay {
            windows_per_day: self.spec.windows_per_day(),
        };
        let (macros, stats) = integrate_aligned(inputs, &self.params, alignment, &mut self.ids);
        self.integration_stats.absorb(stats);
        macros
    }

    /// Counters accumulated across all roll-up integrations so far.
    pub fn integration_stats(&self) -> IntegrationStats {
        self.integration_stats
    }

    /// Inserts (replaces) the micro-clusters of one day and invalidates the
    /// cached levels above it.
    pub fn insert_day(&mut self, day: u32, micros: Vec<AtypicalCluster>) {
        self.weeks.remove(&(day / 7));
        self.months.remove(&(day / 30));
        self.days.insert(day, micros);
    }

    /// Days present, in order.
    pub fn days(&self) -> impl Iterator<Item = u32> + '_ {
        self.days.keys().copied()
    }

    /// Micro-clusters of one day (empty slice if absent).
    pub fn day(&self, day: u32) -> &[AtypicalCluster] {
        self.days.get(&day).map_or(&[], Vec::as_slice)
    }

    /// Total number of stored micro-clusters.
    pub fn num_micro_clusters(&self) -> usize {
        self.days.values().map(Vec::len).sum()
    }

    /// Clones all micro-clusters of days `[first, first + n)` — the input
    /// set an online query starts from.
    pub fn micros_in_days(&self, first_day: u32, n_days: u32) -> Vec<AtypicalCluster> {
        self.days
            .range(first_day..first_day + n_days)
            .flat_map(|(_, v)| v.iter().cloned())
            .collect()
    }

    /// The window range covering days `[first, first + n)`.
    pub fn day_window_range(&self, first_day: u32, n_days: u32) -> TimeRange {
        self.spec.day_range(first_day, n_days)
    }

    /// Week-level macro-clusters (integrated from the week's days,
    /// memoized).
    pub fn week(&mut self, week: u32) -> &[AtypicalCluster] {
        if !self.weeks.contains_key(&week) {
            let micros = self.micros_in_days(week * 7, 7);
            let macros = self.run_integration(micros);
            self.weeks.insert(week, macros);
        }
        &self.weeks[&week]
    }

    /// Month-level macro-clusters, integrated hierarchically from the
    /// month's (30-day / ~4.3-week) week levels.
    pub fn month(&mut self, month: u32) -> &[AtypicalCluster] {
        if !self.months.contains_key(&month) {
            // A 30-day month spans parts of weeks ⌊30m/7⌋ ..= ⌊(30m+29)/7⌋.
            // Integrate directly over the month's days grouped through the
            // week cache where the week lies entirely inside the month, and
            // raw days otherwise.
            let first_day = month * 30;
            let last_day = first_day + 29;
            let mut inputs: Vec<AtypicalCluster> = Vec::new();
            let mut day = first_day;
            while day <= last_day {
                let week = day / 7;
                let week_start = week * 7;
                let week_end = week_start + 6;
                if week_start >= first_day && week_end <= last_day && day == week_start {
                    inputs.extend(self.week(week).to_vec());
                    day = week_end + 1;
                } else {
                    inputs.extend(self.day(day).to_vec());
                    day += 1;
                }
            }
            let macros = self.run_integration(inputs);
            self.months.insert(month, macros);
        }
        &self.months[&month]
    }

    /// Integrates an arbitrary day range, reusing materialized week levels
    /// where whole weeks are covered.
    pub fn integrate_days(&mut self, first_day: u32, n_days: u32) -> Vec<AtypicalCluster> {
        let last_day = first_day + n_days - 1;
        let mut inputs: Vec<AtypicalCluster> = Vec::new();
        let mut day = first_day;
        while day <= last_day {
            let week = day / 7;
            let week_start = week * 7;
            let week_end = week_start + 6;
            if day == week_start && week_end <= last_day {
                inputs.extend(self.week(week).to_vec());
                day = week_end + 1;
            } else {
                inputs.extend(self.day(day).to_vec());
                day += 1;
            }
        }
        self.run_integration(inputs)
    }

    /// Integrates a day range along an aggregation path. The
    /// weekday/weekend path returns `(weekday macros, weekend macros)` —
    /// two separate trees of the forest over the same leaves.
    pub fn integrate_by_path(
        &mut self,
        first_day: u32,
        n_days: u32,
        path: AggregationPath,
    ) -> Vec<(String, Vec<AtypicalCluster>)> {
        match path {
            AggregationPath::Calendar => {
                vec![(
                    "calendar".to_string(),
                    self.integrate_days(first_day, n_days),
                )]
            }
            AggregationPath::WeekdayWeekend => {
                let mut weekday = Vec::new();
                let mut weekend = Vec::new();
                for day in first_day..first_day + n_days {
                    let start = cps_core::TimeWindow::new(day * self.spec.windows_per_day());
                    let bucket = if self.spec.is_weekend(start) {
                        &mut weekend
                    } else {
                        &mut weekday
                    };
                    bucket.extend(self.day(day).to_vec());
                }
                let weekday_macros = self.run_integration(weekday);
                let weekend_macros = self.run_integration(weekend);
                vec![
                    ("weekday".to_string(), weekday_macros),
                    ("weekend".to_string(), weekend_macros),
                ]
            }
        }
    }

    /// Approximate memory footprint of the materialized forest (Figure 16's
    /// `AC` series counts the micro-cluster level).
    pub fn approx_bytes(&self) -> usize {
        self.days
            .values()
            .flat_map(|v| v.iter())
            .map(AtypicalCluster::approx_bytes)
            .sum()
    }

    /// Borrows the id generator (query engines allocate merge ids from the
    /// same sequence for reproducibility).
    pub fn id_gen(&mut self) -> &mut ClusterIdGen {
        &mut self.ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feature::{SpatialFeature, TemporalFeature};
    use cps_core::{ClusterId, SensorId, Severity, TimeWindow};

    /// A micro-cluster at (sensor block, one window of `day`).
    fn micro(id: u64, day: u32, base_sensor: u32) -> AtypicalCluster {
        let spec = WindowSpec::PEMS;
        let w = day * spec.windows_per_day() + 100;
        let sf: SpatialFeature = (base_sensor..base_sensor + 3)
            .map(|s| (SensorId::new(s), Severity::from_minutes(10.0)))
            .collect();
        let tf: TemporalFeature = (w..w + 3)
            .map(|t| (TimeWindow::new(t), Severity::from_minutes(10.0)))
            .collect();
        AtypicalCluster::new(ClusterId::new(id), sf, tf)
    }

    fn forest_with_days(n_days: u32) -> AtypicalForest {
        let mut f = AtypicalForest::new(WindowSpec::PEMS, Params::paper_defaults());
        for day in 0..n_days {
            // Two micros per day: a recurring one at sensors 0.. and a
            // roaming one.
            f.insert_day(
                day,
                vec![
                    micro(u64::from(day) * 2, day, 0),
                    micro(u64::from(day) * 2 + 1, day, 20 + day * 5),
                ],
            );
        }
        f
    }

    #[test]
    fn day_storage_roundtrip() {
        let f = forest_with_days(3);
        assert_eq!(f.days().collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(f.day(1).len(), 2);
        assert_eq!(f.day(9).len(), 0);
        assert_eq!(f.num_micro_clusters(), 6);
        assert_eq!(f.micros_in_days(0, 2).len(), 4);
        assert!(f.approx_bytes() > 0);
    }

    #[test]
    fn week_level_is_memoized() {
        let mut f = forest_with_days(7);
        let w0 = f.week(0).to_vec();
        let w0_again = f.week(0).to_vec();
        assert_eq!(w0, w0_again);
        assert!(!w0.is_empty());
    }

    #[test]
    fn week_level_merges_recurring_but_not_roaming_micros() {
        // The recurring micro (same sensors, same clock windows every day)
        // integrates across the week under time-of-day alignment; the
        // roaming micro moves 5 sensors per day, so spatial similarity is 0
        // and ½(0 + 1) = 0.5 does not clear the strict δsim = 0.5.
        let mut f = forest_with_days(7);
        let week = f.week(0);
        assert_eq!(week.len(), 8, "1 merged recurring + 7 roaming");
        let merged = week.iter().find(|c| c.merged_count == 7);
        assert!(merged.is_some(), "recurring event must integrate");
    }

    #[test]
    fn lower_delta_sim_merges_recurring_events() {
        let params = Params::paper_defaults().with_delta_sim(0.4);
        let mut f = AtypicalForest::new(WindowSpec::PEMS, params);
        for day in 0..7 {
            f.insert_day(day, vec![micro(u64::from(day), day, 0)]);
        }
        let week = f.week(0);
        assert_eq!(week.len(), 1, "recurring event should integrate");
        assert_eq!(week[0].merged_count, 7);
    }

    #[test]
    fn insert_invalidates_caches() {
        let mut f = forest_with_days(7);
        let before = f.week(0).len(); // 8: merged recurring + 7 roaming
        f.insert_day(3, vec![]);
        let after = f.week(0).len(); // 7: merged recurring (6 days) + 6 roaming
        assert_eq!(after, before - 1);
    }

    #[test]
    fn integrate_days_covers_partial_weeks() {
        let mut f = forest_with_days(20);
        // Days 5..15 cover a partial week, a full week, a partial week.
        let out = f.integrate_days(5, 10);
        let merged: u32 = out.iter().map(|c| c.merged_count).sum();
        assert_eq!(merged, 20, "every micro in range accounted once");
    }

    #[test]
    fn month_uses_weeks_and_accounts_all_micros() {
        let mut f = forest_with_days(30);
        let month = f.month(0).to_vec();
        let merged: u32 = month.iter().map(|c| c.merged_count).sum();
        assert_eq!(merged, 60);
    }

    #[test]
    fn weekday_weekend_path_splits_leaves() {
        let mut f = forest_with_days(14);
        let parts = f.integrate_by_path(0, 14, AggregationPath::WeekdayWeekend);
        assert_eq!(parts.len(), 2);
        let weekday_micros: u32 = parts[0].1.iter().map(|c| c.merged_count).sum();
        let weekend_micros: u32 = parts[1].1.iter().map(|c| c.merged_count).sum();
        assert_eq!(weekday_micros, 20); // 10 weekdays × 2
        assert_eq!(weekend_micros, 8); // 4 weekend days × 2
        let calendar = f.integrate_by_path(0, 14, AggregationPath::Calendar);
        assert_eq!(calendar.len(), 1);
    }

    #[test]
    fn rollups_accumulate_integration_stats() {
        let mut f = forest_with_days(7);
        assert_eq!(f.integration_stats(), IntegrationStats::default());
        let _ = f.week(0);
        let stats = f.integration_stats();
        assert!(stats.merges > 0, "recurring micros integrate");
        // Roaming micros share folded windows but no sensors with the
        // recurring ones: the one-sided bound caps those pairs at exactly
        // ½·(0 + 1) = 0.5 = δsim, so the indexed path skips them without
        // an exact evaluation.
        assert!(stats.bound_skips > 0, "disjoint-sensor pairs bound-skipped");
        let after_first = stats;
        let _ = f.week(0); // memoized — no further integration work
        assert_eq!(f.integration_stats(), after_first);
    }

    #[test]
    fn hierarchical_integration_matches_flat_severity() {
        let mut f = forest_with_days(14);
        let flat: Severity = f.micros_in_days(0, 14).iter().map(|c| c.severity()).sum();
        let hier: Severity = f.integrate_days(0, 14).iter().map(|c| c.severity()).sum();
        assert_eq!(flat, hier, "severity is conserved through the hierarchy");
    }
}
