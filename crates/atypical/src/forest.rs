//! The atypical forest: hierarchical clustering trees (§III-C).
//!
//! Micro-clusters of each day sit at the leaves; macro-clusters are
//! integrated level by level (day → week → month). Because merging is
//! commutative and associative (Property 3), a month can be integrated from
//! its weeks' macro-clusters instead of re-clustering 30 days of micros —
//! that is the hierarchical speed-up the forest exists for. Multiple
//! aggregation paths (calendar weeks vs a weekday/weekend split) form the
//! different *trees* of the forest; which levels are materialized is a
//! storage/latency trade-off (§IV notes only low levels are usually
//! pre-computed).
//!
//! Batch materialization ([`AtypicalForest::materialize_range`],
//! [`ensure_weeks`](AtypicalForest::ensure_weeks)) fans independent
//! sibling nodes out over [`Params::parallelism`] worker threads and
//! commits results in canonical node-path order (ascending week index,
//! then ascending month index), so the materialized forest — fresh merge
//! ids included — is bit-identical at every thread count (see
//! `crate::par`).

use crate::cluster::AtypicalCluster;
use crate::integrate::{integrate_aligned, IntegrationStats, TimeAlignment};
use crate::par::integrate_siblings;
use cps_core::fx::FxHashMap;
use cps_core::ids::ClusterIdGen;
use cps_core::{Params, TimeRange, WindowSpec};
use std::collections::BTreeMap;

/// Aggregation paths supported by the forest.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AggregationPath {
    /// day → calendar week → month.
    Calendar,
    /// day → {weekday, weekend} groups per week → month.
    WeekdayWeekend,
}

/// Which levels a [`AtypicalForest::materialize_range`] call built, in
/// the canonical order they were committed.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MaterializedLevels {
    /// Week indices covered by the range (whole weeks only).
    pub weeks: Vec<u32>,
    /// Month indices covered by the range (whole months only).
    pub months: Vec<u32>,
}

/// Partially materialized forest of atypical clusters.
#[derive(Debug)]
pub struct AtypicalForest {
    spec: WindowSpec,
    params: Params,
    /// Day-level micro-clusters (always materialized).
    days: BTreeMap<u32, Vec<AtypicalCluster>>,
    /// Cached week-level macro-clusters, by week index.
    weeks: FxHashMap<u32, Vec<AtypicalCluster>>,
    /// Cached month-level macro-clusters, by month index.
    months: FxHashMap<u32, Vec<AtypicalCluster>>,
    ids: ClusterIdGen,
    /// Counters accumulated across every roll-up integration this forest
    /// has run — comparisons saved by the indexed path (candidates pruned,
    /// bound skips) are observable here.
    integration_stats: IntegrationStats,
}

impl AtypicalForest {
    /// Creates an empty forest.
    pub fn new(spec: WindowSpec, params: Params) -> Self {
        Self {
            spec,
            params,
            days: BTreeMap::new(),
            weeks: FxHashMap::default(),
            months: FxHashMap::default(),
            ids: ClusterIdGen::new(1_000_000),
            integration_stats: IntegrationStats::default(),
        }
    }

    /// The time discretization.
    pub fn spec(&self) -> WindowSpec {
        self.spec
    }

    /// The clustering parameters.
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// The forest's roll-up alignment: recurring daily events at the same
    /// clock time integrate across days.
    fn alignment(&self) -> TimeAlignment {
        TimeAlignment::TimeOfDay {
            windows_per_day: self.spec.windows_per_day(),
        }
    }

    /// Integration with the forest's time-of-day alignment. The strategy —
    /// indexed candidate generation or naive scan — follows
    /// [`Params::indexed_integration`]; both produce identical roll-ups.
    fn run_integration(&mut self, inputs: Vec<AtypicalCluster>) -> Vec<AtypicalCluster> {
        let alignment = self.alignment();
        let (macros, stats) = integrate_aligned(inputs, &self.params, alignment, &mut self.ids);
        self.integration_stats.absorb(stats);
        macros
    }

    /// Integrates independent sibling nodes, fanning them out over
    /// [`Params::parallelism`] workers and committing results in node
    /// order — bit-identical to integrating each node sequentially.
    fn run_sibling_integrations(
        &mut self,
        nodes: Vec<Vec<AtypicalCluster>>,
    ) -> Vec<Vec<AtypicalCluster>> {
        let alignment = self.alignment();
        let threads = self.params.effective_parallelism();
        let (outs, stats) =
            integrate_siblings(nodes, &self.params, alignment, &mut self.ids, threads);
        self.integration_stats.absorb(stats);
        outs
    }

    /// Counters accumulated across all roll-up integrations so far.
    pub fn integration_stats(&self) -> IntegrationStats {
        self.integration_stats
    }

    /// Inserts (replaces) the micro-clusters of one day and invalidates the
    /// cached levels above it.
    pub fn insert_day(&mut self, day: u32, micros: Vec<AtypicalCluster>) {
        self.weeks.remove(&(day / 7));
        self.months.remove(&(day / 30));
        self.days.insert(day, micros);
    }

    /// Days present, in order.
    pub fn days(&self) -> impl Iterator<Item = u32> + '_ {
        self.days.keys().copied()
    }

    /// Micro-clusters of one day (empty slice if absent).
    pub fn day(&self, day: u32) -> &[AtypicalCluster] {
        self.days.get(&day).map_or(&[], Vec::as_slice)
    }

    /// Total number of stored micro-clusters.
    pub fn num_micro_clusters(&self) -> usize {
        self.days.values().map(Vec::len).sum()
    }

    /// Clones all micro-clusters of days `[first, first + n)` — the input
    /// set an online query starts from.
    pub fn micros_in_days(&self, first_day: u32, n_days: u32) -> Vec<AtypicalCluster> {
        self.days
            .range(first_day..first_day + n_days)
            .flat_map(|(_, v)| v.iter().cloned())
            .collect()
    }

    /// The window range covering days `[first, first + n)`.
    pub fn day_window_range(&self, first_day: u32, n_days: u32) -> TimeRange {
        self.spec.day_range(first_day, n_days)
    }

    /// The whole weeks inside `[first_day, last_day]` — the weeks the
    /// hierarchical assembly of that range draws from the week cache.
    /// Mirrors [`range_inputs`](Self::range_inputs) exactly.
    fn whole_weeks_in_range(first_day: u32, last_day: u32) -> Vec<u32> {
        let mut weeks = Vec::new();
        let mut day = first_day;
        while day <= last_day {
            let week = day / 7;
            let week_start = week * 7;
            let week_end = week_start + 6;
            if day == week_start && week_end <= last_day {
                weeks.push(week);
                day = week_end + 1;
            } else {
                day += 1;
            }
        }
        weeks
    }

    /// The hierarchical input set of `[first_day, last_day]`: materialized
    /// week levels where a whole week is covered, raw day leaves otherwise.
    /// The covered whole weeks must already be materialized (see
    /// [`ensure_weeks`](Self::ensure_weeks)).
    fn range_inputs(&self, first_day: u32, last_day: u32) -> Vec<AtypicalCluster> {
        let mut inputs: Vec<AtypicalCluster> = Vec::new();
        let mut day = first_day;
        while day <= last_day {
            let week = day / 7;
            let week_start = week * 7;
            let week_end = week_start + 6;
            if day == week_start && week_end <= last_day {
                let macros = self
                    .weeks
                    .get(&week)
                    .expect("whole week materialized by ensure_weeks");
                inputs.extend(macros.iter().cloned());
                day = week_end + 1;
            } else {
                inputs.extend(self.day(day).to_vec());
                day += 1;
            }
        }
        inputs
    }

    /// Materializes the given week levels. Uncached weeks are integrated
    /// as parallel sibling nodes and committed in ascending week order —
    /// the order the sequential pull API integrates them — so the cache
    /// contents (ids included) are independent of the thread count.
    pub fn ensure_weeks(&mut self, weeks: &[u32]) {
        let mut missing: Vec<u32> = weeks
            .iter()
            .copied()
            .filter(|w| !self.weeks.contains_key(w))
            .collect();
        missing.sort_unstable();
        missing.dedup();
        if missing.is_empty() {
            return;
        }
        let nodes: Vec<Vec<AtypicalCluster>> = missing
            .iter()
            .map(|&w| self.micros_in_days(w * 7, 7))
            .collect();
        let outs = self.run_sibling_integrations(nodes);
        for (w, macros) in missing.into_iter().zip(outs) {
            self.weeks.insert(w, macros);
        }
    }

    /// Materializes the given month levels: first the whole weeks they
    /// draw from (ascending, in parallel), then the uncached months as
    /// parallel sibling nodes committed in ascending month order.
    pub fn ensure_months(&mut self, months: &[u32]) {
        let mut missing: Vec<u32> = months
            .iter()
            .copied()
            .filter(|m| !self.months.contains_key(m))
            .collect();
        missing.sort_unstable();
        missing.dedup();
        if missing.is_empty() {
            return;
        }
        // A 30-day month spans parts of weeks ⌊30m/7⌋ ..= ⌊(30m+29)/7⌋;
        // only the weeks entirely inside the month feed from the week
        // cache, the straddling edges enter as raw days.
        let weeks: Vec<u32> = missing
            .iter()
            .flat_map(|&m| Self::whole_weeks_in_range(m * 30, m * 30 + 29))
            .collect();
        self.ensure_weeks(&weeks);
        let nodes: Vec<Vec<AtypicalCluster>> = missing
            .iter()
            .map(|&m| self.range_inputs(m * 30, m * 30 + 29))
            .collect();
        let outs = self.run_sibling_integrations(nodes);
        for (m, macros) in missing.into_iter().zip(outs) {
            self.months.insert(m, macros);
        }
    }

    /// Week-level macro-clusters (integrated from the week's days,
    /// memoized).
    pub fn week(&mut self, week: u32) -> &[AtypicalCluster] {
        self.ensure_weeks(&[week]);
        &self.weeks[&week]
    }

    /// Month-level macro-clusters, integrated hierarchically from the
    /// month's (30-day / ~4.3-week) week levels.
    pub fn month(&mut self, month: u32) -> &[AtypicalCluster] {
        self.ensure_months(&[month]);
        &self.months[&month]
    }

    /// Materializes every week and month level whose span lies entirely
    /// inside days `[first_day, first_day + n_days)`, level by level:
    /// all weeks fan out first (ascending), then all months (ascending).
    /// Output is bit-identical at every [`Params::parallelism`] setting.
    pub fn materialize_range(&mut self, first_day: u32, n_days: u32) -> MaterializedLevels {
        let last_day = first_day + n_days - 1;
        let weeks = Self::whole_weeks_in_range(first_day, last_day);
        self.ensure_weeks(&weeks);
        let months: Vec<u32> = (first_day.div_ceil(30)..)
            .take_while(|m| m * 30 + 29 <= last_day)
            .collect();
        self.ensure_months(&months);
        MaterializedLevels { weeks, months }
    }

    /// Integrates an arbitrary day range, reusing materialized week levels
    /// where whole weeks are covered.
    pub fn integrate_days(&mut self, first_day: u32, n_days: u32) -> Vec<AtypicalCluster> {
        let last_day = first_day + n_days - 1;
        self.ensure_weeks(&Self::whole_weeks_in_range(first_day, last_day));
        let inputs = self.range_inputs(first_day, last_day);
        self.run_integration(inputs)
    }

    /// Integrates a day range along an aggregation path. The
    /// weekday/weekend path returns `(weekday macros, weekend macros)` —
    /// two separate trees of the forest over the same leaves.
    pub fn integrate_by_path(
        &mut self,
        first_day: u32,
        n_days: u32,
        path: AggregationPath,
    ) -> Vec<(String, Vec<AtypicalCluster>)> {
        match path {
            AggregationPath::Calendar => {
                vec![(
                    "calendar".to_string(),
                    self.integrate_days(first_day, n_days),
                )]
            }
            AggregationPath::WeekdayWeekend => {
                let mut weekday = Vec::new();
                let mut weekend = Vec::new();
                for day in first_day..first_day + n_days {
                    let start = cps_core::TimeWindow::new(day * self.spec.windows_per_day());
                    let bucket = if self.spec.is_weekend(start) {
                        &mut weekend
                    } else {
                        &mut weekday
                    };
                    bucket.extend(self.day(day).to_vec());
                }
                // The two trees are independent siblings; canonical order
                // is weekday first, matching the sequential path.
                let mut outs = self
                    .run_sibling_integrations(vec![weekday, weekend])
                    .into_iter();
                let weekday_macros = outs.next().unwrap_or_default();
                let weekend_macros = outs.next().unwrap_or_default();
                vec![
                    ("weekday".to_string(), weekday_macros),
                    ("weekend".to_string(), weekend_macros),
                ]
            }
        }
    }

    /// Approximate memory footprint of the materialized forest (Figure 16's
    /// `AC` series counts the micro-cluster level).
    pub fn approx_bytes(&self) -> usize {
        self.days
            .values()
            .flat_map(|v| v.iter())
            .map(AtypicalCluster::approx_bytes)
            .sum()
    }

    /// Borrows the id generator (query engines allocate merge ids from the
    /// same sequence for reproducibility).
    pub fn id_gen(&mut self) -> &mut ClusterIdGen {
        &mut self.ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feature::{SpatialFeature, TemporalFeature};
    use cps_core::{ClusterId, SensorId, Severity, TimeWindow};

    /// A micro-cluster at (sensor block, one window of `day`).
    fn micro(id: u64, day: u32, base_sensor: u32) -> AtypicalCluster {
        let spec = WindowSpec::PEMS;
        let w = day * spec.windows_per_day() + 100;
        let sf: SpatialFeature = (base_sensor..base_sensor + 3)
            .map(|s| (SensorId::new(s), Severity::from_minutes(10.0)))
            .collect();
        let tf: TemporalFeature = (w..w + 3)
            .map(|t| (TimeWindow::new(t), Severity::from_minutes(10.0)))
            .collect();
        AtypicalCluster::new(ClusterId::new(id), sf, tf)
    }

    fn forest_with_days(n_days: u32) -> AtypicalForest {
        let mut f = AtypicalForest::new(WindowSpec::PEMS, Params::paper_defaults());
        for day in 0..n_days {
            // Two micros per day: a recurring one at sensors 0.. and a
            // roaming one.
            f.insert_day(
                day,
                vec![
                    micro(u64::from(day) * 2, day, 0),
                    micro(u64::from(day) * 2 + 1, day, 20 + day * 5),
                ],
            );
        }
        f
    }

    #[test]
    fn day_storage_roundtrip() {
        let f = forest_with_days(3);
        assert_eq!(f.days().collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(f.day(1).len(), 2);
        assert_eq!(f.day(9).len(), 0);
        assert_eq!(f.num_micro_clusters(), 6);
        assert_eq!(f.micros_in_days(0, 2).len(), 4);
        assert!(f.approx_bytes() > 0);
    }

    #[test]
    fn week_level_is_memoized() {
        let mut f = forest_with_days(7);
        let w0 = f.week(0).to_vec();
        let w0_again = f.week(0).to_vec();
        assert_eq!(w0, w0_again);
        assert!(!w0.is_empty());
    }

    #[test]
    fn week_level_merges_recurring_but_not_roaming_micros() {
        // The recurring micro (same sensors, same clock windows every day)
        // integrates across the week under time-of-day alignment; the
        // roaming micro moves 5 sensors per day, so spatial similarity is 0
        // and ½(0 + 1) = 0.5 does not clear the strict δsim = 0.5.
        let mut f = forest_with_days(7);
        let week = f.week(0);
        assert_eq!(week.len(), 8, "1 merged recurring + 7 roaming");
        let merged = week.iter().find(|c| c.merged_count == 7);
        assert!(merged.is_some(), "recurring event must integrate");
    }

    #[test]
    fn lower_delta_sim_merges_recurring_events() {
        let params = Params::paper_defaults().with_delta_sim(0.4);
        let mut f = AtypicalForest::new(WindowSpec::PEMS, params);
        for day in 0..7 {
            f.insert_day(day, vec![micro(u64::from(day), day, 0)]);
        }
        let week = f.week(0);
        assert_eq!(week.len(), 1, "recurring event should integrate");
        assert_eq!(week[0].merged_count, 7);
    }

    #[test]
    fn insert_invalidates_caches() {
        let mut f = forest_with_days(7);
        let before = f.week(0).len(); // 8: merged recurring + 7 roaming
        f.insert_day(3, vec![]);
        let after = f.week(0).len(); // 7: merged recurring (6 days) + 6 roaming
        assert_eq!(after, before - 1);
    }

    #[test]
    fn integrate_days_covers_partial_weeks() {
        let mut f = forest_with_days(20);
        // Days 5..15 cover a partial week, a full week, a partial week.
        let out = f.integrate_days(5, 10);
        let merged: u32 = out.iter().map(|c| c.merged_count).sum();
        assert_eq!(merged, 20, "every micro in range accounted once");
    }

    #[test]
    fn month_uses_weeks_and_accounts_all_micros() {
        let mut f = forest_with_days(30);
        let month = f.month(0).to_vec();
        let merged: u32 = month.iter().map(|c| c.merged_count).sum();
        assert_eq!(merged, 60);
    }

    #[test]
    fn weekday_weekend_path_splits_leaves() {
        let mut f = forest_with_days(14);
        let parts = f.integrate_by_path(0, 14, AggregationPath::WeekdayWeekend);
        assert_eq!(parts.len(), 2);
        let weekday_micros: u32 = parts[0].1.iter().map(|c| c.merged_count).sum();
        let weekend_micros: u32 = parts[1].1.iter().map(|c| c.merged_count).sum();
        assert_eq!(weekday_micros, 20); // 10 weekdays × 2
        assert_eq!(weekend_micros, 8); // 4 weekend days × 2
        let calendar = f.integrate_by_path(0, 14, AggregationPath::Calendar);
        assert_eq!(calendar.len(), 1);
    }

    #[test]
    fn rollups_accumulate_integration_stats() {
        let mut f = forest_with_days(7);
        assert_eq!(f.integration_stats(), IntegrationStats::default());
        let _ = f.week(0);
        let stats = f.integration_stats();
        assert!(stats.merges > 0, "recurring micros integrate");
        // Roaming micros share folded windows but no sensors with the
        // recurring ones: the one-sided bound caps those pairs at exactly
        // ½·(0 + 1) = 0.5 = δsim, so the indexed path skips them without
        // an exact evaluation.
        assert!(stats.bound_skips > 0, "disjoint-sensor pairs bound-skipped");
        let after_first = stats;
        let _ = f.week(0); // memoized — no further integration work
        assert_eq!(f.integration_stats(), after_first);
    }

    #[test]
    fn materialize_range_is_bit_identical_across_thread_counts() {
        let build = |threads: usize| {
            let params = Params::paper_defaults().with_parallelism(threads);
            let mut f = AtypicalForest::new(WindowSpec::PEMS, params);
            for day in 0..60 {
                f.insert_day(
                    day,
                    vec![
                        micro(u64::from(day) * 2, day, 0),
                        micro(u64::from(day) * 2 + 1, day, 20 + day * 5),
                    ],
                );
            }
            let levels = f.materialize_range(0, 60);
            let weeks: Vec<Vec<AtypicalCluster>> =
                levels.weeks.iter().map(|&w| f.week(w).to_vec()).collect();
            let months: Vec<Vec<AtypicalCluster>> =
                levels.months.iter().map(|&m| f.month(m).to_vec()).collect();
            (
                levels,
                weeks,
                months,
                f.integration_stats(),
                f.id_gen().peek(),
            )
        };
        let seq = build(1);
        assert_eq!(seq.0.weeks, (0..8).collect::<Vec<u32>>());
        assert_eq!(seq.0.months, vec![0, 1]);
        for threads in [2, 3, 8] {
            let par = build(threads);
            assert_eq!(par, seq, "{threads} threads");
        }
    }

    #[test]
    fn hierarchical_integration_matches_flat_severity() {
        let mut f = forest_with_days(14);
        let flat: Severity = f.micros_in_days(0, 14).iter().map(|c| c.severity()).sum();
        let hier: Severity = f.integrate_days(0, 14).iter().map(|c| c.severity()).sum();
        assert_eq!(flat, hier, "severity is conserved through the hierarchy");
    }
}
