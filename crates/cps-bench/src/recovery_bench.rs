//! Standing perf trajectory for the durable monitor: ingest throughput
//! under each fsync policy, and recovery time as a function of the WAL
//! suffix replayed past the last checkpoint.
//!
//! The `repro monitor-recovery` command feeds the same simulated
//! atypical-record stream through the sharded [`MonitorService`] four
//! ways — durability off, fsync-every-append, group commit — and then,
//! with group commit on, plants checkpoints so that a controlled fraction
//! of the feed remains in the WAL, kills the service without a clean
//! shutdown, and times [`MonitorService::recover`]:
//!
//! ```text
//! repro monitor-recovery                # seed-42 → BENCH_recovery.json
//! repro monitor-recovery --days 1 --iters 1 --bench-out results/smoke.json
//! ```
//!
//! The ingest rows quantify the WAL tax (records/s per policy); the
//! recovery rows show replay cost growing with the un-checkpointed
//! suffix, which is exactly what `checkpoint_interval_records` bounds.

use cps_monitor::{
    DurabilityConfig, FsyncPolicy, MonitorConfig, MonitorService, OverflowPolicy, RecoveryReport,
};
use cps_sim::{Scale, SimConfig, TrafficSim};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Configuration of one `repro monitor-recovery` run.
#[derive(Clone, Debug)]
pub struct RecoveryBenchConfig {
    /// Deployment scale of the simulated workload.
    pub scale: Scale,
    /// Simulation seed.
    pub seed: u64,
    /// Days of atypical records in the feed.
    pub days: u32,
    /// Worker shards.
    pub shards: usize,
    /// Repetitions per measurement; the best time is kept.
    pub iters: u32,
    /// Cap on the feed length (0 = the whole generated stream); lets CI
    /// smoke runs stay fast without changing the workload's shape.
    pub max_records: usize,
}

impl Default for RecoveryBenchConfig {
    fn default() -> Self {
        Self {
            scale: Scale::Tiny,
            seed: 42,
            days: 2,
            shards: 4,
            iters: 3,
            max_records: 0,
        }
    }
}

/// Ingest throughput under one durability mode.
#[derive(Clone, Debug)]
pub struct IngestResult {
    /// `"off"`, `"fsync-each"`, or `"group-commit"`.
    pub mode: &'static str,
    /// Records fed (all accepted; the feed runs under `Block`).
    pub records: u64,
    /// Best wall-clock feed-plus-drain time across iterations.
    pub ingest_ms: f64,
    /// `records / ingest_ms`, scaled to records per second.
    pub records_per_sec: f64,
}

/// Recovery time for one planted WAL-suffix length.
#[derive(Clone, Debug)]
pub struct RecoveryResult {
    /// Fraction of the feed left in the WAL past the last checkpoint
    /// (1.0 = no checkpoint at all, the whole log replays).
    pub suffix_fraction: f64,
    /// The `checkpoint_interval_records` that planted it (0 = disabled).
    pub checkpoint_interval: u64,
    /// Whether recovery found a checkpoint document.
    pub had_checkpoint: bool,
    /// WAL entries replayed past the checkpoint (records + advances).
    pub replayed_entries: usize,
    /// Record entries among them.
    pub replayed_records: u64,
    /// Best wall-clock `MonitorService::recover` time across iterations.
    pub recovery_ms: f64,
}

/// Both halves of the artifact.
#[derive(Clone, Debug)]
pub struct RecoveryBenchReport {
    pub ingest: Vec<IngestResult>,
    pub recovery: Vec<RecoveryResult>,
    /// Feed length actually used (after `max_records`).
    pub feed_records: u64,
}

/// A fresh directory under the system temp root, unique per call so
/// repeated iterations never see each other's WAL state.
fn fresh_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "cps-bench-recovery-{}-{tag}-{n}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).expect("create bench temp dir");
    dir
}

fn feed_records(config: &RecoveryBenchConfig, sim: &TrafficSim) -> Vec<cps_core::AtypicalRecord> {
    let mut records: Vec<_> = (0..config.days).flat_map(|d| sim.atypical_day(d)).collect();
    records.sort_unstable_by_key(|r| (r.window, r.sensor));
    if config.max_records > 0 {
        records.truncate(config.max_records);
    }
    assert!(!records.is_empty(), "simulated feed is empty");
    records
}

fn monitor_config(
    config: &RecoveryBenchConfig,
    sim: &TrafficSim,
    durability: DurabilityConfig,
) -> MonitorConfig {
    MonitorConfig {
        shards: config.shards,
        spec: sim.config().spec,
        overflow: OverflowPolicy::Block,
        durability,
        ..MonitorConfig::default()
    }
}

fn durability_for(mode: &str, wal_dir: Option<PathBuf>) -> DurabilityConfig {
    let fsync = match mode {
        "off" => FsyncPolicy::Never,
        "fsync-each" => FsyncPolicy::Always,
        "group-commit" => FsyncPolicy::Group,
        other => unreachable!("unknown ingest mode {other}"),
    };
    DurabilityConfig {
        wal_dir,
        fsync,
        ..DurabilityConfig::default()
    }
}

/// One timed service lifetime: start, feed everything, drain with
/// `finish`. Panics on any ingest error — the bench runs no faults, so an
/// error is a bug, not a measurement.
fn timed_ingest(
    mc: &MonitorConfig,
    network: &Arc<cps_geo::RoadNetwork>,
    records: &[cps_core::AtypicalRecord],
) -> f64 {
    let start = Instant::now();
    let mut service = MonitorService::start(mc, network.clone()).expect("service starts");
    for &record in records {
        assert!(
            service.ingest(record).expect("healthy ingest"),
            "Block policy must not drop"
        );
    }
    service.finish();
    start.elapsed().as_secs_f64() * 1e3
}

/// Feeds the whole stream with group commit on and the checkpoint
/// interval planted so roughly `suffix_fraction` of the feed stays in the
/// WAL, then abandons the service *without* `finish` — the monitor-level
/// equivalent of a process kill (the WAL is already durable; only the
/// clean-shutdown path is skipped). Returns the recovery time and report.
fn timed_recovery(
    config: &RecoveryBenchConfig,
    sim: &TrafficSim,
    network: &Arc<cps_geo::RoadNetwork>,
    records: &[cps_core::AtypicalRecord],
    suffix_fraction: f64,
) -> (u64, f64, RecoveryReport) {
    let len = records.len() as u64;
    // One checkpoint fires every `interval` records, so with
    // `interval = len - suffix` and `suffix < len/2` exactly one fires and
    // the last `suffix` records remain in the WAL. `interval = 0` disables
    // checkpoints: the whole log replays.
    let suffix = (len as f64 * suffix_fraction).round() as u64;
    // A full-feed suffix saturates to interval 0 = checkpoints disabled.
    let interval = len.saturating_sub(suffix);
    assert!(
        interval == 0 || suffix < len.div_ceil(2),
        "suffix fractions in (0.5, 1.0) would fire a second checkpoint"
    );

    let wal_dir = fresh_dir("rec");
    let durability = DurabilityConfig {
        wal_dir: Some(wal_dir.clone()),
        fsync: FsyncPolicy::Group,
        checkpoint_interval_records: interval,
        ..DurabilityConfig::default()
    };
    let mc = monitor_config(config, sim, durability);

    let mut service = MonitorService::start(&mc, network.clone()).expect("service starts");
    for &record in records {
        assert!(
            service.ingest(record).expect("healthy ingest"),
            "Block policy must not drop"
        );
    }
    drop(service); // abrupt: no finish, no final checkpoint

    let start = Instant::now();
    let (recovered, report) =
        MonitorService::recover(&mc, network.clone()).expect("recovery succeeds");
    let ms = start.elapsed().as_secs_f64() * 1e3;
    drop(recovered);
    let _ = std::fs::remove_dir_all(&wal_dir);
    (interval, ms, report)
}

/// Runs both sweeps and prints one line per measurement.
pub fn run(config: &RecoveryBenchConfig) -> RecoveryBenchReport {
    let sim = TrafficSim::new(SimConfig::new(config.scale, config.seed));
    let network = Arc::new(sim.network().clone());
    let records = feed_records(config, &sim);
    let len = records.len() as u64;
    let iters = config.iters.max(1);

    let ingest = ["off", "fsync-each", "group-commit"]
        .iter()
        .map(|&mode| {
            let mut best_ms = f64::INFINITY;
            for _ in 0..iters {
                let wal_dir = (mode != "off").then(|| fresh_dir("ingest"));
                let mc = monitor_config(config, &sim, durability_for(mode, wal_dir.clone()));
                best_ms = best_ms.min(timed_ingest(&mc, &network, &records));
                if let Some(dir) = wal_dir {
                    let _ = std::fs::remove_dir_all(&dir);
                }
            }
            let r = IngestResult {
                mode,
                records: len,
                ingest_ms: best_ms,
                records_per_sec: len as f64 / (best_ms / 1e3),
            };
            eprintln!(
                "ingest {:>12}: {:>8.2} ms for {} records ({:>9.0} rec/s)",
                r.mode, r.ingest_ms, r.records, r.records_per_sec
            );
            r
        })
        .collect();

    let recovery = [1.0, 0.4, 0.2, 0.05]
        .iter()
        .map(|&fraction| {
            let mut best_ms = f64::INFINITY;
            let mut interval = 0;
            let mut report = None;
            for _ in 0..iters {
                let (i, ms, rep) = timed_recovery(config, &sim, &network, &records, fraction);
                if ms < best_ms {
                    best_ms = ms;
                    interval = i;
                    report = Some(rep);
                }
            }
            let report = report.expect("at least one iteration ran");
            // Sanity-gate the measurement: a planted checkpoint must
            // exist and strictly shrink the replayed suffix, and the
            // no-checkpoint row must replay the whole feed.
            if fraction >= 1.0 {
                assert!(!report.had_checkpoint);
                assert_eq!(report.replayed_records, len);
            } else {
                assert!(
                    report.had_checkpoint,
                    "interval {interval} planted no checkpoint"
                );
                assert!(report.replayed_records < len);
            }
            let r = RecoveryResult {
                suffix_fraction: fraction,
                checkpoint_interval: interval,
                had_checkpoint: report.had_checkpoint,
                replayed_entries: report.replayed_entries,
                replayed_records: report.replayed_records,
                recovery_ms: best_ms,
            };
            eprintln!(
                "recover suffix {:>4.0}%: {:>8.2} ms ({} entries, {} records, checkpoint: {})",
                r.suffix_fraction * 100.0,
                r.recovery_ms,
                r.replayed_entries,
                r.replayed_records,
                r.had_checkpoint
            );
            r
        })
        .collect();

    RecoveryBenchReport {
        ingest,
        recovery,
        feed_records: len,
    }
}

/// Writes the artifact (`BENCH_recovery.json` at the repo root for the
/// standing record; `results/BENCH_recovery_smoke.json` for CI).
pub fn save_json(
    report: &RecoveryBenchReport,
    config: &RecoveryBenchConfig,
    path: &Path,
) -> std::io::Result<()> {
    use serde::Value;
    fn obj(entries: Vec<(&str, Value)>) -> Value {
        Value::Object(
            entries
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }
    let baseline = report
        .ingest
        .iter()
        .find(|r| r.mode == "off")
        .map_or(f64::INFINITY, |r| r.records_per_sec);
    let ingest: Vec<Value> = report
        .ingest
        .iter()
        .map(|r| {
            let relative = if baseline > 0.0 {
                r.records_per_sec / baseline
            } else {
                f64::INFINITY
            };
            obj(vec![
                ("mode", Value::Str(r.mode.to_string())),
                ("records", Value::U64(r.records)),
                ("ingest_ms", Value::F64(r.ingest_ms)),
                ("records_per_sec", Value::F64(r.records_per_sec)),
                ("throughput_vs_off", Value::F64(relative)),
            ])
        })
        .collect();
    let recovery: Vec<Value> = report
        .recovery
        .iter()
        .map(|r| {
            obj(vec![
                ("suffix_fraction", Value::F64(r.suffix_fraction)),
                ("checkpoint_interval", Value::U64(r.checkpoint_interval)),
                ("had_checkpoint", Value::Bool(r.had_checkpoint)),
                ("replayed_entries", Value::U64(r.replayed_entries as u64)),
                ("replayed_records", Value::U64(r.replayed_records)),
                ("recovery_ms", Value::F64(r.recovery_ms)),
            ])
        })
        .collect();
    let host_cpus = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let doc = obj(vec![
        ("bench", Value::Str("monitor-recovery".to_string())),
        (
            "scale",
            Value::Str(format!("{:?}", config.scale).to_lowercase()),
        ),
        ("seed", Value::U64(config.seed)),
        ("days", Value::U64(u64::from(config.days))),
        ("shards", Value::U64(config.shards as u64)),
        ("iters", Value::U64(u64::from(config.iters))),
        ("feed_records", Value::U64(report.feed_records)),
        ("host_cpus", Value::U64(host_cpus as u64)),
        ("ingest", Value::Array(ingest)),
        ("recovery", Value::Array(recovery)),
    ]);
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let text = serde_json::to_string_pretty(&doc)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    std::fs::write(path, format!("{text}\n"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_run_measures_and_saves() {
        let config = RecoveryBenchConfig {
            days: 1,
            iters: 1,
            max_records: 160,
            ..RecoveryBenchConfig::default()
        };
        let report = run(&config);
        assert_eq!(report.feed_records, 160);
        assert_eq!(report.ingest.len(), 3);
        assert_eq!(report.recovery.len(), 4);
        // The no-checkpoint row replays the whole accepted feed; planted
        // checkpoints must strictly shrink the replayed suffix.
        assert!(!report.recovery[0].had_checkpoint);
        assert_eq!(report.recovery[0].replayed_records, report.feed_records);
        for r in &report.recovery[1..] {
            assert!(
                r.had_checkpoint,
                "interval {} planted no checkpoint",
                r.checkpoint_interval
            );
            assert!(r.replayed_records < report.feed_records);
        }

        let path = fresh_dir("test").join("BENCH_recovery_test.json");
        save_json(&report, &config, &path).expect("save json");
        let text = std::fs::read_to_string(&path).expect("read back");
        let doc: serde::Value = serde_json::from_str(&text).expect("valid json");
        let entries = doc.as_object().expect("top-level object");
        assert_eq!(
            serde::get_field(entries, "ingest")
                .as_array()
                .expect("ingest array")
                .len(),
            3
        );
        assert_eq!(
            serde::get_field(entries, "recovery")
                .as_array()
                .expect("recovery array")
                .len(),
            4
        );
    }
}
