//! `repro` — regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! repro [OPTIONS] <COMMAND>
//!
//! Commands:
//!   settings         Figure 14: datasets and parameters
//!   fig15 | fig16    Figures 15/16: construction time and model size
//!   fig17            Figure 17: query time and input clusters
//!   fig18            Figure 18: precision/recall vs range
//!   fig19            Figure 19: precision/recall vs δs
//!   fig20            Figure 20: #clusters vs δt and δd
//!   fig21            Figure 21: severity of significant clusters vs δsim × g
//!   ablate           Red-zone and retrieval ablations
//!   integrate        Naive vs indexed integration perf trajectory
//!   forest           Parallel forest construction: thread sweep + bit-identity
//!   monitor-recovery Durable monitor: WAL ingest tax + recovery vs suffix length
//!   query-serving    Concurrent readers vs ingest: read-path matrix + cache hit rate
//!   all              Everything above (except the four benches)
//!
//! Options:
//!   --scale <tiny|small|medium|paper>   deployment scale (default tiny)
//!   --seed <u64>                        generator seed (default 42)
//!   --datasets <k>                      datasets for fig15/16 (default 12)
//!   --days <n>                          days per dataset (default 30)
//!   --out <dir>                         results directory (default results/)
//!   --sizes <n,n,...>                   `integrate` input sizes (default 1000,5000,20000)
//!   --threads <n,n,...>                 `forest` thread sweep / `query-serving`
//!                                       reader sweep (default 1,2,4,8)
//!   --iters <n>                         `integrate`/`forest` reps (default 3)
//!   --max-records <n>                   `monitor-recovery`/`query-serving` feed cap
//!                                       (default 0 = all)
//!   --bench-out <file>                  bench artifact (default BENCH_integrate.json,
//!                                       BENCH_forest.json, BENCH_recovery.json, or
//!                                       BENCH_query_serving.json by command)
//! ```

use cps_bench::figs;
use cps_bench::{ReproConfig, Table, Workbench};
use cps_core::Params;
use cps_sim::Scale;
use std::process::ExitCode;

struct Args {
    command: String,
    scale: Scale,
    seed: u64,
    datasets: u32,
    days: u32,
    out: String,
    sizes: Vec<usize>,
    threads: Vec<usize>,
    iters: u32,
    max_records: usize,
    bench_out: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        command: String::new(),
        scale: Scale::Tiny,
        seed: 42,
        datasets: 12,
        days: 30,
        out: "results".to_string(),
        sizes: vec![1_000, 5_000, 20_000],
        threads: vec![1, 2, 4, 8],
        iters: 3,
        max_records: 0,
        bench_out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut grab = |name: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("missing value for {name}"))
        };
        match arg.as_str() {
            "--scale" => {
                let v = grab("--scale")?;
                args.scale = Scale::parse(&v).ok_or_else(|| format!("unknown scale '{v}'"))?;
            }
            "--seed" => args.seed = grab("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--datasets" => {
                args.datasets = grab("--datasets")?.parse().map_err(|e| format!("{e}"))?
            }
            "--days" => args.days = grab("--days")?.parse().map_err(|e| format!("{e}"))?,
            "--out" => args.out = grab("--out")?,
            "--sizes" => {
                args.sizes = grab("--sizes")?
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse::<usize>()
                            .map_err(|e| format!("--sizes: {e}"))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                if args.sizes.is_empty() {
                    return Err("--sizes needs at least one size".to_string());
                }
            }
            "--threads" => {
                args.threads = grab("--threads")?
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse::<usize>()
                            .map_err(|e| format!("--threads: {e}"))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                if args.threads.is_empty() || args.threads.contains(&0) {
                    return Err("--threads needs positive thread counts".to_string());
                }
            }
            "--iters" => args.iters = grab("--iters")?.parse().map_err(|e| format!("{e}"))?,
            "--max-records" => {
                args.max_records = grab("--max-records")?.parse().map_err(|e| format!("{e}"))?
            }
            "--bench-out" => args.bench_out = Some(grab("--bench-out")?),
            cmd if !cmd.starts_with('-') && args.command.is_empty() => {
                args.command = cmd.to_string();
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    if args.command.is_empty() {
        return Err("no command given".to_string());
    }
    Ok(args)
}

fn emit(tables: Vec<Table>, out_dir: &std::path::Path, slug_prefix: &str) {
    for (i, table) in tables.iter().enumerate() {
        table.print();
        let slug = if tables.len() == 1 {
            slug_prefix.to_string()
        } else {
            format!("{slug_prefix}-{}", (b'a' + i as u8) as char)
        };
        if let Err(e) = table.save_json(out_dir, &slug) {
            eprintln!("warning: could not save {slug}.json: {e}");
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\nusage: repro [--scale S] [--seed N] [--datasets K] [--days N] [--out DIR] [--sizes N,N] [--threads N,N] [--iters N] [--max-records N] [--bench-out FILE] <settings|fig15|fig16|fig17|fig18|fig19|fig20|fig21|ablate|predict|context|integrate|forest|monitor-recovery|query-serving|all>");
            return ExitCode::FAILURE;
        }
    };

    // `integrate` and `forest` need no workbench (their inputs are
    // synthetic): run them before the expensive dataset preparation.
    if args.command == "integrate" {
        let config = cps_bench::integrate_bench::IntegrateBenchConfig {
            sizes: args.sizes.clone(),
            iters: args.iters,
            seed: args.seed,
        };
        let results = cps_bench::integrate_bench::run(&config);
        let out = args.bench_out.as_deref().unwrap_or("BENCH_integrate.json");
        let path = std::path::Path::new(out);
        if let Err(e) = cps_bench::integrate_bench::save_json(&results, &config, path) {
            eprintln!("error saving {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {}", path.display());
        return ExitCode::SUCCESS;
    }
    if args.command == "forest" {
        let config = cps_bench::forest_bench::ForestBenchConfig {
            scale: args.scale,
            seed: args.seed,
            days: args.days,
            threads: args.threads.clone(),
            iters: args.iters,
        };
        let results = cps_bench::forest_bench::run(&config);
        let out = args.bench_out.as_deref().unwrap_or("BENCH_forest.json");
        let path = std::path::Path::new(out);
        if let Err(e) = cps_bench::forest_bench::save_json(&results, &config, path) {
            eprintln!("error saving {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {}", path.display());
        return ExitCode::SUCCESS;
    }
    if args.command == "monitor-recovery" {
        let config = cps_bench::recovery_bench::RecoveryBenchConfig {
            scale: args.scale,
            seed: args.seed,
            // --days defaults to 30 for the dataset figures; a month of
            // per-record WAL ingest is far past diminishing returns here,
            // so the feed is capped at a week (bound it further with
            // --max-records).
            days: args.days.min(7),
            iters: args.iters,
            max_records: args.max_records,
            ..cps_bench::recovery_bench::RecoveryBenchConfig::default()
        };
        let report = cps_bench::recovery_bench::run(&config);
        let out = args.bench_out.as_deref().unwrap_or("BENCH_recovery.json");
        let path = std::path::Path::new(out);
        if let Err(e) = cps_bench::recovery_bench::save_json(&report, &config, path) {
            eprintln!("error saving {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {}", path.display());
        return ExitCode::SUCCESS;
    }
    if args.command == "query-serving" {
        let config = cps_bench::serving_bench::ServingBenchConfig {
            scale: args.scale,
            seed: args.seed,
            // A month of feed keeps each cell's ingest long enough for
            // readers to run a real closed loop against a growing
            // sealed-day prefix; bound it with --days/--max-records for
            // smoke runs.
            days: args.days,
            readers: args.threads.clone(),
            iters: args.iters,
            max_records: args.max_records,
            ..cps_bench::serving_bench::ServingBenchConfig::default()
        };
        let report = cps_bench::serving_bench::run(&config);
        let out = args
            .bench_out
            .as_deref()
            .unwrap_or("BENCH_query_serving.json");
        let path = std::path::Path::new(out);
        if let Err(e) = cps_bench::serving_bench::save_json(&report, &config, path) {
            eprintln!("error saving {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {}", path.display());
        return ExitCode::SUCCESS;
    }

    let mut config = ReproConfig::new(args.scale, args.seed);
    config.n_datasets = args.datasets;
    config.days_per_dataset = args.days;
    config.out_dir = args.out.clone().into();
    let out_dir = config.out_dir.clone();

    let wb = match Workbench::prepare(config) {
        Ok(wb) => wb,
        Err(e) => {
            eprintln!("error preparing workbench: {e}");
            return ExitCode::FAILURE;
        }
    };
    let params = Params::paper_defaults();

    let run = |name: &str| -> Result<(), cps_core::CpsError> {
        match name {
            "settings" => emit(figs::settings::run(&wb), &out_dir, "fig14"),
            "diag" => emit(figs::diag::run(&wb, &params)?, &out_dir, "diag"),
            "fig15" | "fig16" => emit(
                figs::construction::run(&wb, args.datasets, &params)?,
                &out_dir,
                "fig15-16",
            ),
            "fig17" => emit(figs::query_cost::run(&wb, &params, 3)?, &out_dir, "fig17"),
            "fig18" => emit(
                figs::effectiveness::run_vs_range(&wb, &params)?,
                &out_dir,
                "fig18",
            ),
            "fig19" => emit(
                figs::effectiveness::run_vs_delta_s(&wb, &params)?,
                &out_dir,
                "fig19",
            ),
            "fig20" => emit(figs::cluster_counts::run(&wb, &params)?, &out_dir, "fig20"),
            "fig21" => emit(figs::balance::run(&wb, &params)?, &out_dir, "fig21"),
            "predict" => emit(figs::prediction::run(&wb, &params)?, &out_dir, "predict"),
            "context" => emit(figs::context::run(&wb, &params)?, &out_dir, "context"),
            "ablate" => {
                emit(
                    figs::ablation::run_redzone(&wb, &params)?,
                    &out_dir,
                    "ablate-redzone",
                );
                emit(
                    figs::ablation::run_retrieval(&wb, &params)?,
                    &out_dir,
                    "ablate-retrieval",
                );
            }
            other => {
                eprintln!("unknown command '{other}'");
                std::process::exit(2);
            }
        }
        Ok(())
    };

    let result = if args.command == "all" {
        [
            "settings", "fig15", "fig17", "fig18", "fig19", "fig20", "fig21", "ablate", "predict",
            "context",
        ]
        .iter()
        .try_for_each(|c| run(c))
    } else {
        run(&args.command)
    };

    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
