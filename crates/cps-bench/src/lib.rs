//! # cps-bench
//!
//! The reproduction harness: one module per figure of the paper's
//! evaluation (§V). The `repro` binary drives them
//! (`repro all`, `repro fig17`, …); Criterion benches under `benches/`
//! cover the micro-level performance claims.
//!
//! | module | paper figure |
//! |---|---|
//! | [`figs::settings`] | Fig. 14 — datasets & parameters |
//! | [`figs::construction`] | Fig. 15 — construction time, Fig. 16 — model size |
//! | [`figs::query_cost`] | Fig. 17 — query time and input clusters |
//! | [`figs::effectiveness`] | Fig. 18 — P/R vs range, Fig. 19 — P/R vs δs |
//! | [`figs::cluster_counts`] | Fig. 20 — #clusters vs δt and δd |
//! | [`figs::balance`] | Fig. 21 — severity of significant clusters vs δsim × g |
//! | [`figs::ablation`] | §V-B text — red-zone filter rate; grid-size ablation |

#![warn(clippy::all)]

pub mod figs;
pub mod forest_bench;
pub mod integrate_bench;
pub mod recovery_bench;
pub mod serving_bench;
pub mod table;
pub mod workbench;

pub use table::Table;
pub use workbench::{ReproConfig, Workbench};
