//! Concurrent query serving under sustained ingest: the standing perf
//! record for the snapshot-published read path (`cps-serve`).
//!
//! The `repro query-serving` command replays a hot-region-skewed feed
//! (the security-log-style workload where a small slice of the deployment
//! produces most of the incident volume) through the sharded monitor
//! while closed-loop reader threads hammer the query surface, through
//! each of the three read paths:
//!
//! - `mutex` — [`MonitorHandle`]'s live-state methods, contending with
//!   the merger for the lock;
//! - `snapshot` — a pinned lock-free [`ReadView`] per iteration, queries
//!   recomputed every time;
//! - `snapshot-cached` — [`ServeHandle`], the snapshot path with the
//!   sharded result cache in front.
//!
//! ```text
//! repro query-serving --threads 1,4,8     # seed-42 → BENCH_query_serving.json
//! repro query-serving --max-records 400 --iters 1 --bench-out results/smoke.json
//! ```
//!
//! Readers interleave two mixes: *dashboard* (red regions + significant
//! clusters over the sealed-day prefix — the stable historical ranges an
//! operator's trends panel refreshes) and *drill-down* (a guided query
//! plus one day's micro-clusters). Each cell reports per-mix reader
//! p50/p99 latency, ingest throughput against the no-readers baseline,
//! and — on the cached path — the hit/miss/stale counters. The run ends
//! with a quiescent cross-check that the cached, uncached, and mutex
//! answers are identical.

use cps_monitor::{CacheStats, MonitorConfig, MonitorHandle, MonitorService, OverflowPolicy};
use cps_sim::{Scale, SimConfig, TrafficSim};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The query mixes a reader interleaves.
const MIXES: [&str; 2] = ["dashboard", "drilldown"];
const DASHBOARD: usize = 0;
const DRILLDOWN: usize = 1;

/// Which read path a measurement exercises.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReadPath {
    /// Live-state queries under the merger's mutex.
    Mutex,
    /// A pinned [`cps_monitor::ReadView`], recomputed per query.
    Snapshot,
    /// [`cps_monitor::ServeHandle`]: snapshot path + result cache.
    SnapshotCached,
}

impl ReadPath {
    /// Row label in the artifact.
    pub fn name(self) -> &'static str {
        match self {
            ReadPath::Mutex => "mutex",
            ReadPath::Snapshot => "snapshot",
            ReadPath::SnapshotCached => "snapshot-cached",
        }
    }
}

/// Configuration of one `repro query-serving` run.
#[derive(Clone, Debug)]
pub struct ServingBenchConfig {
    /// Deployment scale of the simulated workload.
    pub scale: Scale,
    /// Simulation seed.
    pub seed: u64,
    /// Days of atypical records in the feed.
    pub days: u32,
    /// Worker shards.
    pub shards: usize,
    /// Reader-thread counts swept per path.
    pub readers: Vec<usize>,
    /// Repetitions per cell; best ingest time is kept, latency samples
    /// are merged.
    pub iters: u32,
    /// Cap on the feed length (0 = the whole generated stream).
    pub max_records: usize,
    /// Closed-loop think time between reader iterations, in ms. On a
    /// small host this is what keeps 8 readers from saturating the cores
    /// ingest needs — exactly how a real dashboard polls.
    pub think_ms: u64,
    /// Fraction of sensors forming the simulator's hot region.
    pub hot_region_ratio: f64,
    /// Extra event mass aimed at the hot region.
    pub hot_region_share: f64,
}

impl Default for ServingBenchConfig {
    fn default() -> Self {
        Self {
            scale: Scale::Tiny,
            seed: 42,
            days: 3,
            shards: 4,
            readers: vec![1, 4, 8],
            iters: 3,
            max_records: 0,
            think_ms: 10,
            hot_region_ratio: 0.15,
            hot_region_share: 0.6,
        }
    }
}

/// Reader latency for one query mix within one cell.
#[derive(Clone, Debug)]
pub struct MixLatency {
    /// `"dashboard"` or `"drilldown"`.
    pub mix: &'static str,
    /// Queries measured across all readers and iterations.
    pub queries: u64,
    /// Median query latency, microseconds.
    pub p50_us: f64,
    /// 99th-percentile query latency, microseconds.
    pub p99_us: f64,
}

/// One (path, readers) cell of the matrix.
#[derive(Clone, Debug)]
pub struct ServingResult {
    /// Read path exercised by the cell's readers.
    pub path: &'static str,
    /// Concurrent reader threads.
    pub readers: usize,
    /// Best wall-clock feed-plus-drain time across iterations.
    pub ingest_ms: f64,
    /// Ingest throughput of the best iteration.
    pub records_per_sec: f64,
    /// `records_per_sec` relative to the no-readers baseline.
    pub throughput_vs_baseline: f64,
    /// Per-mix reader latency.
    pub mixes: Vec<MixLatency>,
    /// Result-cache counters (cached path only), summed over iterations.
    pub cache: Option<CacheStats>,
}

/// The whole artifact.
#[derive(Clone, Debug)]
pub struct ServingBenchReport {
    /// Feed length actually used (after `max_records`).
    pub feed_records: u64,
    /// Best no-readers feed-plus-drain time.
    pub baseline_ingest_ms: f64,
    /// No-readers ingest throughput all cells are measured against.
    pub baseline_records_per_sec: f64,
    /// The path × readers matrix.
    pub results: Vec<ServingResult>,
    /// Whether the quiescent cached/uncached/mutex cross-check passed
    /// (it panics on mismatch, so a saved artifact always says `true`).
    pub consistency_ok: bool,
}

/// A fresh directory under the system temp root, unique per call so
/// repeated cells never see each other's sealed-day store.
fn fresh_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "cps-bench-serving-{}-{tag}-{n}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).expect("create bench temp dir");
    dir
}

fn feed_records(config: &ServingBenchConfig, sim: &TrafficSim) -> Vec<cps_core::AtypicalRecord> {
    let mut records: Vec<_> = (0..config.days).flat_map(|d| sim.atypical_day(d)).collect();
    records.sort_unstable_by_key(|r| (r.window, r.sensor));
    if config.max_records > 0 {
        records.truncate(config.max_records);
    }
    assert!(!records.is_empty(), "simulated feed is empty");
    records
}

fn monitor_config(
    config: &ServingBenchConfig,
    sim: &TrafficSim,
    snapshot_dir: PathBuf,
) -> MonitorConfig {
    MonitorConfig {
        shards: config.shards,
        spec: sim.config().spec,
        overflow: OverflowPolicy::Block,
        // Sealing days into the store is what mints immutable cache
        // entries — the serving layer's whole hit-rate story.
        snapshot_dir: Some(snapshot_dir),
        ..MonitorConfig::default()
    }
}

/// One closed-loop reader: interleaves the dashboard and drill-down mixes
/// through `path`, sleeping `think` between iterations, until `stop` — but
/// always completes at least one iteration so every cell has samples even
/// when ingest outruns thread scheduling. Returns `(mix, µs)` samples.
///
/// The sealed-day prefix is discovered from a lock-free snapshot pin on
/// every path (one atomic load; it answers no query), so all three paths
/// aim the same mixes at the same ranges: dashboard queries cover the
/// most recent *complete sealed week* (the bounded trailing window a
/// trends panel actually polls — stable across seven seals, which is what
/// lets immutable cache entries get re-hit), drill-downs rotate across
/// sealed days.
fn reader_loop(
    handle: MonitorHandle,
    path: ReadPath,
    stop: Arc<AtomicBool>,
    think: Duration,
) -> Vec<(usize, u64)> {
    let serve = handle.serve();
    let mut samples = Vec::new();
    let mut iters = 0u64;
    while !stop.load(Ordering::SeqCst) || iters == 0 {
        let view = handle.read_view();
        let sealed_last = view.snapshot().persisted_days.iter().next_back().copied();
        let (first, n) = match sealed_last {
            None => (0, 1), // nothing sealed yet: poll the live first day
            Some(last) if last + 1 < 7 => (0, last + 1),
            Some(last) => (((last + 1) / 7 - 1) * 7, 7),
        };
        let drill_day = sealed_last.map_or(0, |last| (iters % u64::from(last + 1)) as u32);

        let t = Instant::now();
        match path {
            ReadPath::Mutex => drop(handle.red_regions(first, n)),
            ReadPath::Snapshot => drop(view.red_regions(first, n)),
            ReadPath::SnapshotCached => drop(serve.red_regions(first, n)),
        }
        samples.push((DASHBOARD, t.elapsed().as_micros() as u64));

        let t = Instant::now();
        match path {
            ReadPath::Mutex => drop(handle.significant_clusters(first, n).expect("query")),
            ReadPath::Snapshot => drop(view.significant_clusters(first, n).expect("query")),
            ReadPath::SnapshotCached => drop(serve.significant_clusters(first, n).expect("query")),
        }
        samples.push((DASHBOARD, t.elapsed().as_micros() as u64));

        let t = Instant::now();
        match path {
            ReadPath::Mutex => drop(handle.query_guided(drill_day, 1).expect("query")),
            ReadPath::Snapshot => drop(view.query_guided(drill_day, 1).expect("query")),
            ReadPath::SnapshotCached => drop(serve.query_guided(drill_day, 1).expect("query")),
        }
        samples.push((DRILLDOWN, t.elapsed().as_micros() as u64));

        let t = Instant::now();
        match path {
            ReadPath::Mutex => drop(handle.micro_clusters_for_day(drill_day).expect("query")),
            ReadPath::Snapshot => drop(view.micro_clusters_for_day(drill_day).expect("query")),
            ReadPath::SnapshotCached => {
                drop(serve.micro_clusters_for_day(drill_day).expect("query"))
            }
        }
        samples.push((DRILLDOWN, t.elapsed().as_micros() as u64));

        iters += 1;
        if !stop.load(Ordering::SeqCst) {
            std::thread::sleep(think);
        }
    }
    samples
}

struct CellOutcome {
    ingest_ms: f64,
    samples: Vec<(usize, u64)>,
    cache: Option<CacheStats>,
}

/// One timed service lifetime with `readers` concurrent reader threads on
/// `path`: start, feed everything, drain with `finish`, stop readers.
fn timed_cell(
    config: &ServingBenchConfig,
    sim: &TrafficSim,
    network: &Arc<cps_geo::RoadNetwork>,
    records: &[cps_core::AtypicalRecord],
    path: ReadPath,
    readers: usize,
) -> CellOutcome {
    let snapshot_dir = fresh_dir("cell");
    let mc = monitor_config(config, sim, snapshot_dir.clone());
    let mut service = MonitorService::start(&mc, network.clone()).expect("service starts");
    let handle = service.handle();
    let stop = Arc::new(AtomicBool::new(false));
    let think = Duration::from_millis(config.think_ms);
    let threads: Vec<_> = (0..readers)
        .map(|_| {
            let handle = handle.clone();
            let stop = stop.clone();
            std::thread::spawn(move || reader_loop(handle, path, stop, think))
        })
        .collect();

    let start = Instant::now();
    for &record in records {
        assert!(
            service.ingest(record).expect("healthy ingest"),
            "Block policy must not drop"
        );
    }
    service.finish();
    let ingest_ms = start.elapsed().as_secs_f64() * 1e3;

    stop.store(true, Ordering::SeqCst);
    let mut samples = Vec::new();
    for t in threads {
        samples.extend(t.join().expect("reader panicked"));
    }
    let cache =
        (path == ReadPath::SnapshotCached && readers > 0).then(|| handle.serve().cache_stats());
    let _ = std::fs::remove_dir_all(&snapshot_dir);
    CellOutcome {
        ingest_ms,
        samples,
        cache,
    }
}

/// Nearest-rank percentile of an unsorted µs sample set.
fn percentile(samples: &mut [u64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_unstable();
    let idx = ((samples.len() as f64 - 1.0) * q).round() as usize;
    samples[idx] as f64
}

fn mix_latencies(samples: &[(usize, u64)]) -> Vec<MixLatency> {
    MIXES
        .iter()
        .enumerate()
        .map(|(mix_idx, &mix)| {
            let mut us: Vec<u64> = samples
                .iter()
                .filter(|&&(m, _)| m == mix_idx)
                .map(|&(_, v)| v)
                .collect();
            let queries = us.len() as u64;
            let p99_us = percentile(&mut us, 0.99);
            let p50_us = percentile(&mut us, 0.50);
            MixLatency {
                mix,
                queries,
                p50_us,
                p99_us,
            }
        })
        .collect()
}

fn merge_cache(into: &mut Option<CacheStats>, add: Option<CacheStats>) {
    if let Some(add) = add {
        let acc = into.get_or_insert_with(CacheStats::default);
        acc.hits += add.hits;
        acc.misses += add.misses;
        acc.stale += add.stale;
        acc.evictions += add.evictions;
        acc.entries = add.entries; // point-in-time, keep the latest
    }
}

/// Quiescent differential gate: after a full ingest and `finish`, the
/// cached, uncached-snapshot, and mutex paths must answer every query of
/// both mixes identically (the cached answers exercised twice, so the
/// second read is served from the cache). Panics on any mismatch —
/// a saved artifact is therefore also a correctness witness.
fn check_consistency(
    config: &ServingBenchConfig,
    sim: &TrafficSim,
    network: &Arc<cps_geo::RoadNetwork>,
    records: &[cps_core::AtypicalRecord],
) -> bool {
    let snapshot_dir = fresh_dir("check");
    let mc = monitor_config(config, sim, snapshot_dir.clone());
    let mut service = MonitorService::start(&mc, network.clone()).expect("service starts");
    let handle = service.handle();
    for &record in records {
        assert!(service.ingest(record).expect("healthy ingest"));
    }
    service.finish();

    let serve = handle.serve();
    let view = handle.read_view();
    let days = config.days.max(1);
    let ranges = [(0, days), (0, 1), (days - 1, 1)];
    for &(first, n) in &ranges {
        for _ in 0..2 {
            assert_eq!(
                *serve.red_regions(first, n),
                view.red_regions(first, n),
                "red_regions({first},{n}): cached != snapshot"
            );
            assert_eq!(
                *serve.query_guided(first, n).expect("query"),
                view.query_guided(first, n).expect("query"),
                "query_guided({first},{n}): cached != snapshot"
            );
            assert_eq!(
                *serve.significant_clusters(first, n).expect("query"),
                view.significant_clusters(first, n).expect("query"),
                "significant_clusters({first},{n}): cached != snapshot"
            );
        }
        assert_eq!(
            view.red_regions(first, n),
            handle.red_regions(first, n),
            "red_regions({first},{n}): snapshot != mutex"
        );
        assert_eq!(
            view.query_guided(first, n).expect("query"),
            handle.query_guided(first, n).expect("query"),
            "query_guided({first},{n}): snapshot != mutex"
        );
    }
    for day in 0..days {
        assert_eq!(
            *serve.micro_clusters_for_day(day).expect("query"),
            *view.micro_clusters_for_day(day).expect("query"),
            "micro_clusters_for_day({day}): cached != snapshot"
        );
        assert_eq!(
            *view.micro_clusters_for_day(day).expect("query"),
            handle.micro_clusters_for_day(day).expect("query"),
            "micro_clusters_for_day({day}): snapshot != mutex"
        );
    }
    let _ = std::fs::remove_dir_all(&snapshot_dir);
    true
}

/// Runs the baseline, the path × readers matrix, and the quiescent
/// cross-check; prints one line per cell.
pub fn run(config: &ServingBenchConfig) -> ServingBenchReport {
    let sim = TrafficSim::new(
        SimConfig::new(config.scale, config.seed)
            .with_hot_region(config.hot_region_ratio, config.hot_region_share),
    );
    let network = Arc::new(sim.network().clone());
    let records = feed_records(config, &sim);
    let len = records.len() as u64;
    let iters = config.iters.max(1);

    let mut baseline_ms = f64::INFINITY;
    for _ in 0..iters {
        baseline_ms = baseline_ms
            .min(timed_cell(config, &sim, &network, &records, ReadPath::Snapshot, 0).ingest_ms);
    }
    let baseline_rps = len as f64 / (baseline_ms / 1e3);
    eprintln!(
        "baseline (0 readers): {baseline_ms:>8.2} ms for {len} records ({baseline_rps:>9.0} rec/s)"
    );

    let mut results = Vec::new();
    for path in [
        ReadPath::Mutex,
        ReadPath::Snapshot,
        ReadPath::SnapshotCached,
    ] {
        for &readers in &config.readers {
            let mut best_ms = f64::INFINITY;
            let mut samples = Vec::new();
            let mut cache = None;
            for _ in 0..iters {
                let outcome = timed_cell(config, &sim, &network, &records, path, readers);
                best_ms = best_ms.min(outcome.ingest_ms);
                samples.extend(outcome.samples);
                merge_cache(&mut cache, outcome.cache);
            }
            let records_per_sec = len as f64 / (best_ms / 1e3);
            let r = ServingResult {
                path: path.name(),
                readers,
                ingest_ms: best_ms,
                records_per_sec,
                throughput_vs_baseline: records_per_sec / baseline_rps,
                mixes: mix_latencies(&samples),
                cache,
            };
            let cache_note = r.cache.map_or(String::new(), |c| {
                format!(", cache {:.0}% hit", c.hit_rate() * 100.0)
            });
            eprintln!(
                "{:>15} x{:>2} readers: ingest {:>8.2} ms ({:>5.1}% of baseline), \
                 dash p50/p99 {:>6.0}/{:>8.0} us, drill p50/p99 {:>6.0}/{:>8.0} us{}",
                r.path,
                r.readers,
                r.ingest_ms,
                r.throughput_vs_baseline * 100.0,
                r.mixes[DASHBOARD].p50_us,
                r.mixes[DASHBOARD].p99_us,
                r.mixes[DRILLDOWN].p50_us,
                r.mixes[DRILLDOWN].p99_us,
                cache_note,
            );
            results.push(r);
        }
    }

    let consistency_ok = check_consistency(config, &sim, &network, &records);
    eprintln!("quiescent cross-check (cached == snapshot == mutex): ok");

    ServingBenchReport {
        feed_records: len,
        baseline_ingest_ms: baseline_ms,
        baseline_records_per_sec: baseline_rps,
        results,
        consistency_ok,
    }
}

/// Writes the artifact (`BENCH_query_serving.json` at the repo root for
/// the standing record; `results/BENCH_query_serving_smoke.json` for CI).
pub fn save_json(
    report: &ServingBenchReport,
    config: &ServingBenchConfig,
    path: &Path,
) -> std::io::Result<()> {
    use serde::Value;
    fn obj(entries: Vec<(&str, Value)>) -> Value {
        Value::Object(
            entries
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }
    let results: Vec<Value> = report
        .results
        .iter()
        .map(|r| {
            let mixes: Vec<Value> = r
                .mixes
                .iter()
                .map(|m| {
                    obj(vec![
                        ("mix", Value::Str(m.mix.to_string())),
                        ("queries", Value::U64(m.queries)),
                        ("p50_us", Value::F64(m.p50_us)),
                        ("p99_us", Value::F64(m.p99_us)),
                    ])
                })
                .collect();
            let mut entries = vec![
                ("path", Value::Str(r.path.to_string())),
                ("readers", Value::U64(r.readers as u64)),
                ("ingest_ms", Value::F64(r.ingest_ms)),
                ("records_per_sec", Value::F64(r.records_per_sec)),
                (
                    "throughput_vs_baseline",
                    Value::F64(r.throughput_vs_baseline),
                ),
                ("mixes", Value::Array(mixes)),
            ];
            if let Some(c) = r.cache {
                entries.push((
                    "cache",
                    obj(vec![
                        ("hits", Value::U64(c.hits)),
                        ("misses", Value::U64(c.misses)),
                        ("stale", Value::U64(c.stale)),
                        ("evictions", Value::U64(c.evictions)),
                        ("entries", Value::U64(c.entries)),
                        ("hit_rate", Value::F64(c.hit_rate())),
                    ]),
                ));
            }
            obj(entries)
        })
        .collect();
    let host_cpus = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let doc = obj(vec![
        ("bench", Value::Str("query-serving".to_string())),
        (
            "scale",
            Value::Str(format!("{:?}", config.scale).to_lowercase()),
        ),
        ("seed", Value::U64(config.seed)),
        ("days", Value::U64(u64::from(config.days))),
        ("shards", Value::U64(config.shards as u64)),
        ("iters", Value::U64(u64::from(config.iters))),
        ("think_ms", Value::U64(config.think_ms)),
        ("hot_region_ratio", Value::F64(config.hot_region_ratio)),
        ("hot_region_share", Value::F64(config.hot_region_share)),
        ("feed_records", Value::U64(report.feed_records)),
        ("host_cpus", Value::U64(host_cpus as u64)),
        ("baseline_ingest_ms", Value::F64(report.baseline_ingest_ms)),
        (
            "baseline_records_per_sec",
            Value::F64(report.baseline_records_per_sec),
        ),
        ("consistency_ok", Value::Bool(report.consistency_ok)),
        ("results", Value::Array(results)),
    ]);
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let text = serde_json::to_string_pretty(&doc)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    std::fs::write(path, format!("{text}\n"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_run_measures_and_saves() {
        let config = ServingBenchConfig {
            days: 2,
            readers: vec![1, 2],
            iters: 1,
            max_records: 240,
            think_ms: 1,
            ..ServingBenchConfig::default()
        };
        let report = run(&config);
        assert_eq!(report.feed_records, 240);
        assert_eq!(report.results.len(), 6, "3 paths x 2 reader counts");
        assert!(report.consistency_ok);
        for r in &report.results {
            assert!(r.ingest_ms > 0.0);
            assert_eq!(r.mixes.len(), 2);
            for m in &r.mixes {
                assert!(
                    m.queries > 0,
                    "{} x{}: no {} samples",
                    r.path,
                    r.readers,
                    m.mix
                );
                assert!(m.p99_us >= m.p50_us);
            }
            match r.path {
                "snapshot-cached" => {
                    let c = r.cache.expect("cached path reports counters");
                    assert!(c.hits + c.misses + c.stale > 0);
                }
                _ => assert!(r.cache.is_none()),
            }
        }

        let path = fresh_dir("test").join("BENCH_query_serving_test.json");
        save_json(&report, &config, &path).expect("save json");
        let text = std::fs::read_to_string(&path).expect("read back");
        let doc: serde::Value = serde_json::from_str(&text).expect("valid json");
        let entries = doc.as_object().expect("top-level object");
        assert_eq!(
            serde::get_field(entries, "results")
                .as_array()
                .expect("results array")
                .len(),
            6
        );
        assert_eq!(
            serde::get_field(entries, "consistency_ok"),
            &serde::Value::Bool(true)
        );
    }
}
