//! Ablations for the design choices DESIGN.md calls out:
//!
//! * **red-zone filter rate** — §V-B claims "about 80 % micro-clusters
//!   could be filtered out with reasonable δs",
//! * **red-zone granularity** — finer grids give tighter Property-5 bounds
//!   but more `F(Wᵢ, T)` work,
//! * **indexed vs naive event retrieval** — Proposition 1's complexity gap.

use crate::table::{pct, secs, Table};
use crate::workbench::Workbench;
use atypical::event::extract_events;
use atypical::redzone::RedZones;
use atypical::{Query, QueryEngine, Strategy};
use cps_core::{Params, Result};
use cps_index::{NaiveNeighbors, StIndex};
use std::time::Instant;

/// Red-zone filter rate and granularity sweep (14-day query).
pub fn run_redzone(wb: &Workbench, params: &Params) -> Result<Vec<Table>> {
    let mut forest = wb.build_forest_for_days(14, params)?;
    let spec = forest.spec();
    let range = spec.day_range(0, 14);
    let n_sensors = wb.network().num_sensors() as u32;
    let micros = forest.micros_in_days(0, 14);

    let mut table = Table::new(
        "Ablation: red-zone granularity (14-day query)",
        &[
            "cell (mi)",
            "regions",
            "red regions",
            "filtered out",
            "query time (s)",
        ],
    );
    for &cell in &[1.5, 3.0, 6.0, 12.0] {
        let partition = wb.partition_with_cell(cell);
        let zones = RedZones::compute(&micros, &partition, params, range, n_sensors);
        let (kept, pruned) = zones.filter(micros.clone(), &partition);
        let filter_rate = pruned.len() as f64 / micros.len().max(1) as f64;
        let engine = QueryEngine::new(wb.network(), &partition, *params);
        let result = engine.execute(&mut forest, &Query::days(0, 14), Strategy::Gui);
        table.row(vec![
            format!("{cell}"),
            partition.num_regions().to_string(),
            zones.num_red().to_string(),
            pct(filter_rate),
            secs(result.elapsed),
        ]);
        let _ = kept;
    }
    Ok(vec![table])
}

/// Proposition 1: indexed vs naive event extraction over one day.
pub fn run_retrieval(wb: &Workbench, params: &Params) -> Result<Vec<Table>> {
    let spec = wb.spec();
    let records = wb.sim.atypical_day(0);
    let mut table = Table::new(
        "Ablation: event retrieval, indexed vs naive (Proposition 1)",
        &["method", "records", "events", "time (s)"],
    );

    let start = Instant::now();
    let index = StIndex::build(&records, wb.network(), params, spec);
    let events_indexed = extract_events(&index);
    let indexed_time = start.elapsed();

    let start = Instant::now();
    let naive = NaiveNeighbors::new(&records, wb.network(), params, spec);
    let events_naive = extract_events(&naive);
    let naive_time = start.elapsed();

    assert_eq!(events_indexed.len(), events_naive.len());
    table.row(vec![
        "indexed".into(),
        records.len().to_string(),
        events_indexed.len().to_string(),
        secs(indexed_time),
    ]);
    table.row(vec![
        "naive".into(),
        records.len().to_string(),
        events_naive.len().to_string(),
        secs(naive_time),
    ]);
    Ok(vec![table])
}
