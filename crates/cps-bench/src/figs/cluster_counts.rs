//! Figure 20: number of atypical clusters versus the event-chaining
//! thresholds `δt` (a) and `δd` (b).
//!
//! Series: average micro-clusters per day, macro-clusters per week/month,
//! and *significant* macro-clusters per week/month. Expected shape: macro
//! counts fall quickly as `δt` grows (more records chain into one event),
//! less so with `δd`; the significant-cluster counts stay nearly flat —
//! big events absorb more records but remain the same events.

use crate::table::Table;
use crate::workbench::Workbench;
use atypical::significant::partition_significant;
use cps_core::{Params, Result};

/// The `δt` sweep, minutes (Figure 14's range).
pub const DELTA_T: [u32; 5] = [15, 20, 40, 60, 80];
/// The `δd` sweep, miles.
pub const DELTA_D: [f64; 5] = [1.5, 3.0, 6.0, 12.0, 24.0];

/// Days of history the counts are averaged over (≥ 2 months).
const DAYS: u32 = 60;

struct Counts {
    micro_per_day: f64,
    macro_week: f64,
    macro_month: f64,
    sig_week: f64,
    sig_month: f64,
}

fn count_for(wb: &Workbench, params: &Params) -> Result<Counts> {
    // Count raw events as the paper does: no trustworthiness filter, so the
    // δt/δd trends reflect event chaining alone.
    let params = &params.with_min_event_records(1);
    let built = wb.build_forest_for_days(DAYS, params)?;
    let mut forest = built;
    let spec = forest.spec();
    let n_sensors = wb.network().num_sensors() as u32;
    let n_weeks = DAYS / 7;
    let n_months = DAYS / 30;

    let micro_total = forest.num_micro_clusters();
    let mut macro_week = 0usize;
    let mut sig_week = 0usize;
    for week in 0..n_weeks {
        let macros = forest.week(week).to_vec();
        macro_week += macros.len();
        let range = spec.day_range(week * 7, 7);
        let (sig, _) = partition_significant(macros, params, range, n_sensors);
        sig_week += sig.len();
    }
    let mut macro_month = 0usize;
    let mut sig_month = 0usize;
    for month in 0..n_months {
        let macros = forest.month(month).to_vec();
        macro_month += macros.len();
        let range = spec.day_range(month * 30, 30);
        let (sig, _) = partition_significant(macros, params, range, n_sensors);
        sig_month += sig.len();
    }
    Ok(Counts {
        micro_per_day: micro_total as f64 / f64::from(DAYS),
        macro_week: macro_week as f64 / f64::from(n_weeks),
        macro_month: macro_month as f64 / f64::from(n_months.max(1)),
        sig_week: sig_week as f64 / f64::from(n_weeks),
        sig_month: sig_month as f64 / f64::from(n_months.max(1)),
    })
}

fn push(table: &mut Table, label: String, c: &Counts) {
    table.row(vec![
        label,
        format!("{:.1}", c.micro_per_day),
        format!("{:.1}", c.macro_week),
        format!("{:.1}", c.macro_month),
        format!("{:.2}", c.sig_week),
        format!("{:.2}", c.sig_month),
    ]);
}

/// Runs both sweeps.
pub fn run(wb: &Workbench, base: &Params) -> Result<Vec<Table>> {
    let headers = [
        "value",
        "micro/day",
        "macro(week)",
        "macro(month)",
        "sig(week)",
        "sig(month)",
    ];
    let mut by_dt = Table::new("Figure 20(a): # of clusters vs δt (min)", &headers);
    for &dt in &DELTA_T {
        let params = base.with_delta_t(dt);
        push(&mut by_dt, format!("{dt}"), &count_for(wb, &params)?);
        eprintln!("[fig20a] δt={dt} done");
    }
    let mut by_dd = Table::new("Figure 20(b): # of clusters vs δd (mile)", &headers);
    for &dd in &DELTA_D {
        let params = base.with_delta_d(dd);
        push(&mut by_dd, format!("{dd}"), &count_for(wb, &params)?);
        eprintln!("[fig20b] δd={dd} done");
    }
    Ok(vec![by_dt, by_dd])
}
