//! Figures 18 and 19: effectiveness — precision and recall of significant
//! clusters, versus query range (Fig. 18) and versus the severity threshold
//! `δs` (Fig. 19, range fixed at 14 days).
//!
//! Protocol (§V-B): `All`'s significant clusters are the ground truth;
//! the final severity check is disabled for every strategy ("for a fair
//! play"). Expected shapes: precision falls with range for everyone; `Pru`
//! has the highest precision but recall that can drop below 50 %; `All`
//! and `Gui` recall stays 1.0; `Pru` recall *rises* with `δs`.

use crate::figs::query_cost::RANGES;
use crate::table::Table;
use crate::workbench::Workbench;
use atypical::eval::evaluate;
use atypical::{Query, QueryEngine, Strategy};
use cps_core::{Params, Result};

fn eval_row(
    wb: &Workbench,
    forest: &mut atypical::AtypicalForest,
    params: &Params,
    query: &Query,
) -> [(f64, f64); 3] {
    let engine = QueryEngine::new(wb.network(), wb.partition(), *params);
    let all = engine.execute(forest, query, Strategy::All);
    let truth = all.significant().into_iter().cloned().collect::<Vec<_>>();
    let truth_refs: Vec<&atypical::AtypicalCluster> = truth.iter().collect();
    let mut out = [(0.0, 0.0); 3];
    for (i, strategy) in [Strategy::All, Strategy::Pru, Strategy::Gui]
        .into_iter()
        .enumerate()
    {
        let result = if strategy == Strategy::All {
            all.clone()
        } else {
            engine.execute(forest, query, strategy)
        };
        let pr = evaluate(&result, &truth_refs);
        out[i] = (pr.precision, pr.recall);
    }
    out
}

/// Figure 18: precision/recall vs query range.
pub fn run_vs_range(wb: &Workbench, params: &Params) -> Result<Vec<Table>> {
    let mut forest = wb.build_forest_for_days(*RANGES.last().expect("non-empty"), params)?;
    let mut precision = Table::new(
        "Figure 18(a): precision vs range (days)",
        &["range", "All", "Pru", "Gui"],
    );
    let mut recall = Table::new(
        "Figure 18(b): recall vs range (days)",
        &["range", "All", "Pru", "Gui"],
    );
    for &range in &RANGES {
        let rows = eval_row(wb, &mut forest, params, &Query::days(0, range));
        precision.row(vec![
            range.to_string(),
            format!("{:.3}", rows[0].0),
            format!("{:.3}", rows[1].0),
            format!("{:.3}", rows[2].0),
        ]);
        recall.row(vec![
            range.to_string(),
            format!("{:.3}", rows[0].1),
            format!("{:.3}", rows[1].1),
            format!("{:.3}", rows[2].1),
        ]);
        eprintln!("[fig18] range={range} done");
    }
    Ok(vec![precision, recall])
}

/// The paper's `δs` sweep.
pub const DELTA_S: [f64; 5] = [0.02, 0.05, 0.10, 0.15, 0.20];

/// Figure 19: precision/recall vs `δs` at a fixed 14-day range.
pub fn run_vs_delta_s(wb: &Workbench, base: &Params) -> Result<Vec<Table>> {
    let mut forest = wb.build_forest_for_days(14, base)?;
    let mut precision = Table::new(
        "Figure 19(a): precision vs δs (range = 14 days)",
        &["δs", "All", "Pru", "Gui"],
    );
    let mut recall = Table::new(
        "Figure 19(b): recall vs δs (range = 14 days)",
        &["δs", "All", "Pru", "Gui"],
    );
    for &delta_s in &DELTA_S {
        let params = base.with_delta_s(delta_s);
        let rows = eval_row(wb, &mut forest, &params, &Query::days(0, 14));
        let label = format!("{:.0}%", delta_s * 100.0);
        precision.row(vec![
            label.clone(),
            format!("{:.3}", rows[0].0),
            format!("{:.3}", rows[1].0),
            format!("{:.3}", rows[2].0),
        ]);
        recall.row(vec![
            label,
            format!("{:.3}", rows[0].1),
            format!("{:.3}", rows[1].1),
            format!("{:.3}", rows[2].1),
        ]);
        eprintln!("[fig19] δs={delta_s} done");
    }
    Ok(vec![precision, recall])
}
