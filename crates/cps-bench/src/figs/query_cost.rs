//! Figure 17: online query efficiency — time cost (a) and I/O measured as
//! number of input micro-clusters (b), versus query time range, for the
//! three strategies.
//!
//! Expected shape: `Gui` and `Pru` far below `All`; `Gui` time ≈ 15–20 % of
//! `All` despite the extra red-zone computation.

use crate::table::{secs, Table};
use crate::workbench::Workbench;
use atypical::{Query, QueryEngine, Strategy};
use cps_core::{Params, Result};
use std::time::Duration;

/// The paper's query ranges, in days.
pub const RANGES: [u32; 6] = [7, 14, 21, 28, 56, 84];

/// Runs the query-cost sweep.
pub fn run(wb: &Workbench, params: &Params, reps: u32) -> Result<Vec<Table>> {
    let mut forest = wb.build_forest_for_days(*RANGES.last().expect("non-empty"), params)?;
    let engine = QueryEngine::new(wb.network(), wb.partition(), *params);

    let mut time = Table::new(
        "Figure 17(a): query time (s) vs range (days)",
        &["range", "All", "Pru", "Gui"],
    );
    let mut io = Table::new(
        "Figure 17(b): # of input clusters vs range (days)",
        &["range", "All", "Pru", "Gui"],
    );

    for &range in &RANGES {
        let query = Query::days(0, range);
        let mut row_time = vec![range.to_string()];
        let mut row_io = vec![range.to_string()];
        for strategy in [Strategy::All, Strategy::Pru, Strategy::Gui] {
            let mut total = Duration::ZERO;
            let mut inputs = 0;
            for _ in 0..reps.max(1) {
                let result = engine.execute(&mut forest, &query, strategy);
                total += result.elapsed;
                inputs = result.input_clusters;
            }
            row_time.push(secs(total / reps.max(1)));
            row_io.push(inputs.to_string());
        }
        time.row(row_time);
        io.row(row_io);
        eprintln!("[fig17] range={range} done");
    }
    Ok(vec![time, io])
}
