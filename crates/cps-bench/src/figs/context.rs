//! Extension experiment (§V-D): context-dimension analysis.
//!
//! Joins the archive's weather log onto the month's macro-clusters and the
//! accident log onto the significant ones — the "congestions related to bad
//! weather or the accident reports" queries the discussion sketches.
//! Expected shape: per-day severity is higher under rain/storm than clear
//! (the simulator's weather multipliers feed event probability and
//! duration), and most accidents link to some cluster.

use crate::table::Table;
use crate::workbench::Workbench;
use atypical::context::{linked_events, DayLabels, PointEvent};
use cps_core::{DatasetId, Params, Result, Severity};
use cps_sim::traffic::ContextLog;

/// Runs the weather/accident context analysis over the first month.
pub fn run(wb: &Workbench, params: &Params) -> Result<Vec<Table>> {
    const DAYS: u32 = 30;
    let built = wb.build_forest_for_days(DAYS, params)?;
    let spec = built.spec();
    let context = ContextLog::load(wb.store.root(), DatasetId::new(1))?;
    let labels = DayLabels::from_pairs(context.weather.iter().map(|w| (w.day, w.weather.label())));

    // Weather table: days and total micro-cluster severity per condition.
    let mut per_label: std::collections::BTreeMap<&str, (u32, Severity)> = Default::default();
    for w in &context.weather {
        let total: Severity = built.day(w.day).iter().map(|c| c.severity()).sum();
        let slot = per_label
            .entry(w.weather.label())
            .or_insert((0, Severity::ZERO));
        slot.0 += 1;
        slot.1 += total;
    }
    let mut weather = Table::new(
        "Context: daily atypical severity by weather (month 1)",
        &["weather", "days", "total severity (min)", "per-day (min)"],
    );
    for (label, (days, total)) in &per_label {
        weather.row(vec![
            label.to_string(),
            days.to_string(),
            format!("{:.0}", total.as_minutes()),
            format!("{:.0}", total.as_minutes() / f64::from(*days)),
        ]);
    }

    // Accident table: how many accidents link to clusters, and the dominant
    // weather of the significant clusters.
    let accidents: Vec<PointEvent> = context
        .accidents
        .iter()
        .map(|a| PointEvent {
            sensor: a.sensor,
            window: a.window,
        })
        .collect();
    let micros = built.micros_in_days(0, DAYS);
    let linked_any = accidents
        .iter()
        .filter(|e| {
            micros
                .iter()
                .any(|c| !linked_events(c, std::slice::from_ref(e), 3).is_empty())
        })
        .count();
    let mut forest = built;
    let monthly = forest.integrate_days(0, DAYS);
    let threshold = atypical::significance_threshold(
        params,
        spec.day_range(0, DAYS),
        wb.network().num_sensors() as u32,
    );
    let mut joins = Table::new(
        "Context: accident linkage and significant-cluster weather",
        &["quantity", "value"],
    );
    joins.row(vec!["accident reports".into(), accidents.len().to_string()]);
    joins.row(vec![
        "accidents linked to some cluster".into(),
        format!(
            "{linked_any} ({:.0}%)",
            100.0 * linked_any as f64 / accidents.len().max(1) as f64
        ),
    ]);
    for c in monthly.iter().filter(|c| c.severity() > threshold) {
        let dominant = labels.dominant(c, spec).unwrap_or("n/a");
        let n_acc = linked_events(c, &accidents, 3).len();
        joins.row(vec![
            format!("significant {}", c.id),
            format!(
                "{:.0} min, dominated by {dominant} days, {n_acc} accidents linked",
                c.severity().as_minutes()
            ),
        ]);
    }
    Ok(vec![weather, joins])
}
