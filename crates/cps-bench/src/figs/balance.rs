//! Figure 21: average severity of significant clusters versus the
//! similarity threshold `δsim`, for all five balance functions `g`.
//!
//! Expected shape: `max` integrates most (highest severities), `min` least;
//! severity collapses as `δsim → 1` because nothing merges any more —
//! which is why the paper recommends `δsim ≈ 0.5`.

use crate::table::Table;
use crate::workbench::Workbench;
use atypical::forest::AtypicalForest;
use atypical::significant::partition_significant;
use cps_core::{BalanceFunction, Params, Result};

/// The `δsim` sweep.
pub const DELTA_SIM: [f64; 10] = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0];

/// Days integrated (one month, matching the paper's monthly clusters).
const DAYS: u32 = 30;

/// Runs the sweep: integration only — the micro-clusters are built once.
pub fn run(wb: &Workbench, base: &Params) -> Result<Vec<Table>> {
    let built = wb.build_forest_for_days(DAYS, base)?;
    let micros: Vec<(u32, Vec<atypical::AtypicalCluster>)> =
        built.days().map(|d| (d, built.day(d).to_vec())).collect();
    let spec = built.spec();
    let n_sensors = wb.network().num_sensors() as u32;
    let range = spec.day_range(0, DAYS);

    let mut table = Table::new(
        "Figure 21: avg severity (min) of significant clusters vs δsim",
        &["δsim", "min", "har", "geo", "avg", "max"],
    );
    for &delta_sim in &DELTA_SIM {
        let mut row = vec![format!("{delta_sim:.1}")];
        for g in BalanceFunction::ALL {
            let params = base.with_delta_sim(delta_sim).with_balance(g);
            let mut forest = AtypicalForest::new(spec, params);
            for (day, clusters) in &micros {
                forest.insert_day(*day, clusters.clone());
            }
            let macros = forest.integrate_days(0, DAYS);
            let (sig, _) = partition_significant(macros, &params, range, n_sensors);
            let avg = if sig.is_empty() {
                0.0
            } else {
                sig.iter().map(|c| c.severity().as_minutes()).sum::<f64>() / sig.len() as f64
            };
            row.push(format!("{avg:.0}"));
        }
        table.row(row);
        eprintln!("[fig21] δsim={delta_sim:.1} done");
    }
    Ok(vec![table])
}
