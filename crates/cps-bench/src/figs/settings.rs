//! Figure 14: experiment settings and dataset profile.

use crate::table::{pct, Table};
use crate::workbench::Workbench;
use cps_core::Params;

/// Prints the dataset table and the parameter defaults/ranges.
pub fn run(wb: &Workbench) -> Vec<Table> {
    let mut datasets = Table::new(
        "Figure 14: datasets",
        &["dataset", "days", "sensors", "readings", "atypical %"],
    );
    for meta in &wb.store.catalog().datasets {
        datasets.row(vec![
            meta.name.clone(),
            meta.n_days.to_string(),
            meta.n_sensors.to_string(),
            meta.n_raw_records.to_string(),
            pct(meta.atypical_fraction()),
        ]);
    }
    datasets.row(vec![
        "TOTAL".into(),
        wb.store.catalog().total_days().to_string(),
        wb.network().num_sensors().to_string(),
        wb.store.catalog().total_raw_records().to_string(),
        pct(wb.store.catalog().total_atypical_records() as f64
            / wb.store.catalog().total_raw_records().max(1) as f64),
    ]);

    let p = Params::paper_defaults();
    let mut params = Table::new(
        "Figure 14: parameters (paper ranges, defaults)",
        &["parameter", "range", "default"],
    );
    params.row(vec!["δs".into(), "2% – 20%".into(), pct(p.delta_s)]);
    params.row(vec![
        "δd".into(),
        "1.5 – 24 mile".into(),
        format!("{} mile", p.delta_d_miles),
    ]);
    params.row(vec![
        "δt".into(),
        "15 – 80 min".into(),
        format!("{} min", p.delta_t_minutes),
    ]);
    params.row(vec![
        "δsim".into(),
        "0.1 – 1".into(),
        p.delta_sim.to_string(),
    ]);
    params.row(vec![
        "g".into(),
        "max/min/avg/geo/har".into(),
        p.balance.label().into(),
    ]);
    vec![datasets, params]
}
