//! One module per reproduced figure.

pub mod ablation;
pub mod balance;
pub mod cluster_counts;
pub mod construction;
pub mod context;
pub mod diag;
pub mod effectiveness;
pub mod prediction;
pub mod query_cost;
pub mod settings;
