//! Extension experiment (§VII future work): recurrence-based event
//! prediction, evaluated by hold-out.
//!
//! Train the per-(sensor, hour) recurrence profile on `k` days, then
//! measure the top-`k` hit rate on the following (held-out) day, sweeping
//! the training-history length. Expected shape: rush-hour hit rates climb
//! quickly with history and saturate (the eternal corridors dominate);
//! off-peak hit rates stay near zero.

use crate::table::{pct, Table};
use crate::workbench::Workbench;
use atypical::predict::{holdout_hit_rate, RecurrenceProfile};
use cps_core::{Params, Result};

/// Training-history lengths swept, in days.
pub const HISTORY: [u32; 4] = [3, 7, 14, 28];

/// Runs the hold-out prediction experiment.
pub fn run(wb: &Workbench, params: &Params) -> Result<Vec<Table>> {
    let holdout_day = *HISTORY.last().expect("non-empty");
    let built = wb.build_forest_for_days(holdout_day + 1, params)?;
    let spec = built.spec();
    let rush = [7u32, 8, 9, 16, 17, 18];
    let off_peak = [1u32, 2, 3, 4];

    let mut table = Table::new(
        format!("Prediction: top-5 hit rate on held-out day {holdout_day}"),
        &["history (days)", "rush hours", "off-peak hours"],
    );
    for &days in &HISTORY {
        // Train on the `days` days immediately before the hold-out day.
        let mut train = atypical::AtypicalForest::new(spec, *params);
        for d in holdout_day.saturating_sub(days)..holdout_day {
            train.insert_day(d, built.day(d).to_vec());
        }
        let profile = RecurrenceProfile::from_forest(&train);
        let actual = built.day(holdout_day);
        let rush_hit = holdout_hit_rate(&profile, actual, spec, &rush, 5);
        let off_hit = holdout_hit_rate(&profile, actual, spec, &off_peak, 5);
        table.row(vec![days.to_string(), pct(rush_hit), pct(off_hit)]);
    }
    Ok(vec![table])
}
