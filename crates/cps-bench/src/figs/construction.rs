//! Figures 15 and 16: offline model construction — time cost and model
//! size vs number of datasets.
//!
//! Four builds per dataset-count `k`, exactly the paper's series:
//!
//! * **PR** — pre-processing: scan raw data, select atypical records,
//! * **OC** — original CubeView over all raw readings,
//! * **MC** — modified CubeView over atypical records only,
//! * **AC** — the atypical-cluster model (Algorithm 1 per day).
//!
//! Expected shape: `MC`/`AC` an order of magnitude faster than `OC` (they
//! scan only the 2–5 % atypical slice); `PR` ≈ `OC` (both scan everything);
//! `MC` smallest model, `AC` a small fraction of the raw event model `AE`.

use crate::table::{secs, Table};
use crate::workbench::Workbench;
use cps_core::{Params, Result};
use cps_cube::cube::{build_mc, build_oc, preprocess_raw};
use std::sync::Arc;

/// Runs the construction sweep for `k = 1..=max_k` datasets.
pub fn run(wb: &Workbench, max_k: u32, params: &Params) -> Result<Vec<Table>> {
    let mut time = Table::new(
        "Figure 15: construction time (s) vs # of datasets",
        &["datasets", "OC", "PR", "MC", "AC"],
    );
    let mut size = Table::new(
        "Figure 16: model size (KB) vs # of datasets",
        &["datasets", "OC", "MC", "AC", "AE"],
    );
    let kb = |bytes: usize| format!("{:.1}", bytes as f64 / 1024.0);

    for k in 1..=max_k {
        let datasets = wb.datasets(k);
        let io = Arc::clone(&wb.io);

        let (_, _, pr_elapsed) =
            preprocess_raw(&wb.store, &datasets, &wb.sim.criterion(), io.clone())?;
        let oc = build_oc(&wb.store, &datasets, wb.hierarchy.clone(), io.clone())?;
        let mc = build_mc(&wb.store, &datasets, wb.hierarchy.clone(), io.clone())?;
        let ac = wb.build_forest(k, params)?;

        time.row(vec![
            k.to_string(),
            secs(oc.elapsed),
            secs(pr_elapsed),
            secs(mc.elapsed),
            secs(ac.elapsed),
        ]);
        size.row(vec![
            k.to_string(),
            kb(oc.cube.approx_bytes()),
            kb(mc.cube.approx_bytes()),
            kb(ac.stats.cluster_bytes),
            kb(ac.stats.event_bytes),
        ]);
        eprintln!("[fig15/16] k={k} done");
    }
    Ok(vec![time, size])
}
