//! `repro diag`: distribution diagnostics for calibrating the simulator
//! against the paper's qualitative claims (significant fraction 0.1–0.5 %,
//! ~80 % red-zone filter rate, Pru recall loss).

use crate::table::Table;
use crate::workbench::Workbench;
use atypical::redzone::RedZones;
use atypical::significant::significance_threshold;
use cps_core::{Params, Result, Severity};

/// Prints micro/macro severity distributions and threshold positions.
pub fn run(wb: &Workbench, params: &Params) -> Result<Vec<Table>> {
    let days = 14u32;
    let mut forest = wb.build_forest_for_days(days, params)?;
    let spec = forest.spec();
    let n = wb.network().num_sensors() as u32;
    let day_threshold = significance_threshold(params, spec.day_range(0, 1), n);
    let q_threshold = significance_threshold(params, spec.day_range(0, days), n);

    let micros = forest.micros_in_days(0, days);
    let mut sev: Vec<f64> = micros.iter().map(|c| c.severity().as_minutes()).collect();
    sev.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pick = |q: f64| -> f64 {
        if sev.is_empty() {
            0.0
        } else {
            sev[((sev.len() - 1) as f64 * q) as usize]
        }
    };

    let zones = RedZones::compute(&micros, wb.partition(), params, spec.day_range(0, days), n);
    let (kept, pruned) = zones.filter(micros.clone(), wb.partition());

    let macros = forest.integrate_days(0, days);
    let mut msev: Vec<f64> = macros.iter().map(|c| c.severity().as_minutes()).collect();
    msev.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let sig = macros.iter().filter(|c| c.severity() > q_threshold).count();
    let day_sig = micros
        .iter()
        .filter(|c| c.severity() > day_threshold)
        .count();

    let mut t = Table::new(
        format!("diag over {days} days ({n} sensors)"),
        &["quantity", "value"],
    );
    let fm = |s: Severity| format!("{:.0} min", s.as_minutes());
    t.row(vec!["micro clusters".into(), micros.len().to_string()]);
    t.row(vec![
        "micro severity p50/p90/p99/max (min)".into(),
        format!(
            "{:.0}/{:.0}/{:.0}/{:.0}",
            pick(0.5),
            pick(0.9),
            pick(0.99),
            pick(1.0)
        ),
    ]);
    t.row(vec!["day threshold".into(), fm(day_threshold)]);
    t.row(vec![
        "day-significant micros (Pru keeps)".into(),
        day_sig.to_string(),
    ]);
    t.row(vec![format!("{days}-day threshold"), fm(q_threshold)]);
    t.row(vec!["macro clusters".into(), macros.len().to_string()]);
    t.row(vec![
        "macro severity p50/max (min)".into(),
        format!(
            "{:.0}/{:.0}",
            msev.get(msev.len() / 2).copied().unwrap_or(0.0),
            msev.last().copied().unwrap_or(0.0)
        ),
    ]);
    t.row(vec!["significant macros".into(), sig.to_string()]);
    t.row(vec![
        "red regions".into(),
        format!("{}/{}", zones.num_red(), wb.partition().num_regions()),
    ]);
    t.row(vec![
        "gui kept/pruned micros".into(),
        format!("{}/{}", kept.len(), pruned.len()),
    ]);
    let mut top: Vec<&atypical::AtypicalCluster> = macros.iter().collect();
    top.sort_by_key(|c| std::cmp::Reverse(c.severity()));
    for (i, c) in top.iter().take(10).enumerate() {
        t.row(vec![
            format!("top macro #{}", i + 1),
            format!(
                "{:.0} min, {} micros, {} sensors",
                c.severity().as_minutes(),
                c.merged_count,
                c.sensor_count()
            ),
        ]);
    }
    Ok(vec![t])
}
