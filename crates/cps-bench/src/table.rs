//! Aligned text tables + JSON dumps for experiment output.

use serde::Serialize;
use std::fmt::Write as _;
use std::path::Path;

/// A simple column-aligned table with a title, printed to stdout and
/// serializable to JSON for EXPERIMENTS.md generation.
#[derive(Debug, Clone, Serialize)]
pub struct Table {
    /// Title, e.g. `"Figure 17(a): query time (s) vs range (days)"`.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, &w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths));
        let _ = writeln!(
            out,
            "{}",
            widths
                .iter()
                .map(|&w| "-".repeat(w))
                .collect::<Vec<_>>()
                .join("  ")
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }

    /// Appends the table as JSON to `dir/<slug>.json`.
    pub fn save_json(&self, dir: &Path, slug: &str) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{slug}.json"));
        std::fs::write(
            path,
            serde_json::to_string_pretty(self).expect("table serializes"),
        )
    }
}

/// Formats a fraction as a percentage string.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats seconds with millisecond precision.
pub fn secs(d: std::time::Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "22".into()]);
        let s = t.render();
        assert!(s.contains("## demo"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[1].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn json_roundtrip() {
        let mut t = Table::new("demo", &["a"]);
        t.row(vec!["1".into()]);
        let dir = std::env::temp_dir().join(format!("cps-table-{}", std::process::id()));
        t.save_json(&dir, "demo").unwrap();
        let text = std::fs::read_to_string(dir.join("demo.json")).unwrap();
        assert!(text.contains("\"demo\""));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.156), "15.6%");
        assert_eq!(secs(std::time::Duration::from_millis(1234)), "1.234");
    }
}
