//! Standing perf trajectory for Algorithm 3: naive scan vs the
//! inverted-index integrator on sparse, traffic-like synthetic inputs.
//!
//! The `repro integrate` command times both strategies at several input
//! sizes, asserts their outputs are bit-identical (the differential suite
//! proves it per-seed; the bench re-checks it at scale on every run), and
//! writes one JSON artifact so successive commits can be compared:
//!
//! ```text
//! repro integrate                       # 1k/5k/20k → BENCH_integrate.json
//! repro integrate --sizes 150,400 --iters 1 --bench-out results/smoke.json
//! ```
//!
//! Inputs are *sparse*: incident sites are spread over a sensor/window
//! space that grows with the input, so most cluster pairs share no key —
//! the regime the inverted indexes exploit (and the regime real
//! deployments live in: a day of city traffic produces incidents on a
//! tiny fraction of sensor pairs). A fraction of clusters revisit an
//! earlier site so merge cascades still occur.

use atypical::integrate::{integrate_aligned, IntegrationStats, TimeAlignment};
use atypical::AtypicalCluster;
use cps_core::ids::ClusterIdGen;
use cps_core::{ClusterId, Params, SensorId, Severity, TimeWindow};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::Path;
use std::time::Instant;

/// Configuration of one `repro integrate` run.
#[derive(Clone, Debug)]
pub struct IntegrateBenchConfig {
    /// Input sizes (micro-cluster counts), each timed independently.
    pub sizes: Vec<usize>,
    /// Timed repetitions per size per strategy; the minimum is reported.
    pub iters: u32,
    /// Generator seed.
    pub seed: u64,
}

impl Default for IntegrateBenchConfig {
    fn default() -> Self {
        Self {
            sizes: vec![1_000, 5_000, 20_000],
            iters: 3,
            seed: 42,
        }
    }
}

/// Timings and integrator counters for one input size.
#[derive(Clone, Debug)]
pub struct SizeResult {
    /// Input micro-clusters.
    pub clusters: usize,
    /// Macro-clusters both strategies produced.
    pub macro_clusters: usize,
    /// Best-of-`iters` wall time of the naive scan, milliseconds.
    pub naive_ms: f64,
    /// Best-of-`iters` wall time of the indexed integrator, milliseconds.
    pub indexed_ms: f64,
    /// Counters from the naive run.
    pub naive_stats: IntegrationStats,
    /// Counters from the indexed run.
    pub indexed_stats: IntegrationStats,
}

impl SizeResult {
    /// Naive over indexed wall time.
    pub fn speedup(&self) -> f64 {
        if self.indexed_ms > 0.0 {
            self.naive_ms / self.indexed_ms
        } else {
            f64::INFINITY
        }
    }
}

/// Sparse synthetic micro-clusters: `n` clusters over `n / 4` incident
/// sites, each site owning a disjoint block of sensors and windows.
/// Clusters at the same site overlap heavily (they merge); clusters at
/// different sites share nothing (the indexes prune them).
pub fn sparse_clusters(n: usize, seed: u64) -> Vec<AtypicalCluster> {
    let mut rng = StdRng::seed_from_u64(seed);
    let sites = (n / 4).max(1) as u32;
    (0..n)
        .map(|i| {
            let site = rng.gen_range(0..sites);
            // Disjoint 8-wide blocks per site; clusters cover a random
            // 3..=6-key span inside their site's block.
            let s_base = site * 8 + rng.gen_range(0..2);
            let w_base = site * 8 + rng.gen_range(0..2);
            let width = rng.gen_range(3..=6u32);
            let sf: Vec<(SensorId, Severity)> = (0..width)
                .map(|k| {
                    (
                        SensorId::new(s_base + k),
                        Severity::from_secs(rng.gen_range(60..1800)),
                    )
                })
                .collect();
            let total: u64 = sf.iter().map(|(_, s)| s.as_secs()).sum();
            // Spread the same total mass over the windows so the SF/TF
            // totals invariant holds.
            let per = total / u64::from(width);
            let mut tf: Vec<(TimeWindow, Severity)> = (0..width)
                .map(|k| (TimeWindow::new(w_base + k), Severity::from_secs(per)))
                .collect();
            let rem = total - per * u64::from(width);
            if rem > 0 {
                let last = tf.last_mut().expect("width >= 3");
                last.1 += Severity::from_secs(rem);
            }
            AtypicalCluster::new(
                ClusterId::new(i as u64),
                sf.into_iter().collect(),
                tf.into_iter().collect(),
            )
        })
        .collect()
}

fn time_strategy(
    input: &[AtypicalCluster],
    params: &Params,
    iters: u32,
) -> (Vec<AtypicalCluster>, IntegrationStats, f64) {
    let mut best_ms = f64::INFINITY;
    let mut out = None;
    for _ in 0..iters.max(1) {
        let mut ids = ClusterIdGen::new(1_000_000_000);
        let start = Instant::now();
        let result = integrate_aligned(input.to_vec(), params, TimeAlignment::Absolute, &mut ids);
        let ms = start.elapsed().as_secs_f64() * 1e3;
        best_ms = best_ms.min(ms);
        out = Some(result);
    }
    let (clusters, stats) = out.expect("at least one iteration");
    (clusters, stats, best_ms)
}

/// Runs the benchmark, asserting naive/indexed equivalence at every size.
pub fn run(config: &IntegrateBenchConfig) -> Vec<SizeResult> {
    let naive_params = Params::paper_defaults().with_indexed_integration(false);
    let indexed_params = Params::paper_defaults().with_indexed_integration(true);
    config
        .sizes
        .iter()
        .map(|&n| {
            let input = sparse_clusters(n, config.seed);
            let (naive_out, naive_stats, naive_ms) =
                time_strategy(&input, &naive_params, config.iters);
            let (indexed_out, indexed_stats, indexed_ms) =
                time_strategy(&input, &indexed_params, config.iters);
            assert_eq!(
                naive_out, indexed_out,
                "strategies diverged at {n} clusters (seed {})",
                config.seed
            );
            assert_eq!(naive_stats.merges, indexed_stats.merges);
            let r = SizeResult {
                clusters: n,
                macro_clusters: naive_out.len(),
                naive_ms,
                indexed_ms,
                naive_stats,
                indexed_stats,
            };
            eprintln!(
                "integrate {:>7} clusters: naive {:>10.2} ms, indexed {:>9.2} ms ({:>6.1}x), {} macros",
                r.clusters,
                r.naive_ms,
                r.indexed_ms,
                r.speedup(),
                r.macro_clusters,
            );
            r
        })
        .collect()
}

/// Writes the artifact consumed by the perf trajectory
/// (`BENCH_integrate.json` at the repo root for the standing record;
/// `results/BENCH_integrate_smoke.json` for the CI smoke run).
pub fn save_json(
    results: &[SizeResult],
    config: &IntegrateBenchConfig,
    path: &Path,
) -> std::io::Result<()> {
    use serde::Value;
    fn obj(entries: Vec<(&str, Value)>) -> Value {
        Value::Object(
            entries
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }
    let sizes: Vec<Value> = results
        .iter()
        .map(|r| {
            obj(vec![
                ("clusters", Value::U64(r.clusters as u64)),
                ("macro_clusters", Value::U64(r.macro_clusters as u64)),
                ("naive_ms", Value::F64(r.naive_ms)),
                ("indexed_ms", Value::F64(r.indexed_ms)),
                ("speedup", Value::F64(r.speedup())),
                (
                    "naive",
                    obj(vec![
                        ("comparisons", Value::U64(r.naive_stats.comparisons)),
                        ("merges", Value::U64(r.naive_stats.merges)),
                    ]),
                ),
                (
                    "indexed",
                    obj(vec![
                        ("comparisons", Value::U64(r.indexed_stats.comparisons)),
                        ("merges", Value::U64(r.indexed_stats.merges)),
                        (
                            "candidates_pruned",
                            Value::U64(r.indexed_stats.candidates_pruned),
                        ),
                        ("bound_skips", Value::U64(r.indexed_stats.bound_skips)),
                    ]),
                ),
            ])
        })
        .collect();
    let doc = obj(vec![
        ("bench", Value::Str("integrate".to_string())),
        ("seed", Value::U64(config.seed)),
        ("iters", Value::U64(u64::from(config.iters))),
        ("sizes", Value::Array(sizes)),
    ]);
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let text = serde_json::to_string_pretty(&doc)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    std::fs::write(path, format!("{text}\n"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_clusters_are_valid_and_deterministic() {
        let a = sparse_clusters(64, 7);
        let b = sparse_clusters(64, 7);
        assert_eq!(a, b);
        for c in &a {
            assert_eq!(c.sf.total(), c.tf.total(), "SF/TF totals must agree");
        }
    }

    #[test]
    fn tiny_run_reports_equal_outputs_and_saves() {
        let config = IntegrateBenchConfig {
            sizes: vec![50, 120],
            iters: 1,
            seed: 9,
        };
        let results = run(&config);
        assert_eq!(results.len(), 2);
        for r in &results {
            assert!(r.macro_clusters > 0 && r.macro_clusters <= r.clusters);
            assert!(r.indexed_stats.comparisons <= r.naive_stats.comparisons);
            assert!(
                r.indexed_stats.candidates_pruned > 0,
                "inputs must be sparse"
            );
        }
        let dir = std::env::temp_dir().join(format!("cps-bench-integrate-{}", std::process::id()));
        let path = dir.join("BENCH_integrate_test.json");
        save_json(&results, &config, &path).expect("save json");
        let text = std::fs::read_to_string(&path).expect("read back");
        let doc: serde::Value = serde_json::from_str(&text).expect("valid json");
        let entries = doc.as_object().expect("top-level object");
        let sizes = serde::get_field(entries, "sizes")
            .as_array()
            .expect("sizes array");
        assert_eq!(sizes.len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
