//! Standing perf trajectory for the deterministic parallel forest
//! engine: leaf construction + week/month roll-ups at a sweep of thread
//! counts.
//!
//! The `repro forest` command builds the same simulated workload at every
//! requested thread count, asserts the results are **bit-identical** to
//! the sequential build (day leaves, week and month levels, merge ids,
//! integration stats — the differential suite proves it per-seed, the
//! bench re-checks it at scale on every run), and writes one JSON
//! artifact so successive commits can be compared:
//!
//! ```text
//! repro forest                                  # seed-42 → BENCH_forest.json
//! repro forest --days 10 --threads 1,4 --iters 1 --bench-out results/smoke.json
//! ```
//!
//! The artifact records `host_cpus`: wall-clock speedup is only
//! meaningful when the host actually has more than one core — on a
//! single-core container every thread count time-slices one CPU and the
//! sweep degenerates to an overhead measurement (the bit-identity checks
//! still run in full).

use atypical::forest::MaterializedLevels;
use atypical::integrate::IntegrationStats;
use atypical::pipeline::{build_forest_from_records_parallel, ConstructionStats};
use atypical::AtypicalCluster;
use cps_core::{AtypicalRecord, Params};
use cps_sim::{Scale, SimConfig, TrafficSim};
use std::path::Path;
use std::time::Instant;

/// Configuration of one `repro forest` run.
#[derive(Clone, Debug)]
pub struct ForestBenchConfig {
    /// Deployment scale of the simulated workload.
    pub scale: Scale,
    /// Simulation seed.
    pub seed: u64,
    /// Days of records (also fixes which week/month levels materialize).
    pub days: u32,
    /// Thread counts to sweep; `1` is always added as the baseline.
    pub threads: Vec<usize>,
    /// Timed repetitions per thread count; the minimum is reported.
    pub iters: u32,
}

impl Default for ForestBenchConfig {
    fn default() -> Self {
        Self {
            scale: Scale::Tiny,
            seed: 42,
            days: 30,
            threads: vec![1, 2, 4, 8],
            iters: 3,
        }
    }
}

/// Timings for one thread count.
#[derive(Clone, Copy, Debug)]
pub struct ThreadResult {
    /// Worker threads used.
    pub threads: usize,
    /// Best-of-`iters` leaf construction (Algorithm 1 per day), ms.
    pub leaf_ms: f64,
    /// Best-of-`iters` week+month roll-up materialization, ms.
    pub rollup_ms: f64,
}

impl ThreadResult {
    /// Leaves + roll-ups.
    pub fn total_ms(&self) -> f64 {
        self.leaf_ms + self.rollup_ms
    }
}

/// Everything the engine must reproduce bit-for-bit: leaves, levels
/// (ids included) and the accumulated counters.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    days: Vec<Vec<AtypicalCluster>>,
    weeks: Vec<Vec<AtypicalCluster>>,
    months: Vec<Vec<AtypicalCluster>>,
    levels: MaterializedLevels,
    construction: ConstructionStats,
    integration: IntegrationStats,
}

/// One timed build: leaves in parallel, then the week/month waves.
fn build_once(
    day_records: &[(u32, Vec<AtypicalRecord>)],
    sim: &TrafficSim,
    threads: usize,
) -> (Fingerprint, f64, f64) {
    let params = Params::paper_defaults().with_parallelism(threads);
    let spec = sim.config().spec;
    let n_days = day_records.len() as u32;

    let start = Instant::now();
    let built = build_forest_from_records_parallel(
        day_records.to_vec(),
        sim.network(),
        &params,
        spec,
        threads,
    );
    let leaf_ms = start.elapsed().as_secs_f64() * 1e3;

    let mut forest = built.forest;
    let start = Instant::now();
    let levels = forest.materialize_range(0, n_days);
    let rollup_ms = start.elapsed().as_secs_f64() * 1e3;

    let fingerprint = Fingerprint {
        days: (0..n_days).map(|d| forest.day(d).to_vec()).collect(),
        weeks: levels
            .weeks
            .iter()
            .map(|&w| forest.week(w).to_vec())
            .collect(),
        months: levels
            .months
            .iter()
            .map(|&m| forest.month(m).to_vec())
            .collect(),
        levels,
        construction: built.stats,
        integration: forest.integration_stats(),
    };
    (fingerprint, leaf_ms, rollup_ms)
}

/// Runs the sweep, asserting bit-identity against the sequential build at
/// every thread count. Returns the per-thread timings.
pub fn run(config: &ForestBenchConfig) -> Vec<ThreadResult> {
    let sim = TrafficSim::new(SimConfig::new(config.scale, config.seed));
    let day_records: Vec<(u32, Vec<AtypicalRecord>)> =
        (0..config.days).map(|d| (d, sim.atypical_day(d))).collect();

    let mut sweep: Vec<usize> = std::iter::once(1)
        .chain(config.threads.iter().copied())
        .collect();
    sweep.sort_unstable();
    sweep.dedup();

    let (baseline, _, _) = build_once(&day_records, &sim, 1);
    sweep
        .iter()
        .map(|&threads| {
            let mut best_leaf = f64::INFINITY;
            let mut best_rollup = f64::INFINITY;
            for _ in 0..config.iters.max(1) {
                let (fingerprint, leaf_ms, rollup_ms) = build_once(&day_records, &sim, threads);
                assert_eq!(
                    fingerprint, baseline,
                    "parallel build diverged at {threads} threads (seed {})",
                    config.seed
                );
                best_leaf = best_leaf.min(leaf_ms);
                best_rollup = best_rollup.min(rollup_ms);
            }
            let r = ThreadResult {
                threads,
                leaf_ms: best_leaf,
                rollup_ms: best_rollup,
            };
            eprintln!(
                "forest {:>2} threads: leaves {:>8.2} ms, roll-ups {:>8.2} ms (bit-identical)",
                r.threads, r.leaf_ms, r.rollup_ms,
            );
            r
        })
        .collect()
}

/// Writes the artifact (`BENCH_forest.json` at the repo root for the
/// standing record; `results/BENCH_forest_smoke.json` for CI).
pub fn save_json(
    results: &[ThreadResult],
    config: &ForestBenchConfig,
    path: &Path,
) -> std::io::Result<()> {
    use serde::Value;
    fn obj(entries: Vec<(&str, Value)>) -> Value {
        Value::Object(
            entries
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }
    let baseline_ms = results
        .iter()
        .find(|r| r.threads == 1)
        .map_or(f64::INFINITY, ThreadResult::total_ms);
    let threads: Vec<Value> = results
        .iter()
        .map(|r| {
            let speedup = if r.total_ms() > 0.0 {
                baseline_ms / r.total_ms()
            } else {
                f64::INFINITY
            };
            obj(vec![
                ("threads", Value::U64(r.threads as u64)),
                ("leaf_ms", Value::F64(r.leaf_ms)),
                ("rollup_ms", Value::F64(r.rollup_ms)),
                ("total_ms", Value::F64(r.total_ms())),
                ("speedup_vs_sequential", Value::F64(speedup)),
            ])
        })
        .collect();
    let host_cpus = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let doc = obj(vec![
        ("bench", Value::Str("forest".to_string())),
        (
            "scale",
            Value::Str(format!("{:?}", config.scale).to_lowercase()),
        ),
        ("seed", Value::U64(config.seed)),
        ("days", Value::U64(u64::from(config.days))),
        ("iters", Value::U64(u64::from(config.iters))),
        // Speedup is bounded by the host: on a 1-CPU container the sweep
        // only demonstrates bit-identity, not scaling.
        ("host_cpus", Value::U64(host_cpus as u64)),
        ("bit_identical", Value::Bool(true)),
        ("threads", Value::Array(threads)),
    ]);
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let text = serde_json::to_string_pretty(&doc)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    std::fs::write(path, format!("{text}\n"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_is_bit_identical_and_saves() {
        let config = ForestBenchConfig {
            scale: Scale::Tiny,
            seed: 9,
            days: 8,
            threads: vec![1, 3],
            iters: 1,
        };
        // `run` itself asserts bit-identity at every thread count.
        let results = run(&config);
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].threads, 1);
        assert_eq!(results[1].threads, 3);

        let dir = std::env::temp_dir().join(format!("cps-bench-forest-{}", std::process::id()));
        let path = dir.join("BENCH_forest_test.json");
        save_json(&results, &config, &path).expect("save json");
        let text = std::fs::read_to_string(&path).expect("read back");
        let doc: serde::Value = serde_json::from_str(&text).expect("valid json");
        let entries = doc.as_object().expect("top-level object");
        let threads = serde::get_field(entries, "threads")
            .as_array()
            .expect("threads array");
        assert_eq!(threads.len(), 2);
        assert!(matches!(
            serde::get_field(entries, "host_cpus"),
            serde::Value::U64(n) if *n >= 1
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
