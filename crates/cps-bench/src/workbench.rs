//! Shared experiment setup: synthetic archive + forest construction.

use atypical::forest::AtypicalForest;
use atypical::pipeline::{build_forest_from_store, Construction};
use cps_core::{DatasetId, Params, Result, WindowSpec};
use cps_geo::grid::{RegionHierarchy, SensorPartition};
use cps_geo::{RoadNetwork, UniformGrid};
use cps_sim::{Scale, SimConfig, TrafficSim};
use cps_storage::{DatasetStore, IoStats};
use std::path::PathBuf;
use std::sync::Arc;

/// Configuration of a reproduction run.
#[derive(Clone, Debug)]
pub struct ReproConfig {
    /// Deployment scale.
    pub scale: Scale,
    /// Master seed.
    pub seed: u64,
    /// Monthly datasets to generate.
    pub n_datasets: u32,
    /// Days per dataset.
    pub days_per_dataset: u32,
    /// Red-zone / cube grid cell size, miles.
    pub cell_miles: f64,
    /// Where the generated archive lives (reused across runs).
    pub data_dir: PathBuf,
    /// Where result JSON tables are written.
    pub out_dir: PathBuf,
}

impl ReproConfig {
    /// Defaults: tiny scale, 12 months × 30 days, cached under `target/`.
    pub fn new(scale: Scale, seed: u64) -> Self {
        let scale_name = format!("{scale:?}").to_lowercase();
        Self {
            scale,
            seed,
            n_datasets: 12,
            days_per_dataset: 30,
            cell_miles: 3.0,
            data_dir: PathBuf::from(format!("target/repro-data/{scale_name}-{seed}")),
            out_dir: PathBuf::from("results"),
        }
    }

    fn sim_config(&self) -> SimConfig {
        SimConfig::new(self.scale, self.seed)
            .with_datasets(self.n_datasets)
            .with_days_per_dataset(self.days_per_dataset)
    }
}

/// A ready-to-experiment deployment: archive on disk, network, regions.
pub struct Workbench {
    /// The run configuration.
    pub config: ReproConfig,
    /// The traffic simulator (holds the network).
    pub sim: TrafficSim,
    /// The on-disk archive.
    pub store: DatasetStore,
    /// Pre-defined region hierarchy (cell → district → city).
    pub hierarchy: RegionHierarchy,
    /// Shared I/O counters.
    pub io: Arc<IoStats>,
}

impl Workbench {
    /// Opens (or generates) the archive and builds the region structures.
    pub fn prepare(config: ReproConfig) -> Result<Self> {
        let sim = TrafficSim::new(config.sim_config());
        let store = match DatasetStore::open(&config.data_dir) {
            Ok(store)
                if store.catalog().datasets.len() == config.n_datasets as usize
                    && store.catalog().total_days()
                        == config.n_datasets * config.days_per_dataset =>
            {
                store
            }
            _ => {
                eprintln!(
                    "[workbench] generating archive at {} ({:?}, {} datasets x {} days)…",
                    config.data_dir.display(),
                    config.scale,
                    config.n_datasets,
                    config.days_per_dataset
                );
                let _ = std::fs::remove_dir_all(&config.data_dir);
                sim.write_store(&config.data_dir)?
            }
        };
        let hierarchy = RegionHierarchy::standard(sim.network(), config.cell_miles, 3);
        Ok(Self {
            config,
            sim,
            store,
            hierarchy,
            io: IoStats::shared(),
        })
    }

    /// The road network.
    pub fn network(&self) -> &RoadNetwork {
        self.sim.network()
    }

    /// The finest region partition (red-zone regions).
    pub fn partition(&self) -> &SensorPartition {
        self.hierarchy.finest()
    }

    /// The time discretization.
    pub fn spec(&self) -> WindowSpec {
        self.store.catalog().spec
    }

    /// Dataset ids `D1..=Dk`.
    pub fn datasets(&self, k: u32) -> Vec<DatasetId> {
        (1..=k).map(DatasetId::new).collect()
    }

    /// Builds the atypical forest over the first `k` datasets.
    pub fn build_forest(&self, k: u32, params: &Params) -> Result<Construction> {
        build_forest_from_store(
            &self.store,
            &self.datasets(k),
            self.network(),
            params,
            Arc::clone(&self.io),
        )
    }

    /// Builds a forest covering at least `n_days` days (rounded up to whole
    /// datasets).
    pub fn build_forest_for_days(&self, n_days: u32, params: &Params) -> Result<AtypicalForest> {
        let k = n_days
            .div_ceil(self.config.days_per_dataset)
            .min(self.config.n_datasets);
        Ok(self.build_forest(k, params)?.forest)
    }

    /// A partition with a different cell size (red-zone granularity
    /// ablation).
    pub fn partition_with_cell(&self, cell_miles: f64) -> SensorPartition {
        UniformGrid::over(self.network(), cell_miles).partition(self.network())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_config(tag: &str) -> ReproConfig {
        let mut c = ReproConfig::new(Scale::Tiny, 77);
        c.n_datasets = 1;
        c.days_per_dataset = 2;
        c.data_dir =
            std::env::temp_dir().join(format!("cps-workbench-{}-{tag}", std::process::id()));
        c
    }

    #[test]
    fn prepare_generates_then_reuses() {
        let config = test_config("reuse");
        let _ = std::fs::remove_dir_all(&config.data_dir);
        let wb = Workbench::prepare(config.clone()).unwrap();
        assert_eq!(wb.store.catalog().datasets.len(), 1);
        let first_gen = std::fs::metadata(config.data_dir.join("catalog.json"))
            .unwrap()
            .modified()
            .unwrap();
        // Second prepare must reuse the archive (catalog unmodified).
        let wb2 = Workbench::prepare(config.clone()).unwrap();
        let second_gen = std::fs::metadata(config.data_dir.join("catalog.json"))
            .unwrap()
            .modified()
            .unwrap();
        assert_eq!(first_gen, second_gen);
        assert_eq!(wb2.network().num_sensors(), wb.network().num_sensors());
        let _ = std::fs::remove_dir_all(&config.data_dir);
    }

    #[test]
    fn forest_builds_over_archive() {
        let config = test_config("forest");
        let wb = Workbench::prepare(config.clone()).unwrap();
        let params = Params::paper_defaults();
        let built = wb.build_forest(1, &params).unwrap();
        assert_eq!(built.forest.days().count(), 2);
        assert!(built.stats.n_micro_clusters > 0);
        let _ = std::fs::remove_dir_all(&config.data_dir);
    }
}
