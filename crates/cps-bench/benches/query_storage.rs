//! Storage substrate: encode/decode and scan throughput, plus the
//! aggregate R-tree range-aggregation kernel.

use cps_core::{AtypicalRecord, SensorId, Severity, TimeWindow};
use cps_geo::point::LOS_ANGELES;
use cps_geo::BoundingBox;
use cps_index::AggregateRTree;
use cps_storage::format::{decode_atypical, encode_atypical};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::hint::black_box;

fn bench_codec(c: &mut Criterion) {
    let records: Vec<AtypicalRecord> = (0..4096u32)
        .map(|i| {
            AtypicalRecord::new(
                SensorId::new(i),
                TimeWindow::new(i * 3),
                Severity::from_secs(120),
            )
        })
        .collect();
    let mut group = c.benchmark_group("storage_codec");
    group.throughput(Throughput::Elements(records.len() as u64));
    group.bench_function("encode_block", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(records.len() * 16);
            for r in &records {
                encode_atypical(r, &mut buf);
            }
            black_box(buf.len())
        })
    });
    let mut buf = Vec::with_capacity(records.len() * 16);
    for r in &records {
        encode_atypical(r, &mut buf);
    }
    group.bench_function("decode_block", |b| {
        b.iter(|| {
            let mut total = 0u64;
            for chunk in buf.chunks_exact(16) {
                total += decode_atypical(chunk).severity.as_secs();
            }
            black_box(total)
        })
    });
    group.finish();
}

fn bench_argtree(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let points: Vec<_> = (0..20_000)
        .map(|_| {
            (
                LOS_ANGELES.offset_miles(rng.gen_range(-25.0..25.0), rng.gen_range(-25.0..25.0)),
                Severity::from_secs(rng.gen_range(60..600)),
            )
        })
        .collect();
    let tree = AggregateRTree::bulk_load(points);
    let query = BoundingBox::of_point(LOS_ANGELES).inflated_miles(10.0);
    c.bench_function("argtree_range_severity_20k", |b| {
        b.iter(|| black_box(tree.range_severity(&query).0))
    });
}

criterion_group!(benches, bench_codec, bench_argtree);
criterion_main!(benches);
