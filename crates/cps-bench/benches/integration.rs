//! Algorithm 3: cluster integration cost versus input size (quadratic in
//! the number of input clusters — Proposition 3 and the motivation for the
//! red-zone filter).

use atypical::integrate::{integrate_aligned, TimeAlignment};
use atypical::pipeline::build_forest_from_records;
use cps_core::{Params, WindowSpec};
use cps_sim::{Scale, SimConfig, TrafficSim};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_integration(c: &mut Criterion) {
    let sim = TrafficSim::new(SimConfig::new(Scale::Small, 11));
    let params = Params::paper_defaults();
    let built = build_forest_from_records(
        (0..14).map(|d| (d, sim.atypical_day(d))),
        sim.network(),
        &params,
        WindowSpec::PEMS,
    );
    let alignment = TimeAlignment::TimeOfDay {
        windows_per_day: WindowSpec::PEMS.windows_per_day(),
    };

    let mut group = c.benchmark_group("integration");
    group.sample_size(10);
    for days in [2u32, 7, 14] {
        let micros = built.forest.micros_in_days(0, days);
        for (strategy, strategy_params) in [
            ("naive", params.with_indexed_integration(false)),
            ("indexed", params.with_indexed_integration(true)),
        ] {
            group.bench_with_input(
                BenchmarkId::new(strategy, micros.len()),
                &micros,
                |b, micros| {
                    b.iter(|| {
                        let mut ids = cps_core::ids::ClusterIdGen::new(1);
                        black_box(
                            integrate_aligned(
                                micros.clone(),
                                &strategy_params,
                                alignment,
                                &mut ids,
                            )
                            .0
                            .len(),
                        )
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_integration);
criterion_main!(benches);
