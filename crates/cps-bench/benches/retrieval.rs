//! Proposition 1: event retrieval is `O(N + n²)` unindexed and
//! `O(N + n·log n)` with the spatio-temporal index.

use atypical::event::extract_events;
use cps_core::{Params, WindowSpec};
use cps_index::{NaiveNeighbors, StIndex};
use cps_sim::{Scale, SimConfig, TrafficSim};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_retrieval(c: &mut Criterion) {
    let sim = TrafficSim::new(SimConfig::new(Scale::Small, 42));
    let params = Params::paper_defaults();
    let spec = WindowSpec::PEMS;
    let mut group = c.benchmark_group("event_retrieval");
    group.sample_size(10);

    for day in [0u32, 1] {
        let records = sim.atypical_day(day);
        let n = records.len();
        group.bench_with_input(BenchmarkId::new("indexed", n), &records, |b, records| {
            b.iter(|| {
                let index = StIndex::build(records, sim.network(), &params, spec);
                black_box(extract_events(&index).len())
            })
        });
        group.bench_with_input(BenchmarkId::new("naive", n), &records, |b, records| {
            b.iter(|| {
                let naive = NaiveNeighbors::new(records, sim.network(), &params, spec);
                black_box(extract_events(&naive).len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_retrieval);
criterion_main!(benches);
