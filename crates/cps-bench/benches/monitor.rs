//! Monitor throughput: one simulated day pushed through the sharded
//! service end-to-end (ingest → shard workers → merger), at several shard
//! counts, against the single-threaded extractor baseline.

use atypical::online::OnlineExtractor;
use cps_core::Params;
use cps_monitor::{MonitorConfig, MonitorService};
use cps_sim::{Scale, SimConfig, TrafficSim};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::sync::Arc;

fn bench_monitor_throughput(c: &mut Criterion) {
    let sim = TrafficSim::new(SimConfig::new(Scale::Small, 7));
    let mut records = sim.atypical_day(0);
    records.sort_by_key(|r| (r.window, r.sensor));
    let network = Arc::new(sim.network().clone());
    let spec = sim.config().spec;
    let params = Params::paper_defaults();

    let mut group = c.benchmark_group("monitor_throughput");
    group.throughput(Throughput::Elements(records.len() as u64));
    group.sample_size(10);

    group.bench_function("single_extractor", |b| {
        b.iter(|| {
            let mut extractor = OnlineExtractor::new(&network, params, spec);
            for &r in &records {
                extractor.push(r).expect("window-ordered feed");
            }
            black_box(extractor.finish())
        })
    });

    for shards in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("sharded_service", shards),
            &shards,
            |b, &shards| {
                let config = MonitorConfig {
                    shards,
                    params,
                    spec,
                    ..MonitorConfig::default()
                };
                b.iter(|| {
                    let mut service =
                        MonitorService::start(&config, network.clone()).expect("service starts");
                    for &r in &records {
                        service.ingest(r).expect("window-ordered feed");
                    }
                    black_box(service.finish())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_monitor_throughput);
criterion_main!(benches);
