//! Figure 17's inner loop: the three online query strategies over a
//! prebuilt forest.

use atypical::pipeline::build_forest_from_records;
use atypical::{Query, QueryEngine, Strategy};
use cps_core::{Params, WindowSpec};
use cps_geo::UniformGrid;
use cps_sim::{Scale, SimConfig, TrafficSim};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_query(c: &mut Criterion) {
    let sim = TrafficSim::new(SimConfig::new(Scale::Small, 42));
    let params = Params::paper_defaults();
    let built = build_forest_from_records(
        (0..14).map(|d| (d, sim.atypical_day(d))),
        sim.network(),
        &params,
        WindowSpec::PEMS,
    );
    let partition = UniformGrid::over(sim.network(), 3.0).partition(sim.network());
    let engine = QueryEngine::new(sim.network(), &partition, params);

    let mut group = c.benchmark_group("query_14_days");
    group.sample_size(20);
    let mut forest = built.forest;
    for strategy in [Strategy::All, Strategy::Pru, Strategy::Gui] {
        group.bench_with_input(
            BenchmarkId::from_parameter(strategy.label()),
            &strategy,
            |b, &strategy| {
                b.iter(|| {
                    black_box(
                        engine
                            .execute(&mut forest, &Query::days(0, 14), strategy)
                            .macros
                            .len(),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_query);
criterion_main!(benches);
