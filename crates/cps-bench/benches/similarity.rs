//! Equations 2–4: similarity computation cost per balance function and
//! alignment — the inner kernel of Algorithm 3's `O(n²)` comparisons.

use atypical::cluster::AtypicalCluster;
use atypical::feature::{SpatialFeature, TemporalFeature};
use atypical::similarity::{similarity, similarity_folded};
use cps_core::{BalanceFunction, ClusterId, SensorId, Severity, TimeWindow};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn make_cluster(id: u64, base: u32, n: u32) -> AtypicalCluster {
    let sf: SpatialFeature = (base..base + n)
        .map(|s| (SensorId::new(s), Severity::from_secs(60 + u64::from(s))))
        .collect();
    let tf: TemporalFeature = (base..base + n)
        .map(|w| (TimeWindow::new(w), Severity::from_secs(60 + u64::from(w))))
        .collect();
    AtypicalCluster::new(ClusterId::new(id), sf, tf)
}

fn bench_similarity(c: &mut Criterion) {
    let mut group = c.benchmark_group("similarity");
    for n in [16u32, 128, 1024] {
        let a = make_cluster(1, 0, n);
        let b = make_cluster(2, n / 2, n);
        group.bench_with_input(
            BenchmarkId::new("avg", n),
            &(a.clone(), b.clone()),
            |bench, (a, b)| {
                bench.iter(|| black_box(similarity(a, b, BalanceFunction::ArithmeticMean)))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("max", n),
            &(a.clone(), b.clone()),
            |bench, (a, b)| bench.iter(|| black_box(similarity(a, b, BalanceFunction::Max))),
        );
        group.bench_with_input(
            BenchmarkId::new("folded", n),
            &(a.clone(), b.clone()),
            |bench, (a, b)| {
                bench.iter(|| {
                    black_box(similarity_folded(
                        a,
                        b,
                        BalanceFunction::ArithmeticMean,
                        288,
                    ))
                })
            },
        );
        let big = make_cluster(3, 0, n);
        group.bench_with_input(
            BenchmarkId::new("merge", n),
            &(a, big),
            |bench, (a, big)| {
                bench.iter(|| black_box(a.merge(big, ClusterId::new(9)).sensor_count()))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_similarity);
criterion_main!(benches);
