//! Figure 15's inner loops: per-day micro-cluster construction (AC) versus
//! the CubeView-style aggregation (MC) over the same atypical records.

use atypical::pipeline::{day_micro_clusters, ConstructionStats};
use cps_core::ids::ClusterIdGen;
use cps_core::{Params, WindowSpec};
use cps_cube::SpatioTemporalCube;
use cps_geo::grid::RegionHierarchy;
use cps_sim::{Scale, SimConfig, TrafficSim};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn bench_construction(c: &mut Criterion) {
    let sim = TrafficSim::new(SimConfig::new(Scale::Small, 7));
    let records = sim.atypical_day(0);
    let params = Params::paper_defaults();
    let spec = WindowSpec::PEMS;
    let hierarchy = RegionHierarchy::standard(sim.network(), 3.0, 3);

    let mut group = c.benchmark_group("construction_per_day");
    group.throughput(Throughput::Elements(records.len() as u64));
    group.sample_size(20);

    group.bench_function("atypical_clusters", |b| {
        b.iter(|| {
            let mut ids = ClusterIdGen::new(1);
            let mut stats = ConstructionStats::default();
            black_box(day_micro_clusters(
                &records,
                sim.network(),
                &params,
                spec,
                &mut ids,
                &mut stats,
            ))
        })
    });

    group.bench_function("cube_mc", |b| {
        b.iter(|| {
            let mut cube = SpatioTemporalCube::new(hierarchy.clone(), spec);
            for r in &records {
                cube.add_atypical(r);
            }
            black_box(cube.base_cells())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_construction);
criterion_main!(benches);
