//! Dataset directory layout and catalog.
//!
//! Mirrors the paper's experimental setup: the store holds a sequence of
//! monthly datasets `D1 … D12`, each partitioned per day into a raw and an
//! atypical file:
//!
//! ```text
//! <root>/catalog.json
//! <root>/D1/raw-d000.cps      raw readings, day 0 of D1
//! <root>/D1/atyp-d000.cps     pre-processed atypical records, day 0 of D1
//! …
//! ```
//!
//! Days are indexed globally (day 0 = first day of D1), so a query range of
//! "the last 84 days" maps directly onto partition files irrespective of
//! which month they fall in.

use crate::format::RecordKind;
use crate::iostats::IoStats;
use crate::reader::PartitionReader;
use crate::writer::PartitionWriter;
use cps_core::{AtypicalRecord, CpsError, DatasetId, RawRecord, Result, WindowSpec};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Metadata for one (monthly) dataset partition.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct DatasetMeta {
    /// Dataset id (`D1`…).
    pub id: DatasetId,
    /// Display name, e.g. `"Oct 2008"`.
    pub name: String,
    /// Global index of the dataset's first day.
    pub first_day: u32,
    /// Number of days covered.
    pub n_days: u32,
    /// Sensors active in this dataset.
    pub n_sensors: u32,
    /// Raw readings stored.
    pub n_raw_records: u64,
    /// Atypical records stored.
    pub n_atypical_records: u64,
}

impl DatasetMeta {
    /// Fraction of readings that are atypical.
    pub fn atypical_fraction(&self) -> f64 {
        if self.n_raw_records == 0 {
            0.0
        } else {
            self.n_atypical_records as f64 / self.n_raw_records as f64
        }
    }

    /// Global day range `[first_day, first_day + n_days)`.
    pub fn day_range(&self) -> std::ops::Range<u32> {
        self.first_day..self.first_day + self.n_days
    }
}

/// The persisted catalog: window spec plus dataset list.
#[derive(Clone, Debug, Serialize, Deserialize, Default)]
pub struct DatasetCatalog {
    /// Time discretization shared by all datasets.
    pub spec: WindowSpec,
    /// Datasets in `first_day` order.
    pub datasets: Vec<DatasetMeta>,
}

impl DatasetCatalog {
    /// Total number of days across all datasets.
    pub fn total_days(&self) -> u32 {
        self.datasets.iter().map(|d| d.n_days).sum()
    }

    /// Total raw records across all datasets.
    pub fn total_raw_records(&self) -> u64 {
        self.datasets.iter().map(|d| d.n_raw_records).sum()
    }

    /// Total atypical records across all datasets.
    pub fn total_atypical_records(&self) -> u64 {
        self.datasets.iter().map(|d| d.n_atypical_records).sum()
    }

    /// The dataset containing global `day`, if any.
    pub fn dataset_for_day(&self, day: u32) -> Option<&DatasetMeta> {
        self.datasets.iter().find(|d| d.day_range().contains(&day))
    }
}

/// A dataset store rooted at a directory.
pub struct DatasetStore {
    root: PathBuf,
    catalog: DatasetCatalog,
}

impl DatasetStore {
    /// Creates an empty store (directory is created; any existing catalog is
    /// replaced).
    pub fn create(root: &Path, spec: WindowSpec) -> Result<Self> {
        std::fs::create_dir_all(root)?;
        let store = Self {
            root: root.to_owned(),
            catalog: DatasetCatalog {
                spec,
                datasets: Vec::new(),
            },
        };
        store.persist_catalog()?;
        Ok(store)
    }

    /// Opens an existing store.
    pub fn open(root: &Path) -> Result<Self> {
        let catalog_path = root.join("catalog.json");
        let text = std::fs::read_to_string(&catalog_path)?;
        let catalog: DatasetCatalog = serde_json::from_str(&text)
            .map_err(|e| CpsError::corrupt("catalog.json", e.to_string()))?;
        Ok(Self {
            root: root.to_owned(),
            catalog,
        })
    }

    /// Root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The catalog.
    pub fn catalog(&self) -> &DatasetCatalog {
        &self.catalog
    }

    fn persist_catalog(&self) -> Result<()> {
        let text = serde_json::to_string_pretty(&self.catalog)
            .map_err(|e| CpsError::corrupt("catalog.json", e.to_string()))?;
        std::fs::write(self.root.join("catalog.json"), text)?;
        Ok(())
    }

    fn dataset_dir(&self, id: DatasetId) -> PathBuf {
        self.root.join(format!("{id}"))
    }

    /// Path of the raw partition for (`dataset`, local `day`).
    pub fn raw_path(&self, id: DatasetId, local_day: u32) -> PathBuf {
        self.dataset_dir(id)
            .join(format!("raw-d{local_day:03}.cps"))
    }

    /// Path of the atypical partition for (`dataset`, local `day`).
    pub fn atypical_path(&self, id: DatasetId, local_day: u32) -> PathBuf {
        self.dataset_dir(id)
            .join(format!("atyp-d{local_day:03}.cps"))
    }

    /// Creates the raw-partition writer for one day.
    pub fn raw_writer(&self, id: DatasetId, local_day: u32) -> Result<PartitionWriter> {
        PartitionWriter::create(&self.raw_path(id, local_day), RecordKind::Raw)
    }

    /// Creates the atypical-partition writer for one day.
    pub fn atypical_writer(&self, id: DatasetId, local_day: u32) -> Result<PartitionWriter> {
        PartitionWriter::create(&self.atypical_path(id, local_day), RecordKind::Atypical)
    }

    /// Registers (or replaces) a dataset's metadata and persists the catalog.
    pub fn register_dataset(&mut self, meta: DatasetMeta) -> Result<()> {
        self.catalog.datasets.retain(|d| d.id != meta.id);
        self.catalog.datasets.push(meta);
        self.catalog.datasets.sort_by_key(|d| d.first_day);
        self.persist_catalog()
    }

    /// Metadata for one dataset.
    pub fn dataset(&self, id: DatasetId) -> Result<&DatasetMeta> {
        self.catalog
            .datasets
            .iter()
            .find(|d| d.id == id)
            .ok_or_else(|| CpsError::NotFound(format!("{id}")))
    }

    /// Streams every raw record of `id` in day order.
    pub fn scan_raw(
        &self,
        id: DatasetId,
        stats: Arc<IoStats>,
    ) -> Result<impl Iterator<Item = Result<RawRecord>>> {
        let meta = self.dataset(id)?;
        let paths: Vec<PathBuf> = (0..meta.n_days).map(|d| self.raw_path(id, d)).collect();
        Ok(ChainedScan::new(paths, stats, ScanKind::Raw).map(|r| {
            r.map(|rec| match rec {
                Either::Raw(r) => r,
                Either::Atypical(_) => unreachable!("raw scan yielded atypical record"),
            })
        }))
    }

    /// Streams every atypical record of `id` in day order.
    pub fn scan_atypical(
        &self,
        id: DatasetId,
        stats: Arc<IoStats>,
    ) -> Result<impl Iterator<Item = Result<AtypicalRecord>>> {
        let meta = self.dataset(id)?;
        let paths: Vec<PathBuf> = (0..meta.n_days)
            .map(|d| self.atypical_path(id, d))
            .collect();
        Ok(ChainedScan::new(paths, stats, ScanKind::Atypical).map(|r| {
            r.map(|rec| match rec {
                Either::Atypical(a) => a,
                Either::Raw(_) => unreachable!("atypical scan yielded raw record"),
            })
        }))
    }

    /// Atypical partition paths covering global days `[first, first + n)`,
    /// in day order. Days with no registered dataset are skipped.
    pub fn atypical_paths_for_days(&self, first: u32, n: u32) -> Vec<PathBuf> {
        (first..first + n)
            .filter_map(|day| {
                self.catalog
                    .dataset_for_day(day)
                    .map(|meta| self.atypical_path(meta.id, day - meta.first_day))
            })
            .collect()
    }

    /// Streams the atypical records of global days `[first, first + n)`,
    /// chaining across dataset boundaries — the access pattern of an
    /// analytical query `Q(W, T)` whose `T` spans months. Days with no
    /// registered dataset are skipped silently.
    pub fn scan_atypical_days(
        &self,
        first: u32,
        n: u32,
        stats: Arc<IoStats>,
    ) -> impl Iterator<Item = Result<AtypicalRecord>> {
        let paths = self.atypical_paths_for_days(first, n);
        ChainedScan::new(paths, stats, ScanKind::Atypical).map(|r| {
            r.map(|rec| match rec {
                Either::Atypical(a) => a,
                Either::Raw(_) => unreachable!("atypical scan yielded raw record"),
            })
        })
    }

    /// Total on-disk size in bytes of the given partition paths.
    pub fn file_sizes(paths: &[PathBuf]) -> u64 {
        paths
            .iter()
            .filter_map(|p| std::fs::metadata(p).ok())
            .map(|m| m.len())
            .sum()
    }
}

enum ScanKind {
    Raw,
    Atypical,
}

enum Either {
    Raw(RawRecord),
    Atypical(AtypicalRecord),
}

/// Chains per-day partitions into one record stream.
struct ChainedScan {
    paths: std::vec::IntoIter<PathBuf>,
    current: Option<Box<dyn Iterator<Item = Result<Either>>>>,
    stats: Arc<IoStats>,
    kind: ScanKind,
    failed: bool,
}

impl ChainedScan {
    fn new(paths: Vec<PathBuf>, stats: Arc<IoStats>, kind: ScanKind) -> Self {
        Self {
            paths: paths.into_iter(),
            current: None,
            stats,
            kind,
            failed: false,
        }
    }

    fn open_next(&mut self) -> Option<Result<()>> {
        let path = self.paths.next()?;
        match PartitionReader::open(&path, Arc::clone(&self.stats)) {
            Ok(reader) => {
                self.current = Some(match self.kind {
                    ScanKind::Raw => Box::new(reader.raw_records().map(|r| r.map(Either::Raw))),
                    ScanKind::Atypical => {
                        Box::new(reader.atypical_records().map(|r| r.map(Either::Atypical)))
                    }
                });
                Some(Ok(()))
            }
            Err(e) => Some(Err(e)),
        }
    }
}

impl Iterator for ChainedScan {
    type Item = Result<Either>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        loop {
            if let Some(iter) = &mut self.current {
                match iter.next() {
                    Some(item) => {
                        if item.is_err() {
                            self.failed = true;
                        }
                        return Some(item);
                    }
                    None => self.current = None,
                }
            }
            match self.open_next() {
                Some(Ok(())) => continue,
                Some(Err(e)) => {
                    self.failed = true;
                    return Some(Err(e));
                }
                None => return None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cps_core::{SensorId, Severity, TimeWindow};

    fn tmp_root(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("cps-store-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn fill(store: &mut DatasetStore, id: DatasetId, first_day: u32, n_days: u32) {
        let mut raw_total = 0;
        let mut atyp_total = 0;
        for day in 0..n_days {
            let mut rw = store.raw_writer(id, day).unwrap();
            let mut aw = store.atypical_writer(id, day).unwrap();
            for i in 0..50u32 {
                rw.write_raw(&RawRecord::new(
                    SensorId::new(i),
                    TimeWindow::new((first_day + day) * 288 + i),
                    60.0,
                    100,
                    200,
                ))
                .unwrap();
                if i % 10 == 0 {
                    aw.write_atypical(&AtypicalRecord::new(
                        SensorId::new(i),
                        TimeWindow::new((first_day + day) * 288 + i),
                        Severity::from_secs(120),
                    ))
                    .unwrap();
                }
            }
            raw_total += rw.finish().unwrap();
            atyp_total += aw.finish().unwrap();
        }
        store
            .register_dataset(DatasetMeta {
                id,
                name: format!("{id}"),
                first_day,
                n_days,
                n_sensors: 50,
                n_raw_records: raw_total,
                n_atypical_records: atyp_total,
            })
            .unwrap();
    }

    #[test]
    fn create_fill_reopen_scan() {
        let root = tmp_root("roundtrip");
        let mut store = DatasetStore::create(&root, WindowSpec::PEMS).unwrap();
        fill(&mut store, DatasetId::new(1), 0, 3);
        fill(&mut store, DatasetId::new(2), 3, 2);

        let store = DatasetStore::open(&root).unwrap();
        assert_eq!(store.catalog().datasets.len(), 2);
        assert_eq!(store.catalog().total_days(), 5);
        assert_eq!(store.catalog().total_raw_records(), 5 * 50);
        assert_eq!(store.catalog().total_atypical_records(), 5 * 5);

        let stats = IoStats::shared();
        let raws: Vec<_> = store
            .scan_raw(DatasetId::new(1), stats.clone())
            .unwrap()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(raws.len(), 150);
        assert_eq!(stats.snapshot().files_opened, 3);

        let atyp: Vec<_> = store
            .scan_atypical(DatasetId::new(2), stats.clone())
            .unwrap()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(atyp.len(), 10);
    }

    #[test]
    fn day_range_spans_datasets() {
        let root = tmp_root("spans");
        let mut store = DatasetStore::create(&root, WindowSpec::PEMS).unwrap();
        fill(&mut store, DatasetId::new(1), 0, 3);
        fill(&mut store, DatasetId::new(2), 3, 3);
        // Days 2..5 straddle D1/D2.
        let paths = store.atypical_paths_for_days(2, 3);
        assert_eq!(paths.len(), 3);
        assert!(paths[0].to_string_lossy().contains("D1"));
        assert!(paths[1].to_string_lossy().contains("D2"));
        // Unregistered days are skipped.
        assert_eq!(store.atypical_paths_for_days(5, 10).len(), 1);
        assert!(DatasetStore::file_sizes(&paths) > 0);
    }

    #[test]
    fn day_range_scan_streams_across_datasets() {
        let root = tmp_root("dayscan");
        let mut store = DatasetStore::create(&root, WindowSpec::PEMS).unwrap();
        fill(&mut store, DatasetId::new(1), 0, 3);
        fill(&mut store, DatasetId::new(2), 3, 3);
        let stats = IoStats::shared();
        // Days 2..5: one day from D1, two from D2 → 3 × 5 atypical records.
        let records: Vec<AtypicalRecord> = store
            .scan_atypical_days(2, 3, stats.clone())
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(records.len(), 15);
        assert_eq!(stats.snapshot().files_opened, 3);
        // A range with a hole (days 4..12, only 4–5 exist) still works.
        let tail: Vec<_> = store
            .scan_atypical_days(4, 8, IoStats::shared())
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(tail.len(), 10);
        // An entirely unregistered range yields nothing.
        assert_eq!(
            store.scan_atypical_days(50, 5, IoStats::shared()).count(),
            0
        );
    }

    #[test]
    fn atypical_fraction_reported() {
        let root = tmp_root("fraction");
        let mut store = DatasetStore::create(&root, WindowSpec::PEMS).unwrap();
        fill(&mut store, DatasetId::new(1), 0, 1);
        let meta = store.dataset(DatasetId::new(1)).unwrap();
        assert!((meta.atypical_fraction() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn missing_dataset_is_not_found() {
        let root = tmp_root("missing");
        let store = DatasetStore::create(&root, WindowSpec::PEMS).unwrap();
        assert!(matches!(
            store.dataset(DatasetId::new(9)),
            Err(CpsError::NotFound(_))
        ));
    }

    #[test]
    fn corrupt_catalog_is_reported() {
        let root = tmp_root("badcat");
        DatasetStore::create(&root, WindowSpec::PEMS).unwrap();
        std::fs::write(root.join("catalog.json"), "{not json").unwrap();
        assert!(matches!(
            DatasetStore::open(&root),
            Err(CpsError::Corrupt { .. })
        ));
    }
}
