//! Streaming partition reader with CRC verification and I/O accounting.

use crate::crc::crc32;
use crate::format::{
    decode_atypical, decode_header, decode_raw, RecordKind, BLOCK_HEADER_SIZE, HEADER_SIZE,
    RECORD_SIZE,
};
use crate::io::{Io, IoRead};
use crate::iostats::IoStats;
use bytes::Buf;
use cps_core::{AtypicalRecord, CpsError, RawRecord, Result};
use std::io::{BufReader, Read};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Reads one partition file sequentially.
pub struct PartitionReader {
    input: BufReader<Box<dyn IoRead>>,
    kind: RecordKind,
    path: PathBuf,
    stats: Arc<IoStats>,
}

impl PartitionReader {
    /// Opens a partition, validating its header.
    pub fn open(path: &Path, stats: Arc<IoStats>) -> Result<Self> {
        Self::open_with(path, stats, &Io::real())
    }

    /// Opens a partition through an explicit [`Io`] backend.
    pub fn open_with(path: &Path, stats: Arc<IoStats>, io: &Io) -> Result<Self> {
        let file = io.open(path)?;
        let mut input = BufReader::with_capacity(1 << 20, file);
        let mut header = [0u8; HEADER_SIZE];
        input.read_exact(&mut header)?;
        let kind = decode_header(&header)?;
        stats.add_file();
        stats.add_bytes(HEADER_SIZE as u64);
        Ok(Self {
            input,
            kind,
            path: path.to_owned(),
            stats,
        })
    }

    /// The record kind stored in this partition.
    pub fn kind(&self) -> RecordKind {
        self.kind
    }

    /// Iterates raw records.
    ///
    /// # Panics
    /// Panics if the partition stores atypical records.
    pub fn raw_records(self) -> impl Iterator<Item = Result<RawRecord>> {
        assert_eq!(self.kind, RecordKind::Raw, "not a raw partition");
        RecordIter::new(self).map(|res| res.map(|bytes| decode_raw(&bytes)))
    }

    /// Iterates atypical records.
    ///
    /// # Panics
    /// Panics if the partition stores raw records.
    pub fn atypical_records(self) -> impl Iterator<Item = Result<AtypicalRecord>> {
        assert_eq!(self.kind, RecordKind::Atypical, "not an atypical partition");
        RecordIter::new(self).map(|res| res.map(|bytes| decode_atypical(&bytes)))
    }
}

/// Block-at-a-time record iterator.
struct RecordIter {
    reader: PartitionReader,
    block: Vec<u8>,
    offset: usize,
    done: bool,
}

impl RecordIter {
    fn new(reader: PartitionReader) -> Self {
        Self {
            reader,
            block: Vec::new(),
            offset: 0,
            done: false,
        }
    }

    fn read_next_block(&mut self) -> Result<bool> {
        let mut header = [0u8; BLOCK_HEADER_SIZE];
        match self.reader.input.read_exact(&mut header) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(false),
            Err(e) => return Err(e.into()),
        }
        let mut h = &header[..];
        let count = h.get_u32_le() as usize;
        let expected_crc = h.get_u32_le();
        if count == 0 {
            return Err(CpsError::corrupt(
                self.reader.path.display().to_string(),
                "zero-record block",
            ));
        }
        let payload_len = count * RECORD_SIZE;
        self.block.resize(payload_len, 0);
        self.reader.input.read_exact(&mut self.block)?;
        if crc32(&self.block) != expected_crc {
            return Err(CpsError::corrupt(
                self.reader.path.display().to_string(),
                "block checksum mismatch",
            ));
        }
        self.reader.stats.add_block();
        self.reader
            .stats
            .add_bytes((BLOCK_HEADER_SIZE + payload_len) as u64);
        self.offset = 0;
        Ok(true)
    }
}

impl Iterator for RecordIter {
    type Item = Result<[u8; RECORD_SIZE]>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        if self.offset >= self.block.len() {
            match self.read_next_block() {
                Ok(true) => {}
                Ok(false) => {
                    self.done = true;
                    return None;
                }
                Err(e) => {
                    self.done = true;
                    return Some(Err(e));
                }
            }
        }
        let mut rec = [0u8; RECORD_SIZE];
        rec.copy_from_slice(&self.block[self.offset..self.offset + RECORD_SIZE]);
        self.offset += RECORD_SIZE;
        self.reader.stats.add_records(1);
        Some(Ok(rec))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::PartitionWriter;
    use cps_core::{SensorId, Severity, TimeWindow};
    use std::io::{Seek, SeekFrom, Write};

    fn tmpfile(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("cps-reader-test-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d.join(name)
    }

    fn write_partition(path: &Path, n: usize) {
        let mut w = PartitionWriter::create(path, RecordKind::Atypical).unwrap();
        for i in 0..n {
            w.write_atypical(&AtypicalRecord::new(
                SensorId::new(i as u32),
                TimeWindow::new(i as u32),
                Severity::from_secs(60),
            ))
            .unwrap();
        }
        w.finish().unwrap();
    }

    #[test]
    fn corrupted_block_is_detected() {
        let path = tmpfile("corrupt.cps");
        write_partition(&path, 100);
        // Flip one payload byte after the header + block header.
        let mut f = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(&path)
            .unwrap();
        f.seek(SeekFrom::Start(
            (HEADER_SIZE + BLOCK_HEADER_SIZE + 5) as u64,
        ))
        .unwrap();
        f.write_all(&[0xFF]).unwrap();
        drop(f);

        let reader = PartitionReader::open(&path, IoStats::shared()).unwrap();
        let results: Vec<_> = reader.atypical_records().collect();
        assert!(results.iter().any(|r| r.is_err()));
        let err = results.into_iter().find_map(|r| r.err()).unwrap();
        assert!(err.to_string().contains("checksum"));
    }

    #[test]
    fn truncated_file_stops_cleanly_after_last_full_block() {
        let path = tmpfile("truncated.cps");
        write_partition(&path, 100);
        let len = std::fs::metadata(&path).unwrap().len();
        let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 7).unwrap(); // cut into the payload
        drop(f);
        let reader = PartitionReader::open(&path, IoStats::shared()).unwrap();
        // The single (partial) block can no longer be fully read: we expect
        // an I/O error rather than silently decoding garbage.
        let results: Vec<_> = reader.atypical_records().collect();
        assert!(results.iter().any(|r| r.is_err()));
    }

    #[test]
    fn iterator_stops_after_error() {
        let path = tmpfile("stops.cps");
        write_partition(&path, 100);
        let mut f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.seek(SeekFrom::Start((HEADER_SIZE + BLOCK_HEADER_SIZE) as u64))
            .unwrap();
        f.write_all(&[0xAA]).unwrap();
        drop(f);
        let reader = PartitionReader::open(&path, IoStats::shared()).unwrap();
        let mut it = reader.atypical_records();
        assert!(it.next().unwrap().is_err());
        assert!(it.next().is_none(), "iterator must fuse after an error");
    }

    #[test]
    fn open_missing_file_errors() {
        let err = PartitionReader::open(&tmpfile("missing.cps"), IoStats::shared());
        assert!(err.is_err());
    }
}
