//! Decoded-partition LRU cache.
//!
//! The online query experiments (Figures 17–19) repeatedly load the same
//! per-day atypical partitions while sweeping query ranges and thresholds.
//! [`PartitionCache`] keeps whole decoded partitions in memory under a byte
//! budget with LRU eviction, so sweeps pay the disk + decode cost once per
//! day instead of once per query.

use crate::iostats::IoStats;
use crate::reader::PartitionReader;
use cps_core::{AtypicalRecord, Result};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

const RECORD_MEM_SIZE: u64 = std::mem::size_of::<AtypicalRecord>() as u64;

struct CacheInner {
    /// path → (records, last-use tick)
    entries: HashMap<PathBuf, (Arc<Vec<AtypicalRecord>>, u64)>,
    bytes: u64,
    tick: u64,
}

/// LRU cache of decoded atypical partitions.
pub struct PartitionCache {
    inner: Mutex<CacheInner>,
    capacity_bytes: u64,
    stats: Arc<IoStats>,
}

impl PartitionCache {
    /// Creates a cache holding at most `capacity_bytes` of decoded records.
    pub fn new(capacity_bytes: u64, stats: Arc<IoStats>) -> Self {
        Self {
            inner: Mutex::new(CacheInner {
                entries: HashMap::new(),
                bytes: 0,
                tick: 0,
            }),
            capacity_bytes,
            stats,
        }
    }

    /// Loads (or returns the cached) decoded records of one atypical
    /// partition.
    pub fn load(&self, path: &Path) -> Result<Arc<Vec<AtypicalRecord>>> {
        {
            let mut inner = self.inner.lock();
            inner.tick += 1;
            let tick = inner.tick;
            if let Some((records, last)) = inner.entries.get_mut(path) {
                *last = tick;
                self.stats.add_cache_hit();
                return Ok(Arc::clone(records));
            }
        }
        self.stats.add_cache_miss();
        // Decode outside the lock: concurrent misses may read the same file
        // twice, but never block each other on I/O.
        let reader = PartitionReader::open(path, Arc::clone(&self.stats))?;
        let records: Vec<AtypicalRecord> = reader.atypical_records().collect::<Result<Vec<_>>>()?;
        let records = Arc::new(records);
        let size = records.len() as u64 * RECORD_MEM_SIZE;

        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        inner
            .entries
            .insert(path.to_owned(), (Arc::clone(&records), tick));
        inner.bytes += size;
        // Evict the least recently used entries until under budget.
        while inner.bytes > self.capacity_bytes && inner.entries.len() > 1 {
            let victim = inner
                .entries
                .iter()
                .min_by_key(|(_, (_, last))| *last)
                .map(|(p, _)| p.clone())
                .expect("non-empty");
            if victim == path {
                break; // never evict the entry we are returning
            }
            if let Some((recs, _)) = inner.entries.remove(&victim) {
                inner.bytes -= recs.len() as u64 * RECORD_MEM_SIZE;
            }
        }
        Ok(records)
    }

    /// Number of cached partitions.
    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current decoded-bytes footprint.
    pub fn bytes(&self) -> u64 {
        self.inner.lock().bytes
    }

    /// Drops every entry.
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.entries.clear();
        inner.bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::RecordKind;
    use crate::writer::PartitionWriter;
    use cps_core::{SensorId, Severity, TimeWindow};

    fn write_partition(path: &Path, n: u32) {
        let mut w = PartitionWriter::create(path, RecordKind::Atypical).unwrap();
        for i in 0..n {
            w.write_atypical(&AtypicalRecord::new(
                SensorId::new(i),
                TimeWindow::new(i),
                Severity::from_secs(60),
            ))
            .unwrap();
        }
        w.finish().unwrap();
    }

    fn tmp(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("cps-cache-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn second_load_hits_cache() {
        let dir = tmp("hits");
        let p = dir.join("a.cps");
        write_partition(&p, 100);
        let stats = IoStats::shared();
        let cache = PartitionCache::new(1 << 20, stats.clone());
        let a = cache.load(&p).unwrap();
        let b = cache.load(&p).unwrap();
        assert_eq!(a.len(), 100);
        assert!(Arc::ptr_eq(&a, &b));
        let snap = stats.snapshot();
        assert_eq!(snap.cache_hits, 1);
        assert_eq!(snap.cache_misses, 1);
        assert_eq!(snap.files_opened, 1, "disk touched once");
    }

    #[test]
    fn lru_evicts_oldest_under_pressure() {
        let dir = tmp("evict");
        let paths: Vec<PathBuf> = (0..4)
            .map(|i| {
                let p = dir.join(format!("{i}.cps"));
                write_partition(&p, 100);
                p
            })
            .collect();
        // Capacity for about two partitions.
        let per = 100 * RECORD_MEM_SIZE;
        let cache = PartitionCache::new(2 * per, IoStats::shared());
        cache.load(&paths[0]).unwrap();
        cache.load(&paths[1]).unwrap();
        cache.load(&paths[2]).unwrap(); // evicts paths[0]
        assert!(cache.len() <= 2);
        assert!(cache.bytes() <= 2 * per);
    }

    #[test]
    fn clear_empties_cache() {
        let dir = tmp("clear");
        let p = dir.join("a.cps");
        write_partition(&p, 10);
        let cache = PartitionCache::new(1 << 20, IoStats::shared());
        cache.load(&p).unwrap();
        assert!(!cache.is_empty());
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.bytes(), 0);
    }

    #[test]
    fn concurrent_loads_are_safe() {
        let dir = tmp("conc");
        let p = dir.join("a.cps");
        write_partition(&p, 500);
        let cache = Arc::new(PartitionCache::new(1 << 20, IoStats::shared()));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let p = p.clone();
                std::thread::spawn(move || cache.load(&p).unwrap().len())
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 500);
        }
    }
}
