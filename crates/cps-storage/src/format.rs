//! On-disk binary format.
//!
//! A partition file is a fixed header followed by CRC-checked blocks:
//!
//! ```text
//! file   := header block*
//! header := magic "CPSD" | version u32 | kind u8 | record_size u8 | pad [u8;6]
//! block  := count u32 | crc32 u32 | payload (count * record_size bytes)
//! ```
//!
//! Records are fixed-width little-endian structs — 16 bytes each — so a
//! monthly raw partition at paper scale (≈34 M records) is ≈520 MB and scan
//! speed is limited by sequential I/O, matching the paper's observation that
//! the pre-processing step (PR) and the original CubeView (OC) are dominated
//! by the raw scan.

use bytes::{Buf, BufMut};
use cps_core::{AtypicalRecord, CpsError, RawRecord, Result, SensorId, Severity, TimeWindow};

/// File magic, `b"CPSD"`.
pub const MAGIC: [u8; 4] = *b"CPSD";
/// Current format version.
pub const FORMAT_VERSION: u32 = 1;
/// Size of every record encoding, in bytes.
pub const RECORD_SIZE: usize = 16;
/// File header size, in bytes.
pub const HEADER_SIZE: usize = 16;
/// Block header size, in bytes.
pub const BLOCK_HEADER_SIZE: usize = 8;
/// Records per block (64 KiB payloads).
pub const RECORDS_PER_BLOCK: usize = 4096;

/// Which record type a partition stores.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecordKind {
    /// Raw sensor readings.
    Raw,
    /// Pre-processed atypical records.
    Atypical,
}

impl RecordKind {
    fn tag(self) -> u8 {
        match self {
            RecordKind::Raw => 0,
            RecordKind::Atypical => 1,
        }
    }

    fn from_tag(tag: u8) -> Result<Self> {
        match tag {
            0 => Ok(RecordKind::Raw),
            1 => Ok(RecordKind::Atypical),
            other => Err(CpsError::corrupt(
                "file header",
                format!("unknown record kind {other}"),
            )),
        }
    }
}

/// Encodes the file header into `buf`.
pub fn encode_header(kind: RecordKind, buf: &mut Vec<u8>) {
    buf.put_slice(&MAGIC);
    buf.put_u32_le(FORMAT_VERSION);
    buf.put_u8(kind.tag());
    buf.put_u8(RECORD_SIZE as u8);
    buf.put_slice(&[0u8; 6]);
}

/// Decodes and validates a file header; returns the record kind.
pub fn decode_header(mut buf: &[u8]) -> Result<RecordKind> {
    if buf.len() < HEADER_SIZE {
        return Err(CpsError::corrupt("file header", "truncated header"));
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if magic != MAGIC {
        return Err(CpsError::corrupt("file header", "bad magic"));
    }
    let version = buf.get_u32_le();
    if version != FORMAT_VERSION {
        return Err(CpsError::VersionMismatch {
            found: version,
            expected: FORMAT_VERSION,
        });
    }
    let kind = RecordKind::from_tag(buf.get_u8())?;
    let rec_size = buf.get_u8() as usize;
    if rec_size != RECORD_SIZE {
        return Err(CpsError::corrupt(
            "file header",
            format!("unexpected record size {rec_size}"),
        ));
    }
    Ok(kind)
}

/// Encodes one raw record (16 bytes) into `buf`.
#[inline]
pub fn encode_raw(r: &RawRecord, buf: &mut Vec<u8>) {
    buf.put_u32_le(r.sensor.raw());
    buf.put_u32_le(r.window.raw());
    buf.put_f32_le(r.speed_mph);
    buf.put_u16_le(r.flow);
    buf.put_u16_le(r.occupancy_pm);
}

/// Decodes one raw record from exactly [`RECORD_SIZE`] bytes.
#[inline]
pub fn decode_raw(mut buf: &[u8]) -> RawRecord {
    debug_assert_eq!(buf.len(), RECORD_SIZE);
    RawRecord {
        sensor: SensorId::new(buf.get_u32_le()),
        window: TimeWindow::new(buf.get_u32_le()),
        speed_mph: buf.get_f32_le(),
        flow: buf.get_u16_le(),
        occupancy_pm: buf.get_u16_le(),
    }
}

/// Encodes one atypical record (16 bytes) into `buf`.
#[inline]
pub fn encode_atypical(r: &AtypicalRecord, buf: &mut Vec<u8>) {
    buf.put_u32_le(r.sensor.raw());
    buf.put_u32_le(r.window.raw());
    buf.put_u64_le(r.severity.as_secs());
}

/// Decodes one atypical record from exactly [`RECORD_SIZE`] bytes.
#[inline]
pub fn decode_atypical(mut buf: &[u8]) -> AtypicalRecord {
    debug_assert_eq!(buf.len(), RECORD_SIZE);
    AtypicalRecord {
        sensor: SensorId::new(buf.get_u32_le()),
        window: TimeWindow::new(buf.get_u32_le()),
        severity: Severity::from_secs(buf.get_u64_le()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn header_roundtrip() {
        for kind in [RecordKind::Raw, RecordKind::Atypical] {
            let mut buf = Vec::new();
            encode_header(kind, &mut buf);
            assert_eq!(buf.len(), HEADER_SIZE);
            assert_eq!(decode_header(&buf).unwrap(), kind);
        }
    }

    #[test]
    fn header_rejects_garbage() {
        assert!(decode_header(&[0u8; 4]).is_err());
        let mut buf = Vec::new();
        encode_header(RecordKind::Raw, &mut buf);
        buf[0] = b'X';
        assert!(decode_header(&buf).is_err());
        let mut buf2 = Vec::new();
        encode_header(RecordKind::Raw, &mut buf2);
        buf2[4] = 99; // version
        assert!(matches!(
            decode_header(&buf2),
            Err(CpsError::VersionMismatch { found: 99, .. })
        ));
    }

    proptest! {
        #[test]
        fn prop_raw_roundtrip(sensor in 0u32..1_000_000, window in 0u32..10_000_000,
                              speed in 0.0f32..120.0, flow in 0u16..5000, occ in 0u16..1000) {
            let r = RawRecord::new(SensorId::new(sensor), TimeWindow::new(window), speed, flow, occ);
            let mut buf = Vec::new();
            encode_raw(&r, &mut buf);
            prop_assert_eq!(buf.len(), RECORD_SIZE);
            prop_assert_eq!(decode_raw(&buf), r);
        }

        #[test]
        fn prop_atypical_roundtrip(sensor in 0u32..1_000_000, window in 0u32..10_000_000, secs in 0u64..100_000) {
            let r = AtypicalRecord::new(
                SensorId::new(sensor),
                TimeWindow::new(window),
                Severity::from_secs(secs),
            );
            let mut buf = Vec::new();
            encode_atypical(&r, &mut buf);
            prop_assert_eq!(buf.len(), RECORD_SIZE);
            prop_assert_eq!(decode_atypical(&buf), r);
        }
    }
}
