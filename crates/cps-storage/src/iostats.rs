//! Shared I/O accounting.
//!
//! The paper measures query cost both in wall-clock time and in *I/O* units
//! (Figure 17(b) counts input micro-clusters). [`IoStats`] gives every read
//! path a cheap, thread-safe tally so the reproduction harness can report
//! deterministic I/O numbers alongside the noisy wall-clock.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Thread-safe I/O counters. Clone the `Arc` into every reader.
#[derive(Debug, Default)]
pub struct IoStats {
    bytes_read: AtomicU64,
    records_read: AtomicU64,
    blocks_read: AtomicU64,
    files_opened: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
}

impl IoStats {
    /// Creates a fresh, shareable counter set.
    pub fn shared() -> Arc<IoStats> {
        Arc::new(IoStats::default())
    }

    /// Records `n` payload bytes read from disk.
    #[inline]
    pub fn add_bytes(&self, n: u64) {
        self.bytes_read.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` records decoded.
    #[inline]
    pub fn add_records(&self, n: u64) {
        self.records_read.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one block read.
    #[inline]
    pub fn add_block(&self) {
        self.blocks_read.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one file open.
    #[inline]
    pub fn add_file(&self) {
        self.files_opened.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a block-cache hit.
    #[inline]
    pub fn add_cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a block-cache miss.
    #[inline]
    pub fn add_cache_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Consistent snapshot of all counters.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            records_read: self.records_read.load(Ordering::Relaxed),
            blocks_read: self.blocks_read.load(Ordering::Relaxed),
            files_opened: self.files_opened.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
        }
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        self.bytes_read.store(0, Ordering::Relaxed);
        self.records_read.store(0, Ordering::Relaxed);
        self.blocks_read.store(0, Ordering::Relaxed);
        self.files_opened.store(0, Ordering::Relaxed);
        self.cache_hits.store(0, Ordering::Relaxed);
        self.cache_misses.store(0, Ordering::Relaxed);
    }
}

/// Point-in-time view of [`IoStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoSnapshot {
    /// Payload bytes read from disk.
    pub bytes_read: u64,
    /// Records decoded.
    pub records_read: u64,
    /// Blocks read.
    pub blocks_read: u64,
    /// Files opened.
    pub files_opened: u64,
    /// Block-cache hits.
    pub cache_hits: u64,
    /// Block-cache misses.
    pub cache_misses: u64,
}

impl IoSnapshot {
    /// Difference since an earlier snapshot.
    pub fn since(self, earlier: IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            bytes_read: self.bytes_read - earlier.bytes_read,
            records_read: self.records_read - earlier.records_read,
            blocks_read: self.blocks_read - earlier.blocks_read,
            files_opened: self.files_opened - earlier.files_opened,
            cache_hits: self.cache_hits - earlier.cache_hits,
            cache_misses: self.cache_misses - earlier.cache_misses,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn counters_accumulate() {
        let s = IoStats::shared();
        s.add_bytes(100);
        s.add_bytes(28);
        s.add_records(5);
        s.add_block();
        s.add_file();
        let snap = s.snapshot();
        assert_eq!(snap.bytes_read, 128);
        assert_eq!(snap.records_read, 5);
        assert_eq!(snap.blocks_read, 1);
        assert_eq!(snap.files_opened, 1);
    }

    #[test]
    fn reset_zeroes_everything() {
        let s = IoStats::shared();
        s.add_bytes(10);
        s.add_cache_hit();
        s.reset();
        assert_eq!(s.snapshot(), IoSnapshot::default());
    }

    #[test]
    fn since_computes_delta() {
        let s = IoStats::shared();
        s.add_records(10);
        let before = s.snapshot();
        s.add_records(7);
        let delta = s.snapshot().since(before);
        assert_eq!(delta.records_read, 7);
    }

    #[test]
    fn concurrent_increments_do_not_lose_updates() {
        let s = IoStats::shared();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let s = Arc::clone(&s);
                thread::spawn(move || {
                    for _ in 0..10_000 {
                        s.add_records(1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.snapshot().records_read, 80_000);
    }
}
