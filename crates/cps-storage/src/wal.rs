//! A CRC-framed, segment-rotated append log.
//!
//! The monitor's ingest path needs every accepted record to be durable
//! before the in-memory pipeline is trusted with it; this module supplies
//! the log, generic over payloads so other producers can reuse it.
//!
//! ```text
//! dir/seg-<seq>.wal := header frame*
//! header            := magic "CPSW" | version u32 | segment_seq u64
//! frame             := len u32 | crc32 u32 | payload (len bytes)
//! ```
//!
//! Each frame is written as **one** [`Io`] write, so a fault-injecting
//! backend tears at frame granularity and a torn frame is exactly a torn
//! write. Recovery ([`read_wal`]) applies the clean-prefix contract: an
//! invalid frame in the **newest** segment ends the log there (the torn
//! tail of a crash — [`repair_tail`] rewrites the segment without it);
//! anything invalid in an older segment, or a gap in the segment
//! sequence, is a typed [`CpsError::Corrupt`] — old segments are
//! append-complete and only ever deleted whole (from the front, by a
//! checkpoint), so damage there is real corruption, never a crash
//! artifact.

use crate::crc::crc32;
use crate::io::{Io, IoWrite};
use bytes::{Buf, BufMut};
use cps_core::{CpsError, Result};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Segment file magic, `b"CPSW"`.
pub const WAL_MAGIC: [u8; 4] = *b"CPSW";
/// Current WAL format version.
pub const WAL_VERSION: u32 = 1;
/// Segment header size in bytes.
pub const WAL_HEADER_SIZE: usize = 16;
/// Frame header size in bytes (length + CRC).
pub const FRAME_HEADER_SIZE: usize = 8;

/// When appended frames are fsynced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyncPolicy {
    /// fsync after every append — strongest durability, slowest ingest.
    Always,
    /// Never fsync — the OS decides; a crash may lose the unsynced tail
    /// (still a clean prefix thanks to the framing).
    Never,
    /// Group commit: fsync once every `n` appends (and on rotation).
    EveryN(u64),
}

/// Append side of the log. One writer owns a directory; it always starts
/// a **fresh** segment (one past the newest on disk), so an old torn tail
/// is never appended over and remains last-segment-only until repaired
/// or truncated away.
pub struct WalWriter {
    io: Io,
    dir: PathBuf,
    policy: SyncPolicy,
    /// Rotate to a new segment once the current one exceeds this many
    /// payload+frame bytes (the header does not count).
    segment_bytes: u64,
    segment_seq: u64,
    writer: Box<dyn IoWrite>,
    bytes_in_segment: u64,
    appends_since_sync: u64,
}

/// Path of segment `seq` under `dir`.
pub fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("seg-{seq:08}.wal"))
}

/// Segment sequence numbers present under `dir`, sorted ascending.
/// Listing is not fault-injected (directory scans are read-only).
pub fn list_segments(dir: &Path) -> Result<Vec<u64>> {
    let mut out = Vec::new();
    if !dir.exists() {
        return Ok(out);
    }
    for entry in std::fs::read_dir(dir)? {
        let name = entry?.file_name();
        let name = name.to_string_lossy();
        if let Some(rest) = name.strip_prefix("seg-") {
            if let Some(num) = rest.strip_suffix(".wal") {
                if let Ok(seq) = num.parse() {
                    out.push(seq);
                }
            }
        }
    }
    out.sort_unstable();
    Ok(out)
}

impl WalWriter {
    /// Opens a writer over `dir` (created if absent), starting a fresh
    /// segment after the newest existing one.
    pub fn open(io: Io, dir: &Path, policy: SyncPolicy, segment_bytes: u64) -> Result<Self> {
        io.create_dir_all(dir)?;
        let next_seq = list_segments(dir)?.last().map_or(1, |s| s + 1);
        let writer = Self::start_segment(&io, dir, next_seq)?;
        Ok(Self {
            io,
            dir: dir.to_owned(),
            policy,
            segment_bytes: segment_bytes.max(1),
            segment_seq: next_seq,
            writer,
            bytes_in_segment: 0,
            appends_since_sync: 0,
        })
    }

    fn start_segment(io: &Io, dir: &Path, seq: u64) -> Result<Box<dyn IoWrite>> {
        let mut header = Vec::with_capacity(WAL_HEADER_SIZE);
        header.put_slice(&WAL_MAGIC);
        header.put_u32_le(WAL_VERSION);
        header.put_u64_le(seq);
        let mut w = io.create(&segment_path(dir, seq))?;
        w.write_all(&header)?;
        Ok(w)
    }

    /// The segment currently appended to.
    pub fn segment_seq(&self) -> u64 {
        self.segment_seq
    }

    /// Appends one payload as a CRC-framed record (a single backend
    /// write), rotating first if the current segment is full. Returns the
    /// framed size in bytes.
    pub fn append(&mut self, payload: &[u8]) -> Result<u64> {
        if self.bytes_in_segment >= self.segment_bytes {
            self.rotate()?;
        }
        let mut frame = Vec::with_capacity(FRAME_HEADER_SIZE + payload.len());
        frame.put_u32_le(payload.len() as u32);
        frame.put_u32_le(crc32(payload));
        frame.put_slice(payload);
        self.writer.write_all(&frame)?;
        self.bytes_in_segment += frame.len() as u64;
        self.appends_since_sync += 1;
        match self.policy {
            SyncPolicy::Always => self.sync()?,
            SyncPolicy::EveryN(n) if self.appends_since_sync >= n.max(1) => self.sync()?,
            _ => {}
        }
        Ok(frame.len() as u64)
    }

    /// fsyncs the current segment.
    pub fn sync(&mut self) -> Result<()> {
        self.writer.sync()?;
        self.appends_since_sync = 0;
        Ok(())
    }

    /// Closes the current segment (syncing it unless the policy is
    /// [`SyncPolicy::Never`]) and starts the next. Returns the new
    /// segment's sequence number.
    pub fn rotate(&mut self) -> Result<u64> {
        if !matches!(self.policy, SyncPolicy::Never) {
            self.sync()?;
        }
        self.segment_seq += 1;
        self.writer = Self::start_segment(&self.io, &self.dir, self.segment_seq)?;
        self.bytes_in_segment = 0;
        self.appends_since_sync = 0;
        Ok(self.segment_seq)
    }
}

/// One recovered segment.
#[derive(Debug)]
pub struct WalSegment {
    /// Segment sequence number (from the file name, verified against the
    /// header).
    pub seq: u64,
    /// Frame payloads, in append order.
    pub entries: Vec<Vec<u8>>,
    /// Whether a torn tail was dropped (only ever true for the newest
    /// segment).
    pub torn: bool,
}

/// Parses one segment body. `Ok((entries, clean))`: `clean` is false when
/// a torn/invalid tail was dropped.
fn parse_segment(raw: &[u8], seq: u64, context: &str) -> Result<(Vec<Vec<u8>>, bool)> {
    if raw.len() < WAL_HEADER_SIZE {
        // A crash during segment creation can leave a short header.
        return Ok((Vec::new(), false));
    }
    let mut head = raw;
    let mut magic = [0u8; 4];
    head.copy_to_slice(&mut magic);
    if magic != WAL_MAGIC {
        return Err(CpsError::corrupt(context, "bad WAL magic"));
    }
    let version = head.get_u32_le();
    if version != WAL_VERSION {
        return Err(CpsError::VersionMismatch {
            found: version,
            expected: WAL_VERSION,
        });
    }
    let header_seq = head.get_u64_le();
    if header_seq != seq {
        return Err(CpsError::corrupt(
            context,
            format!("segment header claims seq {header_seq}, file name says {seq}"),
        ));
    }
    let mut buf = &raw[WAL_HEADER_SIZE..];
    let mut entries = Vec::new();
    while !buf.is_empty() {
        if buf.len() < FRAME_HEADER_SIZE {
            return Ok((entries, false));
        }
        let mut peek = buf;
        let len = peek.get_u32_le() as usize;
        let expected_crc = peek.get_u32_le();
        if peek.len() < len {
            return Ok((entries, false));
        }
        let payload = &peek[..len];
        if crc32(payload) != expected_crc {
            return Ok((entries, false));
        }
        entries.push(payload.to_vec());
        buf = &buf[FRAME_HEADER_SIZE + len..];
    }
    Ok((entries, true))
}

/// Reads every segment under `dir` with the clean-prefix contract (see
/// the module docs). Missing directory ⇒ empty log.
pub fn read_wal(io: &Io, dir: &Path) -> Result<Vec<WalSegment>> {
    let seqs = list_segments(dir)?;
    if let (Some(&first), Some(&last)) = (seqs.first(), seqs.last()) {
        if last - first + 1 != seqs.len() as u64 {
            return Err(CpsError::corrupt(
                dir.display().to_string(),
                format!("segment sequence has gaps: {seqs:?}"),
            ));
        }
    }
    let mut out = Vec::with_capacity(seqs.len());
    for (i, &seq) in seqs.iter().enumerate() {
        let path = segment_path(dir, seq);
        let context = path.display().to_string();
        let raw = io.read_to_vec(&path)?;
        let (entries, clean) = parse_segment(&raw, seq, &context)?;
        let is_last = i + 1 == seqs.len();
        if !clean && !is_last {
            return Err(CpsError::corrupt(
                context,
                "invalid frame in a non-final segment",
            ));
        }
        out.push(WalSegment {
            seq,
            entries,
            torn: !clean,
        });
    }
    Ok(out)
}

/// Rewrites the newest segment without its torn tail (write-then-rename,
/// so the repair itself is crash-safe). No-op when the log is clean.
/// Run before reopening a [`WalWriter`] after a crash so the torn tail
/// does not linger once newer segments exist.
pub fn repair_tail(io: &Io, dir: &Path) -> Result<()> {
    let segments = read_wal(io, dir)?;
    let Some(last) = segments.last() else {
        return Ok(());
    };
    if !last.torn {
        return Ok(());
    }
    let path = segment_path(dir, last.seq);
    let tmp = path.with_extension("tmp");
    let mut body = Vec::with_capacity(WAL_HEADER_SIZE);
    body.put_slice(&WAL_MAGIC);
    body.put_u32_le(WAL_VERSION);
    body.put_u64_le(last.seq);
    for entry in &last.entries {
        body.put_u32_le(entry.len() as u32);
        body.put_u32_le(crc32(entry));
        body.put_slice(entry);
    }
    let mut w = io.create(&tmp)?;
    w.write_all(&body)?;
    w.sync()?;
    drop(w);
    io.rename(&tmp, &path)?;
    Ok(())
}

/// Deletes every segment with `seq < floor` (checkpoint truncation).
/// Returns how many were removed.
pub fn truncate_segments_below(io: &Io, dir: &Path, floor: u64) -> Result<usize> {
    let mut removed = 0;
    for seq in list_segments(dir)? {
        if seq < floor {
            io.remove_file(&segment_path(dir, seq))?;
            removed += 1;
        }
    }
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("cps-wal-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn payloads(n: usize) -> Vec<Vec<u8>> {
        (0..n)
            .map(|i| (0..=(i % 7) as u8).map(|b| b ^ i as u8).collect())
            .collect()
    }

    #[test]
    fn roundtrip_single_segment() {
        let dir = tmp("round");
        let io = Io::real();
        let entries = payloads(10);
        let mut w = WalWriter::open(io.clone(), &dir, SyncPolicy::Always, 1 << 20).unwrap();
        for p in &entries {
            w.append(p).unwrap();
        }
        drop(w);
        let segs = read_wal(&io, &dir).unwrap();
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].seq, 1);
        assert!(!segs[0].torn);
        assert_eq!(segs[0].entries, entries);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_by_size_and_reopen_starts_fresh_segment() {
        let dir = tmp("rotate");
        let io = Io::real();
        let mut w = WalWriter::open(io.clone(), &dir, SyncPolicy::Never, 32).unwrap();
        for p in payloads(12) {
            w.append(&p).unwrap();
        }
        let segs_before = list_segments(&dir).unwrap();
        assert!(segs_before.len() > 1, "{segs_before:?}");
        drop(w);
        // Reopen: the writer must not append to an existing segment.
        let w2 = WalWriter::open(io.clone(), &dir, SyncPolicy::Never, 32).unwrap();
        assert_eq!(w2.segment_seq(), segs_before.last().unwrap() + 1);
        drop(w2);
        let all: Vec<Vec<u8>> = read_wal(&io, &dir)
            .unwrap()
            .into_iter()
            .flat_map(|s| s.entries)
            .collect();
        assert_eq!(all, payloads(12));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn explicit_rotation_and_truncation() {
        let dir = tmp("truncate");
        let io = Io::real();
        let mut w = WalWriter::open(io.clone(), &dir, SyncPolicy::EveryN(4), 1 << 20).unwrap();
        w.append(b"old").unwrap();
        let new_seq = w.rotate().unwrap();
        w.append(b"new").unwrap();
        drop(w);
        assert_eq!(truncate_segments_below(&io, &dir, new_seq).unwrap(), 1);
        let segs = read_wal(&io, &dir).unwrap();
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].entries, vec![b"new".to_vec()]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The WAL-format fuzz contract: truncating the (single-segment) log
    /// at every byte boundary yields a clean prefix of the appended
    /// entries — never an error, never a wrong or partial entry.
    #[test]
    fn truncation_at_every_byte_is_a_clean_prefix() {
        let dir = tmp("fuzz");
        let io = Io::real();
        let entries = payloads(6);
        let mut w = WalWriter::open(io.clone(), &dir, SyncPolicy::Always, 1 << 20).unwrap();
        let mut frame_ends = vec![WAL_HEADER_SIZE as u64];
        for p in &entries {
            let n = w.append(p).unwrap();
            frame_ends.push(frame_ends.last().unwrap() + n);
        }
        drop(w);
        let path = segment_path(&dir, 1);
        let full = std::fs::read(&path).unwrap();
        assert_eq!(full.len() as u64, *frame_ends.last().unwrap());

        for len in 0..=full.len() {
            std::fs::write(&path, &full[..len]).unwrap();
            let segs = read_wal(&io, &dir).unwrap();
            let got = &segs[0].entries;
            // How many whole frames fit in `len` bytes?
            let expect = frame_ends
                .iter()
                .skip(1)
                .filter(|&&e| e <= len as u64)
                .count();
            assert_eq!(got.len(), expect, "truncation at byte {len}");
            assert_eq!(got[..], entries[..expect], "truncation at byte {len}");
            // Clean exactly at header/frame boundaries, torn everywhere else.
            let at_boundary = frame_ends.contains(&(len as u64));
            assert_eq!(segs[0].torn, !at_boundary, "truncation at byte {len}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_in_old_segment_is_typed() {
        let dir = tmp("oldcorrupt");
        let io = Io::real();
        let mut w = WalWriter::open(io.clone(), &dir, SyncPolicy::Always, 1 << 20).unwrap();
        w.append(b"aaaa").unwrap();
        w.rotate().unwrap();
        w.append(b"bbbb").unwrap();
        drop(w);
        // Flip a payload byte in segment 1 (not the last segment).
        let path = segment_path(&dir, 1);
        let mut raw = std::fs::read(&path).unwrap();
        let n = raw.len();
        raw[n - 1] ^= 0xFF;
        std::fs::write(&path, raw).unwrap();
        match read_wal(&io, &dir) {
            Err(CpsError::Corrupt { .. }) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn segment_gap_is_typed_corruption() {
        let dir = tmp("gap");
        let io = Io::real();
        let mut w = WalWriter::open(io.clone(), &dir, SyncPolicy::Always, 1 << 20).unwrap();
        w.append(b"a").unwrap();
        w.rotate().unwrap();
        w.append(b"b").unwrap();
        w.rotate().unwrap();
        w.append(b"c").unwrap();
        drop(w);
        std::fs::remove_file(segment_path(&dir, 2)).unwrap();
        match read_wal(&io, &dir) {
            Err(CpsError::Corrupt { .. }) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn repair_tail_rewrites_a_torn_final_segment() {
        let dir = tmp("repair");
        let io = Io::real();
        let mut w = WalWriter::open(io.clone(), &dir, SyncPolicy::Always, 1 << 20).unwrap();
        w.append(b"keep-me").unwrap();
        w.append(b"torn-away").unwrap();
        drop(w);
        let path = segment_path(&dir, 1);
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();

        repair_tail(&io, &dir).unwrap();
        let segs = read_wal(&io, &dir).unwrap();
        assert!(!segs[0].torn);
        assert_eq!(segs[0].entries, vec![b"keep-me".to_vec()]);
        // Idempotent on a clean log.
        repair_tail(&io, &dir).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_or_missing_dir_reads_empty() {
        let dir = tmp("empty");
        assert!(read_wal(&Io::real(), &dir).unwrap().is_empty());
        std::fs::create_dir_all(&dir).unwrap();
        assert!(read_wal(&Io::real(), &dir).unwrap().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
