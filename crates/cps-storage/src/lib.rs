//! # cps-storage
//!
//! Disk substrate for the atypical-cps workspace. The paper's evaluation
//! runs over twelve monthly PeMS datasets (54 GB total); the construction
//! experiments (Figures 15/16) are dominated by how the raw and atypical
//! record streams are scanned, so the storage layer is built for exactly
//! that access pattern:
//!
//! * [`mod@format`] — fixed-width binary record encodings inside CRC-checked
//!   blocks (corruption is detected, not silently propagated),
//! * [`writer`] / [`reader`] — streaming per-day partition files,
//! * [`store`] — the dataset directory layout (`D1/…/D12`, one raw and one
//!   atypical partition per day) plus a JSON catalog,
//! * [`iostats`] — shared atomic I/O counters; the paper reports query I/O
//!   as *number of input clusters* and construction cost as scan volume, so
//!   every read path is accounted,
//! * [`cache`] — a block LRU so repeated scans of hot partitions (the online
//!   query experiments) do not re-hit the filesystem,
//! * [`io`] — the pluggable I/O backend every durable byte flows through;
//!   `cps-testkit` swaps in a deterministic fault-injecting backend here,
//! * [`wal`] — a CRC-framed, segment-rotated append log with clean-prefix
//!   crash recovery; the monitor journals accepted records through it.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod cache;
pub mod crc;
pub mod format;
pub mod io;
pub mod iostats;
pub mod reader;
pub mod store;
pub mod wal;
pub mod writer;

pub use io::{Io, IoBackend, IoRead, IoWrite};
pub use iostats::IoStats;
pub use reader::PartitionReader;
pub use store::{DatasetCatalog, DatasetMeta, DatasetStore};
pub use wal::{SyncPolicy, WalSegment, WalWriter};
pub use writer::PartitionWriter;
