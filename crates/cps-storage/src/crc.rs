//! CRC-32 (IEEE 802.3) with a lazily built lookup table.
//!
//! Implemented in-repo because the workspace's offline crate set has no CRC
//! crate; 30 lines buys end-to-end corruption detection on every block.

use std::sync::OnceLock;

const POLY: u32 = 0xEDB8_8320;

fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
            }
            *e = crc;
        }
        t
    })
}

/// CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let t = table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ t[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn detects_single_bit_flip() {
        let data = vec![0xABu8; 1024];
        let base = crc32(&data);
        for pos in [0usize, 13, 511, 1023] {
            let mut corrupted = data.clone();
            corrupted[pos] ^= 0x01;
            assert_ne!(crc32(&corrupted), base, "flip at {pos}");
        }
    }

    #[test]
    fn sensitive_to_order() {
        assert_ne!(crc32(b"ab"), crc32(b"ba"));
    }
}
