//! Pluggable I/O layer — the fault-injection seam.
//!
//! Every durable byte this workspace writes or reads flows through an
//! [`Io`] handle: [`crate::writer::PartitionWriter`],
//! [`crate::reader::PartitionReader`] and the atypical forest store accept
//! one explicitly (their plain constructors default to [`Io::real`]).
//! Production code always runs on the real filesystem backend; the
//! `cps-testkit` crate supplies a deterministic fault-injecting backend
//! that can fail, tear, or delay the N-th operation and then simulate the
//! on-disk state after a crash. Keeping the seam in the production crates
//! (rather than test-only shims) is what lets crash-recovery tests
//! exercise the *real* write paths byte for byte.

use std::fs::File;
use std::io::{self, Read, Write};
use std::path::Path;
use std::sync::Arc;

/// A writable file handle produced by an [`IoBackend`].
///
/// `write` is the fault-injection grain: callers issue one `write` per
/// logical unit (header, block, payload), so "fail the N-th write" maps to
/// a meaningful crash point.
pub trait IoWrite: Write + Send {
    /// Flushes the file's data to durable storage (`fsync`).
    fn sync(&mut self) -> io::Result<()>;
}

/// A readable file handle produced by an [`IoBackend`].
pub trait IoRead: Read + Send {}

/// The operations a storage backend must provide. Implementations other
/// than the real filesystem live outside this crate (see `cps-testkit`).
pub trait IoBackend: Send + Sync {
    /// Creates (truncating) a file for writing.
    fn create(&self, path: &Path) -> io::Result<Box<dyn IoWrite>>;
    /// Opens a file for sequential reading.
    fn open(&self, path: &Path) -> io::Result<Box<dyn IoRead>>;
    /// Atomically renames `from` to `to` (the commit step of atomic
    /// write-then-rename protocols).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Creates a directory and its parents.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
    /// Removes a file (the truncation step of log-compaction protocols:
    /// a WAL segment made obsolete by a checkpoint is deleted through the
    /// backend so fault sweeps cover it too).
    fn remove_file(&self, path: &Path) -> io::Result<()>;
}

/// Cheaply cloneable handle to an [`IoBackend`].
#[derive(Clone)]
pub struct Io {
    backend: Arc<dyn IoBackend>,
}

impl Io {
    /// Wraps a custom backend.
    pub fn new(backend: Arc<dyn IoBackend>) -> Self {
        Self { backend }
    }

    /// The real-filesystem backend used in production.
    pub fn real() -> Self {
        Self::new(Arc::new(RealIo))
    }

    /// Creates (truncating) a file for writing.
    pub fn create(&self, path: &Path) -> io::Result<Box<dyn IoWrite>> {
        self.backend.create(path)
    }

    /// Opens a file for sequential reading.
    pub fn open(&self, path: &Path) -> io::Result<Box<dyn IoRead>> {
        self.backend.open(path)
    }

    /// Reads a whole file into memory.
    pub fn read_to_vec(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut out = Vec::new();
        self.backend.open(path)?.read_to_end(&mut out)?;
        Ok(out)
    }

    /// Atomically renames `from` to `to`.
    pub fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.backend.rename(from, to)
    }

    /// Creates a directory and its parents.
    pub fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.backend.create_dir_all(path)
    }

    /// Removes a file.
    pub fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.backend.remove_file(path)
    }
}

impl Default for Io {
    fn default() -> Self {
        Self::real()
    }
}

impl std::fmt::Debug for Io {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Io")
    }
}

/// The production backend: plain `std::fs`.
struct RealIo;

impl IoWrite for File {
    fn sync(&mut self) -> io::Result<()> {
        self.sync_all()
    }
}

impl IoRead for File {}

impl IoBackend for RealIo {
    fn create(&self, path: &Path) -> io::Result<Box<dyn IoWrite>> {
        Ok(Box::new(File::create(path)?))
    }

    fn open(&self, path: &Path) -> io::Result<Box<dyn IoRead>> {
        Ok(Box::new(File::open(path)?))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("cps-io-test-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d.join(name)
    }

    #[test]
    fn real_backend_roundtrips() {
        let io = Io::default();
        let path = tmp("round.bin");
        let staged = tmp("round.tmp");
        {
            let mut w = io.create(&staged).unwrap();
            w.write_all(b"hello ").unwrap();
            w.write_all(b"world").unwrap();
            w.sync().unwrap();
        }
        io.rename(&staged, &path).unwrap();
        assert_eq!(io.read_to_vec(&path).unwrap(), b"hello world");
        let mut buf = [0u8; 5];
        io.open(&path).unwrap().read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hello");
    }

    #[test]
    fn missing_file_errors() {
        assert!(Io::real().open(&tmp("nope.bin")).is_err());
    }
}
