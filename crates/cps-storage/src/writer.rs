//! Streaming partition writer.

use crate::crc::crc32;
use crate::format::{
    encode_atypical, encode_header, encode_raw, RecordKind, RECORDS_PER_BLOCK, RECORD_SIZE,
};
use crate::io::{Io, IoWrite};
use bytes::BufMut;
use cps_core::{AtypicalRecord, RawRecord, Result};
use std::io::Write;
use std::path::Path;

/// Writes one partition file block by block.
///
/// Call [`PartitionWriter::finish`] to flush the trailing partial block;
/// dropping an unfinished writer loses at most the current block (the file
/// stays readable up to the last complete block).
pub struct PartitionWriter {
    out: Box<dyn IoWrite>,
    kind: RecordKind,
    block: Vec<u8>,
    block_records: usize,
    records_written: u64,
}

impl PartitionWriter {
    /// Creates (truncates) the partition at `path`.
    pub fn create(path: &Path, kind: RecordKind) -> Result<Self> {
        Self::create_with(path, kind, &Io::real())
    }

    /// Creates the partition through an explicit [`Io`] backend.
    ///
    /// Each block header and block payload is issued as one `write`, so a
    /// fault-injecting backend can fail or tear at exact block boundaries.
    pub fn create_with(path: &Path, kind: RecordKind, io: &Io) -> Result<Self> {
        if let Some(parent) = path.parent() {
            io.create_dir_all(parent)?;
        }
        let mut out = io.create(path)?;
        let mut header = Vec::with_capacity(crate::format::HEADER_SIZE);
        encode_header(kind, &mut header);
        out.write_all(&header)?;
        Ok(Self {
            out,
            kind,
            block: Vec::with_capacity(RECORDS_PER_BLOCK * RECORD_SIZE),
            block_records: 0,
            records_written: 0,
        })
    }

    /// Appends a raw record.
    ///
    /// # Panics
    /// Panics if the partition was created with [`RecordKind::Atypical`].
    pub fn write_raw(&mut self, r: &RawRecord) -> Result<()> {
        assert_eq!(self.kind, RecordKind::Raw, "raw record in atypical file");
        encode_raw(r, &mut self.block);
        self.bump()
    }

    /// Appends an atypical record.
    ///
    /// # Panics
    /// Panics if the partition was created with [`RecordKind::Raw`].
    pub fn write_atypical(&mut self, r: &AtypicalRecord) -> Result<()> {
        assert_eq!(
            self.kind,
            RecordKind::Atypical,
            "atypical record in raw file"
        );
        encode_atypical(r, &mut self.block);
        self.bump()
    }

    fn bump(&mut self) -> Result<()> {
        self.block_records += 1;
        self.records_written += 1;
        if self.block_records == RECORDS_PER_BLOCK {
            self.flush_block()?;
        }
        Ok(())
    }

    fn flush_block(&mut self) -> Result<()> {
        if self.block_records == 0 {
            return Ok(());
        }
        let mut header = Vec::with_capacity(crate::format::BLOCK_HEADER_SIZE);
        header.put_u32_le(self.block_records as u32);
        header.put_u32_le(crc32(&self.block));
        self.out.write_all(&header)?;
        self.out.write_all(&self.block)?;
        self.block.clear();
        self.block_records = 0;
        Ok(())
    }

    /// Number of records written so far.
    pub fn records_written(&self) -> u64 {
        self.records_written
    }

    /// Flushes the trailing block and syncs the file.
    pub fn finish(mut self) -> Result<u64> {
        self.flush_block()?;
        self.out.flush()?;
        Ok(self.records_written)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::PartitionReader;
    use crate::IoStats;
    use cps_core::{SensorId, Severity, TimeWindow};

    fn tmpdir() -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!(
            "cps-storage-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn write_read_roundtrip_across_blocks() {
        let path = tmpdir().join("atyp.cps");
        let n = RECORDS_PER_BLOCK * 2 + 100; // two full blocks + a partial one
        let mut w = PartitionWriter::create(&path, RecordKind::Atypical).unwrap();
        for i in 0..n {
            w.write_atypical(&AtypicalRecord::new(
                SensorId::new(i as u32),
                TimeWindow::new((i * 3) as u32),
                Severity::from_secs(i as u64),
            ))
            .unwrap();
        }
        assert_eq!(w.finish().unwrap(), n as u64);

        let stats = IoStats::shared();
        let reader = PartitionReader::open(&path, stats.clone()).unwrap();
        let recs: Vec<AtypicalRecord> = reader.atypical_records().map(|r| r.unwrap()).collect();
        assert_eq!(recs.len(), n);
        assert_eq!(recs[0].sensor, SensorId::new(0));
        assert_eq!(recs[n - 1].severity, Severity::from_secs((n - 1) as u64));
        let snap = stats.snapshot();
        assert_eq!(snap.records_read, n as u64);
        assert_eq!(snap.blocks_read, 3);
        assert_eq!(snap.files_opened, 1);
    }

    #[test]
    fn empty_partition_is_valid() {
        let path = tmpdir().join("empty.cps");
        let w = PartitionWriter::create(&path, RecordKind::Raw).unwrap();
        assert_eq!(w.finish().unwrap(), 0);
        let reader = PartitionReader::open(&path, IoStats::shared()).unwrap();
        assert_eq!(reader.raw_records().count(), 0);
    }

    mod proptests {
        use super::*;
        use cps_core::RawRecord;
        use proptest::prelude::*;

        fn arb_atypical() -> impl Strategy<Value = AtypicalRecord> {
            (0u32..100_000, 0u32..10_000_000, 0u64..100_000).prop_map(|(s, w, sev)| {
                AtypicalRecord::new(
                    SensorId::new(s),
                    TimeWindow::new(w),
                    Severity::from_secs(sev),
                )
            })
        }

        fn arb_raw() -> impl Strategy<Value = RawRecord> {
            (
                0u32..100_000,
                0u32..10_000_000,
                0.0f32..120.0,
                0u16..5000,
                0u16..1000,
            )
                .prop_map(|(s, w, speed, flow, occ)| {
                    RawRecord::new(SensorId::new(s), TimeWindow::new(w), speed, flow, occ)
                })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(20))]

            /// Any atypical record sequence survives the full disk roundtrip
            /// byte-exactly, across block boundaries.
            #[test]
            fn prop_atypical_partition_roundtrip(
                records in prop::collection::vec(arb_atypical(), 0..600),
            ) {
                let path = tmpdir().join(format!("prop-a-{}.cps", records.len()));
                let mut w = PartitionWriter::create(&path, RecordKind::Atypical).unwrap();
                for r in &records {
                    w.write_atypical(r).unwrap();
                }
                w.finish().unwrap();
                let reader = PartitionReader::open(&path, IoStats::shared()).unwrap();
                let back: Vec<AtypicalRecord> =
                    reader.atypical_records().map(|r| r.unwrap()).collect();
                prop_assert_eq!(back, records);
                let _ = std::fs::remove_file(&path);
            }

            /// Same for raw readings.
            #[test]
            fn prop_raw_partition_roundtrip(
                records in prop::collection::vec(arb_raw(), 0..600),
            ) {
                let path = tmpdir().join(format!("prop-r-{}.cps", records.len()));
                let mut w = PartitionWriter::create(&path, RecordKind::Raw).unwrap();
                for r in &records {
                    w.write_raw(r).unwrap();
                }
                w.finish().unwrap();
                let reader = PartitionReader::open(&path, IoStats::shared()).unwrap();
                let back: Vec<RawRecord> = reader.raw_records().map(|r| r.unwrap()).collect();
                prop_assert_eq!(back, records);
                let _ = std::fs::remove_file(&path);
            }

            /// Flipping any single payload byte is always detected (CRC).
            #[test]
            fn prop_any_payload_corruption_detected(
                n in 1usize..200,
                flip in 0usize..100_000,
            ) {
                let path = tmpdir().join(format!("prop-c-{n}-{flip}.cps"));
                let mut w = PartitionWriter::create(&path, RecordKind::Atypical).unwrap();
                for i in 0..n {
                    w.write_atypical(&AtypicalRecord::new(
                        SensorId::new(i as u32),
                        TimeWindow::new(i as u32),
                        Severity::from_secs(60),
                    ))
                    .unwrap();
                }
                w.finish().unwrap();
                let mut raw = std::fs::read(&path).unwrap();
                let payload_start = crate::format::HEADER_SIZE + crate::format::BLOCK_HEADER_SIZE;
                let pos = payload_start + flip % (raw.len() - payload_start);
                raw[pos] ^= 0x40;
                std::fs::write(&path, raw).unwrap();
                let reader = PartitionReader::open(&path, IoStats::shared()).unwrap();
                let results: Vec<_> = reader.atypical_records().collect();
                prop_assert!(results.iter().any(|r| r.is_err()));
                let _ = std::fs::remove_file(&path);
            }
        }
    }

    #[test]
    #[should_panic(expected = "raw record in atypical file")]
    fn kind_mismatch_panics() {
        let path = tmpdir().join("mismatch.cps");
        let mut w = PartitionWriter::create(&path, RecordKind::Atypical).unwrap();
        let _ = w.write_raw(&RawRecord::new(
            SensorId::new(0),
            TimeWindow::new(0),
            60.0,
            10,
            100,
        ));
    }
}
