//! Strongly-typed identifiers.
//!
//! Every entity in the pipeline is addressed by a small copyable newtype over
//! an integer. Using newtypes (instead of bare `u32`s) prevents the classic
//! bug of passing a sensor id where a region id is expected, at zero runtime
//! cost.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal, $inner:ty) => {
        $(#[$doc])*
        #[derive(
            Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
        )]
        pub struct $name(pub $inner);

        impl $name {
            /// Returns the raw integer value.
            #[inline]
            pub const fn raw(self) -> $inner {
                self.0
            }

            /// Builds the id from a raw integer value.
            #[inline]
            pub const fn new(raw: $inner) -> Self {
                Self(raw)
            }

            /// Returns the id usable as a vector index.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<$inner> for $name {
            #[inline]
            fn from(raw: $inner) -> Self {
                Self(raw)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifier of a physical sensor (loop detector, camera, acoustic
    /// node…). Sensors are fixed in space; the topology graph in `cps-geo`
    /// maps each id to a location and a road segment.
    SensorId,
    "s",
    u32
);

id_type!(
    /// Identifier of a pre-defined spatial region (grid cell / zipcode-like
    /// area) used for the bottom-up aggregation and the red-zone filter.
    RegionId,
    "w",
    u32
);

id_type!(
    /// Identifier of a dataset partition (one month of CPS data in the
    /// paper's setup, `D1`..`D12`).
    DatasetId,
    "D",
    u32
);

/// Identifier of an atypical cluster (micro or macro).
///
/// The paper's merge operation (Algorithm 2) assigns a *fresh* id to every
/// macro-cluster, so ids are allocated from a process-wide atomic counter via
/// [`ClusterId::fresh`]. Deterministic pipelines that must be reproducible
/// across runs can instead allocate ids from a local [`ClusterIdGen`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default)]
pub struct ClusterId(pub u64);

static NEXT_CLUSTER_ID: AtomicU64 = AtomicU64::new(1);

impl ClusterId {
    /// Builds the id from a raw integer value.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Self(raw)
    }

    /// Returns the raw integer value.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Allocates a globally fresh cluster id.
    #[inline]
    pub fn fresh() -> Self {
        Self(NEXT_CLUSTER_ID.fetch_add(1, Ordering::Relaxed))
    }
}

impl fmt::Debug for ClusterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

impl fmt::Display for ClusterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

/// Deterministic, sequential cluster-id allocator.
///
/// Used by the offline forest-construction pipeline so that repeated runs on
/// the same input produce identical ids (useful for tests and for the
/// reproduction harness).
#[derive(Debug, Clone)]
pub struct ClusterIdGen {
    next: u64,
}

impl ClusterIdGen {
    /// Creates a generator starting at `first`.
    pub fn new(first: u64) -> Self {
        Self { next: first }
    }

    /// Returns the next sequential id.
    pub fn next_id(&mut self) -> ClusterId {
        let id = ClusterId(self.next);
        self.next += 1;
        id
    }

    /// Number of ids handed out so far (relative to the starting point).
    pub fn allocated(&self, first: u64) -> u64 {
        self.next - first
    }

    /// The id the next [`next_id`](Self::next_id) call will return,
    /// without allocating it.
    pub fn peek(&self) -> u64 {
        self.next
    }

    /// Skips `n` ids, as if [`next_id`](Self::next_id) had been called
    /// `n` times. The deterministic parallel roll-up runs each sibling
    /// node against a scratch generator and then advances the shared one
    /// by the node's allocation count, reproducing the sequential id
    /// sequence exactly (see `atypical::par`).
    pub fn advance(&mut self, n: u64) {
        self.next += n;
    }
}

impl Default for ClusterIdGen {
    fn default() -> Self {
        Self::new(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn sensor_id_roundtrip() {
        let s = SensorId::new(42);
        assert_eq!(s.raw(), 42);
        assert_eq!(s.index(), 42);
        assert_eq!(format!("{s}"), "s42");
        assert_eq!(format!("{s:?}"), "s42");
        assert_eq!(SensorId::from(42u32), s);
    }

    #[test]
    fn region_and_dataset_display() {
        assert_eq!(format!("{}", RegionId::new(7)), "w7");
        assert_eq!(format!("{}", DatasetId::new(3)), "D3");
    }

    #[test]
    fn ids_order_by_raw_value() {
        assert!(SensorId::new(1) < SensorId::new(2));
        assert!(ClusterId::new(1) < ClusterId::new(2));
    }

    #[test]
    fn fresh_cluster_ids_are_unique() {
        let ids: HashSet<ClusterId> = (0..1000).map(|_| ClusterId::fresh()).collect();
        assert_eq!(ids.len(), 1000);
    }

    #[test]
    fn deterministic_generator_is_sequential() {
        let mut g = ClusterIdGen::new(10);
        assert_eq!(g.next_id(), ClusterId::new(10));
        assert_eq!(g.next_id(), ClusterId::new(11));
        assert_eq!(g.allocated(10), 2);
    }

    #[test]
    fn peek_and_advance_mirror_next_id() {
        let mut g = ClusterIdGen::new(100);
        assert_eq!(g.peek(), 100);
        g.advance(3);
        assert_eq!(g.peek(), 103);
        assert_eq!(g.next_id(), ClusterId::new(103));
        let mut byhand = ClusterIdGen::new(100);
        for _ in 0..3 {
            byhand.next_id();
        }
        assert_eq!(byhand.peek(), 103, "advance(n) == n next_id() calls");
    }

    #[test]
    fn serde_roundtrip() {
        let s = SensorId::new(9);
        let json = serde_json::to_string(&s).unwrap();
        assert_eq!(json, "9");
        let back: SensorId = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
