//! The severity measure `f(s, t)`.
//!
//! The paper adopts *atypical duration* — how long sensor `s` reported
//! atypical readings within window `t` — as its severity measure, while
//! noting the framework works for any non-negative numeric measure.
//!
//! [`Severity`] stores the duration as integer **seconds**. Integer storage
//! makes severity addition exactly commutative and associative, which is what
//! lets the merge operation satisfy the paper's Property 3 *exactly* (and
//! lets the property-based tests assert it with `==` instead of an epsilon).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign};

/// Non-negative atypical duration, stored in whole seconds.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default, Debug,
)]
pub struct Severity(u64);

impl Severity {
    /// The zero severity.
    pub const ZERO: Severity = Severity(0);

    /// Creates a severity from whole seconds.
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        Severity(secs)
    }

    /// Creates a severity from (possibly fractional) minutes; rounds to the
    /// nearest second and clamps negatives to zero.
    #[inline]
    pub fn from_minutes(minutes: f64) -> Self {
        Severity((minutes * 60.0).round().max(0.0) as u64)
    }

    /// Duration in whole seconds.
    #[inline]
    pub const fn as_secs(self) -> u64 {
        self.0
    }

    /// Duration in minutes (fractional).
    #[inline]
    pub fn as_minutes(self) -> f64 {
        self.0 as f64 / 60.0
    }

    /// Whether this is the zero severity.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating difference (`self - other`, clamped at zero).
    #[inline]
    pub fn saturating_sub(self, other: Severity) -> Severity {
        Severity(self.0.saturating_sub(other.0))
    }

    /// Fraction `self / total` in `[0, 1]`; zero when `total` is zero.
    #[inline]
    pub fn fraction_of(self, total: Severity) -> f64 {
        if total.0 == 0 {
            0.0
        } else {
            self.0 as f64 / total.0 as f64
        }
    }

    /// Scales the severity by a non-negative factor (rounds to seconds).
    #[inline]
    pub fn scale(self, factor: f64) -> Severity {
        Severity((self.0 as f64 * factor.max(0.0)).round() as u64)
    }
}

impl Add for Severity {
    type Output = Severity;
    #[inline]
    fn add(self, rhs: Severity) -> Severity {
        Severity(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Severity {
    #[inline]
    fn add_assign(&mut self, rhs: Severity) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sum for Severity {
    fn sum<I: Iterator<Item = Severity>>(iter: I) -> Severity {
        iter.fold(Severity::ZERO, Add::add)
    }
}

impl<'a> Sum<&'a Severity> for Severity {
    fn sum<I: Iterator<Item = &'a Severity>>(iter: I) -> Severity {
        iter.copied().sum()
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let m = self.as_minutes();
        if (m - m.round()).abs() < 1e-9 {
            write!(f, "{} min", m.round() as i64)
        } else {
            write!(f, "{m:.2} min")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn minute_conversions() {
        let s = Severity::from_minutes(4.0);
        assert_eq!(s.as_secs(), 240);
        assert_eq!(s.as_minutes(), 4.0);
        assert_eq!(format!("{s}"), "4 min");
        assert_eq!(format!("{}", Severity::from_secs(90)), "1.50 min");
    }

    #[test]
    fn negative_minutes_clamp_to_zero() {
        assert_eq!(Severity::from_minutes(-3.0), Severity::ZERO);
    }

    #[test]
    fn fraction_handles_zero_total() {
        assert_eq!(Severity::from_secs(5).fraction_of(Severity::ZERO), 0.0);
        assert_eq!(
            Severity::from_secs(5).fraction_of(Severity::from_secs(10)),
            0.5
        );
    }

    #[test]
    fn sum_and_saturating_sub() {
        let total: Severity = [1u64, 2, 3].iter().map(|&s| Severity::from_secs(s)).sum();
        assert_eq!(total, Severity::from_secs(6));
        assert_eq!(
            Severity::from_secs(2).saturating_sub(Severity::from_secs(5)),
            Severity::ZERO
        );
    }

    #[test]
    fn scale_rounds() {
        assert_eq!(Severity::from_secs(10).scale(0.25), Severity::from_secs(3));
        assert_eq!(Severity::from_secs(10).scale(-1.0), Severity::ZERO);
    }

    proptest! {
        #[test]
        fn prop_addition_commutative_associative(a in 0u64..1u64<<40, b in 0u64..1u64<<40, c in 0u64..1u64<<40) {
            let (a, b, c) = (Severity::from_secs(a), Severity::from_secs(b), Severity::from_secs(c));
            prop_assert_eq!(a + b, b + a);
            prop_assert_eq!((a + b) + c, a + (b + c));
        }

        #[test]
        fn prop_fraction_in_unit_interval(a in 0u64..1u64<<40, b in 1u64..1u64<<40) {
            let f = Severity::from_secs(a.min(b)).fraction_of(Severity::from_secs(b));
            prop_assert!((0.0..=1.0).contains(&f));
        }
    }
}
