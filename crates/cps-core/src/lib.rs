//! # cps-core
//!
//! Core vocabulary types shared by every crate in the *atypical-cps* workspace,
//! a reproduction of Tang et al., *"Multidimensional Analysis of Atypical
//! Events in Cyber-Physical Data"* (ICDE 2012).
//!
//! A cyber-physical system (CPS) is modelled here as a set of fixed
//! [`SensorId`]s that emit one [`RawRecord`] per [`TimeWindow`]. A
//! pre-processing step (the paper's *PR* stage) selects the **atypical**
//! records — windows whose reading violates the application's atypical
//! criterion — and converts each into an [`AtypicalRecord`]
//! `(sensor, window, severity)`, where [`Severity`] is the *atypical
//! duration* inside that window.
//!
//! The crate also defines:
//!
//! * [`Params`] — the five tunables of the paper (`δd`, `δt`, `δs`, `δsim`
//!   and the balance function `g`),
//! * [`BalanceFunction`] — the `g` of Equations (3)/(4),
//! * the measure-classification traits of Gray et al.'s data-cube taxonomy
//!   ([`measure`]), used by the paper's Properties 1, 2 and 4,
//! * a fast non-cryptographic hasher ([`fx`]) used for the hot
//!   sensor/window maps.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod error;
pub mod fx;
pub mod ids;
pub mod measure;
pub mod params;
pub mod record;
pub mod severity;
pub mod time;

pub use error::{CpsError, Result};
pub use ids::{ClusterId, DatasetId, RegionId, SensorId};
pub use params::{BalanceFunction, Params};
pub use record::{AtypicalRecord, RawRecord};
pub use severity::Severity;
pub use time::{TimeRange, TimeWindow, WindowSpec};
