//! Measure classification (Gray et al.'s data-cube taxonomy).
//!
//! The paper's correctness arguments hinge on which class each measure falls
//! in:
//!
//! * **distributive** — computable from sub-aggregate values of the *same*
//!   measure (`sum`, `count`). Property 4: the total severity `F(W, T)` is
//!   distributive, which is what makes the red-zone bound cheap to compute.
//! * **algebraic** — computable by a bounded-arity function of distributive
//!   arguments. Property 2: the spatial/temporal features of atypical
//!   clusters are algebraic, so merging clusters is linear in feature size.
//! * **holistic** — no constant-size sub-aggregate summary exists. Property
//!   1: the raw atypical *event* (the set of records) is holistic, which is
//!   why the paper replaces it with the micro-cluster summary.
//!
//! These traits exist so the type system documents (and the tests verify)
//! the aggregation contract of each summary type.

use crate::Severity;

/// Classification tag for a measure or summary model.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MeasureClass {
    /// Derivable by combining sub-aggregates of the same measure.
    Distributive,
    /// Derivable by a bounded-arity function of distributive arguments.
    Algebraic,
    /// Requires unbounded storage to summarize sub-aggregates.
    Holistic,
}

/// A measure that can be merged from two sub-aggregates of itself.
///
/// `merge` must be commutative and associative, with `identity()` the neutral
/// element — together these make any aggregation order valid, which is what
/// both the bottom-up cube and the atypical forest exploit.
pub trait DistributiveMeasure: Sized {
    /// The neutral element (`merge(x, identity()) == x`).
    fn identity() -> Self;
    /// Combines two sub-aggregates.
    fn merge(self, other: Self) -> Self;
    /// Reports this measure's class (always `Distributive` here).
    fn class() -> MeasureClass {
        MeasureClass::Distributive
    }
}

impl DistributiveMeasure for Severity {
    fn identity() -> Self {
        Severity::ZERO
    }
    fn merge(self, other: Self) -> Self {
        self + other
    }
}

impl DistributiveMeasure for u64 {
    fn identity() -> Self {
        0
    }
    fn merge(self, other: Self) -> Self {
        self.saturating_add(other)
    }
}

/// Count + total pair: the distributive ingredients of a mean.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CountAndTotal {
    /// Number of contributing records.
    pub count: u64,
    /// Total severity of contributing records.
    pub total: Severity,
}

impl DistributiveMeasure for CountAndTotal {
    fn identity() -> Self {
        Self::default()
    }
    fn merge(self, other: Self) -> Self {
        Self {
            count: self.count + other.count,
            total: self.total + other.total,
        }
    }
}

impl CountAndTotal {
    /// Adds one record.
    pub fn push(&mut self, severity: Severity) {
        self.count += 1;
        self.total += severity;
    }

    /// The algebraic mean severity derived from the two distributive parts.
    pub fn mean(self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total.as_minutes() / self.count as f64
        }
    }
}

/// An algebraic summary: merged via a bounded set of distributive components.
pub trait AlgebraicSummary: Sized {
    /// Merges two summaries of disjoint record sets into the summary of
    /// their union.
    fn merge_with(&mut self, other: &Self);
    /// Reports this summary's class (always `Algebraic` here).
    fn class() -> MeasureClass {
        MeasureClass::Algebraic
    }
}

/// Marker trait documenting that a model is holistic (paper Property 1).
pub trait HolisticModel {
    /// Reports this model's class (always `Holistic`).
    fn class() -> MeasureClass {
        MeasureClass::Holistic
    }
}

/// Folds any iterator of distributive measures, in any order.
pub fn aggregate<M, I>(items: I) -> M
where
    M: DistributiveMeasure,
    I: IntoIterator<Item = M>,
{
    items.into_iter().fold(M::identity(), M::merge)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn severity_is_distributive() {
        assert_eq!(Severity::class(), MeasureClass::Distributive);
        let parts = vec![
            Severity::from_secs(10),
            Severity::from_secs(20),
            Severity::from_secs(30),
        ];
        assert_eq!(aggregate::<Severity, _>(parts), Severity::from_secs(60));
    }

    #[test]
    fn count_and_total_gives_algebraic_mean() {
        let mut a = CountAndTotal::default();
        a.push(Severity::from_minutes(2.0));
        a.push(Severity::from_minutes(4.0));
        let mut b = CountAndTotal::default();
        b.push(Severity::from_minutes(6.0));
        let merged = a.merge(b);
        assert_eq!(merged.count, 3);
        assert!((merged.mean() - 4.0).abs() < 1e-9);
        assert_eq!(CountAndTotal::default().mean(), 0.0);
    }

    proptest! {
        /// Distributivity: splitting the input arbitrarily never changes the
        /// aggregate (Property 4's essence).
        #[test]
        fn prop_partition_invariance(xs in prop::collection::vec(0u64..1_000_000, 0..50), split in 0usize..50) {
            let sevs: Vec<Severity> = xs.iter().map(|&s| Severity::from_secs(s)).collect();
            let k = split.min(sevs.len());
            let left: Severity = aggregate(sevs[..k].iter().copied());
            let right: Severity = aggregate(sevs[k..].iter().copied());
            let whole: Severity = aggregate(sevs.iter().copied());
            prop_assert_eq!(left.merge(right), whole);
        }
    }
}
