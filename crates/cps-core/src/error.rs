//! Workspace-wide error type.

use std::fmt;
use std::io;

/// Result alias using [`CpsError`].
pub type Result<T> = std::result::Result<T, CpsError>;

/// Errors surfaced by the atypical-cps pipeline.
#[derive(Debug)]
pub enum CpsError {
    /// Underlying I/O failure (dataset files, catalogs).
    Io(io::Error),
    /// A stored block or file failed its integrity check.
    Corrupt {
        /// What was being read.
        context: String,
        /// Why it is considered corrupt.
        detail: String,
    },
    /// A parameter or query was outside its legal range.
    InvalidParameter(String),
    /// A referenced entity (dataset, sensor, region) does not exist.
    NotFound(String),
    /// The on-disk format version is not understood.
    VersionMismatch {
        /// Version found in the file.
        found: u32,
        /// Version this build expects.
        expected: u32,
    },
}

impl CpsError {
    /// Convenience constructor for corruption errors.
    pub fn corrupt(context: impl Into<String>, detail: impl Into<String>) -> Self {
        CpsError::Corrupt {
            context: context.into(),
            detail: detail.into(),
        }
    }
}

impl fmt::Display for CpsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CpsError::Io(e) => write!(f, "I/O error: {e}"),
            CpsError::Corrupt { context, detail } => {
                write!(f, "corrupt data while reading {context}: {detail}")
            }
            CpsError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            CpsError::NotFound(what) => write!(f, "not found: {what}"),
            CpsError::VersionMismatch { found, expected } => {
                write!(
                    f,
                    "format version mismatch: found v{found}, expected v{expected}"
                )
            }
        }
    }
}

impl std::error::Error for CpsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CpsError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CpsError {
    fn from(e: io::Error) -> Self {
        CpsError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = CpsError::corrupt("block 7", "bad checksum");
        assert_eq!(
            e.to_string(),
            "corrupt data while reading block 7: bad checksum"
        );
        let e = CpsError::VersionMismatch {
            found: 2,
            expected: 1,
        };
        assert!(e.to_string().contains("v2"));
        assert!(CpsError::NotFound("D13".into()).to_string().contains("D13"));
    }

    #[test]
    fn io_error_is_source() {
        use std::error::Error;
        let e = CpsError::from(io::Error::other("boom"));
        assert!(e.source().is_some());
        assert!(CpsError::InvalidParameter("x".into()).source().is_none());
    }
}
