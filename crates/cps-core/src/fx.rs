//! A fast, non-cryptographic hasher for hot integer-keyed maps.
//!
//! The pipeline's inner loops are dominated by `SensorId`/`TimeWindow` keyed
//! hash maps (cluster features, grid buckets). SipHash — the standard
//! library's default — is needlessly slow for 4-byte integer keys, so this
//! module provides the classic *Fx* multiply-xor hash (as used by rustc) and
//! map/set aliases. HashDoS resistance is irrelevant here: keys come from
//! the deployment's own sensor catalog, not an adversary.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-xor hasher (Fx). Very fast for short integer keys.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` keyed with the Fx hash.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed with the Fx hash.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SensorId, TimeWindow};

    #[test]
    fn map_basic_ops() {
        let mut m: FxHashMap<SensorId, u32> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(SensorId::new(i), i * 2);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m[&SensorId::new(500)], 1000);
    }

    #[test]
    fn hash_is_deterministic() {
        let h = |x: u64| {
            let mut hasher = FxHasher::default();
            hasher.write_u64(x);
            hasher.finish()
        };
        assert_eq!(h(42), h(42));
        assert_ne!(h(42), h(43));
    }

    #[test]
    fn byte_stream_and_word_paths_cover_tails() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 12]);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn set_deduplicates_windows() {
        let mut s: FxHashSet<TimeWindow> = FxHashSet::default();
        for i in [1u32, 2, 2, 3, 3, 3] {
            s.insert(TimeWindow::new(i));
        }
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn low_collision_on_dense_integers() {
        use std::collections::HashSet;
        let hashes: HashSet<u64> = (0..10_000u64)
            .map(|x| {
                let mut h = FxHasher::default();
                h.write_u64(x);
                h.finish()
            })
            .collect();
        assert_eq!(hashes.len(), 10_000);
    }
}
