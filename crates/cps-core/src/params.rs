//! The paper's tunable parameters and the balance function `g`.
//!
//! Figure 14 of the paper lists five knobs; [`Params`] bundles them with the
//! defaults used throughout the evaluation:
//!
//! | knob | paper range | default |
//! |---|---|---|
//! | severity threshold `δs` | 2% – 20% | 5% |
//! | distance threshold `δd` | 1.5 – 24 mile | 1.5 mile |
//! | time interval threshold `δt` | 15 – 80 min | 15 min |
//! | similarity threshold `δsim` | 0.1 – 1.0 | 0.5 |
//! | balance function `g` | max/min/avg/geo/har | arithmetic mean |

use serde::{Deserialize, Serialize};
use std::fmt;

/// The balance function `g(p₁, p₂)` of Equations (3) and (4).
///
/// Balances the two per-cluster overlap fractions when comparing clusters of
/// different sizes: `Max` is the most permissive (a small cluster absorbed by
/// a large one still scores high), `Min` the most conservative.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum BalanceFunction {
    /// `max(p₁, p₂)`.
    Max,
    /// `min(p₁, p₂)`.
    Min,
    /// Arithmetic mean `(p₁ + p₂) / 2` — the paper's default.
    #[default]
    ArithmeticMean,
    /// Geometric mean `√(p₁·p₂)`.
    GeometricMean,
    /// Harmonic mean `2·p₁·p₂ / (p₁ + p₂)` (zero when both are zero).
    HarmonicMean,
}

impl BalanceFunction {
    /// All five variants, in the order Figure 21 plots them.
    pub const ALL: [BalanceFunction; 5] = [
        BalanceFunction::Min,
        BalanceFunction::HarmonicMean,
        BalanceFunction::GeometricMean,
        BalanceFunction::ArithmeticMean,
        BalanceFunction::Max,
    ];

    /// Applies the balance function to two fractions in `[0, 1]`.
    #[inline]
    pub fn apply(self, p1: f64, p2: f64) -> f64 {
        match self {
            BalanceFunction::Max => p1.max(p2),
            BalanceFunction::Min => p1.min(p2),
            BalanceFunction::ArithmeticMean => 0.5 * (p1 + p2),
            BalanceFunction::GeometricMean => (p1 * p2).sqrt(),
            BalanceFunction::HarmonicMean => {
                let s = p1 + p2;
                if s == 0.0 {
                    0.0
                } else {
                    2.0 * p1 * p2 / s
                }
            }
        }
    }

    /// Short label used in experiment output (`max`, `min`, `avg`, `geo`,
    /// `har`) matching the paper's figure legends.
    pub fn label(self) -> &'static str {
        match self {
            BalanceFunction::Max => "max",
            BalanceFunction::Min => "min",
            BalanceFunction::ArithmeticMean => "avg",
            BalanceFunction::GeometricMean => "geo",
            BalanceFunction::HarmonicMean => "har",
        }
    }
}

impl fmt::Display for BalanceFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Bundle of the five tunables from Figure 14, plus validation.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Params {
    /// Distance threshold `δd` in miles: two records can be *direct atypical
    /// related* only if their sensors are closer than this.
    pub delta_d_miles: f64,
    /// Time interval threshold `δt` in minutes: … and their windows are
    /// closer than this.
    pub delta_t_minutes: u32,
    /// Relative severity threshold `δs` in `[0, 1]`: a cluster is
    /// *significant* when its severity exceeds `δs · length(T) · N`.
    pub delta_s: f64,
    /// Similarity threshold `δsim` in `[0, 1]` for merging clusters.
    pub delta_sim: f64,
    /// Balance function `g` of Equations (3)/(4).
    pub balance: BalanceFunction,
    /// Trustworthiness filter: atypical events with fewer records than this
    /// are discarded during micro-cluster retrieval. Stands in for the
    /// paper's §II-A assumption that "clean and trustworthy atypical
    /// records" are delivered by an upstream filter (Tru-Alarm): an
    /// isolated single-window glitch with no corroborating neighbour is not
    /// a trustworthy event. Set to 1 to keep everything.
    pub min_event_records: u32,
    /// Use inverted-index candidate generation during cluster integration
    /// (Algorithm 3). The indexed path produces results identical to the
    /// naive pairwise scan — candidates are exact because zero key overlap
    /// implies zero similarity — it only skips provably sub-threshold
    /// comparisons. Default `true`; turn off to run the naive oracle.
    pub indexed_integration: bool,
    /// Worker threads for offline forest/cube construction (leaf builds,
    /// sibling roll-ups, cuboid materialization). `0` means "all available
    /// cores" (the default); `1` runs the exact sequential code path. Any
    /// value produces **bit-identical** output — merge ids included —
    /// because sibling results are committed in canonical node-path order
    /// (see DESIGN.md, "Deterministic parallelism").
    pub parallelism: usize,
}

impl Params {
    /// The defaults of Figure 14: `δs` = 5%, `δd` = 1.5 mile, `δt` = 15 min,
    /// `δsim` = 0.5, `g` = arithmetic mean.
    pub fn paper_defaults() -> Self {
        Self {
            delta_d_miles: 1.5,
            delta_t_minutes: 15,
            delta_s: 0.05,
            delta_sim: 0.5,
            balance: BalanceFunction::ArithmeticMean,
            min_event_records: 2,
            indexed_integration: true,
            parallelism: 0,
        }
    }

    /// Resolves [`parallelism`](Self::parallelism) to a concrete worker
    /// count: `0` maps to the number of available cores, everything else
    /// is literal.
    pub fn effective_parallelism(&self) -> usize {
        if self.parallelism == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            self.parallelism
        }
    }

    /// Validates ranges; returns a human-readable description of the first
    /// violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.delta_d_miles <= 0.0 || self.delta_d_miles.is_nan() {
            return Err(format!("δd must be positive, got {}", self.delta_d_miles));
        }
        if self.delta_t_minutes == 0 {
            return Err("δt must be positive".to_string());
        }
        if !(0.0..=1.0).contains(&self.delta_s) {
            return Err(format!("δs must be in [0, 1], got {}", self.delta_s));
        }
        if !(0.0..=1.0).contains(&self.delta_sim) {
            return Err(format!("δsim must be in [0, 1], got {}", self.delta_sim));
        }
        if self.min_event_records == 0 {
            return Err("min_event_records must be at least 1".to_string());
        }
        Ok(())
    }

    /// Builder-style override of `δd`.
    pub fn with_delta_d(mut self, miles: f64) -> Self {
        self.delta_d_miles = miles;
        self
    }

    /// Builder-style override of `δt`.
    pub fn with_delta_t(mut self, minutes: u32) -> Self {
        self.delta_t_minutes = minutes;
        self
    }

    /// Builder-style override of `δs`.
    pub fn with_delta_s(mut self, delta_s: f64) -> Self {
        self.delta_s = delta_s;
        self
    }

    /// Builder-style override of `δsim`.
    pub fn with_delta_sim(mut self, delta_sim: f64) -> Self {
        self.delta_sim = delta_sim;
        self
    }

    /// Builder-style override of the balance function.
    pub fn with_balance(mut self, g: BalanceFunction) -> Self {
        self.balance = g;
        self
    }

    /// Builder-style override of the trustworthiness filter.
    pub fn with_min_event_records(mut self, n: u32) -> Self {
        self.min_event_records = n;
        self
    }

    /// Builder-style override of the integration strategy: `true` (default)
    /// uses inverted-index candidate generation, `false` the naive pairwise
    /// scan (the differential-test oracle).
    pub fn with_indexed_integration(mut self, on: bool) -> Self {
        self.indexed_integration = on;
        self
    }

    /// Builder-style override of the construction parallelism (`0` = all
    /// cores, `1` = sequential escape hatch).
    pub fn with_parallelism(mut self, threads: usize) -> Self {
        self.parallelism = threads;
        self
    }
}

impl Default for Params {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn defaults_match_figure_14() {
        let p = Params::paper_defaults();
        assert_eq!(p.delta_d_miles, 1.5);
        assert_eq!(p.delta_t_minutes, 15);
        assert_eq!(p.delta_s, 0.05);
        assert_eq!(p.delta_sim, 0.5);
        assert_eq!(p.balance, BalanceFunction::ArithmeticMean);
        assert!(
            p.indexed_integration,
            "indexed integration is on by default"
        );
        assert_eq!(p.parallelism, 0, "parallelism defaults to all cores");
        assert!(p.effective_parallelism() >= 1);
        assert_eq!(p.with_parallelism(3).effective_parallelism(), 3);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_ranges() {
        assert!(Params::paper_defaults()
            .with_delta_d(0.0)
            .validate()
            .is_err());
        assert!(Params::paper_defaults().with_delta_t(0).validate().is_err());
        assert!(Params::paper_defaults()
            .with_delta_s(1.5)
            .validate()
            .is_err());
        assert!(Params::paper_defaults()
            .with_delta_sim(-0.1)
            .validate()
            .is_err());
    }

    #[test]
    fn balance_function_examples() {
        assert_eq!(BalanceFunction::Max.apply(0.2, 0.8), 0.8);
        assert_eq!(BalanceFunction::Min.apply(0.2, 0.8), 0.2);
        assert_eq!(BalanceFunction::ArithmeticMean.apply(0.2, 0.8), 0.5);
        assert!((BalanceFunction::GeometricMean.apply(0.25, 1.0) - 0.5).abs() < 1e-12);
        assert!((BalanceFunction::HarmonicMean.apply(0.5, 0.5) - 0.5).abs() < 1e-12);
        assert_eq!(BalanceFunction::HarmonicMean.apply(0.0, 0.0), 0.0);
    }

    #[test]
    fn labels_match_figure_21_legend() {
        let labels: Vec<&str> = BalanceFunction::ALL.iter().map(|g| g.label()).collect();
        assert_eq!(labels, vec!["min", "har", "geo", "avg", "max"]);
    }

    proptest! {
        /// For every g: min ≤ har ≤ geo ≤ avg ≤ max (the AM-GM-HM chain),
        /// and symmetry.
        #[test]
        fn prop_balance_ordering_and_symmetry(p1 in 0.0f64..=1.0, p2 in 0.0f64..=1.0) {
            let vals: Vec<f64> = BalanceFunction::ALL.iter().map(|g| g.apply(p1, p2)).collect();
            for w in vals.windows(2) {
                prop_assert!(w[0] <= w[1] + 1e-12, "ordering violated: {:?}", vals);
            }
            for g in BalanceFunction::ALL {
                prop_assert!((g.apply(p1, p2) - g.apply(p2, p1)).abs() < 1e-12);
                let v = g.apply(p1, p2);
                prop_assert!((0.0..=1.0 + 1e-12).contains(&v));
            }
        }

        /// Every balance function agrees on equal inputs.
        #[test]
        fn prop_balance_idempotent_on_diagonal(p in 0.0f64..=1.0) {
            for g in BalanceFunction::ALL {
                prop_assert!((g.apply(p, p) - p).abs() < 1e-12);
            }
        }
    }
}
