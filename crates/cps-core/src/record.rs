//! Raw and atypical CPS records.
//!
//! A [`RawRecord`] is one sensor reading for one time window — for the
//! traffic scenario: average speed, flow and occupancy, the three quantities
//! PeMS loop detectors report. The pre-processing stage (paper §II-A, the
//! *PR* step of the evaluation) applies the application's **atypical
//! criterion** to each raw record and keeps the violating ones as
//! [`AtypicalRecord`]s `(s, t, f(s,t))`.

use crate::ids::SensorId;
use crate::{Severity, TimeWindow, WindowSpec};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One raw sensor reading for one time window.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RawRecord {
    /// Reporting sensor.
    pub sensor: SensorId,
    /// Window the reading covers.
    pub window: TimeWindow,
    /// Mean speed over the window, miles per hour.
    pub speed_mph: f32,
    /// Vehicle count over the window.
    pub flow: u16,
    /// Mean lane occupancy over the window, in per-mille (0..=1000).
    pub occupancy_pm: u16,
}

impl RawRecord {
    /// Creates a raw reading.
    pub fn new(
        sensor: SensorId,
        window: TimeWindow,
        speed_mph: f32,
        flow: u16,
        occupancy_pm: u16,
    ) -> Self {
        Self {
            sensor,
            window,
            speed_mph,
            flow,
            occupancy_pm,
        }
    }
}

/// The atypical criterion: decides whether a raw record is atypical and, if
/// so, how severe it is.
///
/// The paper assumes the criterion is given per application (§II-A). The
/// default [`SpeedThreshold`] criterion models freeway congestion: a window
/// is atypical when mean speed drops below a threshold, and the atypical
/// duration grows with how far below the threshold the speed is.
pub trait AtypicalCriterion {
    /// Returns the record's severity if it is atypical, `None` otherwise.
    fn classify(&self, record: &RawRecord) -> Option<Severity>;
}

/// Congestion criterion: atypical when `speed < threshold_mph`.
///
/// Severity is the fraction of the window spent congested, estimated as
/// `(threshold − speed) / threshold` of the window length, floored at one
/// minute — a sensor just below the threshold congests briefly; a stopped
/// sensor congests the whole window. This mirrors how PeMS derives delay
/// from speed deficit.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SpeedThreshold {
    /// Speed below which a window counts as congested.
    pub threshold_mph: f32,
    /// Window discretization (fixes the maximum severity per window).
    pub spec: WindowSpec,
}

impl SpeedThreshold {
    /// The conventional 40 mph freeway congestion threshold with 5-minute
    /// windows.
    pub fn pems_default() -> Self {
        Self {
            threshold_mph: 40.0,
            spec: WindowSpec::PEMS,
        }
    }
}

impl AtypicalCriterion for SpeedThreshold {
    fn classify(&self, record: &RawRecord) -> Option<Severity> {
        if record.speed_mph >= self.threshold_mph || self.threshold_mph <= 0.0 {
            return None;
        }
        let deficit = f64::from((self.threshold_mph - record.speed_mph) / self.threshold_mph);
        let window_secs = u64::from(self.spec.window_minutes) * 60;
        let secs = ((window_secs as f64) * deficit).round().max(60.0) as u64;
        Some(Severity::from_secs(secs.min(window_secs)))
    }
}

/// One atypical record `(s, t, f(s, t))` — the unit of all downstream
/// analysis.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AtypicalRecord {
    /// Reporting sensor.
    pub sensor: SensorId,
    /// Window of the atypical reading.
    pub window: TimeWindow,
    /// Atypical duration within the window.
    pub severity: Severity,
}

impl AtypicalRecord {
    /// Creates an atypical record.
    pub fn new(sensor: SensorId, window: TimeWindow, severity: Severity) -> Self {
        Self {
            sensor,
            window,
            severity,
        }
    }
}

impl fmt::Display for AtypicalRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}, {}, {}>", self.sensor, self.window, self.severity)
    }
}

/// Applies `criterion` to a stream of raw records, yielding the atypical
/// ones — the *PR* (pre-processing) stage of the paper's evaluation.
pub fn preprocess<'a, C, I>(criterion: &'a C, raw: I) -> impl Iterator<Item = AtypicalRecord> + 'a
where
    C: AtypicalCriterion,
    I: IntoIterator<Item = RawRecord>,
    I::IntoIter: 'a,
{
    raw.into_iter().filter_map(move |r| {
        criterion
            .classify(&r)
            .map(|sev| AtypicalRecord::new(r.sensor, r.window, sev))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw(speed: f32) -> RawRecord {
        RawRecord::new(SensorId::new(1), TimeWindow::new(97), speed, 100, 300)
    }

    #[test]
    fn fast_traffic_is_typical() {
        let c = SpeedThreshold::pems_default();
        assert_eq!(c.classify(&raw(65.0)), None);
        assert_eq!(c.classify(&raw(40.0)), None);
    }

    #[test]
    fn stopped_traffic_fills_the_window() {
        let c = SpeedThreshold::pems_default();
        let sev = c.classify(&raw(0.0)).unwrap();
        assert_eq!(sev, Severity::from_minutes(5.0));
    }

    #[test]
    fn mild_congestion_gets_at_least_a_minute() {
        let c = SpeedThreshold::pems_default();
        let sev = c.classify(&raw(39.9)).unwrap();
        assert_eq!(sev, Severity::from_secs(60));
    }

    #[test]
    fn severity_scales_with_speed_deficit() {
        let c = SpeedThreshold::pems_default();
        let half = c.classify(&raw(20.0)).unwrap();
        assert_eq!(half, Severity::from_secs(150)); // half of a 5-min window
        let deep = c.classify(&raw(10.0)).unwrap();
        assert!(deep > half);
    }

    #[test]
    fn preprocess_filters_and_converts() {
        let c = SpeedThreshold::pems_default();
        let raws = vec![raw(65.0), raw(10.0), raw(55.0), raw(0.0)];
        let atypical: Vec<AtypicalRecord> = preprocess(&c, raws).collect();
        assert_eq!(atypical.len(), 2);
        assert!(atypical.iter().all(|r| r.sensor == SensorId::new(1)));
        assert!(atypical[1].severity > atypical[0].severity);
    }

    #[test]
    fn record_display_matches_paper_notation() {
        let r = AtypicalRecord::new(
            SensorId::new(1),
            TimeWindow::new(97),
            Severity::from_minutes(4.0),
        );
        assert_eq!(format!("{r}"), "<s1, t97, 4 min>");
    }

    #[test]
    fn degenerate_threshold_never_matches() {
        let c = SpeedThreshold {
            threshold_mph: 0.0,
            spec: WindowSpec::PEMS,
        };
        assert_eq!(c.classify(&raw(0.0)), None);
    }
}
