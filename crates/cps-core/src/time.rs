//! Discrete time: windows, ranges and the calendar hierarchy.
//!
//! CPS sensors report once per fixed-length *time window* (5 minutes in the
//! PeMS deployment the paper evaluates on). A [`TimeWindow`] is the index of
//! such a window counted from the epoch of the observation period; the
//! [`WindowSpec`] of a deployment fixes the window length and provides the
//! calendar arithmetic (window → hour/day/week/month) that the aggregation
//! hierarchies of both CubeView and the atypical forest are built on.

use crate::Severity;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of one fixed-length time window since the deployment epoch.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default, Debug,
)]
pub struct TimeWindow(pub u32);

impl TimeWindow {
    /// Builds a window from its raw index.
    #[inline]
    pub const fn new(idx: u32) -> Self {
        Self(idx)
    }

    /// Raw window index.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// Absolute distance to another window, in windows.
    #[inline]
    pub fn gap(self, other: TimeWindow) -> u32 {
        self.0.abs_diff(other.0)
    }

    /// The window `n` steps later.
    #[inline]
    pub fn offset(self, n: i64) -> TimeWindow {
        TimeWindow((self.0 as i64 + n).max(0) as u32)
    }
}

impl fmt::Display for TimeWindow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Deployment-wide description of the time discretization.
///
/// Provides the window ↔ calendar conversions used by the temporal concept
/// hierarchy (`window → hour → day → week → month`). Months are modelled as
/// fixed 30-day periods — the paper's datasets are monthly partitions and the
/// analysis never needs true calendar months, only a consistent hierarchy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowSpec {
    /// Length of one window, in minutes.
    pub window_minutes: u32,
}

impl WindowSpec {
    /// PeMS-style 5-minute windows.
    pub const PEMS: WindowSpec = WindowSpec { window_minutes: 5 };

    /// Creates a spec with the given window length in minutes.
    ///
    /// # Panics
    /// Panics if `window_minutes` is zero or does not divide 60 (the calendar
    /// hierarchy requires whole windows per hour).
    pub fn new(window_minutes: u32) -> Self {
        assert!(window_minutes > 0, "window length must be positive");
        assert!(
            60 % window_minutes == 0,
            "window length must divide 60 minutes"
        );
        Self { window_minutes }
    }

    /// Number of windows in one hour.
    #[inline]
    pub const fn windows_per_hour(self) -> u32 {
        60 / self.window_minutes
    }

    /// Number of windows in one day.
    #[inline]
    pub const fn windows_per_day(self) -> u32 {
        24 * self.windows_per_hour()
    }

    /// Number of windows in one (7-day) week.
    #[inline]
    pub const fn windows_per_week(self) -> u32 {
        7 * self.windows_per_day()
    }

    /// Number of windows in one (30-day) month partition.
    #[inline]
    pub const fn windows_per_month(self) -> u32 {
        30 * self.windows_per_day()
    }

    /// Day index (0-based from the epoch) containing `w`.
    #[inline]
    pub fn day_of(self, w: TimeWindow) -> u32 {
        w.0 / self.windows_per_day()
    }

    /// Hour index (0-based from the epoch) containing `w`.
    #[inline]
    pub fn hour_of(self, w: TimeWindow) -> u32 {
        w.0 / self.windows_per_hour()
    }

    /// Week index (0-based from the epoch) containing `w`.
    #[inline]
    pub fn week_of(self, w: TimeWindow) -> u32 {
        w.0 / self.windows_per_week()
    }

    /// Month-partition index (0-based from the epoch) containing `w`.
    #[inline]
    pub fn month_of(self, w: TimeWindow) -> u32 {
        w.0 / self.windows_per_month()
    }

    /// Hour of day in `[0, 24)` for `w` — used by rush-hour profiles.
    #[inline]
    pub fn hour_of_day(self, w: TimeWindow) -> u32 {
        self.hour_of(w) % 24
    }

    /// Day of week in `[0, 7)` for `w` (0 = the epoch's weekday).
    #[inline]
    pub fn day_of_week(self, w: TimeWindow) -> u32 {
        self.day_of(w) % 7
    }

    /// Whether `w` falls on a weekend, treating days 5 and 6 of each week as
    /// the weekend (the epoch is day 0, a Monday by convention).
    #[inline]
    pub fn is_weekend(self, w: TimeWindow) -> bool {
        self.day_of_week(w) >= 5
    }

    /// The range of windows covering days `[first_day, first_day + n_days)`.
    pub fn day_range(self, first_day: u32, n_days: u32) -> TimeRange {
        let wpd = self.windows_per_day();
        TimeRange::new(
            TimeWindow(first_day * wpd),
            TimeWindow((first_day + n_days) * wpd),
        )
    }

    /// The full severity available in one window (its entire duration).
    #[inline]
    pub fn full_window_severity(self) -> Severity {
        Severity::from_minutes(self.window_minutes as f64)
    }

    /// Human-readable `HH:MM` label for the start of `w` within its day.
    pub fn clock_label(self, w: TimeWindow) -> String {
        let minute_of_day = (w.0 % self.windows_per_day()) * self.window_minutes;
        format!("{:02}:{:02}", minute_of_day / 60, minute_of_day % 60)
    }
}

impl Default for WindowSpec {
    fn default() -> Self {
        Self::PEMS
    }
}

/// Half-open range of time windows `[start, end)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TimeRange {
    /// First window inside the range.
    pub start: TimeWindow,
    /// First window after the range.
    pub end: TimeWindow,
}

impl TimeRange {
    /// Creates the range `[start, end)`.
    ///
    /// # Panics
    /// Panics if `start > end`.
    pub fn new(start: TimeWindow, end: TimeWindow) -> Self {
        assert!(start.0 <= end.0, "TimeRange start must not exceed end");
        Self { start, end }
    }

    /// The empty range at zero.
    pub const EMPTY: TimeRange = TimeRange {
        start: TimeWindow(0),
        end: TimeWindow(0),
    };

    /// Number of windows in the range.
    #[inline]
    pub fn len(self) -> u32 {
        self.end.0 - self.start.0
    }

    /// Whether the range contains no windows.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.start.0 == self.end.0
    }

    /// Whether `w` lies inside the range.
    #[inline]
    pub fn contains(self, w: TimeWindow) -> bool {
        self.start.0 <= w.0 && w.0 < self.end.0
    }

    /// Whether the two ranges share at least one window.
    #[inline]
    pub fn overlaps(self, other: TimeRange) -> bool {
        self.start.0 < other.end.0 && other.start.0 < self.end.0
    }

    /// The intersection of two ranges (possibly empty).
    pub fn intersect(self, other: TimeRange) -> TimeRange {
        let start = self.start.0.max(other.start.0);
        let end = self.end.0.min(other.end.0);
        if start >= end {
            TimeRange::EMPTY
        } else {
            TimeRange::new(TimeWindow(start), TimeWindow(end))
        }
    }

    /// The smallest range covering both inputs.
    pub fn cover(self, other: TimeRange) -> TimeRange {
        if self.is_empty() {
            return other;
        }
        if other.is_empty() {
            return self;
        }
        TimeRange::new(
            TimeWindow(self.start.0.min(other.start.0)),
            TimeWindow(self.end.0.max(other.end.0)),
        )
    }

    /// Iterates over the windows in the range.
    pub fn iter(self) -> impl Iterator<Item = TimeWindow> {
        (self.start.0..self.end.0).map(TimeWindow)
    }

    /// Total duration of the range in minutes under `spec`.
    pub fn minutes(self, spec: WindowSpec) -> u64 {
        self.len() as u64 * spec.window_minutes as u64
    }
}

impl fmt::Display for TimeRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[t{}, t{})", self.start.0, self.end.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn window_gap_is_symmetric() {
        let a = TimeWindow::new(10);
        let b = TimeWindow::new(4);
        assert_eq!(a.gap(b), 6);
        assert_eq!(b.gap(a), 6);
        assert_eq!(a.gap(a), 0);
    }

    #[test]
    fn offset_saturates_at_zero() {
        assert_eq!(TimeWindow::new(2).offset(-5), TimeWindow::new(0));
        assert_eq!(TimeWindow::new(2).offset(3), TimeWindow::new(5));
    }

    #[test]
    fn pems_spec_calendar() {
        let s = WindowSpec::PEMS;
        assert_eq!(s.windows_per_hour(), 12);
        assert_eq!(s.windows_per_day(), 288);
        assert_eq!(s.windows_per_week(), 2016);
        assert_eq!(s.windows_per_month(), 8640);
        // 8:05am on day 0 = window 97.
        let w = TimeWindow::new(8 * 12 + 1);
        assert_eq!(s.hour_of_day(w), 8);
        assert_eq!(s.day_of(w), 0);
        assert_eq!(s.clock_label(w), "08:05");
    }

    #[test]
    #[should_panic(expected = "divide 60")]
    fn spec_rejects_nondividing_window() {
        WindowSpec::new(7);
    }

    #[test]
    fn weekend_detection() {
        let s = WindowSpec::PEMS;
        let day = |d: u32| TimeWindow::new(d * s.windows_per_day() + 5);
        assert!(!s.is_weekend(day(0)));
        assert!(!s.is_weekend(day(4)));
        assert!(s.is_weekend(day(5)));
        assert!(s.is_weekend(day(6)));
        assert!(!s.is_weekend(day(7)));
    }

    #[test]
    fn day_range_covers_whole_days() {
        let s = WindowSpec::PEMS;
        let r = s.day_range(2, 3);
        assert_eq!(r.len(), 3 * 288);
        assert!(r.contains(TimeWindow::new(2 * 288)));
        assert!(!r.contains(TimeWindow::new(5 * 288)));
        assert_eq!(r.minutes(s), 3 * 24 * 60);
    }

    #[test]
    fn range_set_ops() {
        let a = TimeRange::new(TimeWindow(0), TimeWindow(10));
        let b = TimeRange::new(TimeWindow(5), TimeWindow(15));
        let c = TimeRange::new(TimeWindow(20), TimeWindow(25));
        assert!(a.overlaps(b));
        assert!(!a.overlaps(c));
        assert_eq!(
            a.intersect(b),
            TimeRange::new(TimeWindow(5), TimeWindow(10))
        );
        assert!(a.intersect(c).is_empty());
        assert_eq!(a.cover(c), TimeRange::new(TimeWindow(0), TimeWindow(25)));
        assert_eq!(a.cover(TimeRange::EMPTY), a);
    }

    #[test]
    fn range_iter_yields_each_window() {
        let r = TimeRange::new(TimeWindow(3), TimeWindow(6));
        let ws: Vec<u32> = r.iter().map(|w| w.raw()).collect();
        assert_eq!(ws, vec![3, 4, 5]);
    }

    proptest! {
        #[test]
        fn prop_intersect_subset_of_both(
            a0 in 0u32..1000, al in 0u32..1000,
            b0 in 0u32..1000, bl in 0u32..1000,
        ) {
            let a = TimeRange::new(TimeWindow(a0), TimeWindow(a0 + al));
            let b = TimeRange::new(TimeWindow(b0), TimeWindow(b0 + bl));
            let i = a.intersect(b);
            for w in i.iter() {
                prop_assert!(a.contains(w) && b.contains(w));
            }
            prop_assert_eq!(a.intersect(b), b.intersect(a));
        }

        #[test]
        fn prop_cover_contains_both(
            a0 in 0u32..1000, al in 1u32..1000,
            b0 in 0u32..1000, bl in 1u32..1000,
        ) {
            let a = TimeRange::new(TimeWindow(a0), TimeWindow(a0 + al));
            let b = TimeRange::new(TimeWindow(b0), TimeWindow(b0 + bl));
            let c = a.cover(b);
            for w in a.iter().chain(b.iter()) {
                prop_assert!(c.contains(w));
            }
        }

        #[test]
        fn prop_calendar_consistency(widx in 0u32..10_000_000, wm in prop::sample::select(vec![1u32,5,10,15,30,60])) {
            let s = WindowSpec::new(wm);
            let w = TimeWindow::new(widx);
            prop_assert_eq!(s.day_of(w), s.hour_of(w) / 24);
            prop_assert_eq!(s.week_of(w), s.day_of(w) / 7);
            prop_assert_eq!(s.month_of(w), s.day_of(w) / 30);
            prop_assert!(s.hour_of_day(w) < 24);
        }
    }
}
