//! # cps-index
//!
//! Spatio-temporal indexes over atypical records.
//!
//! Proposition 1 of the paper: retrieving atypical events costs `O(N + n²)`
//! without an index and `O(N + n·log n)` with one. This crate supplies both
//! sides of that comparison:
//!
//! * [`NeighborSource`] — the query interface event extraction needs: *all
//!   records direct-atypical-related to record `i`* (Definition 1),
//! * [`StIndex`] — the indexed implementation: per-sensor window lists
//!   (binary searched over the `δt` horizon) crossed with the network's
//!   `δd` sensor neighbourhoods,
//! * [`NaiveNeighbors`] — the `O(n)`-per-seed full scan,
//! * [`AggregateRTree`] — a Papadias-style aggregate R-tree over per-sensor
//!   severity, the related-work baseline for spatial range aggregation,
//! * [`InvertedIndex`] — key → slot posting lists; the exact candidate
//!   generator behind indexed cluster integration (`Sim` is zero whenever
//!   no sensor and no window is shared, so non-candidates are provably
//!   below any merge threshold).

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod argtree;
pub mod inverted;
pub mod st_index;

pub use argtree::AggregateRTree;
pub use inverted::InvertedIndex;
pub use st_index::{NaiveNeighbors, NeighborSource, StIndex};
