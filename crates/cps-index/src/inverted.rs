//! A generic inverted index: key → posting list of slot ids.
//!
//! Cluster integration (Algorithm 3) only ever merges clusters whose
//! similarity exceeds `δsim > 0`, and `Sim = ½(SimSF + SimTF)` is *exactly
//! zero* when the two clusters share no sensor and no time window (the
//! numerators of Equations 3/4 are sums over the key intersection). An
//! inverted index over feature keys therefore yields an **exact** candidate
//! set: any cluster absent from every posting list of the probe's keys has
//! similarity 0 and can be skipped without evaluating it.
//!
//! The index is deliberately minimal — membership only, no severities — so
//! maintenance on merge (remove two clusters, insert the merged one) stays
//! cheap and allocation-free on the hot path. Posting lists are unordered;
//! callers that need a deterministic evaluation order sort the gathered
//! candidates themselves (see `atypical::integrate_index`).

use cps_core::fx::FxHashMap;
use std::hash::Hash;

/// Inverted index from feature keys to the slots that contain them.
///
/// `K` is a cheap copyable key (`SensorId`, `TimeWindow`); slots are `u32`
/// handles managed by the caller. A slot must be [`Self::insert`]ed and
/// [`Self::remove`]d with exactly the same key set (typically the keys of a
/// feature vector, which are immutable once built).
#[derive(Clone, Debug, Default)]
pub struct InvertedIndex<K> {
    postings: FxHashMap<K, Vec<u32>>,
    /// Total number of `(key, slot)` postings — O(1) size accounting.
    len: usize,
}

impl<K: Copy + Eq + Hash> InvertedIndex<K> {
    /// An empty index.
    pub fn new() -> Self {
        Self {
            postings: FxHashMap::default(),
            len: 0,
        }
    }

    /// Registers `slot` under every key of `keys`.
    ///
    /// Keys must be distinct (feature vectors are key-sorted and deduped, so
    /// this holds by construction for the integration use-case).
    pub fn insert<I: IntoIterator<Item = K>>(&mut self, slot: u32, keys: I) {
        for key in keys {
            self.postings.entry(key).or_default().push(slot);
            self.len += 1;
        }
    }

    /// Unregisters `slot` from every key of `keys` — the exact key set it
    /// was inserted with.
    ///
    /// # Panics
    /// Panics (in debug builds) if a key has no posting for `slot`; that
    /// indicates insert/remove asymmetry in the caller.
    pub fn remove<I: IntoIterator<Item = K>>(&mut self, slot: u32, keys: I) {
        for key in keys {
            let Some(list) = self.postings.get_mut(&key) else {
                debug_assert!(false, "remove of a key that was never inserted");
                continue;
            };
            match list.iter().position(|&s| s == slot) {
                Some(i) => {
                    list.swap_remove(i);
                    self.len -= 1;
                    if list.is_empty() {
                        self.postings.remove(&key);
                    }
                }
                None => debug_assert!(false, "remove of a slot not present under key"),
            }
        }
    }

    /// The slots registered under `key` (empty if none). Order is
    /// unspecified.
    pub fn slots(&self, key: K) -> &[u32] {
        self.postings.get(&key).map_or(&[], Vec::as_slice)
    }

    /// Number of distinct keys with at least one posting.
    pub fn num_keys(&self) -> usize {
        self.postings.len()
    }

    /// Total number of `(key, slot)` postings.
    pub fn num_postings(&self) -> usize {
        self.len
    }

    /// Whether the index holds no postings at all.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_gather_remove_roundtrip() {
        let mut idx: InvertedIndex<u32> = InvertedIndex::new();
        idx.insert(0, [1, 2, 3]);
        idx.insert(1, [3, 4]);
        assert_eq!(idx.num_keys(), 4);
        assert_eq!(idx.num_postings(), 5);
        assert_eq!(idx.slots(1), &[0]);
        let mut shared: Vec<u32> = idx.slots(3).to_vec();
        shared.sort_unstable();
        assert_eq!(shared, vec![0, 1]);

        idx.remove(0, [1, 2, 3]);
        assert_eq!(idx.slots(1), &[] as &[u32]);
        assert_eq!(idx.slots(3), &[1]);
        assert_eq!(idx.num_postings(), 2);

        idx.remove(1, [3, 4]);
        assert!(idx.is_empty());
        assert_eq!(idx.num_keys(), 0);
    }

    #[test]
    fn disjoint_slots_never_share_postings() {
        let mut idx: InvertedIndex<u32> = InvertedIndex::new();
        idx.insert(7, [10, 11]);
        idx.insert(8, [20, 21]);
        for key in [10, 11] {
            assert_eq!(idx.slots(key), &[7]);
        }
        for key in [20, 21] {
            assert_eq!(idx.slots(key), &[8]);
        }
        assert_eq!(idx.slots(99), &[] as &[u32]);
    }

    #[test]
    fn reinsert_after_remove_is_clean() {
        let mut idx: InvertedIndex<u32> = InvertedIndex::new();
        idx.insert(0, [5]);
        idx.insert(1, [5]);
        idx.remove(0, [5]);
        idx.insert(2, [5]);
        let mut got = idx.slots(5).to_vec();
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
    }
}
