//! Aggregate R-tree (the aR-tree of Papadias et al., SSTD 2001).
//!
//! The related-work baseline the paper contrasts against: every R-tree node
//! stores the total severity of its subtree, so a spatial range-aggregate
//! query can add whole subtrees that fall entirely inside the range and only
//! descends into partially-overlapping nodes. It answers *"how much
//! severity in box W"* fast — but, as the paper argues, a single numeric
//! aggregate over pre-defined rectangles cannot describe the shape of
//! atypical events; that is exactly the gap the atypical-cluster model
//! fills.

use cps_core::Severity;
use cps_geo::{BoundingBox, Point};

const NODE_CAPACITY: usize = 16;

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        entries: Vec<(Point, Severity)>,
        bbox: BoundingBox,
        total: Severity,
    },
    Inner {
        children: Vec<Node>,
        bbox: BoundingBox,
        total: Severity,
    },
}

impl Node {
    fn bbox(&self) -> &BoundingBox {
        match self {
            Node::Leaf { bbox, .. } | Node::Inner { bbox, .. } => bbox,
        }
    }

    fn total(&self) -> Severity {
        match self {
            Node::Leaf { total, .. } | Node::Inner { total, .. } => *total,
        }
    }
}

/// Whether `outer` fully contains `inner`.
fn contains_box(outer: &BoundingBox, inner: &BoundingBox) -> bool {
    !inner.is_empty()
        && outer.min_lat <= inner.min_lat
        && outer.min_lon <= inner.min_lon
        && outer.max_lat >= inner.max_lat
        && outer.max_lon >= inner.max_lon
}

/// STR bulk-loaded aggregate R-tree over weighted points.
#[derive(Debug, Clone)]
pub struct AggregateRTree {
    root: Option<Node>,
    len: usize,
}

/// Statistics from one aggregate query — exposes the pruning behaviour the
/// structure exists for.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct QueryTrace {
    /// Nodes whose aggregate was taken wholesale (fully contained).
    pub subtree_hits: u32,
    /// Nodes visited (partially overlapping).
    pub nodes_visited: u32,
    /// Individual entries tested at leaves.
    pub entries_tested: u32,
}

impl AggregateRTree {
    /// Bulk-loads the tree from `(location, severity)` pairs.
    pub fn bulk_load(mut points: Vec<(Point, Severity)>) -> Self {
        let len = points.len();
        if points.is_empty() {
            return Self { root: None, len };
        }
        points.sort_by(|a, b| a.0.lon.partial_cmp(&b.0.lon).unwrap());
        let n_leaves = len.div_ceil(NODE_CAPACITY);
        let n_strips = (n_leaves as f64).sqrt().ceil() as usize;
        let strip_len = len.div_ceil(n_strips);
        let mut leaves = Vec::with_capacity(n_leaves);
        for strip in points.chunks_mut(strip_len.max(1)) {
            strip.sort_by(|a, b| a.0.lat.partial_cmp(&b.0.lat).unwrap());
            for chunk in strip.chunks(NODE_CAPACITY) {
                let bbox = BoundingBox::of_points(chunk.iter().map(|&(p, _)| p));
                let total = chunk.iter().map(|&(_, s)| s).sum();
                leaves.push(Node::Leaf {
                    entries: chunk.to_vec(),
                    bbox,
                    total,
                });
            }
        }
        let mut nodes = leaves;
        while nodes.len() > 1 {
            let mut next = Vec::with_capacity(nodes.len().div_ceil(NODE_CAPACITY));
            let mut iter = nodes.into_iter().peekable();
            while iter.peek().is_some() {
                let children: Vec<Node> = iter.by_ref().take(NODE_CAPACITY).collect();
                let bbox = children
                    .iter()
                    .fold(BoundingBox::EMPTY, |b, c| b.union(c.bbox()));
                let total = children.iter().map(Node::total).sum();
                next.push(Node::Inner {
                    children,
                    bbox,
                    total,
                });
            }
            nodes = next;
        }
        Self {
            root: nodes.pop(),
            len,
        }
    }

    /// Number of weighted points stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Grand total severity.
    pub fn total(&self) -> Severity {
        self.root.as_ref().map_or(Severity::ZERO, Node::total)
    }

    /// Total severity of points inside `query`, plus the pruning trace.
    pub fn range_severity(&self, query: &BoundingBox) -> (Severity, QueryTrace) {
        let mut trace = QueryTrace::default();
        let total = self
            .root
            .as_ref()
            .map_or(Severity::ZERO, |root| Self::visit(root, query, &mut trace));
        (total, trace)
    }

    fn visit(node: &Node, query: &BoundingBox, trace: &mut QueryTrace) -> Severity {
        if !node.bbox().intersects(query) {
            return Severity::ZERO;
        }
        if contains_box(query, node.bbox()) {
            trace.subtree_hits += 1;
            return node.total();
        }
        trace.nodes_visited += 1;
        match node {
            Node::Leaf { entries, .. } => {
                trace.entries_tested += entries.len() as u32;
                entries
                    .iter()
                    .filter(|(p, _)| query.contains(*p))
                    .map(|&(_, s)| s)
                    .sum()
            }
            Node::Inner { children, .. } => {
                children.iter().map(|c| Self::visit(c, query, trace)).sum()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cps_geo::point::LOS_ANGELES;
    use proptest::prelude::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn weighted_points(n: usize, seed: u64) -> Vec<(Point, Severity)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                (
                    LOS_ANGELES
                        .offset_miles(rng.gen_range(-20.0..20.0), rng.gen_range(-20.0..20.0)),
                    Severity::from_secs(rng.gen_range(60..600)),
                )
            })
            .collect()
    }

    #[test]
    fn empty_tree_has_zero_total() {
        let t = AggregateRTree::bulk_load(vec![]);
        assert!(t.is_empty());
        assert_eq!(t.total(), Severity::ZERO);
        let (s, _) = t.range_severity(&BoundingBox::new(-90.0, -180.0, 90.0, 180.0));
        assert_eq!(s, Severity::ZERO);
    }

    #[test]
    fn whole_space_query_returns_grand_total() {
        let pts = weighted_points(300, 1);
        let want: Severity = pts.iter().map(|&(_, s)| s).sum();
        let t = AggregateRTree::bulk_load(pts);
        assert_eq!(t.total(), want);
        let (got, trace) = t.range_severity(&BoundingBox::new(-90.0, -180.0, 90.0, 180.0));
        assert_eq!(got, want);
        // The root is fully contained: exactly one subtree hit, nothing
        // visited.
        assert_eq!(trace.subtree_hits, 1);
        assert_eq!(trace.nodes_visited, 0);
    }

    #[test]
    fn range_query_matches_brute_force() {
        let pts = weighted_points(500, 2);
        let t = AggregateRTree::bulk_load(pts.clone());
        let q = BoundingBox::of_point(LOS_ANGELES).inflated_miles(7.0);
        let want: Severity = pts
            .iter()
            .filter(|(p, _)| q.contains(*p))
            .map(|&(_, s)| s)
            .sum();
        let (got, trace) = t.range_severity(&q);
        assert_eq!(got, want);
        assert!(trace.entries_tested < 500, "should prune most leaves");
    }

    #[test]
    fn subtree_aggregation_prunes_interior() {
        let pts = weighted_points(2000, 3);
        let t = AggregateRTree::bulk_load(pts);
        let q = BoundingBox::of_point(LOS_ANGELES).inflated_miles(15.0);
        let (_, trace) = t.range_severity(&q);
        assert!(
            trace.subtree_hits > 0,
            "a large query must take whole subtrees"
        );
    }

    proptest! {
        #[test]
        fn prop_range_severity_correct(seed in 0u64..30, dn in -10.0f64..10.0, de in -10.0f64..10.0, r in 1.0f64..15.0) {
            let pts = weighted_points(200, seed);
            let t = AggregateRTree::bulk_load(pts.clone());
            let q = BoundingBox::of_point(LOS_ANGELES.offset_miles(dn, de)).inflated_miles(r);
            let want: Severity = pts.iter().filter(|(p, _)| q.contains(*p)).map(|&(_, s)| s).sum();
            let (got, _) = t.range_severity(&q);
            prop_assert_eq!(got, want);
        }
    }
}
