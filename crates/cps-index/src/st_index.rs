//! Direct-atypical-related neighbour search (Definition 1).
//!
//! Two atypical records are *direct atypical related* when their sensors are
//! within `δd` miles and their windows within `δt` minutes. Event extraction
//! (Algorithm 1) repeatedly expands a seed record by its direct relations;
//! this module provides that query behind the [`NeighborSource`] trait, with
//! an indexed and a naive implementation so Proposition 1's complexity claim
//! can be measured (see `cps-bench/benches/retrieval.rs`).

use cps_core::fx::FxHashMap;
use cps_core::{AtypicalRecord, Params, SensorId, TimeWindow, WindowSpec};
use cps_geo::RoadNetwork;

/// Source of direct-atypical-related neighbours over a fixed record slice.
pub trait NeighborSource {
    /// The records this source indexes.
    fn records(&self) -> &[AtypicalRecord];

    /// Indices of all records direct-atypical-related to record `idx`
    /// (excluding `idx` itself).
    fn direct_related(&self, idx: u32, out: &mut Vec<u32>);
}

/// Maximum window-index gap allowed by `δt`: `gap · window_minutes < δt`.
#[inline]
pub fn max_gap_windows(params: &Params, spec: WindowSpec) -> u32 {
    if params.delta_t_minutes == 0 {
        return 0;
    }
    params.delta_t_minutes.div_ceil(spec.window_minutes) - 1
}

/// Indexed neighbour source: `O(log n + answer)` per query.
///
/// Layout: for every sensor, the (window, record-index) pairs sorted by
/// window; for every sensor, the pre-resolved `δd` neighbourhood from the
/// road network's spatial locator.
pub struct StIndex<'a> {
    records: &'a [AtypicalRecord],
    by_sensor: FxHashMap<SensorId, Vec<(TimeWindow, u32)>>,
    neighborhoods: FxHashMap<SensorId, Vec<SensorId>>,
    max_gap: u32,
}

impl<'a> StIndex<'a> {
    /// Builds the index over `records`.
    pub fn build(
        records: &'a [AtypicalRecord],
        network: &RoadNetwork,
        params: &Params,
        spec: WindowSpec,
    ) -> Self {
        let mut by_sensor: FxHashMap<SensorId, Vec<(TimeWindow, u32)>> = FxHashMap::default();
        for (i, r) in records.iter().enumerate() {
            by_sensor
                .entry(r.sensor)
                .or_default()
                .push((r.window, i as u32));
        }
        for list in by_sensor.values_mut() {
            list.sort_unstable();
        }
        // Resolve the δd neighbourhood once per *distinct* sensor present —
        // typically far fewer than the record count.
        let mut neighborhoods: FxHashMap<SensorId, Vec<SensorId>> = FxHashMap::default();
        for &sensor in by_sensor.keys() {
            let mut near = network.sensors_near(sensor, params.delta_d_miles);
            near.push(sensor); // a record relates to later records of its own sensor
            near.retain(|s| by_sensor.contains_key(s));
            neighborhoods.insert(sensor, near);
        }
        Self {
            records,
            by_sensor,
            neighborhoods,
            max_gap: max_gap_windows(params, spec),
        }
    }

    /// Number of distinct sensors present in the record set.
    pub fn num_active_sensors(&self) -> usize {
        self.by_sensor.len()
    }
}

impl NeighborSource for StIndex<'_> {
    fn records(&self) -> &[AtypicalRecord] {
        self.records
    }

    fn direct_related(&self, idx: u32, out: &mut Vec<u32>) {
        let rec = &self.records[idx as usize];
        let lo = TimeWindow::new(rec.window.raw().saturating_sub(self.max_gap));
        let hi = TimeWindow::new(rec.window.raw().saturating_add(self.max_gap));
        let Some(neighborhood) = self.neighborhoods.get(&rec.sensor) else {
            return;
        };
        for sensor in neighborhood {
            let Some(list) = self.by_sensor.get(sensor) else {
                continue;
            };
            let start = list.partition_point(|&(w, _)| w < lo);
            for &(w, i) in &list[start..] {
                if w > hi {
                    break;
                }
                if i != idx {
                    out.push(i);
                }
            }
        }
    }
}

/// Naive neighbour source: full scan per query (`O(n)` per seed, `O(n²)`
/// over an extraction run) — the unindexed side of Proposition 1.
pub struct NaiveNeighbors<'a> {
    records: &'a [AtypicalRecord],
    network: &'a RoadNetwork,
    delta_d_miles: f64,
    max_gap: u32,
}

impl<'a> NaiveNeighbors<'a> {
    /// Wraps a record slice for naive scanning.
    pub fn new(
        records: &'a [AtypicalRecord],
        network: &'a RoadNetwork,
        params: &Params,
        spec: WindowSpec,
    ) -> Self {
        Self {
            records,
            network,
            delta_d_miles: params.delta_d_miles,
            max_gap: max_gap_windows(params, spec),
        }
    }
}

impl NeighborSource for NaiveNeighbors<'_> {
    fn records(&self) -> &[AtypicalRecord] {
        self.records
    }

    fn direct_related(&self, idx: u32, out: &mut Vec<u32>) {
        let rec = &self.records[idx as usize];
        for (i, other) in self.records.iter().enumerate() {
            let i = i as u32;
            if i == idx {
                continue;
            }
            if rec.window.gap(other.window) <= self.max_gap
                && self.network.distance_miles(rec.sensor, other.sensor) <= self.delta_d_miles
            {
                out.push(i);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cps_core::Severity;
    use cps_geo::point::LOS_ANGELES;

    fn grid_network() -> RoadNetwork {
        RoadNetwork::builder()
            .highway(
                "EW",
                vec![
                    LOS_ANGELES.offset_miles(0.0, -10.0),
                    LOS_ANGELES.offset_miles(0.0, 10.0),
                ],
                0.5,
            )
            .highway(
                "NS",
                vec![
                    LOS_ANGELES.offset_miles(-10.0, 0.0),
                    LOS_ANGELES.offset_miles(10.0, 0.0),
                ],
                0.5,
            )
            .build()
    }

    fn rec(sensor: u32, window: u32) -> AtypicalRecord {
        AtypicalRecord::new(
            SensorId::new(sensor),
            TimeWindow::new(window),
            Severity::from_secs(120),
        )
    }

    #[test]
    fn gap_computation_matches_paper_defaults() {
        let spec = WindowSpec::PEMS;
        // δt = 15 min, 5-min windows: gaps of 0,1,2 windows qualify.
        assert_eq!(max_gap_windows(&Params::paper_defaults(), spec), 2);
        assert_eq!(
            max_gap_windows(&Params::paper_defaults().with_delta_t(5), spec),
            0
        );
        assert_eq!(
            max_gap_windows(&Params::paper_defaults().with_delta_t(80), spec),
            15
        );
    }

    #[test]
    fn indexed_matches_naive_on_random_records() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let network = grid_network();
        let mut rng = StdRng::seed_from_u64(42);
        let n_sensors = network.num_sensors() as u32;
        let records: Vec<AtypicalRecord> = (0..600)
            .map(|_| rec(rng.gen_range(0..n_sensors), rng.gen_range(0..200)))
            .collect();
        let params = Params::paper_defaults();
        let spec = WindowSpec::PEMS;
        let indexed = StIndex::build(&records, &network, &params, spec);
        let naive = NaiveNeighbors::new(&records, &network, &params, spec);
        let mut a = Vec::new();
        let mut b = Vec::new();
        for i in 0..records.len() as u32 {
            a.clear();
            b.clear();
            indexed.direct_related(i, &mut a);
            naive.direct_related(i, &mut b);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "record {i}");
        }
    }

    #[test]
    fn neighbors_respect_both_thresholds() {
        let network = grid_network();
        // Sensors 0 and 1 are 0.5 miles apart on the same highway; sensor
        // 30 is ~15 miles away.
        let records = vec![rec(0, 100), rec(1, 101), rec(1, 110), rec(30, 100)];
        let params = Params::paper_defaults();
        let idx = StIndex::build(&records, &network, &params, WindowSpec::PEMS);
        let mut out = Vec::new();
        idx.direct_related(0, &mut out);
        // Only (1, 101): (1, 110) is 50 minutes away, (30, 100) too far.
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn same_sensor_consecutive_windows_relate() {
        let network = grid_network();
        let records = vec![rec(5, 100), rec(5, 101), rec(5, 104)];
        let params = Params::paper_defaults();
        let idx = StIndex::build(&records, &network, &params, WindowSpec::PEMS);
        let mut out = Vec::new();
        idx.direct_related(0, &mut out);
        out.sort_unstable();
        assert_eq!(out, vec![1]); // window 104 is 20 min away > δt
        assert_eq!(idx.num_active_sensors(), 1);
    }

    #[test]
    fn empty_records_are_fine() {
        let network = grid_network();
        let records: Vec<AtypicalRecord> = vec![];
        let params = Params::paper_defaults();
        let idx = StIndex::build(&records, &network, &params, WindowSpec::PEMS);
        assert_eq!(idx.records().len(), 0);
    }
}
