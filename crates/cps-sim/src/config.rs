//! Simulation scales and configuration.

use cps_core::WindowSpec;
use serde::{Deserialize, Serialize};

/// Deployment scale: how large the synthetic network and archive are.
///
/// `Paper` matches the PeMS deployment's magnitudes; the smaller presets
/// keep identical *ratios* (sensor spacing, atypical fraction, event mix)
/// while shrinking the sensor count so experiments finish on a laptop.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// ~60 sensors, 2×2 highways — unit tests.
    Tiny,
    /// ~300 sensors, 4×3 highways — integration tests and Criterion benches.
    Small,
    /// ~1,000 sensors, 7×5 highways — the repro harness default.
    Medium,
    /// ~4,000 sensors, 21×17 highways — the paper's magnitude.
    Paper,
}

impl Scale {
    /// (east-west highways, north-south highways, half-extent in miles).
    pub fn dimensions(self) -> (u32, u32, f64) {
        match self {
            Scale::Tiny => (2, 2, 7.0),
            Scale::Small => (4, 3, 12.0),
            Scale::Medium => (6, 5, 28.0),
            Scale::Paper => (21, 17, 55.0),
        }
    }

    /// Sensor spacing along highways, miles. The paper-scale deployment
    /// uses the wider spacing of the real PeMS mainline stations so that
    /// 38 highways come out at ≈4,000 sensors.
    pub fn sensor_spacing_miles(self) -> f64 {
        match self {
            Scale::Paper => 1.0,
            _ => 0.5,
        }
    }

    /// Parses a scale name (`tiny|small|medium|paper`).
    pub fn parse(s: &str) -> Option<Scale> {
        match s.to_ascii_lowercase().as_str() {
            "tiny" => Some(Scale::Tiny),
            "small" => Some(Scale::Small),
            "medium" => Some(Scale::Medium),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }
}

/// Full generator configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SimConfig {
    /// Master RNG seed; every generated artifact is a pure function of it.
    pub seed: u64,
    /// Deployment scale.
    pub scale: Scale,
    /// Number of monthly datasets (`D1`..).
    pub n_datasets: u32,
    /// Days per dataset (the paper's months; 30 by default).
    pub days_per_dataset: u32,
    /// Time discretization.
    pub spec: WindowSpec,
    /// Congestion speed threshold (mph) for the atypical criterion.
    pub congestion_threshold_mph: f32,
    /// Mean free-flow speed (mph).
    pub freeflow_mph: f32,
    /// Probability that a hotspot fires on a weekday.
    pub hotspot_weekday_prob: f64,
    /// Probability that a hotspot fires on a weekend day.
    pub hotspot_weekend_prob: f64,
    /// Multiplier on the per-site daily firing probability of minor
    /// recurring background sites (1.0 = each site's own 0.1–0.5).
    pub background_rate: f64,
    /// Per-reading probability of an isolated noise dip.
    pub noise_dip_prob: f64,
    /// Expected accidents per day per 400 sensors.
    pub accident_rate: f64,
    /// Fraction of the deployment's sensors forming the *hot region*
    /// (the spatially compact set nearest the deployment center). `0.0`
    /// (the default) disables skew entirely: the generated archive is
    /// bit-identical to one produced before the knob existed.
    pub hot_region_ratio: f64,
    /// Extra transient event mass aimed at the hot region, as a fraction
    /// of the day's organically planned events (security-log-style
    /// operational skew: a small slice of the deployment produces most of
    /// the incident volume). Drawn from its own RNG stream, so turning it
    /// on only *adds* events — the base day is unchanged.
    pub hot_region_share: f64,
}

impl SimConfig {
    /// Defaults used across the test-suite and the repro harness.
    pub fn new(scale: Scale, seed: u64) -> Self {
        Self {
            seed,
            scale,
            n_datasets: 12,
            days_per_dataset: 30,
            spec: WindowSpec::PEMS,
            congestion_threshold_mph: 40.0,
            freeflow_mph: 63.0,
            hotspot_weekday_prob: 0.9,
            hotspot_weekend_prob: 0.45,
            background_rate: 1.0,
            noise_dip_prob: 0.001,
            accident_rate: 1.0,
            hot_region_ratio: 0.0,
            hot_region_share: 0.0,
        }
    }

    /// Builder-style override of the dataset count.
    pub fn with_datasets(mut self, n: u32) -> Self {
        self.n_datasets = n;
        self
    }

    /// Builder-style hot-region skew: `ratio` of the sensors form the hot
    /// region, `share` scales the extra event mass aimed at it. Both must
    /// be in `[0, 1]`; `(0, 0)` restores the unskewed generator.
    pub fn with_hot_region(mut self, ratio: f64, share: f64) -> Self {
        assert!((0.0..=1.0).contains(&ratio), "ratio must be in [0, 1]");
        assert!((0.0..=1.0).contains(&share), "share must be in [0, 1]");
        self.hot_region_ratio = ratio;
        self.hot_region_share = share;
        self
    }

    /// Builder-style override of days per dataset.
    pub fn with_days_per_dataset(mut self, n: u32) -> Self {
        self.days_per_dataset = n;
        self
    }

    /// Total days in the archive.
    pub fn total_days(&self) -> u32 {
        self.n_datasets * self.days_per_dataset
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_ordered_by_size() {
        let sensors = |s: Scale| {
            let (ew, ns, ext) = s.dimensions();
            (ew + ns) as f64 * 2.0 * ext / s.sensor_spacing_miles()
        };
        assert!(sensors(Scale::Tiny) < sensors(Scale::Small));
        assert!(sensors(Scale::Small) < sensors(Scale::Medium));
        assert!(sensors(Scale::Medium) < sensors(Scale::Paper));
    }

    #[test]
    fn parse_roundtrip() {
        assert_eq!(Scale::parse("tiny"), Some(Scale::Tiny));
        assert_eq!(Scale::parse("PAPER"), Some(Scale::Paper));
        assert_eq!(Scale::parse("bogus"), None);
    }

    #[test]
    fn config_totals() {
        let c = SimConfig::new(Scale::Tiny, 1)
            .with_datasets(3)
            .with_days_per_dataset(10);
        assert_eq!(c.total_days(), 30);
    }
}
