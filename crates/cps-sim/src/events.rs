//! The congestion diffusion model.
//!
//! A planned event seeds at one sensor and diffuses along the *road graph*
//! (not free space): the affected radius grows to a peak and shrinks back
//! following a half-sine envelope, and intensity decays with hop distance
//! from the seed. This reproduces the paper's description of congestion —
//! "starts from a single street … swiftly expands along the street …
//! covers hundreds of sensors when reaching the full size" — and guarantees
//! the generated records form `δd`/`δt`-connected components.

use cps_core::fx::FxHashMap;
use cps_core::{SensorId, TimeWindow};
use cps_geo::RoadNetwork;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Why an event was planned — joins onto the context dimensions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventCause {
    /// Recurring rush-hour hotspot (index into the scenario's hotspot list).
    Hotspot(u32),
    /// Non-recurring background event.
    Background,
    /// Triggered by a simulated accident.
    Accident,
    /// Extra transient event injected by the hot-region skew mode.
    HotRegion,
}

/// Parameters of one planned event.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EventTemplate {
    /// Sensor where the event starts.
    pub seed_sensor: SensorId,
    /// First affected window (global index).
    pub start_window: TimeWindow,
    /// Lifetime in windows.
    pub duration_windows: u32,
    /// Maximum diffusion radius, in road-graph hops.
    pub peak_radius_hops: u32,
    /// Peak intensity in `(0, 1]` (1 = traffic fully stopped at the seed).
    pub peak_intensity: f64,
    /// Floor of the time envelope in `(0, 1]`: rush-hour corridors hold a
    /// near-peak plateau (high sustain); transient blips rise and fall
    /// (low sustain).
    pub sustain: f64,
}

/// A planned event with its cause.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PlannedEvent {
    /// Diffusion parameters.
    pub template: EventTemplate,
    /// What caused it.
    pub cause: EventCause,
}

impl EventTemplate {
    /// Time envelope at offset `k` (half-sine over the duration, floored so
    /// the event never vanishes mid-life).
    #[inline]
    pub fn time_shape(&self, k: u32) -> f64 {
        let d = self.duration_windows.max(1) as f64;
        let x = std::f64::consts::PI * (k as f64 + 0.5) / d;
        x.sin().max(self.sustain)
    }

    /// The last affected window (exclusive).
    pub fn end_window(&self) -> TimeWindow {
        TimeWindow::new(self.start_window.raw() + self.duration_windows)
    }

    /// Computes per-(sensor, window) congestion intensity in `(0, 1]`.
    ///
    /// Returns a map from affected sensor/window pairs to intensity; the
    /// caller overlays multiple events by taking the maximum.
    pub fn impact(&self, network: &RoadNetwork) -> FxHashMap<(SensorId, TimeWindow), f64> {
        let hops = hop_distances(network, self.seed_sensor, self.peak_radius_hops);
        let mut out = FxHashMap::default();
        for k in 0..self.duration_windows {
            let shape = self.time_shape(k);
            let active_radius = (self.peak_radius_hops as f64 * shape).ceil() as u32;
            let w = TimeWindow::new(self.start_window.raw() + k);
            for (&sensor, &hop) in &hops {
                if hop > active_radius {
                    continue;
                }
                // Congestion is plateau-like along the jammed stretch and
                // drops near the edge (stop-and-go everywhere inside the
                // queue, not a smooth cone).
                let falloff = 1.0 - 0.3 * hop as f64 / (active_radius as f64 + 1.0);
                let intensity = self.peak_intensity * shape * falloff;
                if intensity > 0.02 {
                    out.insert((sensor, w), intensity);
                }
            }
        }
        out
    }
}

/// BFS hop distances from `seed` out to `max_hops` over the road graph.
pub fn hop_distances(
    network: &RoadNetwork,
    seed: SensorId,
    max_hops: u32,
) -> FxHashMap<SensorId, u32> {
    let mut dist: FxHashMap<SensorId, u32> = FxHashMap::default();
    let mut queue = VecDeque::new();
    dist.insert(seed, 0);
    queue.push_back(seed);
    while let Some(s) = queue.pop_front() {
        let d = dist[&s];
        if d == max_hops {
            continue;
        }
        for &n in network.road_neighbors(s) {
            dist.entry(n).or_insert_with(|| {
                queue.push_back(n);
                d + 1
            });
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Scale;
    use crate::network::build_network;

    fn template(net: &RoadNetwork) -> EventTemplate {
        EventTemplate {
            seed_sensor: SensorId::new((net.num_sensors() / 2) as u32),
            start_window: TimeWindow::new(100),
            duration_windows: 12,
            peak_radius_hops: 6,
            peak_intensity: 0.9,
            sustain: 0.2,
        }
    }

    #[test]
    fn hop_distances_respect_radius() {
        let net = build_network(Scale::Tiny, 1);
        let d = hop_distances(&net, SensorId::new(3), 4);
        assert_eq!(d[&SensorId::new(3)], 0);
        assert!(d.values().all(|&h| h <= 4));
        assert!(d.len() > 4, "BFS should reach along the highway");
    }

    #[test]
    fn impact_grows_then_shrinks() {
        let net = build_network(Scale::Tiny, 1);
        let t = template(&net);
        let impact = t.impact(&net);
        let width_at = |k: u32| {
            let w = TimeWindow::new(t.start_window.raw() + k);
            impact.keys().filter(|&&(_, kw)| kw == w).count()
        };
        let early = width_at(0);
        let mid = width_at(t.duration_windows / 2);
        let late = width_at(t.duration_windows - 1);
        assert!(mid > early, "event must expand: early={early} mid={mid}");
        assert!(mid > late, "event must contract: mid={mid} late={late}");
    }

    #[test]
    fn intensity_is_highest_at_seed_and_peak() {
        let net = build_network(Scale::Tiny, 1);
        let t = template(&net);
        let impact = t.impact(&net);
        let peak_w = TimeWindow::new(t.start_window.raw() + t.duration_windows / 2);
        let at_seed = impact[&(t.seed_sensor, peak_w)];
        for (&(_, _), &v) in &impact {
            assert!(v <= at_seed + 1e-9);
            assert!(v > 0.0 && v <= 1.0);
        }
    }

    #[test]
    fn impact_stays_within_time_bounds() {
        let net = build_network(Scale::Tiny, 1);
        let t = template(&net);
        for &(_, w) in t.impact(&net).keys() {
            assert!(w >= t.start_window && w < t.end_window());
        }
    }

    #[test]
    fn time_shape_is_positive_and_bounded() {
        let net = build_network(Scale::Tiny, 1);
        let t = template(&net);
        for k in 0..t.duration_windows {
            let s = t.time_shape(k);
            assert!((0.2..=1.0).contains(&s));
        }
    }
}
