//! Battlefield surveillance scenario.
//!
//! The paper motivates CPS analysis with traffic *and* battlefield
//! surveillance (§I, §VII: "applying the proposed methods to more
//! applications, such as intruder detection on battlefields"). This module
//! exercises the identical pipeline on a different physical process: a grid
//! of acoustic sensors, where the atypical events are *intrusions* — a
//! disturbance that **moves across** the field rather than growing and
//! shrinking in place like congestion.
//!
//! Readings reuse [`RawRecord`]: `speed_mph` carries the ambient quietness
//! level (high = quiet); an intrusion drives the level below the atypical
//! threshold along its path.

use crate::config::SimConfig;
use crate::events::hop_distances;
use cps_core::fx::FxHashMap;
use cps_core::record::{AtypicalCriterion, SpeedThreshold};
use cps_core::{AtypicalRecord, RawRecord, SensorId, TimeWindow};
use cps_geo::{point::LOS_ANGELES, RoadNetwork};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a patrol-field: an `n × n` lattice of sensor trails.
pub fn battlefield_network(n: u32, seed: u64) -> RoadNetwork {
    let _ = seed; // lattice is regular; kept for API symmetry
    let mut builder = RoadNetwork::builder();
    let extent = n as f64 * 0.4;
    for i in 0..n {
        let off = (i as f64 / (n - 1).max(1) as f64 - 0.5) * 2.0 * extent;
        builder = builder.highway(
            format!("trail-ew-{i}"),
            vec![
                LOS_ANGELES.offset_miles(off, -extent),
                LOS_ANGELES.offset_miles(off, extent),
            ],
            0.4,
        );
        builder = builder.highway(
            format!("trail-ns-{i}"),
            vec![
                LOS_ANGELES.offset_miles(-extent, off),
                LOS_ANGELES.offset_miles(extent, off),
            ],
            0.4,
        );
    }
    builder.interchange_radius(0.45).build()
}

/// One intrusion: a disturbance walking across the sensor field.
#[derive(Clone, Debug)]
pub struct Intrusion {
    /// Sensor path the intruder follows (road-graph walk).
    pub path: Vec<SensorId>,
    /// Window the walk starts at.
    pub start_window: TimeWindow,
    /// Windows spent near each path sensor.
    pub dwell_windows: u32,
}

/// Battlefield simulator: same record model, different event dynamics.
pub struct BattlefieldSim {
    config: SimConfig,
    network: RoadNetwork,
}

impl BattlefieldSim {
    /// Creates the simulator (grid side scales with the configured scale).
    pub fn new(config: SimConfig) -> Self {
        let n = match config.scale {
            crate::config::Scale::Tiny => 4,
            crate::config::Scale::Small => 6,
            crate::config::Scale::Medium => 10,
            crate::config::Scale::Paper => 20,
        };
        let network = battlefield_network(n, config.seed);
        Self { config, network }
    }

    /// The sensor field.
    pub fn network(&self) -> &RoadNetwork {
        &self.network
    }

    /// Quietness criterion (level below 40 = disturbance).
    pub fn criterion(&self) -> SpeedThreshold {
        SpeedThreshold {
            threshold_mph: 40.0,
            spec: self.config.spec,
        }
    }

    /// Plans the day's intrusions (0–3 per day).
    pub fn plan_intrusions(&self, day: u32) -> Vec<Intrusion> {
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ (u64::from(day) << 20) ^ 0xbf);
        let wpd = self.config.spec.windows_per_day();
        let n = rng.gen_range(0..=3);
        (0..n)
            .map(|_| {
                let start_sensor =
                    SensorId::new(rng.gen_range(0..self.network.num_sensors() as u32));
                let len = rng.gen_range(5..20usize);
                let mut path = vec![start_sensor];
                let mut current = start_sensor;
                for _ in 0..len {
                    let neighbors = self.network.road_neighbors(current);
                    if neighbors.is_empty() {
                        break;
                    }
                    current = neighbors[rng.gen_range(0..neighbors.len())];
                    path.push(current);
                }
                Intrusion {
                    path,
                    start_window: TimeWindow::new(
                        day * wpd + rng.gen_range(0..wpd.saturating_sub(64)),
                    ),
                    dwell_windows: rng.gen_range(1..=3),
                }
            })
            .collect()
    }

    /// Generates one day of acoustic readings.
    pub fn generate_day(&self, day: u32) -> Vec<RawRecord> {
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ (u64::from(day) << 21) ^ 0xcd);
        let intrusions = self.plan_intrusions(day);
        let spec = self.config.spec;
        let wpd = spec.windows_per_day();
        let day_start = day * wpd;

        // Paint disturbance levels along each intrusion path: the walker
        // disturbs its current sensor strongly and 1-hop neighbours weakly.
        let mut disturbance: FxHashMap<(SensorId, TimeWindow), f64> = FxHashMap::default();
        for intr in &intrusions {
            let mut w = intr.start_window.raw();
            for &s in &intr.path {
                for dwell in 0..intr.dwell_windows {
                    let window = TimeWindow::new(w + dwell);
                    if window.raw() >= day_start + wpd {
                        break;
                    }
                    for (&n, &hop) in hop_distances(&self.network, s, 1).iter() {
                        let v = if hop == 0 { 0.9 } else { 0.45 };
                        let slot = disturbance.entry((n, window)).or_insert(0.0);
                        if v > *slot {
                            *slot = v;
                        }
                    }
                }
                w += intr.dwell_windows;
            }
        }

        let mut out = Vec::with_capacity(self.network.num_sensors() * wpd as usize);
        for sensor_raw in 0..self.network.num_sensors() as u32 {
            let sensor = SensorId::new(sensor_raw);
            for w in day_start..day_start + wpd {
                let window = TimeWindow::new(w);
                let level = if let Some(&d) = disturbance.get(&(sensor, window)) {
                    (40.0 * (1.0 - d) * rng.gen_range(0.9..1.05)).max(1.0)
                } else {
                    60.0 + rng.gen_range(-5.0..5.0)
                };
                out.push(RawRecord::new(sensor, window, level as f32, 0, 0));
            }
        }
        out
    }

    /// Generates and pre-processes one day to atypical records.
    pub fn atypical_day(&self, day: u32) -> Vec<AtypicalRecord> {
        let criterion = self.criterion();
        self.generate_day(day)
            .iter()
            .filter_map(|r| {
                criterion
                    .classify(r)
                    .map(|s| AtypicalRecord::new(r.sensor, r.window, s))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Scale, SimConfig};

    fn sim() -> BattlefieldSim {
        BattlefieldSim::new(SimConfig::new(Scale::Tiny, 99))
    }

    #[test]
    fn lattice_is_connected() {
        let s = sim();
        assert!(s.network().num_sensors() > 20);
        let isolated = s
            .network()
            .sensors()
            .iter()
            .filter(|x| s.network().road_neighbors(x.id).is_empty())
            .count();
        assert_eq!(isolated, 0);
    }

    #[test]
    fn intrusion_paths_follow_the_graph() {
        let s = sim();
        for day in 0..10 {
            for intr in s.plan_intrusions(day) {
                for pair in intr.path.windows(2) {
                    assert!(
                        s.network().road_neighbors(pair[0]).contains(&pair[1]),
                        "path must walk road edges"
                    );
                }
            }
        }
    }

    #[test]
    fn disturbances_become_atypical_records() {
        let s = sim();
        // Find a day with at least one intrusion.
        let day = (0..20)
            .find(|&d| !s.plan_intrusions(d).is_empty())
            .expect("some day has an intrusion");
        let atypical = s.atypical_day(day);
        assert!(!atypical.is_empty());
    }

    #[test]
    fn generation_is_deterministic() {
        let s = sim();
        assert_eq!(s.generate_day(2), s.generate_day(2));
    }

    #[test]
    fn quiet_days_have_little_noise() {
        let s = sim();
        if let Some(day) = (0..20).find(|&d| s.plan_intrusions(d).is_empty()) {
            assert!(s.atypical_day(day).is_empty(), "no intrusion → no atypical");
        }
    }
}
