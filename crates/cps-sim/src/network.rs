//! Synthetic LA-like freeway network construction.
//!
//! Lays an irregular grid of east-west and north-south freeways over a
//! metropolitan extent, with slight jitter so interchanges are not perfectly
//! aligned. Sensor spacing matches PeMS (~0.5 mile between detector
//! stations).

use crate::config::Scale;
use cps_geo::{point::LOS_ANGELES, Point, RoadNetwork};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds the freeway network for a scale, deterministically in `seed`.
pub fn build_network(scale: Scale, seed: u64) -> RoadNetwork {
    let (n_ew, n_ns, extent) = scale.dimensions();
    let spacing = scale.sensor_spacing_miles();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6e65_7477_6f72_6b00);
    let mut builder = RoadNetwork::builder();

    // East-west freeways, spread north-south across the extent.
    for i in 0..n_ew {
        let frac = if n_ew == 1 {
            0.5
        } else {
            i as f64 / (n_ew - 1) as f64
        };
        let offset_n = (frac - 0.5) * 2.0 * extent * 0.85 + rng.gen_range(-0.8..0.8);
        let waypoints = wiggly_line(
            LOS_ANGELES.offset_miles(offset_n, -extent),
            LOS_ANGELES.offset_miles(offset_n, extent),
            &mut rng,
        );
        builder = builder.highway(format!("I-{} (EW)", 10 + 10 * i), waypoints, spacing);
    }
    // North-south freeways, spread east-west.
    for i in 0..n_ns {
        let frac = if n_ns == 1 {
            0.5
        } else {
            i as f64 / (n_ns - 1) as f64
        };
        let offset_e = (frac - 0.5) * 2.0 * extent * 0.85 + rng.gen_range(-0.8..0.8);
        let waypoints = wiggly_line(
            LOS_ANGELES.offset_miles(-extent, offset_e),
            LOS_ANGELES.offset_miles(extent, offset_e),
            &mut rng,
        );
        builder = builder.highway(format!("SR-{} (NS)", 101 + 2 * i), waypoints, spacing);
    }
    builder.build()
}

/// A gently wiggling polyline between two endpoints (freeways are not
/// perfectly straight; this also avoids degenerate colinear interchanges).
fn wiggly_line(a: Point, b: Point, rng: &mut StdRng) -> Vec<Point> {
    const SEGMENTS: usize = 8;
    let mut pts = Vec::with_capacity(SEGMENTS + 1);
    for k in 0..=SEGMENTS {
        let t = k as f64 / SEGMENTS as f64;
        let mut p = a.lerp(b, t);
        if k != 0 && k != SEGMENTS {
            p = p.offset_miles(rng.gen_range(-0.4..0.4), rng.gen_range(-0.4..0.4));
        }
        pts.push(p);
    }
    pts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn network_is_deterministic_in_seed() {
        let a = build_network(Scale::Tiny, 7);
        let b = build_network(Scale::Tiny, 7);
        assert_eq!(a.num_sensors(), b.num_sensors());
        for (x, y) in a.sensors().iter().zip(b.sensors()) {
            assert_eq!(x, y);
        }
        let c = build_network(Scale::Tiny, 8);
        let same = a
            .sensors()
            .iter()
            .zip(c.sensors())
            .all(|(x, y)| x.location == y.location);
        assert!(!same, "different seeds must differ");
    }

    #[test]
    fn tiny_scale_sensor_count() {
        let net = build_network(Scale::Tiny, 1);
        // 4 highways × ~14 miles at 0.5-mile spacing ≈ 28 sensors each.
        assert!(
            (80..160).contains(&net.num_sensors()),
            "got {}",
            net.num_sensors()
        );
    }

    #[test]
    fn network_is_connected_enough_for_diffusion() {
        // Every sensor should have at least one road neighbour.
        let net = build_network(Scale::Small, 3);
        let isolated = net
            .sensors()
            .iter()
            .filter(|s| net.road_neighbors(s.id).is_empty())
            .count();
        assert_eq!(isolated, 0);
    }

    #[test]
    fn highways_cross_and_interlink() {
        let net = build_network(Scale::Tiny, 5);
        let mut cross_links = 0usize;
        for s in net.sensors() {
            for &n in net.road_neighbors(s.id) {
                if net.sensor(n).highway != s.highway {
                    cross_links += 1;
                }
            }
        }
        assert!(cross_links > 0, "grid must have interchanges");
    }
}
