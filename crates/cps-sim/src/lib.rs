//! # cps-sim
//!
//! Synthetic CPS workload generator.
//!
//! The paper evaluates on twelve months of PeMS loop-detector data
//! (LA/Ventura, ~4,000 sensors, 428 M records, 54 GB) — an archive this
//! reproduction substitutes with a generator that reproduces the
//! *statistical structure* the algorithms are sensitive to:
//!
//! * **sensors on a road network** reporting every window ([`network`]
//!   builds the LA-like freeway grid),
//! * **congestion events** that seed at recurring hotspots, diffuse along
//!   the road graph, peak, and dissolve ([`events`]) — so extracted events
//!   are spatially contiguous, grow/shrink over time, and can merge/split,
//! * **rush-hour seasonality** with AM/PM-directional hotspots — so
//!   spatially overlapping but temporally disjoint clusters exist (the
//!   paper's Figure 7 scenario that defeats purely spatial aggregation),
//! * **heavy-tailed event sizes plus isolated noise dips** — so only 0.1 %
//!   to 0.5 % of integrated macro-clusters are *significant*, matching the
//!   paper's observation,
//! * **2–5 % atypical records overall** (Figure 14's data profile),
//! * **context streams** (weather, accidents) for the multi-dimensional
//!   extension of §V-D.
//!
//! Everything is deterministic in the configured seed: day `d` is generated
//! from `hash(seed, d)` so datasets are reproducible and order-independent.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod battlefield;
pub mod config;
pub mod context;
pub mod events;
pub mod network;
pub mod traffic;

pub use config::{Scale, SimConfig};
pub use context::{Accident, Weather, WeatherDay};
pub use events::{EventTemplate, PlannedEvent};
pub use traffic::{GeneratedDay, TrafficSim};
