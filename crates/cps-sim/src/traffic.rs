//! The traffic generator: plans events per day and renders raw readings.

use crate::config::SimConfig;
use crate::context::{Accident, Weather, WeatherDay};
use crate::events::{hop_distances, EventCause, EventTemplate, PlannedEvent};
use crate::network::build_network;
use cps_core::fx::FxHashMap;
use cps_core::record::{AtypicalCriterion, SpeedThreshold};
use cps_core::{AtypicalRecord, DatasetId, RawRecord, Result, SensorId, TimeWindow};
use cps_geo::RoadNetwork;
use cps_storage::{DatasetMeta, DatasetStore};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Daily period a hotspot is active in.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Period {
    /// Morning rush (seeds 07:00–09:30).
    Am,
    /// Evening rush (seeds 16:00–19:30).
    Pm,
}

/// A recurring congestion site.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Hotspot {
    /// Seed sensor of the recurring events.
    pub sensor: SensorId,
    /// Rush period it fires in.
    pub period: Period,
    /// Strength multiplier on event duration (heterogeneous corridors:
    /// some always make the significant list, some are borderline).
    pub strength: f64,
    /// First day the corridor is active (construction seasons, demand
    /// shifts: corridors are not eternal, which is why a fixed-`δs`
    /// threshold admits fewer clusters as the query range grows).
    pub active_from_day: u32,
    /// Days the corridor stays active.
    pub active_days: u32,
    /// Major corridors jam hard enough to clear Definition 5's
    /// N-proportional bar by themselves; minors only shape the trivia.
    pub major: bool,
    /// Pre-sized diffusion radius (majors only; 0 for minors).
    pub radius_hops: u32,
    /// Pre-sized typical event duration in windows (majors only).
    pub duration_base: u32,
}

/// Everything generated for one day.
#[derive(Clone, Debug)]
pub struct GeneratedDay {
    /// Global day index.
    pub day: u32,
    /// Raw readings: one per (sensor, window).
    pub raw: Vec<RawRecord>,
    /// The day's weather.
    pub weather: WeatherDay,
    /// Accident reports.
    pub accidents: Vec<Accident>,
    /// Events that were planned (ground truth for diagnostics).
    pub planned: Vec<PlannedEvent>,
}

/// A minor recurring congestion site: a merge ramp, lane drop or similar
/// that blips most days around the same time — individually trivial, but
/// the reason most micro-clusters are noise from the analyst's viewpoint.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct BackgroundSite {
    /// Location of the recurring blips.
    pub sensor: SensorId,
    /// Preferred minute-of-day the blip starts around.
    pub minute_of_day: u32,
    /// Daily firing probability (before the rate multiplier).
    pub fire_prob: f64,
}

/// Deterministic traffic simulator over a fixed network.
pub struct TrafficSim {
    config: SimConfig,
    network: RoadNetwork,
    hotspots: Vec<Hotspot>,
    background_sites: Vec<BackgroundSite>,
    /// The hot-region sensor set (empty when skew is off): the
    /// `hot_region_ratio` fraction of sensors nearest the deployment
    /// center, so the region is spatially compact.
    hot_sensors: Vec<SensorId>,
}

impl TrafficSim {
    /// Builds the network and picks the recurring hotspots.
    pub fn new(config: SimConfig) -> Self {
        let network = build_network(config.scale, config.seed);
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0x686f_7473_706f_7473);
        // Major corridors live in the metropolitan core (the inner ~half of
        // the extent) — the periphery only sees minor recurring blips, so
        // most micro-clusters end up far from any significant cluster,
        // which is what gives the red-zone filter its ~80 % prune rate.
        let bbox = network.bbox();
        let core = cps_geo::BoundingBox::new(
            bbox.min_lat + 0.18 * (bbox.max_lat - bbox.min_lat),
            bbox.min_lon + 0.18 * (bbox.max_lon - bbox.min_lon),
            bbox.max_lat - 0.18 * (bbox.max_lat - bbox.min_lat),
            bbox.max_lon - 0.18 * (bbox.max_lon - bbox.min_lon),
        );
        // Corridors seed near interchanges (sensors with 3+ road
        // neighbours): real recurring jams radiate from junctions, and the
        // multi-armed reach is what lets a compact corridor cover enough
        // sensors to matter against the N-proportional threshold.
        let core_sensors: Vec<SensorId> = network
            .sensors()
            .iter()
            .filter(|s| core.contains(s.location) && network.road_neighbors(s.id).len() >= 3)
            .map(|s| s.id)
            .collect();
        let n_hotspots = (network.num_sensors() / 55).max(4);
        let mut hotspots: Vec<Hotspot> = Vec::with_capacity(n_hotspots);
        // Keep same-period corridors spatially separated so each stays a
        // distinct cluster (two corridors that touch and jam at the same
        // hours are, analytically, one corridor).
        let min_separation_miles = 15.0;
        let mut attempts = 0;
        while hotspots.len() < n_hotspots && attempts < 20 * n_hotspots {
            attempts += 1;
            let sensor = if core_sensors.is_empty() {
                SensorId::new(rng.gen_range(0..network.num_sensors() as u32))
            } else {
                core_sensors[rng.gen_range(0..core_sensors.len())]
            };
            let period = if hotspots.len().is_multiple_of(2) {
                Period::Am
            } else {
                Period::Pm
            };
            let clash = hotspots.iter().any(|h| {
                h.period == period
                    && network.distance_miles(h.sensor, sensor) < min_separation_miles
            });
            if clash {
                continue;
            }
            // Tiering: two eternal major corridors (one AM, one PM) so
            // every analysis window sees significant structure; a few
            // seasonal majors that come and go (which is what makes
            // significant clusters scarcer as the query range grows); and a
            // tail of minor corridors that populate the trivia.
            let horizon = config.n_datasets * config.days_per_dataset;
            let idx = hotspots.len();
            let (major, strength, active_from_day, active_days) = if idx < 2 {
                (true, rng.gen_range(2.2..2.7), 0, horizon.max(250))
            } else if idx < 5 {
                // Seasonal majors are biased toward the start of the
                // archive so the evaluation's 7–84-day query windows see
                // their rise and fall.
                (
                    true,
                    rng.gen_range(1.8..2.4),
                    rng.gen_range(0..(horizon / 4).max(1)),
                    rng.gen_range(21..=90),
                )
            } else {
                (
                    false,
                    rng.gen_range(0.5..1.9),
                    rng.gen_range(0..horizon.saturating_sub(20).max(1)),
                    rng.gen_range(30..=200),
                )
            };
            // Self-calibrate each major against the deployment: pick the
            // smallest (radius, duration) whose expected severity clears
            // Definition 5's day bar by the corridor's strength-derived
            // margin, assuming ~3.6 atypical minutes per affected
            // sensor-window. This keeps the significant-cluster structure
            // scale-invariant without blowing the 2–5 % atypical budget.
            let (radius_hops, duration_base) = if major {
                let spacing = config.scale.sensor_spacing_miles();
                // Eternal majors are sized comfortably above the day bar;
                // seasonal majors straddle it, so beforehand pruning (Pru)
                // loses some of their days and can miss them entirely.
                let margin = if idx < 2 { 0.85 } else { 0.75 };
                let target_min = 14.4 * network.num_sensors() as f64 * (margin * strength);
                let mut radius = (3.3 / spacing).round().max(3.0) as u32;
                let max_radius = (14.0 / spacing) as u32;
                loop {
                    let star = hop_distances(&network, sensor, radius).len() as f64;
                    let dur = target_min / (star * 3.6);
                    if dur <= 190.0 || radius >= max_radius {
                        break (radius, dur.min(200.0).ceil() as u32);
                    }
                    radius += 2;
                }
            } else {
                (0, 0)
            };
            hotspots.push(Hotspot {
                sensor,
                period,
                strength,
                active_from_day,
                active_days,
                major,
                radius_hops,
                duration_base,
            });
        }
        let n_sites = (network.num_sensors() / 4).max(8);
        let background_sites: Vec<BackgroundSite> = (0..n_sites)
            .map(|_| BackgroundSite {
                sensor: SensorId::new(rng.gen_range(0..network.num_sensors() as u32)),
                minute_of_day: rng.gen_range(360..1320), // 06:00–22:00
                fire_prob: rng.gen_range(0.03..0.25),
            })
            .collect();
        // Deterministic (no RNG draws): the nearest-to-center sensors by
        // squared coordinate distance, so enabling skew cannot perturb the
        // hotspot/background streams above.
        let hot_sensors = if config.hot_region_ratio > 0.0 {
            let k = ((network.num_sensors() as f64 * config.hot_region_ratio).ceil() as usize)
                .clamp(1, network.num_sensors());
            let bbox = network.bbox();
            let (clat, clon) = (
                (bbox.min_lat + bbox.max_lat) / 2.0,
                (bbox.min_lon + bbox.max_lon) / 2.0,
            );
            let mut by_distance: Vec<(f64, SensorId)> = network
                .sensors()
                .iter()
                .map(|s| {
                    let (dlat, dlon) = (s.location.lat - clat, s.location.lon - clon);
                    (dlat * dlat + dlon * dlon, s.id)
                })
                .collect();
            by_distance.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then_with(|| a.1.cmp(&b.1)));
            by_distance.truncate(k);
            by_distance.into_iter().map(|(_, id)| id).collect()
        } else {
            Vec::new()
        };
        Self {
            config,
            network,
            hotspots,
            background_sites,
            hot_sensors,
        }
    }

    /// The underlying road network.
    pub fn network(&self) -> &RoadNetwork {
        &self.network
    }

    /// The configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The recurring hotspots.
    pub fn hotspots(&self) -> &[Hotspot] {
        &self.hotspots
    }

    /// The minor recurring background sites.
    pub fn background_sites(&self) -> &[BackgroundSite] {
        &self.background_sites
    }

    /// The hot-region sensors (empty when `hot_region_ratio` is 0).
    pub fn hot_sensors(&self) -> &[SensorId] {
        &self.hot_sensors
    }

    /// The congestion criterion matching the generator's speed model.
    pub fn criterion(&self) -> SpeedThreshold {
        SpeedThreshold {
            threshold_mph: self.config.congestion_threshold_mph,
            spec: self.config.spec,
        }
    }

    fn day_rng(&self, day: u32) -> StdRng {
        // Mix day into the seed so each day is independent of generation
        // order (splitmix-style finalizer).
        let mut z = self
            .config
            .seed
            .wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(u64::from(day) + 1));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        StdRng::seed_from_u64(z ^ (z >> 31))
    }

    /// Separate stream for the hot-region skew: the base day's draws are
    /// untouched whether or not skew is on.
    fn hot_rng(&self, day: u32) -> StdRng {
        let mut z = (self.config.seed ^ 0x686f_745f_7265_6769)
            .wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(u64::from(day) + 1));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        StdRng::seed_from_u64(z ^ (z >> 31))
    }

    /// Generates one day of readings, events and context, deterministically.
    pub fn generate_day(&self, day: u32) -> GeneratedDay {
        let mut rng = self.day_rng(day);
        let spec = self.config.spec;
        let wpd = spec.windows_per_day();
        let day_start = day * wpd;
        let weekend = spec.is_weekend(TimeWindow::new(day_start));

        let weather = {
            let x: f64 = rng.gen();
            if x < 0.70 {
                Weather::Clear
            } else if x < 0.95 {
                Weather::Rain
            } else {
                Weather::Storm
            }
        };

        let mut planned = Vec::new();
        let mut accidents = Vec::new();

        // Recurring hotspots.
        let base_prob = if weekend {
            self.config.hotspot_weekend_prob
        } else {
            self.config.hotspot_weekday_prob
        };
        let fire_prob = (base_prob * weather.event_rate_multiplier()).min(0.95);
        for (i, h) in self.hotspots.iter().enumerate() {
            let active = day >= h.active_from_day && day < h.active_from_day + h.active_days;
            if !active || rng.gen::<f64>() >= fire_prob {
                continue;
            }
            let minute = match h.period {
                Period::Am => rng.gen_range(420..=570),  // 07:00–09:30
                Period::Pm => rng.gen_range(960..=1170), // 16:00–19:30
            };
            // Majors replay their pre-calibrated (radius, duration) with
            // daily jitter; minors are transient strength-scaled blips.
            let spacing = self.config.scale.sensor_spacing_miles();
            let (duration, radius, intensity, sustain) = if h.major {
                // Eternal majors (first two) jam consistently; seasonal
                // majors alternate light and heavy days — their aggregate
                // clears Definition 5 while many individual days do not,
                // which is exactly the cluster shape beforehand pruning
                // (Pru) cannot reconstruct.
                let jitter = if i < 2 {
                    rng.gen_range(0.7..1.35)
                } else if rng.gen::<f64>() < 0.5 {
                    0.5 * rng.gen_range(0.85..1.15)
                } else {
                    1.6 * rng.gen_range(0.85..1.15)
                };
                let mut d = f64::from(h.duration_base) * jitter;
                if rng.gen::<f64>() < 0.15 {
                    d *= 1.5; // occasional monster jam
                }
                (
                    d,
                    rng.gen_range(h.radius_hops..=h.radius_hops + 2),
                    rng.gen_range(0.93..0.99),
                    0.85,
                )
            } else {
                let lo = ((1.2 + 0.8 * h.strength) / spacing).round().max(2.0) as u32;
                (
                    rng.gen_range(30..=110) as f64 * h.strength,
                    rng.gen_range(lo..=lo + 2),
                    rng.gen_range(0.8..0.95),
                    0.5,
                )
            };
            let duration = duration * weather.duration_multiplier();
            planned.push(PlannedEvent {
                template: self.clamped_template(
                    h.sensor,
                    day_start + minute / spec.window_minutes,
                    duration as u32,
                    radius,
                    intensity,
                    sustain,
                    day_start + wpd,
                ),
                cause: EventCause::Hotspot(i as u32),
            });
        }

        // Minor recurring background sites: individually trivial blips
        // around a site-specific clock time.
        for site in &self.background_sites {
            let p = (site.fire_prob * self.config.background_rate).min(0.9);
            if rng.gen::<f64>() >= p {
                continue;
            }
            let minute = (site.minute_of_day as i64 + rng.gen_range(-25..=25)).max(0) as u32;
            let start = (day_start + minute / spec.window_minutes).min(day_start + wpd - 4);
            planned.push(PlannedEvent {
                template: self.clamped_template(
                    site.sensor,
                    start,
                    rng.gen_range(2..=6),
                    rng.gen_range(1..=3),
                    rng.gen_range(0.45..0.8),
                    0.2,
                    day_start + wpd,
                ),
                cause: EventCause::Background,
            });
        }

        // Accidents.
        let lambda = self.network.num_sensors() as f64 / 400.0 * self.config.accident_rate;
        for _ in 0..poisson(&mut rng, lambda) {
            let sensor = SensorId::new(rng.gen_range(0..self.network.num_sensors() as u32));
            let start = day_start + rng.gen_range(0..wpd.saturating_sub(24));
            let grade = rng.gen_range(1..=3u8);
            accidents.push(Accident {
                sensor,
                window: TimeWindow::new(start),
                grade,
            });
            planned.push(PlannedEvent {
                template: self.clamped_template(
                    sensor,
                    start,
                    rng.gen_range(6..=18) * u32::from(grade),
                    1 + u32::from(grade),
                    0.75 + 0.08 * f64::from(grade),
                    0.3,
                    day_start + wpd,
                ),
                cause: EventCause::Accident,
            });
        }

        // Hot-region skew (off by default): extra transient events seeded
        // inside the compact hot set, from a dedicated RNG stream. With
        // the mode off this block draws nothing, so the default archive
        // is bit-identical to one generated before the knob existed.
        if !self.hot_sensors.is_empty() && self.config.hot_region_share > 0.0 {
            let mut hot_rng = self.hot_rng(day);
            let extra =
                ((planned.len() as f64 * self.config.hot_region_share).ceil() as usize).max(1);
            for _ in 0..extra {
                let sensor = self.hot_sensors[hot_rng.gen_range(0..self.hot_sensors.len())];
                let minute = hot_rng.gen_range(300..1380); // 05:00–23:00
                let start = (day_start + minute / spec.window_minutes).min(day_start + wpd - 4);
                planned.push(PlannedEvent {
                    template: self.clamped_template(
                        sensor,
                        start,
                        hot_rng.gen_range(4..=12),
                        hot_rng.gen_range(1..=3),
                        hot_rng.gen_range(0.6..0.9),
                        0.35,
                        day_start + wpd,
                    ),
                    cause: EventCause::HotRegion,
                });
            }
        }

        // Overlay event impacts (max wins where events overlap).
        let mut impact: FxHashMap<(SensorId, TimeWindow), f64> = FxHashMap::default();
        for ev in &planned {
            for (key, v) in ev.template.impact(&self.network) {
                let slot = impact.entry(key).or_insert(0.0);
                if v > *slot {
                    *slot = v;
                }
            }
        }

        // Render raw readings: every sensor reports every window.
        let threshold = f64::from(self.config.congestion_threshold_mph);
        let freeflow = f64::from(self.config.freeflow_mph);
        let n_sensors = self.network.num_sensors() as u32;
        let mut raw = Vec::with_capacity((n_sensors * wpd) as usize);
        for sensor_raw in 0..n_sensors {
            let sensor = SensorId::new(sensor_raw);
            for w in day_start..day_start + wpd {
                let window = TimeWindow::new(w);
                let speed = if let Some(&i) = impact.get(&(sensor, window)) {
                    // Congested: speed proportional to (1 − intensity) of the
                    // threshold, with jitter.
                    (threshold * (1.0 - i) * rng.gen_range(0.88..1.02)).max(2.0)
                } else if rng.gen::<f64>() < self.config.noise_dip_prob {
                    // Isolated sensor glitch / brief slowdown.
                    rng.gen_range(0.55..0.97) * threshold
                } else {
                    (freeflow + rng.gen_range(-7.0..7.0)).max(threshold + 2.0)
                };
                let congestion = ((threshold - speed) / threshold).clamp(0.0, 1.0);
                let flow =
                    (40.0 + 80.0 * (1.0 - congestion) + rng.gen_range(-8.0..8.0)).max(1.0) as u16;
                let occupancy =
                    ((120.0 + 700.0 * congestion) * rng.gen_range(0.9..1.1)).min(1000.0) as u16;
                raw.push(RawRecord::new(
                    sensor,
                    window,
                    speed as f32,
                    flow,
                    occupancy,
                ));
            }
        }

        GeneratedDay {
            day,
            raw,
            weather: WeatherDay { day, weather },
            accidents,
            planned,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn clamped_template(
        &self,
        sensor: SensorId,
        start: u32,
        duration: u32,
        radius: u32,
        intensity: f64,
        sustain: f64,
        day_end: u32,
    ) -> EventTemplate {
        let duration = duration.clamp(2, day_end.saturating_sub(start).max(2));
        EventTemplate {
            seed_sensor: sensor,
            start_window: TimeWindow::new(start),
            duration_windows: duration,
            peak_radius_hops: radius,
            peak_intensity: intensity,
            sustain,
        }
    }

    /// Generates and pre-processes one day directly to atypical records
    /// (in-memory path used by tests and Criterion benches).
    pub fn atypical_day(&self, day: u32) -> Vec<AtypicalRecord> {
        let generated = self.generate_day(day);
        let criterion = self.criterion();
        generated
            .raw
            .iter()
            .filter_map(|r| {
                criterion
                    .classify(r)
                    .map(|sev| AtypicalRecord::new(r.sensor, r.window, sev))
            })
            .collect()
    }

    /// Renders the whole archive to a [`DatasetStore`]: raw and atypical
    /// partitions per day plus catalog metadata and context logs.
    pub fn write_store(&self, root: &Path) -> Result<DatasetStore> {
        let mut store = DatasetStore::create(root, self.config.spec)?;
        let criterion = self.criterion();
        for m in 0..self.config.n_datasets {
            let id = DatasetId::new(m + 1);
            let first_day = m * self.config.days_per_dataset;
            let mut n_raw = 0u64;
            let mut n_atypical = 0u64;
            let mut weather_log = Vec::new();
            let mut accident_log = Vec::new();
            for local in 0..self.config.days_per_dataset {
                let day = first_day + local;
                let generated = self.generate_day(day);
                let mut rw = store.raw_writer(id, local)?;
                let mut aw = store.atypical_writer(id, local)?;
                for r in &generated.raw {
                    rw.write_raw(r)?;
                    if let Some(sev) = criterion.classify(r) {
                        aw.write_atypical(&AtypicalRecord::new(r.sensor, r.window, sev))?;
                    }
                }
                n_raw += rw.finish()?;
                n_atypical += aw.finish()?;
                weather_log.push(generated.weather);
                accident_log.extend(generated.accidents);
            }
            store.register_dataset(DatasetMeta {
                id,
                name: format!("Month {}", m + 1),
                first_day,
                n_days: self.config.days_per_dataset,
                n_sensors: self.network.num_sensors() as u32,
                n_raw_records: n_raw,
                n_atypical_records: n_atypical,
            })?;
            let context = ContextLog {
                weather: weather_log,
                accidents: accident_log,
            };
            let text = serde_json::to_string(&context).expect("context log serializes");
            std::fs::write(root.join(format!("context-{id}.json")), text)?;
        }
        Ok(store)
    }
}

/// Persisted per-dataset context log.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ContextLog {
    /// One entry per day.
    pub weather: Vec<WeatherDay>,
    /// All accident reports in the dataset.
    pub accidents: Vec<Accident>,
}

impl ContextLog {
    /// Loads the context log for a dataset from a store root.
    pub fn load(root: &Path, id: DatasetId) -> Result<ContextLog> {
        let text = std::fs::read_to_string(root.join(format!("context-{id}.json")))?;
        serde_json::from_str(&text)
            .map_err(|e| cps_core::CpsError::corrupt("context log", e.to_string()))
    }
}

/// Knuth Poisson sampler (fine for the small rates used here).
fn poisson(rng: &mut StdRng, lambda: f64) -> u32 {
    if lambda <= 0.0 {
        return 0;
    }
    let l = (-lambda).exp();
    let mut k = 0u32;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
        if k > 1000 {
            return k; // safety valve; unreachable for sane λ
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Scale;

    fn sim() -> TrafficSim {
        TrafficSim::new(SimConfig::new(Scale::Tiny, 42))
    }

    #[test]
    fn day_generation_is_deterministic() {
        let s = sim();
        let a = s.generate_day(3);
        let b = s.generate_day(3);
        assert_eq!(a.raw, b.raw);
        assert_eq!(a.planned, b.planned);
        assert_eq!(a.weather, b.weather);
    }

    #[test]
    fn every_sensor_reports_every_window() {
        let s = sim();
        let day = s.generate_day(0);
        let expected = s.network().num_sensors() * s.config().spec.windows_per_day() as usize;
        assert_eq!(day.raw.len(), expected);
    }

    #[test]
    fn atypical_fraction_in_paper_band() {
        let s = sim();
        let mut raw = 0usize;
        let mut atypical = 0usize;
        for day in 0..5 {
            let g = s.generate_day(day);
            raw += g.raw.len();
            atypical += s.atypical_day(day).len();
        }
        let frac = atypical as f64 / raw as f64;
        // Figure 14 reports ~2.3 % to ~4 %; allow a wider tolerance band
        // (the tiny test network concentrates the corridors).
        assert!(
            (0.01..=0.12).contains(&frac),
            "atypical fraction {frac:.4} outside band"
        );
    }

    #[test]
    fn weekdays_are_busier_than_weekends() {
        let s = sim();
        // Days 0–4 are weekdays, 5–6 weekend (epoch is a Monday).
        let weekday: usize = (0..5).map(|d| s.atypical_day(d).len()).sum();
        let weekend: usize = (5..7).map(|d| s.atypical_day(d).len()).sum();
        let weekday_rate = weekday as f64 / 5.0;
        let weekend_rate = weekend as f64 / 2.0;
        assert!(
            weekday_rate > weekend_rate,
            "weekday {weekday_rate} vs weekend {weekend_rate}"
        );
    }

    #[test]
    fn hotspots_recur_across_weekdays() {
        let s = sim();
        let hotspot = s.hotspots()[0].sensor;
        let days_fired = (0..10)
            .filter(|&d| {
                s.generate_day(d)
                    .planned
                    .iter()
                    .any(|e| e.cause == EventCause::Hotspot(0) && e.template.seed_sensor == hotspot)
            })
            .count();
        assert!(days_fired >= 4, "hotspot fired only {days_fired}/10 days");
    }

    #[test]
    fn am_hotspots_seed_in_the_morning() {
        let s = sim();
        let spec = s.config().spec;
        for day in 0..10 {
            for ev in s.generate_day(day).planned {
                if let EventCause::Hotspot(i) = ev.cause {
                    let hour = spec.hour_of_day(ev.template.start_window);
                    match s.hotspots()[i as usize].period {
                        Period::Am => assert!((7..=9).contains(&hour), "AM at {hour}h"),
                        Period::Pm => assert!((16..=19).contains(&hour), "PM at {hour}h"),
                    }
                }
            }
        }
    }

    #[test]
    fn events_make_congested_sensors_slow() {
        let s = sim();
        let g = s.generate_day(0);
        let Some(ev) = g.planned.first() else {
            return;
        };
        let peak =
            TimeWindow::new(ev.template.start_window.raw() + ev.template.duration_windows / 2);
        let seed_speed = g
            .raw
            .iter()
            .find(|r| r.sensor == ev.template.seed_sensor && r.window == peak)
            .unwrap()
            .speed_mph;
        assert!(
            seed_speed < s.config().congestion_threshold_mph,
            "seed at peak must be congested, got {seed_speed}"
        );
    }

    #[test]
    fn write_store_roundtrip() {
        let root = std::env::temp_dir().join(format!("cps-sim-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let config = SimConfig::new(Scale::Tiny, 7)
            .with_datasets(2)
            .with_days_per_dataset(3);
        let s = TrafficSim::new(config);
        let store = s.write_store(&root).unwrap();
        assert_eq!(store.catalog().datasets.len(), 2);
        assert_eq!(store.catalog().total_days(), 6);
        assert!(store.catalog().total_atypical_records() > 0);
        // Atypical partitions decode to the same records as the in-memory path.
        let stats = cps_storage::IoStats::shared();
        let from_disk: Vec<AtypicalRecord> = store
            .scan_atypical(DatasetId::new(1), stats)
            .unwrap()
            .map(|r| r.unwrap())
            .collect();
        let in_memory: Vec<AtypicalRecord> = (0..3).flat_map(|d| s.atypical_day(d)).collect();
        assert_eq!(from_disk, in_memory);
        // Context logs exist and parse.
        let ctx = ContextLog::load(&root, DatasetId::new(1)).unwrap();
        assert_eq!(ctx.weather.len(), 3);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn zero_hot_region_is_bit_identical_to_default() {
        let plain = TrafficSim::new(SimConfig::new(Scale::Tiny, 42));
        let zeroed = TrafficSim::new(SimConfig::new(Scale::Tiny, 42).with_hot_region(0.0, 0.0));
        assert!(zeroed.hot_sensors().is_empty());
        for day in 0..3 {
            let a = plain.generate_day(day);
            let b = zeroed.generate_day(day);
            assert_eq!(a.raw, b.raw);
            assert_eq!(a.planned, b.planned);
        }
    }

    #[test]
    fn hot_region_skew_concentrates_events() {
        let config = SimConfig::new(Scale::Tiny, 42).with_hot_region(0.15, 0.8);
        let s = TrafficSim::new(config);
        let hot: std::collections::HashSet<SensorId> = s.hot_sensors().iter().copied().collect();
        assert!(!hot.is_empty());
        assert!(hot.len() <= (s.network().num_sensors() as f64 * 0.15).ceil() as usize);
        let (mut injected, mut in_hot) = (0usize, 0usize);
        for day in 0..5 {
            for ev in s.generate_day(day).planned {
                if ev.cause == EventCause::HotRegion {
                    injected += 1;
                    if hot.contains(&ev.template.seed_sensor) {
                        in_hot += 1;
                    }
                }
            }
        }
        assert!(injected > 0, "skew mode planned no extra events");
        assert_eq!(
            in_hot, injected,
            "every injected event seeds in the hot set"
        );
    }

    #[test]
    fn hot_region_leaves_base_planned_events_unchanged() {
        let plain = TrafficSim::new(SimConfig::new(Scale::Tiny, 42));
        let skewed = TrafficSim::new(SimConfig::new(Scale::Tiny, 42).with_hot_region(0.2, 0.5));
        for day in 0..3 {
            let base = plain.generate_day(day).planned;
            let with_skew: Vec<PlannedEvent> = skewed
                .generate_day(day)
                .planned
                .into_iter()
                .filter(|e| e.cause != EventCause::HotRegion)
                .collect();
            assert_eq!(base, with_skew, "skew only appends events");
        }
    }

    #[test]
    fn poisson_mean_is_roughly_lambda() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 2000;
        let total: u32 = (0..n).map(|_| poisson(&mut rng, 3.0)).sum();
        let mean = f64::from(total) / f64::from(n);
        assert!((2.7..3.3).contains(&mean), "mean {mean}");
        assert_eq!(poisson(&mut rng, 0.0), 0);
    }
}
