//! Context dimensions: weather and accidents.
//!
//! §V-D of the paper sketches joining atypical clusters with *context*
//! dimensions — "the weather dimension can be joined with temporal
//! dimension with the date and the accident dimension can be joined with
//! temporal and spatial dimensions by the accident time and location". The
//! simulator emits both streams; `atypical::context` performs the joins.

use cps_core::{SensorId, TimeWindow};
use serde::{Deserialize, Serialize};

/// Daily weather condition.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Weather {
    /// Dry and clear.
    Clear,
    /// Rain: more and longer congestion events.
    Rain,
    /// Storm: substantially more and longer events.
    Storm,
}

impl Weather {
    /// Multiplier on hotspot firing probability.
    pub fn event_rate_multiplier(self) -> f64 {
        match self {
            Weather::Clear => 1.0,
            Weather::Rain => 1.4,
            Weather::Storm => 2.0,
        }
    }

    /// Multiplier on event duration.
    pub fn duration_multiplier(self) -> f64 {
        match self {
            Weather::Clear => 1.0,
            Weather::Rain => 1.3,
            Weather::Storm => 1.7,
        }
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Weather::Clear => "clear",
            Weather::Rain => "rain",
            Weather::Storm => "storm",
        }
    }
}

/// Weather observation for one day.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct WeatherDay {
    /// Global day index.
    pub day: u32,
    /// Condition on that day.
    pub weather: Weather,
}

/// A simulated accident report.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Accident {
    /// Sensor nearest the accident site.
    pub sensor: SensorId,
    /// Window the accident was reported in.
    pub window: TimeWindow,
    /// Severity grade 1 (fender-bender) ..= 3 (multi-vehicle).
    pub grade: u8,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multipliers_increase_with_severity() {
        assert!(Weather::Clear.event_rate_multiplier() < Weather::Rain.event_rate_multiplier());
        assert!(Weather::Rain.event_rate_multiplier() < Weather::Storm.event_rate_multiplier());
        assert!(Weather::Clear.duration_multiplier() < Weather::Storm.duration_multiplier());
    }

    #[test]
    fn labels() {
        assert_eq!(Weather::Clear.label(), "clear");
        assert_eq!(Weather::Storm.label(), "storm");
    }
}
