//! The temporal concept hierarchy: window → hour → day → week → month.

use cps_core::{TimeWindow, WindowSpec};
use serde::{Deserialize, Serialize};

/// Levels of the temporal hierarchy, finest first.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum TemporalLevel {
    /// One sensing window.
    Window,
    /// One hour.
    Hour,
    /// One day.
    Day,
    /// One 7-day week.
    Week,
    /// One 30-day month partition.
    Month,
}

impl TemporalLevel {
    /// All levels, finest first.
    pub const ALL: [TemporalLevel; 5] = [
        TemporalLevel::Window,
        TemporalLevel::Hour,
        TemporalLevel::Day,
        TemporalLevel::Week,
        TemporalLevel::Month,
    ];

    /// Bucket index of `w` at this level.
    #[inline]
    pub fn bucket_of(self, w: TimeWindow, spec: WindowSpec) -> u32 {
        match self {
            TemporalLevel::Window => w.raw(),
            TemporalLevel::Hour => spec.hour_of(w),
            TemporalLevel::Day => spec.day_of(w),
            TemporalLevel::Week => spec.week_of(w),
            TemporalLevel::Month => spec.month_of(w),
        }
    }

    /// Windows per bucket at this level.
    pub fn windows_per_bucket(self, spec: WindowSpec) -> u32 {
        match self {
            TemporalLevel::Window => 1,
            TemporalLevel::Hour => spec.windows_per_hour(),
            TemporalLevel::Day => spec.windows_per_day(),
            TemporalLevel::Week => spec.windows_per_week(),
            TemporalLevel::Month => spec.windows_per_month(),
        }
    }

    /// The bucket at this level containing an `Hour` bucket — used to roll
    /// the stored hour-grain cuboid up to coarser grains.
    #[inline]
    pub fn bucket_of_hour(self, hour: u32) -> u32 {
        match self {
            TemporalLevel::Window => {
                unreachable!("cannot drill from hour grain down to windows")
            }
            TemporalLevel::Hour => hour,
            TemporalLevel::Day => hour / 24,
            TemporalLevel::Week => hour / (24 * 7),
            TemporalLevel::Month => hour / (24 * 30),
        }
    }

    /// Whether this level is coarser than or equal to `other`.
    pub fn at_least_as_coarse_as(self, other: TemporalLevel) -> bool {
        self >= other
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            TemporalLevel::Window => "window",
            TemporalLevel::Hour => "hour",
            TemporalLevel::Day => "day",
            TemporalLevel::Week => "week",
            TemporalLevel::Month => "month",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_nest() {
        let spec = WindowSpec::PEMS;
        let w = TimeWindow::new(10 * 288 + 137); // day 10, mid-day
        assert_eq!(TemporalLevel::Day.bucket_of(w, spec), 10);
        assert_eq!(TemporalLevel::Week.bucket_of(w, spec), 1);
        assert_eq!(TemporalLevel::Month.bucket_of(w, spec), 0);
        assert_eq!(
            TemporalLevel::Hour.bucket_of(w, spec) / 24,
            TemporalLevel::Day.bucket_of(w, spec)
        );
    }

    #[test]
    fn hour_rollup_consistent_with_direct_bucketing() {
        let spec = WindowSpec::PEMS;
        for widx in [0u32, 287, 288, 5000, 9000, 70000] {
            let w = TimeWindow::new(widx);
            let hour = TemporalLevel::Hour.bucket_of(w, spec);
            for level in [
                TemporalLevel::Day,
                TemporalLevel::Week,
                TemporalLevel::Month,
            ] {
                assert_eq!(
                    level.bucket_of_hour(hour),
                    level.bucket_of(w, spec),
                    "level {level:?} window {widx}"
                );
            }
        }
    }

    #[test]
    fn coarseness_ordering() {
        assert!(TemporalLevel::Month.at_least_as_coarse_as(TemporalLevel::Hour));
        assert!(TemporalLevel::Hour.at_least_as_coarse_as(TemporalLevel::Hour));
        assert!(!TemporalLevel::Hour.at_least_as_coarse_as(TemporalLevel::Day));
    }

    #[test]
    fn windows_per_bucket_match_spec() {
        let spec = WindowSpec::PEMS;
        assert_eq!(TemporalLevel::Window.windows_per_bucket(spec), 1);
        assert_eq!(TemporalLevel::Hour.windows_per_bucket(spec), 12);
        assert_eq!(TemporalLevel::Day.windows_per_bucket(spec), 288);
        assert_eq!(TemporalLevel::Month.windows_per_bucket(spec), 8640);
    }
}
