//! OLAP operations over the cube: slice, dice, roll-up reports and top-k —
//! the query surface CubeView-style systems expose (and exactly what the
//! paper's Example 2 shows to be insufficient for event analysis: every
//! answer here is a bare number over a pre-defined region).

use crate::cube::{CellKey, SpatioTemporalCube};
use crate::hierarchy::TemporalLevel;
use cps_core::measure::CountAndTotal;
use cps_core::{RegionId, Severity};

/// A slice: one region's measure per time bucket, ordered by bucket.
pub fn slice_region(
    cube: &mut SpatioTemporalCube,
    spatial_level: usize,
    region: RegionId,
    temporal: TemporalLevel,
) -> Vec<(u32, CountAndTotal)> {
    let mut out: Vec<(u32, CountAndTotal)> = cube
        .cuboid(spatial_level, temporal)
        .iter()
        .filter(|(k, _)| k.region == region)
        .map(|(k, &m)| (k.bucket, m))
        .collect();
    out.sort_unstable_by_key(|&(b, _)| b);
    out
}

/// A dice: total measure over a set of regions × a bucket range.
pub fn dice(
    cube: &mut SpatioTemporalCube,
    spatial_level: usize,
    regions: &[RegionId],
    temporal: TemporalLevel,
    buckets: std::ops::Range<u32>,
) -> CountAndTotal {
    use cps_core::measure::DistributiveMeasure;
    let cuboid = cube.cuboid(spatial_level, temporal);
    regions
        .iter()
        .flat_map(|&region| {
            buckets
                .clone()
                .filter_map(move |bucket| cuboid.get(&CellKey { region, bucket }).copied())
        })
        .fold(CountAndTotal::identity(), CountAndTotal::merge)
}

/// The `k` heaviest cells of a cuboid, by total severity.
pub fn top_k_cells(
    cube: &mut SpatioTemporalCube,
    spatial_level: usize,
    temporal: TemporalLevel,
    k: usize,
) -> Vec<(CellKey, Severity)> {
    let mut cells: Vec<(CellKey, Severity)> = cube
        .cuboid(spatial_level, temporal)
        .iter()
        .map(|(&key, m)| (key, m.total))
        .collect();
    cells.sort_unstable_by_key(|&(key, sev)| (std::cmp::Reverse(sev), key.region, key.bucket));
    cells.truncate(k);
    cells
}

/// The "red zone report" of Example 2: regions whose severity density over
/// a bucket range exceeds `delta_s` — CubeView's closest analogue to the
/// red zones of Algorithm 4 (and the input we validate them against).
pub fn heavy_regions(
    cube: &mut SpatioTemporalCube,
    spatial_level: usize,
    temporal: TemporalLevel,
    buckets: std::ops::Range<u32>,
    delta_s: f64,
    region_sensors: impl Fn(RegionId) -> u32,
    windows_per_bucket: u32,
) -> Vec<(RegionId, Severity)> {
    use cps_core::fx::FxHashMap;
    let mut per_region: FxHashMap<RegionId, Severity> = FxHashMap::default();
    for (k, m) in cube.cuboid(spatial_level, temporal) {
        if buckets.contains(&k.bucket) {
            *per_region.entry(k.region).or_default() += m.total;
        }
    }
    let n_buckets = buckets.end - buckets.start;
    let mut out: Vec<(RegionId, Severity)> = per_region
        .into_iter()
        .filter(|&(region, total)| {
            let n_i = region_sensors(region);
            let threshold = Severity::from_minutes(
                delta_s * f64::from(n_buckets * windows_per_bucket) * f64::from(n_i),
            );
            n_i > 0 && total >= threshold
        })
        .collect();
    out.sort_unstable_by_key(|&(r, _)| r);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cps_core::{SensorId, TimeWindow, WindowSpec};
    use cps_geo::grid::RegionHierarchy;
    use cps_geo::point::LOS_ANGELES;
    use cps_geo::RoadNetwork;

    fn cube() -> (RoadNetwork, SpatioTemporalCube) {
        let net = RoadNetwork::builder()
            .highway(
                "EW",
                vec![
                    LOS_ANGELES.offset_miles(0.0, -8.0),
                    LOS_ANGELES.offset_miles(0.0, 8.0),
                ],
                0.5,
            )
            .build();
        let h = RegionHierarchy::standard(&net, 2.0, 3);
        let mut cube = SpatioTemporalCube::new(h, WindowSpec::PEMS);
        // Sensor 0 heavy on hour 8 every day; sensor 20 light once.
        for day in 0..3u32 {
            for w in 0..6 {
                cube.add(
                    SensorId::new(0),
                    TimeWindow::new(day * 288 + 8 * 12 + w),
                    Severity::from_minutes(4.0),
                );
            }
        }
        cube.add(
            SensorId::new(20),
            TimeWindow::new(100),
            Severity::from_minutes(1.0),
        );
        (net, cube)
    }

    fn region_of(net: &RoadNetwork, sensor: u32) -> RegionId {
        let h = RegionHierarchy::standard(net, 2.0, 3);
        h.finest().region_of(SensorId::new(sensor))
    }

    #[test]
    fn slice_orders_buckets() {
        let (net, mut cube) = cube();
        let r = region_of(&net, 0);
        let slice = slice_region(&mut cube, 0, r, TemporalLevel::Day);
        assert_eq!(slice.len(), 3);
        assert!(slice.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(slice[0].1.total, Severity::from_minutes(24.0));
    }

    #[test]
    fn dice_sums_selected_cells() {
        let (net, mut cube) = cube();
        let r = region_of(&net, 0);
        let two_days = dice(&mut cube, 0, &[r], TemporalLevel::Day, 0..2);
        assert_eq!(two_days.total, Severity::from_minutes(48.0));
        assert_eq!(two_days.count, 12);
        let nothing = dice(&mut cube, 0, &[r], TemporalLevel::Day, 10..20);
        assert_eq!(nothing.total, Severity::ZERO);
    }

    #[test]
    fn top_k_ranks_by_severity() {
        let (net, mut cube) = cube();
        let top = top_k_cells(&mut cube, 0, TemporalLevel::Day, 2);
        assert_eq!(top.len(), 2);
        assert!(top[0].1 >= top[1].1);
        assert_eq!(top[0].0.region, region_of(&net, 0));
        // Asking for more than exists is fine.
        let all = top_k_cells(&mut cube, 0, TemporalLevel::Day, 100);
        assert_eq!(all.len(), 4); // 3 heavy days + 1 light cell
    }

    #[test]
    fn heavy_regions_apply_density_threshold() {
        let (net, mut cube) = cube();
        let h = RegionHierarchy::standard(&net, 2.0, 3);
        let fine = h.finest().clone();
        // With a tiny δs the heavy region qualifies, the light one doesn't.
        let heavy = heavy_regions(
            &mut cube,
            0,
            TemporalLevel::Day,
            0..3,
            0.002,
            |r| fine.sensors_in(r).len() as u32,
            WindowSpec::PEMS.windows_per_day(),
        );
        assert_eq!(heavy.len(), 1);
        assert_eq!(heavy[0].0, region_of(&net, 0));
        // With a huge δs nothing qualifies.
        let none = heavy_regions(
            &mut cube,
            0,
            TemporalLevel::Day,
            0..3,
            0.5,
            |r| fine.sensors_in(r).len() as u32,
            WindowSpec::PEMS.windows_per_day(),
        );
        assert!(none.is_empty());
    }
}
