//! The spatio-temporal cube.

use crate::hierarchy::TemporalLevel;
use cps_core::fx::FxHashMap;
use cps_core::measure::{CountAndTotal, DistributiveMeasure};
use cps_core::record::{AtypicalCriterion, SpeedThreshold};
use cps_core::{
    AtypicalRecord, DatasetId, RawRecord, RegionId, Result, Severity, TimeWindow, WindowSpec,
};
use cps_geo::grid::RegionHierarchy;
use cps_storage::{DatasetStore, IoStats};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Cell address in a cuboid: (spatial level, region, temporal level, bucket).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CellKey {
    /// Region at the cuboid's spatial level.
    pub region: RegionId,
    /// Time bucket at the cuboid's temporal level.
    pub bucket: u32,
}

type Cuboid = FxHashMap<CellKey, CountAndTotal>;

/// Bottom-up aggregated cube over a region hierarchy and the temporal
/// hierarchy. Stores the finest cuboid (spatial level 0 × hour) and rolls
/// up on demand; rolled-up cuboids are memoized.
pub struct SpatioTemporalCube {
    hierarchy: RegionHierarchy,
    spec: WindowSpec,
    /// (spatial level, temporal level) → cuboid. Entry (0, Hour) is the
    /// base.
    cuboids: FxHashMap<(usize, TemporalLevel), Cuboid>,
    /// Worker threads for roll-up materialization: `0` = all cores,
    /// `1` (the default) = the sequential path. Any setting produces an
    /// identical cuboid — iteration order included — because chunks of
    /// the base map are committed in base iteration order.
    parallelism: usize,
}

impl SpatioTemporalCube {
    /// Creates an empty cube.
    pub fn new(hierarchy: RegionHierarchy, spec: WindowSpec) -> Self {
        let mut cuboids = FxHashMap::default();
        cuboids.insert((0usize, TemporalLevel::Hour), Cuboid::default());
        Self {
            hierarchy,
            spec,
            cuboids,
            parallelism: 1,
        }
    }

    /// Sets the roll-up materialization parallelism (`0` = all cores,
    /// `1` = sequential). The measure is an integer sum and chunk results
    /// commit in base-cuboid iteration order, so every setting yields the
    /// same cuboid bytes.
    pub fn set_parallelism(&mut self, threads: usize) {
        self.parallelism = threads;
    }

    /// Builder-style [`set_parallelism`](Self::set_parallelism).
    pub fn with_parallelism(mut self, threads: usize) -> Self {
        self.parallelism = threads;
        self
    }

    /// Adds one measurement at (sensor, window).
    pub fn add(&mut self, sensor: cps_core::SensorId, window: TimeWindow, severity: Severity) {
        let region = self.hierarchy.finest().region_of(sensor);
        let bucket = TemporalLevel::Hour.bucket_of(window, self.spec);
        let base = self
            .cuboids
            .get_mut(&(0, TemporalLevel::Hour))
            .expect("base cuboid always present");
        base.entry(CellKey { region, bucket })
            .or_default()
            .push(severity);
        // Invalidate memoized roll-ups.
        self.cuboids.retain(|&k, _| k == (0, TemporalLevel::Hour));
    }

    /// Adds an atypical record (severity measure).
    pub fn add_atypical(&mut self, r: &AtypicalRecord) {
        self.add(r.sensor, r.window, r.severity);
    }

    /// Adds a raw reading. The aggregated measure is *occupied time*
    /// (occupancy × window length) — a standard PeMS statistic, so the OC
    /// cube carries meaningful traffic totals for normal data too.
    pub fn add_raw(&mut self, r: &RawRecord) {
        let occupied_secs =
            u64::from(self.spec.window_minutes) * 60 * u64::from(r.occupancy_pm) / 1000;
        self.add(r.sensor, r.window, Severity::from_secs(occupied_secs));
    }

    /// Number of cells in the base cuboid.
    pub fn base_cells(&self) -> usize {
        self.cuboids[&(0, TemporalLevel::Hour)].len()
    }

    /// Approximate model size in bytes (Figure 16's `OC`/`MC` series): the
    /// base cuboid only, since roll-ups are derived.
    pub fn approx_bytes(&self) -> usize {
        self.base_cells() * (std::mem::size_of::<CellKey>() + std::mem::size_of::<CountAndTotal>())
    }

    /// Returns (memoizing) the cuboid at (spatial level, temporal level).
    ///
    /// # Panics
    /// Panics if `temporal` is finer than the stored hour grain or the
    /// spatial level is out of range.
    pub fn cuboid(&mut self, spatial_level: usize, temporal: TemporalLevel) -> &Cuboid {
        assert!(
            temporal.at_least_as_coarse_as(TemporalLevel::Hour),
            "cube stores hour grain; cannot drill to {temporal:?}"
        );
        assert!(spatial_level < self.hierarchy.num_levels());
        if !self.cuboids.contains_key(&(spatial_level, temporal)) {
            let base = &self.cuboids[&(0, TemporalLevel::Hour)];
            let fine = self.hierarchy.finest();
            let target = self.hierarchy.level(spatial_level);
            // Map the fine region to the coarser one through any member
            // sensor (levels refine each other by construction).
            let map_cell = |key: &CellKey| -> Option<CellKey> {
                let region = if spatial_level == 0 {
                    key.region
                } else {
                    let sensors = fine.sensors_in(key.region);
                    target.region_of(*sensors.first()?)
                };
                Some(CellKey {
                    region,
                    bucket: temporal.bucket_of_hour(key.bucket),
                })
            };
            let threads = cps_par::resolve_threads(self.parallelism);
            let mut out = Cuboid::default();
            if threads <= 1 || base.len() <= 1 {
                for (key, measure) in base {
                    if let Some(cell) = map_cell(key) {
                        let slot = out.entry(cell).or_default();
                        *slot = slot.merge(*measure);
                    }
                }
            } else {
                // Chunk the base map in its iteration order; each chunk
                // emits its mapped entries in order, and chunks commit in
                // order — so `out` sees the exact insertion sequence of
                // the sequential loop, which makes even its (hash-map)
                // iteration order identical at every thread count.
                let entries: Vec<(CellKey, CountAndTotal)> =
                    base.iter().map(|(k, m)| (*k, *m)).collect();
                let chunk_len = entries.len().div_ceil(threads);
                let chunks: Vec<Vec<(CellKey, CountAndTotal)>> =
                    entries.chunks(chunk_len).map(<[_]>::to_vec).collect();
                let pool = cps_par::Pool::new(threads);
                let mapped = pool.map(chunks, |_, chunk| {
                    chunk
                        .into_iter()
                        .filter_map(|(key, m)| map_cell(&key).map(|cell| (cell, m)))
                        .collect::<Vec<_>>()
                });
                for part in mapped {
                    for (cell, measure) in part {
                        let slot = out.entry(cell).or_default();
                        *slot = slot.merge(measure);
                    }
                }
            }
            self.cuboids.insert((spatial_level, temporal), out);
        }
        &self.cuboids[&(spatial_level, temporal)]
    }

    /// Total severity in one cell of a cuboid.
    pub fn cell(
        &mut self,
        spatial_level: usize,
        temporal: TemporalLevel,
        key: CellKey,
    ) -> CountAndTotal {
        self.cuboid(spatial_level, temporal)
            .get(&key)
            .copied()
            .unwrap_or_default()
    }

    /// Range aggregate: total measure over `[first_window, last_window)` in
    /// all regions — `F(W, T)` for the whole deployment.
    pub fn range_total(&self, first_window: TimeWindow, last_window: TimeWindow) -> CountAndTotal {
        let lo = TemporalLevel::Hour.bucket_of(first_window, self.spec);
        let hi = TemporalLevel::Hour.bucket_of(
            TimeWindow::new(last_window.raw().saturating_sub(1)),
            self.spec,
        );
        let base = &self.cuboids[&(0, TemporalLevel::Hour)];
        base.iter()
            .filter(|(k, _)| k.bucket >= lo && k.bucket <= hi)
            .fold(CountAndTotal::default(), |acc, (_, &m)| acc.merge(m))
    }

    /// The grand total over all cells.
    pub fn grand_total(&self) -> CountAndTotal {
        self.cuboids[&(0, TemporalLevel::Hour)]
            .values()
            .fold(CountAndTotal::default(), |acc, &m| acc.merge(m))
    }
}

/// Timing + size result of a cube construction run.
pub struct CubeBuild {
    /// The cube.
    pub cube: SpatioTemporalCube,
    /// Records consumed.
    pub n_records: u64,
    /// Wall-clock build time.
    pub elapsed: Duration,
}

/// Builds the **MC** cube: modified CubeView over pre-processed atypical
/// records only.
pub fn build_mc(
    store: &DatasetStore,
    datasets: &[DatasetId],
    hierarchy: RegionHierarchy,
    io: Arc<IoStats>,
) -> Result<CubeBuild> {
    let start = Instant::now();
    let spec = store.catalog().spec;
    let mut cube = SpatioTemporalCube::new(hierarchy, spec);
    let mut n_records = 0;
    for &id in datasets {
        for record in store.scan_atypical(id, Arc::clone(&io))? {
            cube.add_atypical(&record?);
            n_records += 1;
        }
    }
    Ok(CubeBuild {
        cube,
        n_records,
        elapsed: start.elapsed(),
    })
}

/// Builds the **OC** cube: original CubeView over every raw reading.
pub fn build_oc(
    store: &DatasetStore,
    datasets: &[DatasetId],
    hierarchy: RegionHierarchy,
    io: Arc<IoStats>,
) -> Result<CubeBuild> {
    let start = Instant::now();
    let spec = store.catalog().spec;
    let mut cube = SpatioTemporalCube::new(hierarchy, spec);
    let mut n_records = 0;
    for &id in datasets {
        for record in store.scan_raw(id, Arc::clone(&io))? {
            cube.add_raw(&record?);
            n_records += 1;
        }
    }
    Ok(CubeBuild {
        cube,
        n_records,
        elapsed: start.elapsed(),
    })
}

/// Runs the **PR** pre-processing step: scans the raw partitions, applies
/// the atypical criterion and (re)writes the atypical partitions. Returns
/// (records scanned, atypical selected, elapsed).
pub fn preprocess_raw(
    store: &DatasetStore,
    datasets: &[DatasetId],
    criterion: &SpeedThreshold,
    io: Arc<IoStats>,
) -> Result<(u64, u64, Duration)> {
    let start = Instant::now();
    let mut scanned = 0;
    let mut selected = 0;
    for &id in datasets {
        for record in store.scan_raw(id, Arc::clone(&io))? {
            let record = record?;
            scanned += 1;
            if criterion.classify(&record).is_some() {
                selected += 1;
            }
        }
    }
    Ok((scanned, selected, start.elapsed()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cps_core::SensorId;
    use cps_geo::point::LOS_ANGELES;
    use cps_geo::RoadNetwork;

    fn setup() -> (RoadNetwork, RegionHierarchy) {
        let net = RoadNetwork::builder()
            .highway(
                "EW",
                vec![
                    LOS_ANGELES.offset_miles(0.0, -8.0),
                    LOS_ANGELES.offset_miles(0.0, 8.0),
                ],
                0.5,
            )
            .build();
        let h = RegionHierarchy::standard(&net, 2.0, 3);
        (net, h)
    }

    #[test]
    fn add_and_cell_lookup() {
        let (_, h) = setup();
        let spec = WindowSpec::PEMS;
        let mut cube = SpatioTemporalCube::new(h, spec);
        let sensor = SensorId::new(3);
        cube.add(sensor, TimeWindow::new(100), Severity::from_minutes(4.0));
        cube.add(sensor, TimeWindow::new(101), Severity::from_minutes(5.0));
        assert_eq!(cube.base_cells(), 1, "windows 100/101 share hour 8");
        let region = {
            let mut c2 = SpatioTemporalCube::new(setup().1, spec);
            c2.add(sensor, TimeWindow::new(100), Severity::ZERO);
            *c2.cuboids[&(0, TemporalLevel::Hour)].keys().next().unwrap()
        };
        let got = cube.cell(0, TemporalLevel::Hour, region);
        assert_eq!(got.count, 2);
        assert_eq!(got.total, Severity::from_minutes(9.0));
    }

    #[test]
    fn rollup_conserves_totals() {
        let (net, h) = setup();
        let spec = WindowSpec::PEMS;
        let mut cube = SpatioTemporalCube::new(h, spec);
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..2000 {
            cube.add(
                SensorId::new(rng.gen_range(0..net.num_sensors() as u32)),
                TimeWindow::new(rng.gen_range(0..spec.windows_per_month())),
                Severity::from_secs(rng.gen_range(30..300)),
            );
        }
        let grand = cube.grand_total();
        for s_level in 0..3 {
            for t_level in [
                TemporalLevel::Hour,
                TemporalLevel::Day,
                TemporalLevel::Month,
            ] {
                let total = cube
                    .cuboid(s_level, t_level)
                    .values()
                    .fold(CountAndTotal::default(), |a, &m| a.merge(m));
                assert_eq!(total, grand, "({s_level}, {t_level:?})");
            }
        }
    }

    #[test]
    fn parallel_rollup_is_identical_including_iteration_order() {
        let (net, _) = setup();
        let spec = WindowSpec::PEMS;
        let build = |threads: usize| {
            let mut cube = SpatioTemporalCube::new(setup().1, spec).with_parallelism(threads);
            for s in 0..net.num_sensors() as u32 {
                for d in 0..10 {
                    cube.add(
                        SensorId::new(s),
                        TimeWindow::new(d * 288 + (s * 37) % 288),
                        Severity::from_secs(u64::from(s % 7 + 1) * 30),
                    );
                }
            }
            let mut dump: Vec<Vec<(CellKey, CountAndTotal)>> = Vec::new();
            for s_level in 0..3 {
                for t_level in [
                    TemporalLevel::Hour,
                    TemporalLevel::Day,
                    TemporalLevel::Month,
                ] {
                    // Iteration order (no sort!) is part of the contract.
                    dump.push(
                        cube.cuboid(s_level, t_level)
                            .iter()
                            .map(|(k, m)| (*k, *m))
                            .collect(),
                    );
                }
            }
            dump
        };
        let sequential = build(1);
        for threads in [2, 3, 8] {
            assert_eq!(build(threads), sequential, "{threads} threads");
        }
    }

    #[test]
    fn coarser_levels_have_fewer_cells() {
        let (net, h) = setup();
        let spec = WindowSpec::PEMS;
        let mut cube = SpatioTemporalCube::new(h, spec);
        for s in 0..net.num_sensors() as u32 {
            for d in 0..5 {
                cube.add(
                    SensorId::new(s),
                    TimeWindow::new(d * 288 + (s * 20) % 288),
                    Severity::from_secs(60),
                );
            }
        }
        let hour_cells = cube.cuboid(0, TemporalLevel::Hour).len();
        let day_cells = cube.cuboid(0, TemporalLevel::Day).len();
        let city_month = cube.cuboid(2, TemporalLevel::Month).len();
        assert!(day_cells < hour_cells);
        assert_eq!(city_month, 1);
    }

    #[test]
    fn range_total_slices_time() {
        let (_, h) = setup();
        let spec = WindowSpec::PEMS;
        let mut cube = SpatioTemporalCube::new(h, spec);
        cube.add(
            SensorId::new(1),
            TimeWindow::new(10),
            Severity::from_minutes(1.0),
        );
        cube.add(
            SensorId::new(1),
            TimeWindow::new(500),
            Severity::from_minutes(2.0),
        );
        cube.add(
            SensorId::new(1),
            TimeWindow::new(5000),
            Severity::from_minutes(4.0),
        );
        let first_day = cube.range_total(TimeWindow::new(0), TimeWindow::new(288));
        assert_eq!(first_day.total, Severity::from_minutes(1.0));
        let two_days = cube.range_total(TimeWindow::new(0), TimeWindow::new(576));
        assert_eq!(two_days.total, Severity::from_minutes(3.0));
        let all = cube.range_total(TimeWindow::new(0), TimeWindow::new(10_000));
        assert_eq!(all.total, Severity::from_minutes(7.0));
    }

    #[test]
    fn raw_measure_tracks_occupancy() {
        let (_, h) = setup();
        let mut cube = SpatioTemporalCube::new(h, WindowSpec::PEMS);
        cube.add_raw(&RawRecord::new(
            SensorId::new(1),
            TimeWindow::new(5),
            60.0,
            100,
            500,
        ));
        // 50 % occupancy of a 5-minute window = 150 seconds.
        assert_eq!(cube.grand_total().total, Severity::from_secs(150));
    }

    #[test]
    fn store_builds_mc_oc_and_pr() {
        use cps_sim::{Scale, SimConfig, TrafficSim};
        let root = std::env::temp_dir().join(format!("cps-cube-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        // Seed chosen so the simulated atypical fraction stays below 10 %
        // of raw readings, which the MC-vs-OC ratio assertion depends on.
        let sim = TrafficSim::new(
            SimConfig::new(Scale::Tiny, 3)
                .with_datasets(1)
                .with_days_per_dataset(2),
        );
        let store = sim.write_store(&root).unwrap();
        let hierarchy = RegionHierarchy::standard(sim.network(), 2.0, 3);
        let datasets = [DatasetId::new(1)];
        let io = IoStats::shared();

        let mc = build_mc(&store, &datasets, hierarchy.clone(), io.clone()).unwrap();
        let oc = build_oc(&store, &datasets, hierarchy.clone(), io.clone()).unwrap();
        assert!(oc.n_records > mc.n_records * 10, "OC scans all raw data");
        assert!(oc.cube.base_cells() >= mc.cube.base_cells());

        let (scanned, selected, _) =
            preprocess_raw(&store, &datasets, &sim.criterion(), io).unwrap();
        assert_eq!(scanned, oc.n_records);
        assert_eq!(selected, mc.n_records);
        let _ = std::fs::remove_dir_all(&root);
    }
}
