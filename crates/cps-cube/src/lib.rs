//! # cps-cube
//!
//! The CubeView baseline (Shekhar et al., "Cubeview: a system for traffic
//! data visualization"): **bottom-up aggregation of numeric measures over
//! pre-defined spatial and temporal hierarchies** — the approach the paper
//! contrasts atypical clusters against (§II-A, Example 2).
//!
//! Two construction modes match the evaluation of Figures 15/16:
//!
//! * **OC** (original CubeView): aggregates *all* raw readings — pays a
//!   full scan of the raw archive,
//! * **MC** (modified CubeView): aggregates only the pre-processed atypical
//!   records — an order of magnitude faster, and the most compact model,
//!   but a bare number per (region, time bucket): it cannot say when an
//!   event started, how it moved, or which part was worst.
//!
//! The cube stores the finest cuboid (finest region level × hour) and
//! answers any coarser (spatial level, temporal level) query by distributive
//! roll-up; coarser cuboids can be materialized on demand.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod cube;
pub mod hierarchy;
pub mod query;

pub use cube::{CellKey, SpatioTemporalCube};
pub use hierarchy::TemporalLevel;
