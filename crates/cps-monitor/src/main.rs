//! `cps-monitor` binary: replay a simulated deployment day-by-day through
//! the sharded service and report metrics plus significant clusters.
//!
//! ```text
//! cps-monitor [--config FILE] [--scale tiny|small|medium|paper]
//!             [--seed N] [--days N] [--shards N] [--capacity N]
//!             [--snapshot-dir DIR] [--wal-dir DIR] [--recover]
//! ```
//!
//! Flags override the config file, which overrides built-in defaults.
//!
//! `--wal-dir` turns on the durable ingest WAL (checkpoints and respawn
//! budgets come from the config file's `[durability]` section). After a
//! kill, rerun the same command with `--recover` added: the service
//! rebuilds from checkpoint + WAL replay and resumes the deterministic
//! feed at the exact record the durable state contains
//! ([`RecoveryReport::resume_from`]), so no record is lost or doubled.

use cps_monitor::{MonitorConfig, MonitorService, RecoveryReport};
use cps_sim::{Scale, SimConfig, TrafficSim};
use std::path::PathBuf;
use std::sync::Arc;

fn main() {
    if let Err(e) = run() {
        eprintln!("cps-monitor: {e}");
        std::process::exit(1);
    }
}

fn parse_args(args: &[String]) -> Result<(MonitorConfig, bool), String> {
    let mut config = MonitorConfig::default();
    let mut recover = false;
    let mut it = args.iter();
    let value = |flag: &str, it: &mut std::slice::Iter<'_, String>| {
        it.next()
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--config" => {
                config = MonitorConfig::load(&PathBuf::from(value(arg, &mut it)?))?;
            }
            "--scale" => config.replay.scale = value(arg, &mut it)?,
            "--seed" => {
                config.replay.seed = value(arg, &mut it)?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--days" => {
                config.replay.days = value(arg, &mut it)?
                    .parse()
                    .map_err(|e| format!("--days: {e}"))?;
            }
            "--shards" => {
                config.shards = value(arg, &mut it)?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?;
            }
            "--capacity" => {
                config.channel_capacity = value(arg, &mut it)?
                    .parse()
                    .map_err(|e| format!("--capacity: {e}"))?;
            }
            "--snapshot-dir" => {
                config.snapshot_dir = Some(PathBuf::from(value(arg, &mut it)?));
            }
            "--wal-dir" => {
                config.durability.wal_dir = Some(PathBuf::from(value(arg, &mut it)?));
            }
            "--recover" => recover = true,
            "--help" | "-h" => {
                println!(
                    "usage: cps-monitor [--config FILE] [--scale SCALE] [--seed N] \
                     [--days N] [--shards N] [--capacity N] [--snapshot-dir DIR] \
                     [--wal-dir DIR] [--recover]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    if recover && config.durability.wal_dir.is_none() {
        return Err("--recover needs a WAL (--wal-dir or the config's durability.wal_dir)".into());
    }
    config.validate()?;
    Ok((config, recover))
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (mut config, recover) = parse_args(&args)?;

    let scale = Scale::parse(&config.replay.scale)
        .ok_or_else(|| format!("unknown scale {:?}", config.replay.scale))?;
    let sim = TrafficSim::new(SimConfig::new(scale, config.replay.seed));
    config.spec = sim.config().spec;
    let network = Arc::new(sim.network().clone());

    println!(
        "replaying {} day(s) of scale {:?} (seed {}) over {} sensors, {} shards",
        config.replay.days,
        scale,
        config.replay.seed,
        network.num_sensors(),
        config.shards,
    );

    let (mut service, report): (MonitorService, Option<RecoveryReport>) = if recover {
        let (service, report) = MonitorService::recover(&config, network)?;
        println!(
            "recovered from {}: checkpoint seq {} ({}), {} WAL entries replayed \
             ({} records, {} torn tails repaired); feed resumes at record {}",
            config.durability.wal_dir.as_ref().unwrap().display(),
            report.checkpoint_seq,
            if report.had_checkpoint {
                "present"
            } else {
                "absent"
            },
            report.replayed_entries,
            report.replayed_records,
            report.repaired_tails,
            report.resume_from,
        );
        (service, Some(report))
    } else {
        (MonitorService::start(&config, network)?, None)
    };
    println!(
        "shard layout: sizes {:?}, {} boundary sensors",
        service.shard_map().shard_sizes(),
        service.shard_map().boundary_sensor_count(),
    );
    let handle = service.handle();

    // The replay feed is deterministic, so the recovery resume point is a
    // plain index into the concatenated day-by-day stream.
    let mut skip = report.as_ref().map_or(0, |r| r.resume_from);
    for day in 0..config.replay.days {
        let mut records = sim.atypical_day(day);
        records.sort_by_key(|r| (r.window, r.sensor));
        let day_len = records.len() as u64;
        if skip >= day_len {
            skip -= day_len;
            continue;
        }
        for record in records.into_iter().skip(skip as usize) {
            service
                .ingest(record)
                .map_err(|e| format!("day {day}: {e}"))?;
        }
        skip = 0;
    }

    let metrics = service.finish();
    println!("\n{metrics}\n");

    // Query through the serving layer: the merger's final publication
    // makes the snapshot identical to the quiescent live state, and the
    // second identical query demonstrates the result cache.
    let serve = handle.serve();
    let result = serve
        .query_guided(0, config.replay.days)
        .map_err(|e| e.to_string())?;
    let _ = serve
        .query_guided(0, config.replay.days)
        .map_err(|e| e.to_string())?;
    println!(
        "guided query over day 0..{} (snapshot epoch {}): \
         {} candidates -> {} inputs via {} red regions",
        config.replay.days,
        serve.epoch(),
        result.candidate_clusters,
        result.input_clusters,
        result.num_red_regions,
    );
    let significant = result.significant();
    println!(
        "{} macro-cluster(s), {} significant (threshold {:.1} min):",
        result.macros.len(),
        significant.len(),
        result.threshold.as_minutes(),
    );
    for cluster in significant {
        println!("  {}", cluster.describe(config.spec));
    }
    let cache = serve.cache_stats();
    println!(
        "result cache: {} hits, {} misses, {} stale ({:.0}% hit rate, {} entries)",
        cache.hits,
        cache.misses,
        cache.stale,
        cache.hit_rate() * 100.0,
        cache.entries,
    );
    Ok(())
}
