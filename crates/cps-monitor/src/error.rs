//! Typed errors surfaced by the ingest path.

use atypical::online::OutOfOrderRecord;
use std::fmt;

/// An ingest-path failure. Both variants are recoverable: the service
/// keeps running and the caller decides whether to retry, skip, or stop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MonitorError {
    /// The record's window regressed behind the ingest clock. Carries the
    /// shard the record would have been routed to plus the rejected record
    /// and the clock it regressed behind.
    OutOfOrder {
        /// Shard that owns the record's sensor.
        shard: usize,
        /// The rejected record and the current ingest window.
        cause: OutOfOrderRecord,
    },
    /// The destination shard's worker thread is no longer running. The
    /// service degrades — other shards keep ingesting and every handle
    /// stays valid — but records routed to this shard are lost.
    WorkerDied {
        /// Shard whose worker terminated.
        shard: usize,
    },
}

impl fmt::Display for MonitorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MonitorError::OutOfOrder { shard, cause } => {
                write!(f, "shard {shard}: {cause}")
            }
            MonitorError::WorkerDied { shard } => {
                write!(f, "shard {shard}: worker thread terminated")
            }
        }
    }
}

impl std::error::Error for MonitorError {}

#[cfg(test)]
mod tests {
    use super::*;
    use cps_core::{AtypicalRecord, SensorId, Severity, TimeWindow};

    #[test]
    fn display_carries_context() {
        let cause = OutOfOrderRecord {
            record: AtypicalRecord::new(
                SensorId::new(7),
                TimeWindow::new(10),
                Severity::from_secs(60),
            ),
            current_window: TimeWindow::new(12),
        };
        let text = MonitorError::OutOfOrder { shard: 3, cause }.to_string();
        assert!(text.starts_with("shard 3:"), "{text}");
        let text = MonitorError::WorkerDied { shard: 1 }.to_string();
        assert!(text.contains("shard 1"), "{text}");
        assert!(text.contains("terminated"), "{text}");
    }
}
