//! Typed errors surfaced by the ingest path.

use atypical::online::OutOfOrderRecord;
use std::fmt;

/// An ingest-path failure. Every variant leaves the service running:
/// other shards keep ingesting and every handle stays valid. The caller
/// decides whether to retry, skip, or stop.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MonitorError {
    /// The record's window regressed behind the ingest clock. Carries the
    /// shard the record would have been routed to plus the rejected record
    /// and the clock it regressed behind.
    OutOfOrder {
        /// Shard that owns the record's sensor.
        shard: usize,
        /// The rejected record and the current ingest window.
        cause: OutOfOrderRecord,
    },
    /// The destination shard's worker thread is no longer running and
    /// supervision is off (`durability.respawn_budget = 0` or no WAL).
    /// Records routed to this shard are rejected until the monitor is
    /// restarted; with a WAL they are *not* lost — `recover` replays the
    /// shard's log. With supervision on, ingest never surfaces this
    /// variant for a first death: the worker is respawned from
    /// checkpoint plus WAL replay and the send is retried transparently (see
    /// [`MonitorError::ShardFailed`] for budget exhaustion).
    WorkerDied {
        /// Shard whose worker terminated.
        shard: usize,
    },
    /// A shard worker died and its respawn budget is spent: the shard is
    /// permanently failed for this process lifetime. Counted once in
    /// `permanently_failed`; a full `recover` restart resets the budget.
    ShardFailed {
        /// The permanently failed shard.
        shard: usize,
        /// Respawns consumed before giving up.
        respawns: u32,
    },
    /// A write-ahead-log or checkpoint I/O operation failed. The record
    /// triggering it was not durably accepted and should be re-fed after
    /// recovery.
    Wal {
        /// Shard whose log failed, when attributable.
        shard: Option<usize>,
        /// The underlying I/O error.
        detail: String,
    },
}

impl fmt::Display for MonitorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MonitorError::OutOfOrder { shard, cause } => {
                write!(f, "shard {shard}: {cause}")
            }
            MonitorError::WorkerDied { shard } => {
                write!(f, "shard {shard}: worker thread terminated")
            }
            MonitorError::ShardFailed { shard, respawns } => {
                write!(
                    f,
                    "shard {shard}: permanently failed after {respawns} respawn(s)"
                )
            }
            MonitorError::Wal { shard, detail } => match shard {
                Some(s) => write!(f, "shard {s}: WAL failure: {detail}"),
                None => write!(f, "WAL failure: {detail}"),
            },
        }
    }
}

impl std::error::Error for MonitorError {}

#[cfg(test)]
mod tests {
    use super::*;
    use cps_core::{AtypicalRecord, SensorId, Severity, TimeWindow};

    #[test]
    fn display_carries_context() {
        let cause = OutOfOrderRecord {
            record: AtypicalRecord::new(
                SensorId::new(7),
                TimeWindow::new(10),
                Severity::from_secs(60),
            ),
            current_window: TimeWindow::new(12),
        };
        let text = MonitorError::OutOfOrder { shard: 3, cause }.to_string();
        assert!(text.starts_with("shard 3:"), "{text}");
        let text = MonitorError::WorkerDied { shard: 1 }.to_string();
        assert!(text.contains("shard 1"), "{text}");
        assert!(text.contains("terminated"), "{text}");
        let text = MonitorError::ShardFailed {
            shard: 2,
            respawns: 3,
        }
        .to_string();
        assert!(text.contains("shard 2"), "{text}");
        assert!(text.contains("3 respawn"), "{text}");
        let text = MonitorError::Wal {
            shard: Some(0),
            detail: "disk on fire".to_string(),
        }
        .to_string();
        assert!(text.contains("disk on fire"), "{text}");
    }
}
