//! Spatial sharding of a [`RoadNetwork`].
//!
//! Sensors are sorted by longitude (then latitude, then id — a total
//! order) and cut into `num_shards` contiguous, evenly sized chunks, so
//! each shard owns a compact geographic band and the δd-relation can only
//! cross shards near the cuts. A sensor is a *boundary* sensor when some
//! sensor within `δd` belongs to another shard; only events touching
//! boundary sensors can ever need cross-shard reconciliation, and the
//! merger limits its bookkeeping to exactly those.

use cps_core::SensorId;
use cps_geo::RoadNetwork;

/// Static assignment of sensors to shards plus the cross-shard δd
/// adjacency used by the merger's reconciliation.
#[derive(Clone, Debug)]
pub struct ShardMap {
    num_shards: usize,
    shard_of: Vec<u16>,
    /// δd-neighbors in *other* shards, per sensor. Empty for interior
    /// sensors; non-empty exactly for boundary sensors.
    cross_neighbors: Vec<Vec<SensorId>>,
    boundary_sensors: usize,
}

impl ShardMap {
    /// Builds the shard assignment for `network` with the given δd.
    ///
    /// `num_shards` may exceed the sensor count; surplus shards simply own
    /// no sensors.
    pub fn build(network: &RoadNetwork, num_shards: usize, delta_d_miles: f64) -> Self {
        assert!(num_shards >= 1, "need at least one shard");
        assert!(num_shards <= u16::MAX as usize, "shard id must fit in u16");
        let n = network.num_sensors();

        let mut order: Vec<SensorId> = network.sensors().iter().map(|s| s.id).collect();
        order.sort_by(|&a, &b| {
            let (pa, pb) = (network.sensor(a).location, network.sensor(b).location);
            pa.lon
                .total_cmp(&pb.lon)
                .then(pa.lat.total_cmp(&pb.lat))
                .then(a.cmp(&b))
        });

        let mut shard_of = vec![0u16; n];
        for (rank, &sensor) in order.iter().enumerate() {
            shard_of[sensor.index()] = (rank * num_shards / n.max(1)) as u16;
        }

        let mut cross_neighbors = vec![Vec::new(); n];
        let mut boundary_sensors = 0;
        for sensor in network.sensors() {
            let own = shard_of[sensor.id.index()];
            let cross: Vec<SensorId> = network
                .sensors_near(sensor.id, delta_d_miles)
                .into_iter()
                .filter(|b| shard_of[b.index()] != own)
                .collect();
            if !cross.is_empty() {
                boundary_sensors += 1;
            }
            cross_neighbors[sensor.id.index()] = cross;
        }

        Self {
            num_shards,
            shard_of,
            cross_neighbors,
            boundary_sensors,
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// The shard owning `sensor`.
    #[inline]
    pub fn shard_of(&self, sensor: SensorId) -> usize {
        self.shard_of[sensor.index()] as usize
    }

    /// Whether `sensor` has a δd-neighbor in another shard.
    #[inline]
    pub fn is_boundary(&self, sensor: SensorId) -> bool {
        !self.cross_neighbors[sensor.index()].is_empty()
    }

    /// δd-neighbors of `sensor` owned by other shards.
    #[inline]
    pub fn cross_neighbors(&self, sensor: SensorId) -> &[SensorId] {
        &self.cross_neighbors[sensor.index()]
    }

    /// Total boundary sensors across the deployment.
    pub fn boundary_sensor_count(&self) -> usize {
        self.boundary_sensors
    }

    /// Sensors per shard.
    pub fn shard_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0; self.num_shards];
        for &s in &self.shard_of {
            sizes[s as usize] += 1;
        }
        sizes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cps_sim::{Scale, SimConfig, TrafficSim};

    fn network() -> RoadNetwork {
        TrafficSim::new(SimConfig::new(Scale::Tiny, 1))
            .network()
            .clone()
    }

    #[test]
    fn single_shard_has_no_boundary() {
        let net = network();
        let map = ShardMap::build(&net, 1, 1.0);
        assert_eq!(map.boundary_sensor_count(), 0);
        for s in net.sensors() {
            assert_eq!(map.shard_of(s.id), 0);
            assert!(!map.is_boundary(s.id));
        }
    }

    #[test]
    fn shards_are_balanced_and_cover_all_sensors() {
        let net = network();
        for shards in [2, 3, 4, 8] {
            let map = ShardMap::build(&net, shards, 1.0);
            let sizes = map.shard_sizes();
            assert_eq!(sizes.iter().sum::<usize>(), net.num_sensors());
            let (min, max) = (
                sizes.iter().filter(|&&s| s > 0).min().copied().unwrap_or(0),
                sizes.iter().max().copied().unwrap(),
            );
            assert!(max - min <= 1, "{shards} shards: uneven sizes {sizes:?}");
        }
    }

    #[test]
    fn boundary_flags_match_cross_neighbors() {
        let net = network();
        let map = ShardMap::build(&net, 4, 1.0);
        assert!(
            map.boundary_sensor_count() > 0,
            "a 4-way cut must cross δd somewhere"
        );
        for s in net.sensors() {
            let expected: Vec<SensorId> = net
                .sensors_near(s.id, 1.0)
                .into_iter()
                .filter(|b| map.shard_of(*b) != map.shard_of(s.id))
                .collect();
            assert_eq!(map.cross_neighbors(s.id), expected.as_slice());
            assert_eq!(map.is_boundary(s.id), !expected.is_empty());
        }
    }
}
