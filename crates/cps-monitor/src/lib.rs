//! `cps-monitor` — a sharded online monitoring service over the
//! atypical-event pipeline.
//!
//! The single-threaded [`atypical::online::OnlineExtractor`] processes one
//! deployment-wide record stream. This crate scales it out without
//! changing its output: the road network is cut into spatial shards, each
//! served by its own extractor on a dedicated worker thread behind a
//! *bounded* channel (real backpressure, or an explicit drop counter), and
//! a merger thread reconciles the events that straddle shard boundaries so
//! the resulting micro-clusters equal the single-extractor ones — see
//! [`merger`] for the argument and the `shard_equivalence` test for the
//! property-based check.
//!
//! On top of reconciliation the merger keeps the query side of the paper
//! live: per-day red-zone `F` values (Property 4/5) maintained
//! incrementally, macro-clusters held at the Algorithm 3 fixpoint, and
//! completed day buckets persisted through [`atypical::store::ForestStore`].
//! [`MonitorHandle`] exposes significant-cluster queries (Definition 5)
//! and red-zone-guided window queries over the live + persisted levels —
//! through the live mutex for the freshest answer, or lock-free through
//! the `cps-serve` snapshot layer ([`MonitorHandle::read_view`] /
//! [`MonitorHandle::serve`]): the merger publishes immutable epoch-stamped
//! [`cps_serve::LiveSnapshot`]s at the `[serving]` cadence, and readers pin
//! one with a single atomic load, optionally behind the sharded result
//! cache.

pub mod config;
pub mod durability;
pub mod error;
mod live;
mod merger;
pub mod metrics;
pub mod service;
pub mod shard;

pub use config::{
    DropBurst, DurabilityConfig, FaultConfig, FsyncPolicy, MonitorConfig, OverflowPolicy,
    ReplayConfig, ServingConfig, WorkerKill,
};
pub use cps_serve::{CacheStats, LiveSnapshot, ReadView, ServeHandle};
pub use error::MonitorError;
pub use metrics::{Metrics, MetricsSnapshot};
pub use service::{GuidedQuery, MonitorHandle, MonitorService, RecoveryReport};
pub use shard::ShardMap;
