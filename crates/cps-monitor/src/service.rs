//! The monitoring service: ingest routing, shard workers, and the
//! [`MonitorHandle`] query facade.
//!
//! ```text
//!                      ┌─ bounded channel ─ worker 0 (OnlineExtractor) ─┐
//!  ingest ── ShardMap ─┼─ bounded channel ─ worker 1 (OnlineExtractor) ─┼─ merger ─ live state
//!                      └─ bounded channel ─ worker N (OnlineExtractor) ─┘      └──── ForestStore
//! ```
//!
//! Records are routed to the shard owning their sensor; window advances
//! are broadcast to every shard so all extractor clocks move together.
//! Channels are bounded: with [`OverflowPolicy::Block`] a full channel
//! exerts backpressure on the producer, with [`OverflowPolicy::Drop`] the
//! record is dropped and counted.
//!
//! ## Durability
//!
//! With `durability.wal_dir` set, every successfully sent ingest→worker
//! message is appended to the destination shard's write-ahead log
//! (send first, then log: the WAL is exactly the set of messages the
//! workers received, so replay never double-applies a failed send).
//! Periodic quiescent checkpoints capture the whole pipeline state —
//! extractor clocks and open events, the merger's reconciliation pool,
//! and the query-side live state — so [`MonitorService::recover`] replays
//! only the WAL suffix past the checkpoint and truncates dead segments.
//! With `durability.respawn_budget > 0`, a dead shard worker is rebuilt
//! in place from checkpoint + WAL replay and the failed send retried;
//! the budget spent, the shard is typed permanently failed.

use crate::config::{
    DurabilityConfig, FaultConfig, FsyncPolicy, MonitorConfig, OverflowPolicy, ServingConfig,
};
use crate::durability::{
    checkpoint_path, decode_entry, encode_entry, load_checkpoint, shard_wal_dir, write_checkpoint,
    CheckpointDoc, LiveCkpt, MergerCkpt, ShardCkpt, WalOp,
};
use crate::error::MonitorError;
use crate::live::LiveState;
use crate::merger::{Merger, MergerMsg};
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::shard::ShardMap;
use atypical::integrate::{integrate_aligned, TimeAlignment};
use atypical::online::{OnlineExtractor, OutOfOrderRecord, SealedRawEvent};
use atypical::significant::significance_threshold;
use atypical::store::{ForestLevel, ForestStore};
use atypical::AtypicalCluster;
use cps_core::ids::ClusterIdGen;
use cps_core::{AtypicalRecord, Params, RegionId, Severity, TimeRange, TimeWindow, WindowSpec};
use cps_geo::grid::{SensorPartition, UniformGrid};
use cps_geo::RoadNetwork;
use cps_index::st_index::max_gap_windows;
pub use cps_serve::GuidedQuery;
use cps_serve::{ReadView, ServeContext, ServeHandle, ServeState, QUERY_ID_BASE};
use cps_storage::wal::{read_wal, repair_tail, truncate_segments_below, SyncPolicy, WalWriter};
use cps_storage::Io;
use crossbeam::channel::{bounded, unbounded, Receiver, Sender, TrySendError};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long a checkpoint waits on a worker or merger barrier reply before
/// aborting the attempt (the service itself keeps running).
const BARRIER_TIMEOUT: Duration = Duration::from_secs(10);

/// State shared between the ingest thread, workers, merger, and handles.
pub(crate) struct SharedState {
    pub(crate) network: Arc<RoadNetwork>,
    pub(crate) partition: Arc<SensorPartition>,
    pub(crate) params: Params,
    pub(crate) spec: WindowSpec,
    pub(crate) metrics: Metrics,
    pub(crate) live: Mutex<LiveState>,
    pub(crate) store: Option<Arc<ForestStore>>,
    /// The lock-free read side: snapshot cell + result cache. The merger
    /// publishes into it; [`MonitorHandle::read_view`] and
    /// [`MonitorHandle::serve`] read from it without the live mutex.
    pub(crate) serve: Arc<ServeState>,
    /// Publication cadence (from the `[serving]` config section).
    pub(crate) serving: ServingConfig,
    pub(crate) started: Instant,
    /// Per-shard count of sealed events actually handed to the merger.
    /// Checkpoints record it so respawn replay can suppress regenerated
    /// events the merger already holds.
    pub(crate) sealed_sent: Vec<AtomicU64>,
}

impl SharedState {
    /// Publishes the live state's current read model through the serving
    /// cell, stamped with a fresh epoch. Called by the merger (at its
    /// configured cadence and on every day seal) while it holds the live
    /// lock, so the snapshot is internally consistent.
    pub(crate) fn publish_snapshot(&self, live: &mut LiveState) {
        let epoch = self.serve.next_epoch();
        self.serve.publish(live.publishable(epoch));
        self.metrics
            .snapshots_published
            .fetch_add(1, Ordering::Relaxed);
    }
}

/// Ingest → worker protocol.
enum WorkerMsg {
    Record(AtypicalRecord),
    Advance(TimeWindow),
    /// Quiescent-checkpoint barrier. The worker flushes its pending sealed
    /// events to the merger, then replies with its clock and open-event
    /// records; because the channel is FIFO, the reply proves every prior
    /// message is applied.
    Checkpoint {
        reply: Sender<(TimeWindow, Vec<Vec<AtypicalRecord>>)>,
    },
}

/// A running sharded monitoring service.
///
/// Feed window-ordered records through [`ingest`](Self::ingest); query at
/// any time through a [`MonitorHandle`]; [`finish`](Self::finish) drains
/// the pipeline and returns the final metrics.
pub struct MonitorService {
    shared: Arc<SharedState>,
    map: Arc<ShardMap>,
    overflow: OverflowPolicy,
    channel_capacity: usize,
    faults: FaultConfig,
    durability: DurabilityConfig,
    io: Io,
    senders: Vec<Sender<WorkerMsg>>,
    workers: Vec<Option<JoinHandle<()>>>,
    merger: Option<JoinHandle<()>>,
    /// Kept for checkpoint barriers and respawn replay; dropped in
    /// [`finish`](Self::finish) so the merger's channel closes.
    merger_tx: Option<Sender<MergerMsg>>,
    /// One WAL writer per shard when durability is on.
    writers: Vec<Option<WalWriter>>,
    /// Last assigned global WAL sequence number (0 = nothing logged).
    wal_seq: u64,
    /// Records accepted since the last checkpoint.
    records_since_ck: u64,
    /// The committed checkpoint respawn replay restores from.
    ckpt_base: Option<CheckpointDoc>,
    respawns_used: Vec<u32>,
    current_window: Option<TimeWindow>,
    /// Shards whose worker was observed dead (a channel send failed or the
    /// thread panicked); marked once, counted once in the metrics.
    dead: Vec<bool>,
    /// Shards declared permanently failed (respawn budget spent).
    failed: Vec<bool>,
    /// Records seen by `ingest` so far, in feed order (drives the
    /// deterministic drop-burst hook and the recovery resume point).
    ingest_seq: u64,
}

/// What [`MonitorService::recover`] did to rebuild the service.
#[derive(Clone, Debug)]
pub struct RecoveryReport {
    /// Whether a checkpoint document existed (otherwise the whole WAL was
    /// replayed from an empty baseline).
    pub had_checkpoint: bool,
    /// The checkpoint's covered sequence number (0 without a checkpoint).
    pub checkpoint_seq: u64,
    /// WAL entries replayed (past the checkpoint).
    pub replayed_entries: usize,
    /// Record entries among them.
    pub replayed_records: u64,
    /// Shard logs whose torn final segment was repaired.
    pub repaired_tails: usize,
    /// Feed position to resume from: the number of records the recovered
    /// state durably contains. Re-feeding the source stream from this
    /// index applies every record exactly once — including the edge where
    /// a crash hit the fsync *after* a record's WAL frame became durable,
    /// so the ingest error and the log disagree about it.
    pub resume_from: u64,
}

/// SplitMix64 step, used for the deterministic scheduling jitter.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn sync_policy(d: &DurabilityConfig) -> SyncPolicy {
    match d.fsync {
        FsyncPolicy::Always => SyncPolicy::Always,
        FsyncPolicy::Never => SyncPolicy::Never,
        FsyncPolicy::Group => SyncPolicy::EveryN(d.group_commit_records),
    }
}

fn kill_after_for(faults: &FaultConfig, shard: usize) -> Option<u64> {
    faults
        .kill_worker
        .filter(|k| k.shard == shard)
        .map(|k| k.after_records)
}

fn jitter_for(faults: &FaultConfig, shard: usize) -> Option<u64> {
    faults
        .jitter_seed
        .map(|seed| seed ^ (shard as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Everything one shard worker thread needs.
struct WorkerSpawn {
    shard: usize,
    rx: Receiver<WorkerMsg>,
    network: Arc<RoadNetwork>,
    map: Arc<ShardMap>,
    shared: Arc<SharedState>,
    merger_tx: Sender<MergerMsg>,
    kill_after: Option<u64>,
    jitter: Option<u64>,
    /// Checkpointed extractor state to restore before consuming messages
    /// (clock + open-event records); `None` starts fresh.
    restore: Option<(TimeWindow, Vec<Vec<AtypicalRecord>>)>,
}

fn spawn_worker(ctx: WorkerSpawn) -> Result<JoinHandle<()>, String> {
    let WorkerSpawn {
        shard,
        rx,
        network,
        map,
        shared,
        merger_tx,
        kill_after,
        mut jitter,
        restore,
    } = ctx;
    std::thread::Builder::new()
        .name(format!("cps-monitor-shard-{shard}"))
        .spawn(move || {
            let (params, spec) = (shared.params, shared.spec);
            let mut extractor = OnlineExtractor::new(&network, params, spec);
            extractor.retain_raw_events(true);
            if let Some((clock, open)) = restore {
                extractor.restore_open_events(clock, open);
            }
            let send_sealed = |events: Vec<SealedRawEvent>| {
                if !events.is_empty() {
                    let n = events.len() as u64;
                    let _ = merger_tx.send(MergerMsg::Sealed { events });
                    shared.sealed_sent[shard].fetch_add(n, Ordering::Relaxed);
                }
            };
            let mut records_processed = 0u64;
            while let Ok(msg) = rx.recv() {
                shared.metrics.set_queue_depth(shard, rx.len());
                if let Some(state) = jitter.as_mut() {
                    // Perturb worker/merger interleaving
                    // reproducibly: occasional microsecond sleeps
                    // driven by the per-shard seed.
                    let x = splitmix64(state);
                    if x.is_multiple_of(7) {
                        std::thread::sleep(std::time::Duration::from_micros(x % 50));
                    }
                }
                match msg {
                    WorkerMsg::Record(record) => {
                        if kill_after.is_some_and(|n| records_processed >= n) {
                            // Fault hook: die abruptly — skip the
                            // drain/Done epilogue exactly as a crashed
                            // thread would. Per incarnation: a respawned
                            // worker dies again after `after_records`
                            // more records, so a long enough feed
                            // deterministically exhausts any respawn
                            // budget.
                            shared.metrics.set_queue_depth(shard, 0);
                            return;
                        }
                        records_processed += 1;
                        // The service's ingest clock already
                        // rejected regressing windows, so this
                        // cannot fail; stay defensive anyway.
                        if extractor.push(record).is_err() {
                            debug_assert!(false, "service clock admitted a stale record");
                        }
                    }
                    WorkerMsg::Advance(window) => {
                        extractor.advance_to(window);
                        send_sealed(extractor.drain_sealed_raw());
                        let _ = merger_tx.send(MergerMsg::Clock {
                            shard,
                            window,
                            open_floor: extractor.open_min_window_where(|_| true),
                            boundary_floor: extractor.open_min_window_where(|s| map.is_boundary(s)),
                        });
                    }
                    WorkerMsg::Checkpoint { reply } => {
                        // Flush events sealed by record pushes since the
                        // last advance: the merger barrier that follows
                        // must cover them, and the open-event export
                        // below does not.
                        send_sealed(extractor.drain_sealed_raw());
                        let _ = reply
                            .send((extractor.current_window(), extractor.export_open_events()));
                    }
                }
            }
            shared.metrics.set_queue_depth(shard, 0);
            send_sealed(extractor.finish_raw());
            let _ = merger_tx.send(MergerMsg::Done { shard });
        })
        .map_err(|e| format!("spawning shard worker {shard}: {e}"))
}

impl MonitorService {
    /// Validates `config`, shards `network`, and spawns the worker and
    /// merger threads.
    pub fn start(config: &MonitorConfig, network: Arc<RoadNetwork>) -> Result<Self, String> {
        Self::start_with(config, network, Io::real())
    }

    /// [`start`](Self::start) with every file operation (snapshot store,
    /// WAL, checkpoints) routed through `io`.
    pub fn start_with(
        config: &MonitorConfig,
        network: Arc<RoadNetwork>,
        io: Io,
    ) -> Result<Self, String> {
        config.validate()?;
        if let Some(wal_dir) = &config.durability.wal_dir {
            let has_state = checkpoint_path(wal_dir).exists()
                || std::fs::read_dir(wal_dir).is_ok_and(|mut d| d.next().is_some());
            if has_state {
                return Err(format!(
                    "wal_dir {} holds a previous run's state; recover it with \
                     MonitorService::recover or point wal_dir elsewhere",
                    wal_dir.display()
                ));
            }
        }
        let (shared, map, max_gap) = Self::scaffold(config, &network, &io, None)?;

        // Merger input is unbounded: its producers are the bounded-channel
        // workers, so it is already flow-controlled by the record channels.
        let (merger_tx, merger_rx) = unbounded::<MergerMsg>();
        let merger = Merger::new(shared.clone(), map.clone(), max_gap);
        let merger = std::thread::Builder::new()
            .name("cps-monitor-merger".to_string())
            .spawn(move || merger.run(merger_rx))
            .map_err(|e| format!("spawning merger: {e}"))?;

        let writers = Self::open_writers(config, &io)?;
        let mut senders = Vec::with_capacity(config.shards);
        let mut workers = Vec::with_capacity(config.shards);
        for shard in 0..config.shards {
            let (tx, rx) = bounded::<WorkerMsg>(config.channel_capacity);
            senders.push(tx);
            workers.push(Some(spawn_worker(WorkerSpawn {
                shard,
                rx,
                network: network.clone(),
                map: map.clone(),
                shared: shared.clone(),
                merger_tx: merger_tx.clone(),
                kill_after: kill_after_for(&config.faults, shard),
                jitter: jitter_for(&config.faults, shard),
                restore: None,
            })?));
        }

        Ok(Self {
            shared,
            map,
            overflow: config.overflow,
            channel_capacity: config.channel_capacity,
            faults: config.faults,
            durability: config.durability.clone(),
            io,
            senders,
            workers,
            merger: Some(merger),
            merger_tx: Some(merger_tx),
            writers,
            wal_seq: 0,
            records_since_ck: 0,
            ckpt_base: None,
            respawns_used: vec![0; config.shards],
            current_window: None,
            dead: vec![false; config.shards],
            failed: vec![false; config.shards],
            ingest_seq: 0,
        })
    }

    /// Rebuilds a service from its durable state: the checkpoint (when
    /// present) plus a single-threaded replay of the WAL suffix past it.
    /// The recovered pipeline is equivalent to one that ingested the same
    /// accepted records without interruption; resume the feed at
    /// [`RecoveryReport::resume_from`].
    pub fn recover(
        config: &MonitorConfig,
        network: Arc<RoadNetwork>,
    ) -> Result<(Self, RecoveryReport), String> {
        Self::recover_with(config, network, Io::real())
    }

    /// [`recover`](Self::recover) through an explicit [`Io`] backend.
    pub fn recover_with(
        config: &MonitorConfig,
        network: Arc<RoadNetwork>,
        io: Io,
    ) -> Result<(Self, RecoveryReport), String> {
        config.validate()?;
        let Some(wal_dir) = config.durability.wal_dir.clone() else {
            return Err("recover requires durability.wal_dir".to_string());
        };
        let base =
            load_checkpoint(&io, &wal_dir).map_err(|e| format!("loading checkpoint: {e}"))?;
        let had_checkpoint = base.is_some();
        let base = base.unwrap_or_default();
        if had_checkpoint && base.shards.len() != config.shards {
            return Err(format!(
                "checkpoint has {} shards but the config asks for {}",
                base.shards.len(),
                config.shards
            ));
        }

        // Read every shard's log: repair a torn tail (only the last
        // segment may legally hold one), decode, and keep the suffix past
        // the checkpoint. The global sequence numbers interleave the
        // per-shard logs back into the exact ingest send order.
        let mut entries = Vec::new();
        let mut repaired_tails = 0usize;
        for shard in 0..config.shards {
            let dir = shard_wal_dir(&wal_dir, shard);
            let segments =
                read_wal(&io, &dir).map_err(|e| format!("reading shard {shard} WAL: {e}"))?;
            if segments.last().is_some_and(|s| s.torn) {
                repaired_tails += 1;
                repair_tail(&io, &dir).map_err(|e| format!("repairing shard {shard} WAL: {e}"))?;
            }
            for segment in segments {
                for payload in segment.entries {
                    let entry = decode_entry(&payload)
                        .map_err(|e| format!("decoding shard {shard} WAL entry: {e}"))?;
                    if entry.seq > base.last_seq {
                        entries.push((shard, entry));
                    }
                }
            }
        }
        entries.sort_by_key(|(_, e)| e.seq);
        let max_seq = entries.last().map_or(base.last_seq, |(_, e)| e.seq);

        let live = if had_checkpoint {
            LiveState::restore(&config.params, &base.live)
        } else {
            LiveState::new(&config.params)
        };
        let (shared, map, max_gap) = Self::scaffold(config, &network, &io, Some(live))?;
        let mut merger = Merger::restore(shared.clone(), map.clone(), max_gap, &base.merger);

        // Single-threaded replay: one restored extractor per shard, the
        // merger applied inline in send order. `push` advances the clock
        // exactly like the worker's advance-then-push, so the replayed
        // state is the state the workers would have reached.
        let mut current_window = base.current_window;
        let mut sealed_replayed = vec![0u64; config.shards];
        let mut replayed_records = 0u64;
        let restores: Vec<(TimeWindow, Vec<Vec<AtypicalRecord>>)> = {
            let mut extractors: Vec<OnlineExtractor> = (0..config.shards)
                .map(|shard| {
                    let mut e = OnlineExtractor::new(&network, config.params, config.spec);
                    e.retain_raw_events(true);
                    if let Some(sc) = base.shards.get(shard) {
                        e.restore_open_events(sc.clock, sc.open.clone());
                    }
                    e
                })
                .collect();
            let apply_drained = |merger: &mut Merger,
                                 extractor: &mut OnlineExtractor,
                                 shard: usize,
                                 window: TimeWindow,
                                 sealed_replayed: &mut [u64]| {
                let events = extractor.drain_sealed_raw();
                if !events.is_empty() {
                    sealed_replayed[shard] += events.len() as u64;
                    merger.apply(MergerMsg::Sealed { events });
                }
                merger.apply(MergerMsg::Clock {
                    shard,
                    window,
                    open_floor: extractor.open_min_window_where(|_| true),
                    boundary_floor: extractor.open_min_window_where(|s| map.is_boundary(s)),
                });
            };
            for &(shard, entry) in &entries {
                match entry.op {
                    WalOp::Record(record) => {
                        replayed_records += 1;
                        if current_window.is_none_or(|w| record.window > w) {
                            current_window = Some(record.window);
                        }
                        let _ = extractors[shard].push(record);
                    }
                    WalOp::Advance(window) => {
                        if current_window.is_none_or(|w| window > w) {
                            current_window = Some(window);
                        }
                        extractors[shard].advance_to(window);
                        apply_drained(
                            &mut merger,
                            &mut extractors[shard],
                            shard,
                            window,
                            &mut sealed_replayed,
                        );
                    }
                }
            }
            // Catch-up: a crash mid-broadcast leaves some shards without
            // the final advance entry. Align every clock to the global
            // window, exactly as the completed broadcast would have. Not
            // logged — any later recovery re-derives it from the same
            // entries.
            if let Some(window) = current_window {
                for (shard, extractor) in extractors.iter_mut().enumerate() {
                    extractor.advance_to(window);
                    apply_drained(&mut merger, extractor, shard, window, &mut sealed_replayed);
                }
            }
            extractors
                .iter()
                .map(|e| (e.current_window(), e.export_open_events()))
                .collect()
        };
        for (shard, &replayed) in sealed_replayed.iter().enumerate() {
            let sent = base.shards.get(shard).map_or(0, |s| s.sealed_sent) + replayed;
            shared.sealed_sent[shard].store(sent, Ordering::Relaxed);
        }
        shared.metrics.recoveries.store(1, Ordering::Relaxed);

        let (merger_tx, merger_rx) = unbounded::<MergerMsg>();
        let merger = std::thread::Builder::new()
            .name("cps-monitor-merger".to_string())
            .spawn(move || merger.run(merger_rx))
            .map_err(|e| format!("spawning merger: {e}"))?;

        // Writers open fresh segments past everything on disk; the old
        // segments stay (until the next checkpoint truncates them) so a
        // later recovery or respawn can still replay from the base.
        let writers = Self::open_writers(config, &io)?;
        let mut senders = Vec::with_capacity(config.shards);
        let mut workers = Vec::with_capacity(config.shards);
        for (shard, restore) in restores.into_iter().enumerate() {
            let (tx, rx) = bounded::<WorkerMsg>(config.channel_capacity);
            senders.push(tx);
            workers.push(Some(spawn_worker(WorkerSpawn {
                shard,
                rx,
                network: network.clone(),
                map: map.clone(),
                shared: shared.clone(),
                merger_tx: merger_tx.clone(),
                kill_after: kill_after_for(&config.faults, shard),
                jitter: jitter_for(&config.faults, shard),
                restore: Some(restore),
            })?));
        }

        let ingest_seq = base.ingest_seq + replayed_records;
        let report = RecoveryReport {
            had_checkpoint,
            checkpoint_seq: base.last_seq,
            replayed_entries: entries.len(),
            replayed_records,
            repaired_tails,
            resume_from: ingest_seq,
        };
        let service = Self {
            shared,
            map,
            overflow: config.overflow,
            channel_capacity: config.channel_capacity,
            faults: config.faults,
            durability: config.durability.clone(),
            io,
            senders,
            workers,
            merger: Some(merger),
            merger_tx: Some(merger_tx),
            writers,
            wal_seq: max_seq,
            records_since_ck: 0,
            ckpt_base: had_checkpoint.then_some(base),
            respawns_used: vec![0; config.shards],
            current_window,
            dead: vec![false; config.shards],
            failed: vec![false; config.shards],
            ingest_seq,
        };
        Ok((service, report))
    }

    /// Builds the pieces `start_with` and `recover_with` share: shard
    /// layout, red-zone partition, snapshot store, and the shared state.
    fn scaffold(
        config: &MonitorConfig,
        network: &Arc<RoadNetwork>,
        io: &Io,
        live: Option<LiveState>,
    ) -> Result<(Arc<SharedState>, Arc<ShardMap>, u32), String> {
        let params = config.params;
        let spec = config.spec;
        let map = Arc::new(ShardMap::build(
            network,
            config.shards,
            params.delta_d_miles,
        ));
        let partition =
            Arc::new(UniformGrid::over(network, config.red_cell_miles).partition(network));
        let store = match &config.snapshot_dir {
            Some(dir) => Some(Arc::new(
                ForestStore::open_with(dir, io.clone()).map_err(|e| e.to_string())?,
            )),
            None => None,
        };
        // Epoch 0 carries the initial read model: empty for a fresh start,
        // the restored state for a recovery — readers never see a gap.
        let mut live = live.unwrap_or_else(|| LiveState::new(&params));
        let initial = live.publishable(0);
        let serve = Arc::new(ServeState::new(
            ServeContext {
                partition: partition.clone(),
                params,
                spec,
                num_sensors: network.num_sensors() as u32,
                store: store.clone(),
            },
            initial,
            config.serving.cache_shards,
            config.serving.cache_capacity,
            config.serving.cache,
        ));
        let shared = Arc::new(SharedState {
            network: network.clone(),
            partition,
            params,
            spec,
            metrics: Metrics::new(config.shards),
            live: Mutex::new(live),
            store,
            serve,
            serving: config.serving,
            started: Instant::now(),
            sealed_sent: (0..config.shards).map(|_| AtomicU64::new(0)).collect(),
        });
        shared
            .metrics
            .snapshots_published
            .fetch_add(1, Ordering::Relaxed);
        Ok((shared, map, max_gap_windows(&params, spec)))
    }

    fn open_writers(config: &MonitorConfig, io: &Io) -> Result<Vec<Option<WalWriter>>, String> {
        let d = &config.durability;
        let Some(wal_dir) = &d.wal_dir else {
            return Ok((0..config.shards).map(|_| None).collect());
        };
        let mut writers = Vec::with_capacity(config.shards);
        for shard in 0..config.shards {
            let writer = WalWriter::open(
                io.clone(),
                &shard_wal_dir(wal_dir, shard),
                sync_policy(d),
                d.segment_bytes,
            )
            .map_err(|e| format!("opening shard {shard} WAL: {e}"))?;
            writers.push(Some(writer));
        }
        Ok(writers)
    }

    /// The shard layout in use.
    pub fn shard_map(&self) -> &ShardMap {
        &self.map
    }

    /// A cloneable query facade, valid beyond [`finish`](Self::finish).
    pub fn handle(&self) -> MonitorHandle {
        MonitorHandle {
            shared: self.shared.clone(),
        }
    }

    /// Feeds one record. Returns `Ok(true)` if accepted (and, with a WAL,
    /// durably logged), `Ok(false)` if dropped by a full channel under
    /// [`OverflowPolicy::Drop`] (or the drop-burst fault hook), and a
    /// typed [`MonitorError`] otherwise. Every error is recoverable in the
    /// sense that the service keeps running; a [`MonitorError::Wal`]
    /// additionally means the record is *not* durable and should be
    /// re-fed after [`recover`](Self::recover).
    pub fn ingest(&mut self, record: AtypicalRecord) -> Result<bool, MonitorError> {
        let shard = self.map.shard_of(record.sensor);
        match self.current_window {
            Some(current) if record.window < current => {
                return Err(MonitorError::OutOfOrder {
                    shard,
                    cause: OutOfOrderRecord {
                        record,
                        current_window: current,
                    },
                });
            }
            Some(current) if record.window > current => self.broadcast_advance(record.window)?,
            None => self.broadcast_advance(record.window)?,
            _ => {}
        }
        self.current_window = Some(record.window);

        // The drop-burst hook sits after the clock advance: a dropped
        // record still moves every shard's clock, exactly like a record
        // dropped by a full channel.
        let seq = self.ingest_seq;
        self.ingest_seq += 1;
        if let Some(burst) = self.faults.drop_burst {
            if seq >= burst.at_record && seq - burst.at_record < burst.len {
                self.shared
                    .metrics
                    .records_dropped
                    .fetch_add(1, Ordering::Relaxed);
                return Ok(false);
            }
        }

        if self.dead[shard] {
            return Err(self.dead_shard_error(shard));
        }
        match self.overflow {
            OverflowPolicy::Block => {
                if self.senders[shard].send(WorkerMsg::Record(record)).is_err() {
                    self.respawn(shard)?;
                    if self.senders[shard].send(WorkerMsg::Record(record)).is_err() {
                        self.mark_dead(shard);
                        return Err(MonitorError::WorkerDied { shard });
                    }
                }
            }
            OverflowPolicy::Drop => {
                let mut msg = WorkerMsg::Record(record);
                loop {
                    match self.senders[shard].try_send(msg) {
                        Ok(()) => break,
                        Err(TrySendError::Full(_)) => {
                            self.shared
                                .metrics
                                .records_dropped
                                .fetch_add(1, Ordering::Relaxed);
                            return Ok(false);
                        }
                        Err(TrySendError::Disconnected(returned)) => {
                            if self.dead[shard] {
                                // The respawned worker died again before
                                // accepting anything; give up on the send.
                                self.mark_dead(shard);
                                return Err(MonitorError::WorkerDied { shard });
                            }
                            self.respawn(shard)?;
                            msg = returned;
                        }
                    }
                }
            }
        }
        self.log_op(shard, WalOp::Record(record))?;
        self.shared
            .metrics
            .records_ingested
            .fetch_add(1, Ordering::Relaxed);
        self.records_since_ck += 1;
        self.maybe_checkpoint();
        Ok(true)
    }

    /// Advances every shard's clock without feeding a record — e.g. to
    /// flush quiet periods at the end of a replay segment. With a WAL the
    /// advance is logged, so it survives recovery like any record.
    pub fn advance_to(&mut self, window: TimeWindow) -> Result<(), MonitorError> {
        if self.current_window.is_none_or(|c| window > c) {
            self.broadcast_advance(window)?;
            self.current_window = Some(window);
        }
        Ok(())
    }

    /// Window-advance broadcasts always block: dropping one would let a
    /// shard's clock fall behind and stall finalization. A dead shard is
    /// skipped — its clock stays frozen, which keeps its unfinished days
    /// live (and queryable) instead of persisting them incomplete. With
    /// supervision on, a send failure respawns the worker in place first.
    fn broadcast_advance(&mut self, window: TimeWindow) -> Result<(), MonitorError> {
        for shard in 0..self.senders.len() {
            if self.dead[shard] {
                continue;
            }
            if self.senders[shard]
                .send(WorkerMsg::Advance(window))
                .is_err()
            {
                match self.respawn(shard) {
                    Ok(()) => {
                        if self.senders[shard]
                            .send(WorkerMsg::Advance(window))
                            .is_err()
                        {
                            self.mark_dead(shard);
                            continue;
                        }
                    }
                    Err(MonitorError::WorkerDied { .. }) => continue,
                    Err(other) => return Err(other),
                }
            }
            self.log_op(shard, WalOp::Advance(window))?;
        }
        Ok(())
    }

    /// Appends one entry to a shard's WAL (no-op without durability).
    fn log_op(&mut self, shard: usize, op: WalOp) -> Result<(), MonitorError> {
        let Some(writer) = self.writers[shard].as_mut() else {
            return Ok(());
        };
        self.wal_seq += 1;
        let payload = encode_entry(self.wal_seq, &op);
        match writer.append(&payload) {
            Ok(framed) => {
                self.shared
                    .metrics
                    .wal_appends
                    .fetch_add(1, Ordering::Relaxed);
                self.shared
                    .metrics
                    .wal_bytes
                    .fetch_add(framed, Ordering::Relaxed);
                Ok(())
            }
            Err(e) => Err(MonitorError::Wal {
                shard: Some(shard),
                detail: e.to_string(),
            }),
        }
    }

    /// Rebuilds a dead shard worker in place: replay its log from the
    /// checkpoint base on this thread, hand the merger the regenerated
    /// events it has not seen, and spawn a fresh worker holding the
    /// replayed extractor state. Typed errors when supervision is off
    /// ([`MonitorError::WorkerDied`]) or the budget is spent
    /// ([`MonitorError::ShardFailed`]).
    fn respawn(&mut self, shard: usize) -> Result<(), MonitorError> {
        self.mark_dead(shard);
        let budget = self.durability.respawn_budget;
        if !self.durability.enabled() || budget == 0 {
            return Err(MonitorError::WorkerDied { shard });
        }
        if self.respawns_used[shard] >= budget {
            self.failed[shard] = true;
            self.shared
                .metrics
                .permanently_failed
                .fetch_add(1, Ordering::Relaxed);
            return Err(MonitorError::ShardFailed {
                shard,
                respawns: self.respawns_used[shard],
            });
        }
        self.respawns_used[shard] += 1;
        if let Some(stale) = self.workers[shard].take() {
            // The send failure means the receiver is gone, so the thread
            // has exited (or panicked — already just counted dead).
            let _ = stale.join();
        }

        let wal_dir = self
            .durability
            .wal_dir
            .clone()
            .expect("supervision requires a WAL");
        let base_seq = self.ckpt_base.as_ref().map_or(0, |c| c.last_seq);
        let base_shard = self
            .ckpt_base
            .as_ref()
            .map(|c| c.shards[shard].clone())
            .unwrap_or_default();
        let dir = shard_wal_dir(&wal_dir, shard);
        let wal_err = |detail: String| MonitorError::Wal {
            shard: Some(shard),
            detail,
        };
        let segments = read_wal(&self.io, &dir).map_err(|e| wal_err(e.to_string()))?;
        let mut entries = Vec::new();
        for segment in segments {
            for payload in segment.entries {
                let entry = decode_entry(&payload).map_err(|e| wal_err(e.to_string()))?;
                if entry.seq > base_seq {
                    entries.push(entry);
                }
            }
        }
        entries.sort_by_key(|e| e.seq);

        // Replay on the ingest thread. The regenerated sealed events are a
        // prefix-extension of what the dead worker sent: suppress the ones
        // the merger already holds, forward the rest.
        let merger_tx = self
            .merger_tx
            .clone()
            .expect("merger_tx lives until finish");
        let network = self.shared.network.clone();
        let (params, spec) = (self.shared.params, self.shared.spec);
        let already_sent =
            self.shared.sealed_sent[shard].load(Ordering::Relaxed) - base_shard.sealed_sent;
        let restore = {
            let mut extractor = OnlineExtractor::new(&network, params, spec);
            extractor.retain_raw_events(true);
            extractor.restore_open_events(base_shard.clock, base_shard.open.clone());
            let mut regenerated: Vec<SealedRawEvent> = Vec::new();
            for entry in &entries {
                match entry.op {
                    WalOp::Record(record) => {
                        let _ = extractor.push(record);
                    }
                    WalOp::Advance(window) => {
                        extractor.advance_to(window);
                        regenerated.append(&mut extractor.drain_sealed_raw());
                    }
                }
            }
            regenerated.append(&mut extractor.drain_sealed_raw());
            let total = regenerated.len() as u64;
            debug_assert!(
                total >= already_sent,
                "replay regenerated fewer events than the merger received"
            );
            let fresh: Vec<SealedRawEvent> = regenerated
                .into_iter()
                .skip(already_sent.min(total) as usize)
                .collect();
            if !fresh.is_empty() {
                let _ = merger_tx.send(MergerMsg::Sealed { events: fresh });
            }
            self.shared.sealed_sent[shard].store(base_shard.sealed_sent + total, Ordering::Relaxed);
            let _ = merger_tx.send(MergerMsg::Clock {
                shard,
                window: extractor.current_window(),
                open_floor: extractor.open_min_window_where(|_| true),
                boundary_floor: extractor.open_min_window_where(|s| self.map.is_boundary(s)),
            });
            (extractor.current_window(), extractor.export_open_events())
        };

        let (tx, rx) = bounded::<WorkerMsg>(self.channel_capacity);
        let worker = spawn_worker(WorkerSpawn {
            shard,
            rx,
            network,
            map: self.map.clone(),
            shared: self.shared.clone(),
            merger_tx,
            kill_after: kill_after_for(&self.faults, shard),
            jitter: jitter_for(&self.faults, shard),
            restore: Some(restore),
        });
        match worker {
            Ok(handle) => {
                self.senders[shard] = tx;
                self.workers[shard] = Some(handle);
                self.dead[shard] = false;
                self.shared.metrics.unmark_worker_dead(shard);
                self.shared.metrics.respawns.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err(_) => Err(MonitorError::WorkerDied { shard }),
        }
    }

    /// The error a permanently failed or plainly dead shard reports.
    fn dead_shard_error(&self, shard: usize) -> MonitorError {
        if self.failed[shard] {
            MonitorError::ShardFailed {
                shard,
                respawns: self.respawns_used[shard],
            }
        } else {
            MonitorError::WorkerDied { shard }
        }
    }

    /// Runs a checkpoint when the interval says so. A failed attempt is
    /// not data loss — the WAL suffix still covers everything — so errors
    /// only postpone truncation to the next interval.
    fn maybe_checkpoint(&mut self) {
        let interval = self.durability.checkpoint_interval_records;
        if interval == 0 || self.records_since_ck < interval {
            return;
        }
        self.records_since_ck = 0;
        if self.dead.iter().any(|&d| d) {
            // A frozen shard cannot reach the quiescent cut.
            return;
        }
        let _ = self.checkpoint_now();
    }

    /// The quiescent checkpoint protocol. All file operations happen on
    /// this (the ingest) thread, so crash sweeps see one deterministic
    /// operation order:
    ///
    /// 1. rotate every shard's WAL — post-cut entries land in segments
    ///    `>= wal_floor`;
    /// 2. barrier every worker (reply = clock + open events, after
    ///    flushing pending sealed events to the merger);
    /// 3. read the per-shard sealed counters — final, since every worker
    ///    has acked;
    /// 4. barrier the merger (channel FIFO ⇒ it has applied every
    ///    pre-barrier message) for its serialized pool;
    /// 5. snapshot the live state under its lock;
    /// 6. write the checkpoint atomically, then delete segments below
    ///    every floor.
    fn checkpoint_now(&mut self) -> Result<(), MonitorError> {
        let wal_dir = self
            .durability
            .wal_dir
            .clone()
            .expect("checkpointing requires a WAL");
        let shards = self.senders.len();
        let wal_err = |shard: Option<usize>, detail: String| MonitorError::Wal { shard, detail };

        let mut floors = vec![0u64; shards];
        for (shard, writer) in self.writers.iter_mut().enumerate() {
            let writer = writer.as_mut().expect("durability is on");
            floors[shard] = writer
                .rotate()
                .map_err(|e| wal_err(Some(shard), e.to_string()))?;
        }

        let mut shard_states = Vec::with_capacity(shards);
        for shard in 0..shards {
            let (reply_tx, reply_rx) = bounded(1);
            if self.senders[shard]
                .send(WorkerMsg::Checkpoint { reply: reply_tx })
                .is_err()
            {
                // The worker died; the next record send will notice and
                // respawn it. Abort without marking anything.
                return Err(MonitorError::WorkerDied { shard });
            }
            match reply_rx.recv_timeout(BARRIER_TIMEOUT) {
                Ok(state) => shard_states.push(state),
                Err(_) => {
                    return Err(wal_err(
                        Some(shard),
                        "checkpoint barrier timed out".to_string(),
                    ))
                }
            }
        }
        let sealed: Vec<u64> = (0..shards)
            .map(|s| self.shared.sealed_sent[s].load(Ordering::Relaxed))
            .collect();

        let merger_tx = self
            .merger_tx
            .as_ref()
            .expect("merger_tx lives until finish");
        let (reply_tx, reply_rx) = bounded(1);
        merger_tx
            .send(MergerMsg::Checkpoint { reply: reply_tx })
            .map_err(|_| wal_err(None, "merger channel closed".to_string()))?;
        let merger_bytes = reply_rx
            .recv_timeout(BARRIER_TIMEOUT)
            .map_err(|_| wal_err(None, "merger barrier timed out".to_string()))?;
        let merger = MergerCkpt::decode(&mut merger_bytes.as_slice())
            .map_err(|e| wal_err(None, e.to_string()))?;

        let live = {
            let live = self.shared.live.lock();
            LiveCkpt {
                next_id: live.ids.peek(),
                micros_by_day: live
                    .micros_by_day
                    .iter()
                    .map(|(day, micros)| (*day, micros.as_ref().clone()))
                    .collect(),
                region_f_by_day: live
                    .region_f_by_day
                    .iter()
                    .map(|(day, f)| (*day, f.as_ref().clone()))
                    .collect(),
                macros: live.macros.snapshot(),
                persisted_days: live.persisted_days.iter().copied().collect(),
            }
        };

        let doc = CheckpointDoc {
            last_seq: self.wal_seq,
            current_window: self.current_window,
            ingest_seq: self.ingest_seq,
            shards: shard_states
                .into_iter()
                .enumerate()
                .map(|(shard, (clock, open))| ShardCkpt {
                    clock,
                    open,
                    sealed_sent: sealed[shard],
                    wal_floor: floors[shard],
                })
                .collect(),
            merger,
            live,
        };
        write_checkpoint(&self.io, &wal_dir, &doc).map_err(|e| wal_err(None, e.to_string()))?;
        for (shard, &floor) in floors.iter().enumerate() {
            // Best effort: a leftover segment is re-skipped by seq on
            // replay, never re-applied.
            let _ = truncate_segments_below(&self.io, &shard_wal_dir(&wal_dir, shard), floor);
        }
        self.ckpt_base = Some(doc);
        self.shared
            .metrics
            .checkpoints
            .fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Records a shard's worker as dead; the shared metrics flag makes the
    /// count exactly-once across ingest, the merger, and `finish`.
    fn mark_dead(&mut self, shard: usize) {
        if !self.dead[shard] {
            self.dead[shard] = true;
            self.shared.metrics.mark_worker_dead(shard);
        }
    }

    /// Shards whose worker has been observed dead — by a failed channel
    /// send, a missing merger `Done`, or a panicked join. A successfully
    /// respawned shard leaves this list.
    pub fn dead_shards(&self) -> Vec<usize> {
        self.shared.metrics.dead_shards()
    }

    /// Closes the feed, drains every shard, reconciles and persists what
    /// remains, syncs the WALs, and returns the final metrics. Handles
    /// stay valid. A panicked worker is counted dead rather than
    /// re-panicking here.
    pub fn finish(mut self) -> MetricsSnapshot {
        self.senders.clear();
        for (shard, worker) in self.workers.drain(..).enumerate() {
            if let Some(worker) = worker {
                if worker.join().is_err() {
                    self.shared.metrics.mark_worker_dead(shard);
                }
            }
        }
        // Release our merger sender so its channel closes once the worker
        // clones are gone.
        self.merger_tx = None;
        if let Some(merger) = self.merger.take() {
            merger.join().expect("merger panicked");
        }
        for writer in self.writers.iter_mut().flatten() {
            let _ = writer.sync();
        }
        self.shared.metrics.snapshot(self.shared.started.elapsed())
    }
}

/// Cloneable, thread-safe query facade over the service.
///
/// Two read paths coexist:
///
/// - The methods below answer against the **live state** under its mutex —
///   always the absolute freshest answer, but each call contends with the
///   merger for the lock.
/// - [`read_view`](Self::read_view) pins the latest **published snapshot**
///   as a lock-free [`ReadView`] (and [`serve`](Self::serve) adds the
///   result cache in front). Snapshot reads never block ingest and a
///   pinned view is internally consistent across a multi-step drill-down;
///   they trail the live state by at most the configured publication
///   cadence. At quiescence (after [`MonitorService::finish`]) both paths
///   answer identically.
#[derive(Clone)]
pub struct MonitorHandle {
    shared: Arc<SharedState>,
}

impl MonitorHandle {
    /// Current service metrics.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot(self.shared.started.elapsed())
    }

    /// Pins the latest published snapshot as a lock-free [`ReadView`]:
    /// one atomic load, no contention with the merger.
    pub fn read_view(&self) -> ReadView {
        self.serve().view()
    }

    /// A `Send + Clone` snapshot-backed query handle with the result
    /// cache in front (see the `[serving]` config section).
    pub fn serve(&self) -> ServeHandle {
        ServeHandle::new(self.shared.serve.clone())
    }

    /// The live macro-clusters (Algorithm 3 fixpoint over every finalized
    /// micro-cluster so far), from the mutex path.
    pub fn live_macro_clusters(&self) -> Vec<AtypicalCluster> {
        self.shared.live.lock().macros.snapshot()
    }

    /// Every live (not yet persisted) micro-cluster, from the mutex path.
    pub fn live_micro_clusters(&self) -> Vec<AtypicalCluster> {
        let live = self.shared.live.lock();
        live.micros_by_day
            .values()
            .flat_map(|v| v.iter().cloned())
            .collect()
    }

    /// One day's micro-clusters, from live memory or the snapshot store.
    pub fn micro_clusters_for_day(&self, day: u32) -> cps_core::Result<Vec<AtypicalCluster>> {
        {
            let live = self.shared.live.lock();
            if let Some(micros) = live.micros_by_day.get(&day) {
                return Ok(micros.as_ref().clone());
            }
        }
        match &self.shared.store {
            Some(store) => Ok(store.load(ForestLevel::Day, day)?.unwrap_or_default()),
            None => Ok(Vec::new()),
        }
    }

    /// Builds an offline atypical forest over days
    /// `[first_day, first_day + n_days)` from the service's micro-clusters
    /// (live memory plus the snapshot store) and materializes every week
    /// and month level the range covers.
    ///
    /// Roll-ups fan out over the configured [`Params::parallelism`]
    /// workers through the deterministic parallel engine, so the returned
    /// forest is bit-identical at every setting — `parallelism = 1` in
    /// the service config forces the sequential path.
    pub fn forest_snapshot(
        &self,
        first_day: u32,
        n_days: u32,
    ) -> cps_core::Result<atypical::AtypicalForest> {
        let mut forest = atypical::AtypicalForest::new(self.shared.spec, self.shared.params);
        for day in first_day..first_day.saturating_add(n_days) {
            forest.insert_day(day, self.micro_clusters_for_day(day)?);
        }
        forest.materialize_range(first_day, n_days);
        Ok(forest)
    }

    /// Red regions over a whole-day range, with their `F` values, from the
    /// incrementally maintained per-day severity vectors (equal to
    /// [`atypical::redzone::RedZones::compute`] on the same micro-clusters
    /// by distributivity, Property 4).
    pub fn red_regions(&self, first_day: u32, n_days: u32) -> Vec<(RegionId, Severity)> {
        let range = self.shared.spec.day_range(first_day, n_days);
        let f = self.compose_region_f(first_day, n_days);
        self.mark_red(&f, range)
            .into_iter()
            .enumerate()
            .filter(|&(_, red)| red)
            .map(|(i, _)| (RegionId::new(i as u32), f[i]))
            .collect()
    }

    /// Red-zone-guided query over whole days (Algorithm 4): micro-clusters
    /// outside every red region are pruned — safely, per Property 5 —
    /// before time-of-day-aligned integration.
    pub fn query_guided(&self, first_day: u32, n_days: u32) -> cps_core::Result<GuidedQuery> {
        let spec = self.shared.spec;
        let params = &self.shared.params;
        let range = spec.day_range(first_day, n_days);
        let n_sensors = self.shared.network.num_sensors() as u32;
        let threshold = significance_threshold(params, range, n_sensors);

        let f = self.compose_region_f(first_day, n_days);
        let red = self.mark_red(&f, range);
        let num_red_regions = red.iter().filter(|&&r| r).count();

        let mut candidates = Vec::new();
        for day in first_day..first_day.saturating_add(n_days) {
            candidates.extend(self.micro_clusters_for_day(day)?);
        }
        let candidate_clusters = candidates.len();
        let partition = &self.shared.partition;
        let inputs: Vec<AtypicalCluster> = candidates
            .into_iter()
            .filter(|c| c.sf.keys().any(|s| red[partition.region_of(s).index()]))
            .collect();
        let input_clusters = inputs.len();

        let alignment = TimeAlignment::TimeOfDay {
            windows_per_day: spec.windows_per_day(),
        };
        // Query-local id generator (fixed base): queries never consume
        // service ids, so the same state always yields the same result —
        // and the mutex path agrees bit-for-bit with [`ReadView`].
        let mut ids = ClusterIdGen::new(QUERY_ID_BASE);
        let (macros, _stats) = integrate_aligned(inputs, params, alignment, &mut ids);
        Ok(GuidedQuery {
            range,
            macros,
            threshold,
            num_red_regions,
            candidate_clusters,
            input_clusters,
        })
    }

    /// The significant clusters of a whole-day range (Definition 5),
    /// via [`query_guided`](Self::query_guided).
    pub fn significant_clusters(
        &self,
        first_day: u32,
        n_days: u32,
    ) -> cps_core::Result<Vec<AtypicalCluster>> {
        let mut result = self.query_guided(first_day, n_days)?;
        result.macros.retain(|c| c.severity() > result.threshold);
        Ok(result.macros)
    }

    /// Sums the per-day region `F` vectors over `[first_day, first_day + n_days)`.
    fn compose_region_f(&self, first_day: u32, n_days: u32) -> Vec<Severity> {
        let num_regions = self.shared.partition.num_regions() as usize;
        let mut f = vec![Severity::ZERO; num_regions];
        let live = self.shared.live.lock();
        for (_, day_f) in live
            .region_f_by_day
            .range(first_day..first_day.saturating_add(n_days))
        {
            for (acc, &s) in f.iter_mut().zip(day_f.iter()) {
                *acc += s;
            }
        }
        f
    }

    /// Applies the per-region significance-density test of
    /// [`atypical::redzone::RedZones::compute`] to composed `F` values.
    fn mark_red(&self, f: &[Severity], range: TimeRange) -> Vec<bool> {
        let partition = &self.shared.partition;
        let params = &self.shared.params;
        f.iter()
            .enumerate()
            .map(|(i, &fv)| {
                let n_i = partition.sensors_in(RegionId::new(i as u32)).len() as u32;
                n_i > 0 && fv >= significance_threshold(params, range, n_i)
            })
            .collect()
    }
}
