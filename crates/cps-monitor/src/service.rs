//! The monitoring service: ingest routing, shard workers, and the
//! [`MonitorHandle`] query facade.
//!
//! ```text
//!                      ┌─ bounded channel ─ worker 0 (OnlineExtractor) ─┐
//!  ingest ── ShardMap ─┼─ bounded channel ─ worker 1 (OnlineExtractor) ─┼─ merger ─ live state
//!                      └─ bounded channel ─ worker N (OnlineExtractor) ─┘      └──── ForestStore
//! ```
//!
//! Records are routed to the shard owning their sensor; window advances
//! are broadcast to every shard so all extractor clocks move together.
//! Channels are bounded: with [`OverflowPolicy::Block`] a full channel
//! exerts backpressure on the producer, with [`OverflowPolicy::Drop`] the
//! record is dropped and counted.

use crate::config::{FaultConfig, MonitorConfig, OverflowPolicy};
use crate::error::MonitorError;
use crate::live::LiveState;
use crate::merger::{Merger, MergerMsg};
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::shard::ShardMap;
use atypical::integrate::{integrate_aligned, TimeAlignment};
use atypical::online::{OnlineExtractor, OutOfOrderRecord};
use atypical::significant::significance_threshold;
use atypical::store::{ForestLevel, ForestStore};
use atypical::AtypicalCluster;
use cps_core::{AtypicalRecord, Params, RegionId, Severity, TimeRange, TimeWindow, WindowSpec};
use cps_geo::grid::{SensorPartition, UniformGrid};
use cps_geo::RoadNetwork;
use cps_index::st_index::max_gap_windows;
use crossbeam::channel::{bounded, unbounded, Sender, TrySendError};
use parking_lot::Mutex;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// State shared between the ingest thread, workers, merger, and handles.
pub(crate) struct SharedState {
    pub(crate) network: Arc<RoadNetwork>,
    pub(crate) partition: SensorPartition,
    pub(crate) params: Params,
    pub(crate) spec: WindowSpec,
    pub(crate) metrics: Metrics,
    pub(crate) live: Mutex<LiveState>,
    pub(crate) store: Option<ForestStore>,
    pub(crate) started: Instant,
}

/// Ingest → worker protocol.
#[derive(Debug)]
enum WorkerMsg {
    Record(AtypicalRecord),
    Advance(TimeWindow),
}

/// A running sharded monitoring service.
///
/// Feed window-ordered records through [`ingest`](Self::ingest); query at
/// any time through a [`MonitorHandle`]; [`finish`](Self::finish) drains
/// the pipeline and returns the final metrics.
pub struct MonitorService {
    shared: Arc<SharedState>,
    map: Arc<ShardMap>,
    overflow: OverflowPolicy,
    faults: FaultConfig,
    senders: Vec<Sender<WorkerMsg>>,
    workers: Vec<JoinHandle<()>>,
    merger: Option<JoinHandle<()>>,
    current_window: Option<TimeWindow>,
    /// Shards whose worker was observed dead (a channel send failed or the
    /// thread panicked); marked once, counted once in the metrics.
    dead: Vec<bool>,
    /// Records seen by `ingest` so far, in feed order (drives the
    /// deterministic drop-burst hook).
    ingest_seq: u64,
}

/// SplitMix64 step, used for the deterministic scheduling jitter.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl MonitorService {
    /// Validates `config`, shards `network`, and spawns the worker and
    /// merger threads.
    pub fn start(config: &MonitorConfig, network: Arc<RoadNetwork>) -> Result<Self, String> {
        config.validate()?;
        let params = config.params;
        let spec = config.spec;
        let map = Arc::new(ShardMap::build(
            &network,
            config.shards,
            params.delta_d_miles,
        ));
        let partition = UniformGrid::over(&network, config.red_cell_miles).partition(&network);
        let store = match &config.snapshot_dir {
            Some(dir) => Some(ForestStore::open(dir).map_err(|e| e.to_string())?),
            None => None,
        };
        let shared = Arc::new(SharedState {
            network: network.clone(),
            partition,
            params,
            spec,
            metrics: Metrics::new(config.shards),
            live: Mutex::new(LiveState::new(&params)),
            store,
            started: Instant::now(),
        });
        let max_gap = max_gap_windows(&params, spec);

        // Merger input is unbounded: its producers are the bounded-channel
        // workers, so it is already flow-controlled by the record channels.
        let (merger_tx, merger_rx) = unbounded::<MergerMsg>();
        let merger = {
            let merger = Merger::new(shared.clone(), map.clone(), max_gap);
            std::thread::Builder::new()
                .name("cps-monitor-merger".to_string())
                .spawn(move || merger.run(merger_rx))
                .map_err(|e| format!("spawning merger: {e}"))?
        };

        let mut senders = Vec::with_capacity(config.shards);
        let mut workers = Vec::with_capacity(config.shards);
        for shard in 0..config.shards {
            let (tx, rx) = bounded::<WorkerMsg>(config.channel_capacity);
            senders.push(tx);
            let (network, map, shared, merger_tx) = (
                network.clone(),
                map.clone(),
                shared.clone(),
                merger_tx.clone(),
            );
            let kill_after = config
                .faults
                .kill_worker
                .filter(|k| k.shard == shard)
                .map(|k| k.after_records);
            let mut jitter = config
                .faults
                .jitter_seed
                .map(|seed| seed ^ (shard as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let worker = std::thread::Builder::new()
                .name(format!("cps-monitor-shard-{shard}"))
                .spawn(move || {
                    let mut extractor = OnlineExtractor::new(&network, params, spec);
                    extractor.retain_raw_events(true);
                    let mut records_processed = 0u64;
                    while let Ok(msg) = rx.recv() {
                        shared.metrics.set_queue_depth(shard, rx.len());
                        if let Some(state) = jitter.as_mut() {
                            // Perturb worker/merger interleaving
                            // reproducibly: occasional microsecond sleeps
                            // driven by the per-shard seed.
                            let x = splitmix64(state);
                            if x.is_multiple_of(7) {
                                std::thread::sleep(std::time::Duration::from_micros(x % 50));
                            }
                        }
                        match msg {
                            WorkerMsg::Record(record) => {
                                if kill_after.is_some_and(|n| records_processed >= n) {
                                    // Fault hook: die abruptly — skip the
                                    // drain/Done epilogue exactly as a
                                    // crashed thread would.
                                    shared.metrics.set_queue_depth(shard, 0);
                                    return;
                                }
                                records_processed += 1;
                                // The service's ingest clock already
                                // rejected regressing windows, so this
                                // cannot fail; stay defensive anyway.
                                if extractor.push(record).is_err() {
                                    debug_assert!(false, "service clock admitted a stale record");
                                }
                            }
                            WorkerMsg::Advance(window) => {
                                extractor.advance_to(window);
                                let events = extractor.drain_sealed_raw();
                                if !events.is_empty() {
                                    let _ = merger_tx.send(MergerMsg::Sealed { events });
                                }
                                let _ = merger_tx.send(MergerMsg::Clock {
                                    shard,
                                    window,
                                    open_floor: extractor.open_min_window_where(|_| true),
                                    boundary_floor: extractor
                                        .open_min_window_where(|s| map.is_boundary(s)),
                                });
                            }
                        }
                    }
                    shared.metrics.set_queue_depth(shard, 0);
                    let events = extractor.finish_raw();
                    if !events.is_empty() {
                        let _ = merger_tx.send(MergerMsg::Sealed { events });
                    }
                    let _ = merger_tx.send(MergerMsg::Done { shard });
                })
                .map_err(|e| format!("spawning shard worker {shard}: {e}"))?;
            workers.push(worker);
        }
        drop(merger_tx);

        Ok(Self {
            shared,
            map,
            overflow: config.overflow,
            faults: config.faults,
            dead: vec![false; config.shards],
            ingest_seq: 0,
            senders,
            workers,
            merger: Some(merger),
            current_window: None,
        })
    }

    /// The shard layout in use.
    pub fn shard_map(&self) -> &ShardMap {
        &self.map
    }

    /// A cloneable query facade, valid beyond [`finish`](Self::finish).
    pub fn handle(&self) -> MonitorHandle {
        MonitorHandle {
            shared: self.shared.clone(),
        }
    }

    /// Feeds one record. Returns `Ok(true)` if accepted, `Ok(false)` if
    /// dropped by a full channel under [`OverflowPolicy::Drop`] (or the
    /// drop-burst fault hook), and a typed [`MonitorError`] if
    /// `record.window` regresses behind the ingest clock (the per-shard
    /// extractors require a monotone window feed) or the destination
    /// shard's worker has died. Both errors are recoverable: the service
    /// keeps running and further in-order records to live shards are
    /// accepted.
    pub fn ingest(&mut self, record: AtypicalRecord) -> Result<bool, MonitorError> {
        let shard = self.map.shard_of(record.sensor);
        match self.current_window {
            Some(current) if record.window < current => {
                return Err(MonitorError::OutOfOrder {
                    shard,
                    cause: OutOfOrderRecord {
                        record,
                        current_window: current,
                    },
                });
            }
            Some(current) if record.window > current => self.broadcast_advance(record.window),
            None => self.broadcast_advance(record.window),
            _ => {}
        }
        self.current_window = Some(record.window);

        // The drop-burst hook sits after the clock advance: a dropped
        // record still moves every shard's clock, exactly like a record
        // dropped by a full channel.
        let seq = self.ingest_seq;
        self.ingest_seq += 1;
        if let Some(burst) = self.faults.drop_burst {
            if seq >= burst.at_record && seq - burst.at_record < burst.len {
                self.shared
                    .metrics
                    .records_dropped
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                return Ok(false);
            }
        }

        if self.dead[shard] {
            return Err(MonitorError::WorkerDied { shard });
        }
        match self.overflow {
            OverflowPolicy::Block => {
                if self.senders[shard].send(WorkerMsg::Record(record)).is_err() {
                    self.mark_dead(shard);
                    return Err(MonitorError::WorkerDied { shard });
                }
            }
            OverflowPolicy::Drop => match self.senders[shard].try_send(WorkerMsg::Record(record)) {
                Ok(()) => {}
                Err(TrySendError::Full(_)) => {
                    self.shared
                        .metrics
                        .records_dropped
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    return Ok(false);
                }
                Err(TrySendError::Disconnected(_)) => {
                    self.mark_dead(shard);
                    return Err(MonitorError::WorkerDied { shard });
                }
            },
        }
        self.shared
            .metrics
            .records_ingested
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Ok(true)
    }

    /// Advances every shard's clock without feeding a record — e.g. to
    /// flush quiet periods at the end of a replay segment.
    pub fn advance_to(&mut self, window: TimeWindow) {
        if self.current_window.is_none_or(|c| window > c) {
            self.broadcast_advance(window);
            self.current_window = Some(window);
        }
    }

    /// Window-advance broadcasts always block: dropping one would let a
    /// shard's clock fall behind and stall finalization. A dead shard is
    /// skipped — its clock stays frozen, which keeps its unfinished days
    /// live (and queryable) instead of persisting them incomplete.
    fn broadcast_advance(&mut self, window: TimeWindow) {
        for shard in 0..self.senders.len() {
            if self.dead[shard] {
                continue;
            }
            if self.senders[shard]
                .send(WorkerMsg::Advance(window))
                .is_err()
            {
                self.mark_dead(shard);
            }
        }
    }

    /// Records a shard's worker as dead; the shared metrics flag makes the
    /// count exactly-once across ingest, the merger, and `finish`.
    fn mark_dead(&mut self, shard: usize) {
        if !self.dead[shard] {
            self.dead[shard] = true;
            self.shared.metrics.mark_worker_dead(shard);
        }
    }

    /// Shards whose worker has been observed dead — by a failed channel
    /// send, a missing merger `Done`, or a panicked join.
    pub fn dead_shards(&self) -> Vec<usize> {
        self.shared.metrics.dead_shards()
    }

    /// Closes the feed, drains every shard, reconciles and persists what
    /// remains, and returns the final metrics. Handles stay valid. A
    /// panicked worker is counted dead rather than re-panicking here.
    pub fn finish(mut self) -> MetricsSnapshot {
        self.senders.clear();
        for (shard, worker) in self.workers.drain(..).enumerate() {
            if worker.join().is_err() {
                self.shared.metrics.mark_worker_dead(shard);
            }
        }
        if let Some(merger) = self.merger.take() {
            merger.join().expect("merger panicked");
        }
        self.shared.metrics.snapshot(self.shared.started.elapsed())
    }
}

/// Outcome of one red-zone-guided window query (Algorithm 4 over the
/// live + persisted day levels).
#[derive(Clone, Debug)]
pub struct GuidedQuery {
    /// Window range of the query.
    pub range: TimeRange,
    /// Macro-clusters integrated from the guided inputs.
    pub macros: Vec<AtypicalCluster>,
    /// Significance threshold at the query scale (Definition 5).
    pub threshold: Severity,
    /// Regions marked red by the incrementally maintained `F` values.
    pub num_red_regions: usize,
    /// Micro-clusters in the query range before guidance.
    pub candidate_clusters: usize,
    /// Micro-clusters that survived the red-zone filter.
    pub input_clusters: usize,
}

impl GuidedQuery {
    /// The macro-clusters significant at the query scale.
    pub fn significant(&self) -> Vec<&AtypicalCluster> {
        self.macros
            .iter()
            .filter(|c| c.severity() > self.threshold)
            .collect()
    }
}

/// Cloneable, thread-safe query facade over the service's live state and
/// snapshot store.
#[derive(Clone)]
pub struct MonitorHandle {
    shared: Arc<SharedState>,
}

impl MonitorHandle {
    /// Current service metrics.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot(self.shared.started.elapsed())
    }

    /// The live macro-clusters (Algorithm 3 fixpoint over every finalized
    /// micro-cluster so far).
    pub fn live_macro_clusters(&self) -> Vec<AtypicalCluster> {
        self.shared.live.lock().macros.snapshot()
    }

    /// Every live (not yet persisted) micro-cluster.
    pub fn live_micro_clusters(&self) -> Vec<AtypicalCluster> {
        let live = self.shared.live.lock();
        live.micros_by_day.values().flatten().cloned().collect()
    }

    /// One day's micro-clusters, from live memory or the snapshot store.
    pub fn micro_clusters_for_day(&self, day: u32) -> cps_core::Result<Vec<AtypicalCluster>> {
        {
            let live = self.shared.live.lock();
            if let Some(micros) = live.micros_by_day.get(&day) {
                return Ok(micros.clone());
            }
        }
        match &self.shared.store {
            Some(store) => Ok(store.load(ForestLevel::Day, day)?.unwrap_or_default()),
            None => Ok(Vec::new()),
        }
    }

    /// Builds an offline atypical forest over days
    /// `[first_day, first_day + n_days)` from the service's micro-clusters
    /// (live memory plus the snapshot store) and materializes every week
    /// and month level the range covers.
    ///
    /// Roll-ups fan out over the configured [`Params::parallelism`]
    /// workers through the deterministic parallel engine, so the returned
    /// forest is bit-identical at every setting — `parallelism = 1` in
    /// the service config forces the sequential path.
    pub fn forest_snapshot(
        &self,
        first_day: u32,
        n_days: u32,
    ) -> cps_core::Result<atypical::AtypicalForest> {
        let mut forest = atypical::AtypicalForest::new(self.shared.spec, self.shared.params);
        for day in first_day..first_day.saturating_add(n_days) {
            forest.insert_day(day, self.micro_clusters_for_day(day)?);
        }
        forest.materialize_range(first_day, n_days);
        Ok(forest)
    }

    /// Red regions over a whole-day range, with their `F` values, from the
    /// incrementally maintained per-day severity vectors (equal to
    /// [`atypical::redzone::RedZones::compute`] on the same micro-clusters
    /// by distributivity, Property 4).
    pub fn red_regions(&self, first_day: u32, n_days: u32) -> Vec<(RegionId, Severity)> {
        let range = self.shared.spec.day_range(first_day, n_days);
        let f = self.compose_region_f(first_day, n_days);
        self.mark_red(&f, range)
            .into_iter()
            .enumerate()
            .filter(|&(_, red)| red)
            .map(|(i, _)| (RegionId::new(i as u32), f[i]))
            .collect()
    }

    /// Red-zone-guided query over whole days (Algorithm 4): micro-clusters
    /// outside every red region are pruned — safely, per Property 5 —
    /// before time-of-day-aligned integration.
    pub fn query_guided(&self, first_day: u32, n_days: u32) -> cps_core::Result<GuidedQuery> {
        let spec = self.shared.spec;
        let params = &self.shared.params;
        let range = spec.day_range(first_day, n_days);
        let n_sensors = self.shared.network.num_sensors() as u32;
        let threshold = significance_threshold(params, range, n_sensors);

        let f = self.compose_region_f(first_day, n_days);
        let red = self.mark_red(&f, range);
        let num_red_regions = red.iter().filter(|&&r| r).count();

        let mut candidates = Vec::new();
        for day in first_day..first_day.saturating_add(n_days) {
            candidates.extend(self.micro_clusters_for_day(day)?);
        }
        let candidate_clusters = candidates.len();
        let partition = &self.shared.partition;
        let inputs: Vec<AtypicalCluster> = candidates
            .into_iter()
            .filter(|c| c.sf.keys().any(|s| red[partition.region_of(s).index()]))
            .collect();
        let input_clusters = inputs.len();

        let alignment = TimeAlignment::TimeOfDay {
            windows_per_day: spec.windows_per_day(),
        };
        let mut live = self.shared.live.lock();
        let (macros, _stats) = integrate_aligned(inputs, params, alignment, &mut live.ids);
        Ok(GuidedQuery {
            range,
            macros,
            threshold,
            num_red_regions,
            candidate_clusters,
            input_clusters,
        })
    }

    /// The significant clusters of a whole-day range (Definition 5),
    /// via [`query_guided`](Self::query_guided).
    pub fn significant_clusters(
        &self,
        first_day: u32,
        n_days: u32,
    ) -> cps_core::Result<Vec<AtypicalCluster>> {
        let mut result = self.query_guided(first_day, n_days)?;
        result.macros.retain(|c| c.severity() > result.threshold);
        Ok(result.macros)
    }

    /// Sums the per-day region `F` vectors over `[first_day, first_day + n_days)`.
    fn compose_region_f(&self, first_day: u32, n_days: u32) -> Vec<Severity> {
        let num_regions = self.shared.partition.num_regions() as usize;
        let mut f = vec![Severity::ZERO; num_regions];
        let live = self.shared.live.lock();
        for (_, day_f) in live
            .region_f_by_day
            .range(first_day..first_day.saturating_add(n_days))
        {
            for (acc, &s) in f.iter_mut().zip(day_f) {
                *acc += s;
            }
        }
        f
    }

    /// Applies the per-region significance-density test of
    /// [`atypical::redzone::RedZones::compute`] to composed `F` values.
    fn mark_red(&self, f: &[Severity], range: TimeRange) -> Vec<bool> {
        let partition = &self.shared.partition;
        let params = &self.shared.params;
        f.iter()
            .enumerate()
            .map(|(i, &fv)| {
                let n_i = partition.sensors_in(RegionId::new(i as u32)).len() as u32;
                n_i > 0 && fv >= significance_threshold(params, range, n_i)
            })
            .collect()
    }
}
