//! Service counters and the operator-facing [`MetricsSnapshot`].

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

/// Lock-free counters shared by the ingest path, workers, and merger.
///
/// All counters are monotone except the per-shard queue-depth gauges and
/// the live macro-cluster gauge.
#[derive(Debug)]
pub struct Metrics {
    /// Records accepted into a shard channel.
    pub records_ingested: AtomicU64,
    /// Records rejected because a shard channel was full (`overflow = "drop"`).
    pub records_dropped: AtomicU64,
    /// Raw events sealed by the shard workers.
    pub events_sealed: AtomicU64,
    /// Sealed events that touched a shard boundary and entered the
    /// reconciliation pool.
    pub boundary_events: AtomicU64,
    /// Union operations joining sealed events across shards.
    pub cross_shard_merges: AtomicU64,
    /// Micro-clusters admitted into the live forest.
    pub micro_clusters: AtomicU64,
    /// Reconciled events discarded by the trust filter (fewer than
    /// `min_event_records` records).
    pub events_discarded: AtomicU64,
    /// Live macro-clusters after the latest incremental integration.
    pub macro_clusters: AtomicU64,
    /// Result-set members never compared during live integration because
    /// they shared no sensor and no window with the arriving cluster
    /// (gauge; zero when `indexed_integration` is off).
    pub integration_candidates_pruned: AtomicU64,
    /// Candidate comparisons skipped because the admissible similarity
    /// upper bound already ruled them out (gauge; zero when
    /// `indexed_integration` is off).
    pub integration_bound_skips: AtomicU64,
    /// Similarity evaluations performed by live integration so far
    /// (gauge; populated on both the naive and indexed paths).
    pub integration_comparisons: AtomicU64,
    /// Merges performed by live integration so far (gauge).
    pub integration_merges: AtomicU64,
    /// Read-model snapshots published through the serving cell.
    pub snapshots_published: AtomicU64,
    /// Day buckets persisted to the snapshot store.
    pub days_persisted: AtomicU64,
    /// Bytes written to the snapshot store.
    pub snapshot_bytes: AtomicU64,
    /// Shard workers observed dead (send to their channel failed, or
    /// their thread panicked). Cumulative: a respawned worker's death
    /// stays counted here — `dead_shards` reflects current liveness.
    pub workers_dead: AtomicU64,
    /// Entries appended to the ingest write-ahead logs.
    pub wal_appends: AtomicU64,
    /// Framed bytes appended to the ingest write-ahead logs.
    pub wal_bytes: AtomicU64,
    /// Quiescent checkpoints committed.
    pub checkpoints: AtomicU64,
    /// Full restart recoveries performed (1 for a service built by
    /// `recover`, 0 otherwise).
    pub recoveries: AtomicU64,
    /// Shard workers respawned from checkpoint + WAL replay.
    pub respawns: AtomicU64,
    /// Shards declared permanently failed (respawn budget spent).
    pub permanently_failed: AtomicU64,
    queue_depths: Vec<AtomicUsize>,
    /// Per-shard dead flags; set-once through [`Metrics::mark_worker_dead`]
    /// so concurrent observers (ingest, merger, `finish`) count each death
    /// exactly once.
    dead_flags: Vec<AtomicBool>,
}

impl Metrics {
    /// Zeroed counters for `num_shards` workers.
    pub fn new(num_shards: usize) -> Self {
        Self {
            records_ingested: AtomicU64::new(0),
            records_dropped: AtomicU64::new(0),
            events_sealed: AtomicU64::new(0),
            boundary_events: AtomicU64::new(0),
            cross_shard_merges: AtomicU64::new(0),
            micro_clusters: AtomicU64::new(0),
            events_discarded: AtomicU64::new(0),
            macro_clusters: AtomicU64::new(0),
            integration_candidates_pruned: AtomicU64::new(0),
            integration_bound_skips: AtomicU64::new(0),
            integration_comparisons: AtomicU64::new(0),
            integration_merges: AtomicU64::new(0),
            snapshots_published: AtomicU64::new(0),
            days_persisted: AtomicU64::new(0),
            snapshot_bytes: AtomicU64::new(0),
            workers_dead: AtomicU64::new(0),
            wal_appends: AtomicU64::new(0),
            wal_bytes: AtomicU64::new(0),
            checkpoints: AtomicU64::new(0),
            recoveries: AtomicU64::new(0),
            respawns: AtomicU64::new(0),
            permanently_failed: AtomicU64::new(0),
            queue_depths: (0..num_shards).map(|_| AtomicUsize::new(0)).collect(),
            dead_flags: (0..num_shards).map(|_| AtomicBool::new(false)).collect(),
        }
    }

    /// Marks one shard's worker dead. Idempotent: the first caller (the
    /// ingest path on a failed send, the merger on a missing `Done`, or
    /// `finish` on a panicked join) increments `workers_dead`; later calls
    /// are no-ops. Returns whether this call was the first.
    pub fn mark_worker_dead(&self, shard: usize) -> bool {
        let first = !self.dead_flags[shard].swap(true, Ordering::Relaxed);
        if first {
            self.workers_dead.fetch_add(1, Ordering::Relaxed);
        }
        first
    }

    /// Clears one shard's dead flag after a successful respawn: the shard
    /// is live again, so it leaves `dead_shards`, while the cumulative
    /// `workers_dead` count keeps the death on record.
    pub fn unmark_worker_dead(&self, shard: usize) {
        self.dead_flags[shard].store(false, Ordering::Relaxed);
    }

    /// Whether `shard`'s worker has been marked dead.
    pub fn worker_dead(&self, shard: usize) -> bool {
        self.dead_flags[shard].load(Ordering::Relaxed)
    }

    /// Shards whose worker has been marked dead.
    pub fn dead_shards(&self) -> Vec<usize> {
        (0..self.dead_flags.len())
            .filter(|&s| self.worker_dead(s))
            .collect()
    }

    /// Updates one shard's queue-depth gauge (called by its worker).
    pub fn set_queue_depth(&self, shard: usize, depth: usize) {
        self.queue_depths[shard].store(depth, Ordering::Relaxed);
    }

    /// Point-in-time copy of every counter; `elapsed` is the service
    /// uptime used for the ingest rate.
    pub fn snapshot(&self, elapsed: Duration) -> MetricsSnapshot {
        let records_ingested = self.records_ingested.load(Ordering::Relaxed);
        let secs = elapsed.as_secs_f64();
        MetricsSnapshot {
            records_ingested,
            records_dropped: self.records_dropped.load(Ordering::Relaxed),
            records_per_sec: if secs > 0.0 {
                records_ingested as f64 / secs
            } else {
                0.0
            },
            events_sealed: self.events_sealed.load(Ordering::Relaxed),
            boundary_events: self.boundary_events.load(Ordering::Relaxed),
            cross_shard_merges: self.cross_shard_merges.load(Ordering::Relaxed),
            micro_clusters: self.micro_clusters.load(Ordering::Relaxed),
            events_discarded: self.events_discarded.load(Ordering::Relaxed),
            macro_clusters: self.macro_clusters.load(Ordering::Relaxed),
            integration_candidates_pruned: self
                .integration_candidates_pruned
                .load(Ordering::Relaxed),
            integration_bound_skips: self.integration_bound_skips.load(Ordering::Relaxed),
            integration_comparisons: self.integration_comparisons.load(Ordering::Relaxed),
            integration_merges: self.integration_merges.load(Ordering::Relaxed),
            snapshots_published: self.snapshots_published.load(Ordering::Relaxed),
            days_persisted: self.days_persisted.load(Ordering::Relaxed),
            snapshot_bytes: self.snapshot_bytes.load(Ordering::Relaxed),
            workers_dead: self.workers_dead.load(Ordering::Relaxed),
            wal_appends: self.wal_appends.load(Ordering::Relaxed),
            wal_bytes: self.wal_bytes.load(Ordering::Relaxed),
            checkpoints: self.checkpoints.load(Ordering::Relaxed),
            recoveries: self.recoveries.load(Ordering::Relaxed),
            respawns: self.respawns.load(Ordering::Relaxed),
            permanently_failed: self.permanently_failed.load(Ordering::Relaxed),
            dead_shards: self.dead_shards(),
            queue_depths: self
                .queue_depths
                .iter()
                .map(|d| d.load(Ordering::Relaxed))
                .collect(),
            elapsed,
        }
    }
}

/// One observation of the service's counters. See [`Metrics`] for the
/// meaning of each field.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricsSnapshot {
    pub records_ingested: u64,
    pub records_dropped: u64,
    pub records_per_sec: f64,
    pub events_sealed: u64,
    pub boundary_events: u64,
    pub cross_shard_merges: u64,
    pub micro_clusters: u64,
    pub events_discarded: u64,
    pub macro_clusters: u64,
    pub integration_candidates_pruned: u64,
    pub integration_bound_skips: u64,
    pub integration_comparisons: u64,
    pub integration_merges: u64,
    pub snapshots_published: u64,
    pub days_persisted: u64,
    pub snapshot_bytes: u64,
    pub workers_dead: u64,
    pub wal_appends: u64,
    pub wal_bytes: u64,
    pub checkpoints: u64,
    pub recoveries: u64,
    pub respawns: u64,
    pub permanently_failed: u64,
    pub dead_shards: Vec<usize>,
    pub queue_depths: Vec<usize>,
    pub elapsed: Duration,
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "records ingested    {:>10}  ({:.0} records/s over {:.2?})",
            self.records_ingested, self.records_per_sec, self.elapsed
        )?;
        writeln!(f, "records dropped     {:>10}", self.records_dropped)?;
        writeln!(
            f,
            "events sealed       {:>10}  ({} boundary, {} cross-shard merges)",
            self.events_sealed, self.boundary_events, self.cross_shard_merges
        )?;
        writeln!(
            f,
            "micro-clusters      {:>10}  ({} discarded by trust filter)",
            self.micro_clusters, self.events_discarded
        )?;
        writeln!(
            f,
            "macro-clusters      {:>10}  ({} pruned, {} bound-skipped)",
            self.macro_clusters, self.integration_candidates_pruned, self.integration_bound_skips
        )?;
        writeln!(
            f,
            "integration work    {:>10}  comparisons ({} merges)",
            self.integration_comparisons, self.integration_merges
        )?;
        writeln!(f, "snapshots published {:>10}", self.snapshots_published)?;
        writeln!(
            f,
            "days persisted      {:>10}  ({} bytes)",
            self.days_persisted, self.snapshot_bytes
        )?;
        writeln!(
            f,
            "wal appends         {:>10}  ({} bytes, {} checkpoints)",
            self.wal_appends, self.wal_bytes, self.checkpoints
        )?;
        writeln!(
            f,
            "recoveries          {:>10}  ({} respawns, {} permanently failed)",
            self.recoveries, self.respawns, self.permanently_failed
        )?;
        writeln!(
            f,
            "workers dead        {:>10}  {:?}",
            self.workers_dead, self.dead_shards
        )?;
        write!(f, "queue depths        {:?}", self.queue_depths)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_copies_counters_and_computes_rate() {
        let m = Metrics::new(2);
        m.records_ingested.store(500, Ordering::Relaxed);
        m.set_queue_depth(1, 7);
        let snap = m.snapshot(Duration::from_secs(2));
        assert_eq!(snap.records_ingested, 500);
        assert_eq!(snap.records_per_sec, 250.0);
        assert_eq!(snap.queue_depths, vec![0, 7]);
        let text = snap.to_string();
        assert!(text.contains("records ingested"), "{text}");
        assert!(text.contains("250 records/s"), "{text}");
    }
}
