//! Durable formats of the crash-tolerant monitor: WAL entries and the
//! checkpoint document.
//!
//! ## WAL entries
//!
//! Each shard has its own segment-rotated log (see [`cps_storage::wal`])
//! under `wal_dir/shard-<s>/`. An entry is one frame payload:
//!
//! ```text
//! entry := seq u64 | tag u8 | body
//! body  := record (16 B, `cps_storage::format::encode_atypical`)   tag 0
//!        | window u32                                              tag 1
//! ```
//!
//! `seq` is a *global* append counter across every shard's log, so the
//! union of all shard logs, sorted by `seq`, is exactly the sequence of
//! messages the ingest thread successfully sent — recovery replays it
//! single-threadedly and lands in the same state.
//!
//! ## The checkpoint document
//!
//! `wal_dir/checkpoint.ck` is written atomically (tmp + rename) at a
//! quiescent cut: every worker has processed its whole queue and the
//! merger has processed every message the workers produced. The document
//! therefore captures an exact "state after ingest prefix P" — recovery
//! loads it and replays only WAL entries with `seq >` [`CheckpointDoc::last_seq`].
//! Cluster payloads reuse the forest store's `⟨ID, SF, TF⟩` encoding
//! ([`atypical::store::encode_cluster`]).

use atypical::store::{decode_cluster, encode_cluster};
use atypical::AtypicalCluster;
use bytes::{Buf, BufMut};
use cps_core::{AtypicalRecord, CpsError, Result, Severity, TimeWindow};
use cps_storage::crc::crc32;
use cps_storage::format::{decode_atypical, encode_atypical, RECORD_SIZE};
use cps_storage::Io;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Checkpoint file magic.
pub const CKPT_MAGIC: [u8; 4] = *b"CPSC";
/// Checkpoint format version.
pub const CKPT_VERSION: u32 = 1;

/// One logged ingest→worker message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WalOp {
    /// A record routed to the shard.
    Record(AtypicalRecord),
    /// A window-advance broadcast.
    Advance(TimeWindow),
}

/// A decoded WAL entry: the global sequence number plus the message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WalEntry {
    /// Global (cross-shard) append sequence number.
    pub seq: u64,
    /// The logged message.
    pub op: WalOp,
}

/// Encodes one entry into a fresh payload buffer.
pub fn encode_entry(seq: u64, op: &WalOp) -> Vec<u8> {
    let mut buf = Vec::with_capacity(9 + RECORD_SIZE);
    buf.put_u64_le(seq);
    match op {
        WalOp::Record(r) => {
            buf.put_u8(0);
            encode_atypical(r, &mut buf);
        }
        WalOp::Advance(w) => {
            buf.put_u8(1);
            buf.put_u32_le(w.raw());
        }
    }
    buf
}

/// Decodes one entry payload.
pub fn decode_entry(payload: &[u8]) -> Result<WalEntry> {
    let mut buf = payload;
    if buf.remaining() < 9 {
        return Err(CpsError::corrupt(
            "wal entry",
            "payload shorter than header",
        ));
    }
    let seq = buf.get_u64_le();
    let tag = buf.get_u8();
    let op = match tag {
        0 => {
            if buf.remaining() != RECORD_SIZE {
                return Err(CpsError::corrupt("wal entry", "bad record body length"));
            }
            WalOp::Record(decode_atypical(buf))
        }
        1 => {
            if buf.remaining() != 4 {
                return Err(CpsError::corrupt("wal entry", "bad advance body length"));
            }
            WalOp::Advance(TimeWindow::new(buf.get_u32_le()))
        }
        other => {
            return Err(CpsError::corrupt(
                "wal entry",
                format!("unknown tag {other}"),
            ))
        }
    };
    Ok(WalEntry { seq, op })
}

/// One shard's WAL directory under the monitor's `wal_dir`.
pub fn shard_wal_dir(wal_dir: &Path, shard: usize) -> PathBuf {
    wal_dir.join(format!("shard-{shard}"))
}

/// Path of the checkpoint document.
pub fn checkpoint_path(wal_dir: &Path) -> PathBuf {
    wal_dir.join("checkpoint.ck")
}

/// Per-shard state captured at the quiescent cut.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ShardCkpt {
    /// The shard extractor's clock.
    pub clock: TimeWindow,
    /// Open events' member records, in slab order (see
    /// [`atypical::online::OnlineExtractor::export_open_events`]).
    pub open: Vec<Vec<AtypicalRecord>>,
    /// Sealed events this shard had sent to the merger by the cut
    /// (respawn replay suppresses regenerated duplicates up to here).
    pub sealed_sent: u64,
    /// First WAL segment holding post-checkpoint entries (older segments
    /// are deleted once the checkpoint commits).
    pub wal_floor: u64,
}

/// The whole monitor state at a quiescent cut.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CheckpointDoc {
    /// Entries with `seq <= last_seq` are covered; replay starts after.
    pub last_seq: u64,
    /// The ingest clock (`None` before the first record).
    pub current_window: Option<TimeWindow>,
    /// Records seen by ingest (drives the deterministic fault hooks).
    pub ingest_seq: u64,
    /// Per-shard extractor state.
    pub shards: Vec<ShardCkpt>,
    /// Merger-private state (reconciliation pool + per-shard progress),
    /// serialized by the merger itself.
    pub merger: MergerCkpt,
    /// Query-side live state.
    pub live: LiveCkpt,
}

/// Per-shard merger progress: `(clock, open_floor, boundary_floor, done)`
/// as last reported by the workers' `Clock`/`Done` messages.
pub type ShardProgress = (
    Option<TimeWindow>,
    Option<TimeWindow>,
    Option<TimeWindow>,
    bool,
);

/// Merger-private checkpoint state.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MergerCkpt {
    /// Per-shard worker progress.
    pub progress: Vec<ShardProgress>,
    /// Pending reconciliation components, compacted: one record list per
    /// union-find component, in slab order of each component's first slot.
    pub components: Vec<Vec<AtypicalRecord>>,
}

/// Query-side live state (see `crate::live::LiveState`).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LiveCkpt {
    /// Next cluster id ([`cps_core::ids::ClusterIdGen::peek`]).
    pub next_id: u64,
    /// Live (unpersisted) micro-clusters per day.
    pub micros_by_day: Vec<(u32, Vec<AtypicalCluster>)>,
    /// Per-day region `F` vectors (seconds).
    pub region_f_by_day: Vec<(u32, Vec<Severity>)>,
    /// Macro-cluster fixpoint set, in result order.
    pub macros: Vec<AtypicalCluster>,
    /// Days already persisted to the snapshot store.
    pub persisted_days: Vec<u32>,
}

fn put_opt_window(buf: &mut Vec<u8>, w: Option<TimeWindow>) {
    match w {
        Some(w) => {
            buf.put_u8(1);
            buf.put_u32_le(w.raw());
        }
        None => buf.put_u8(0),
    }
}

fn get_opt_window(buf: &mut &[u8]) -> Result<Option<TimeWindow>> {
    if buf.remaining() < 1 {
        return Err(CpsError::corrupt("checkpoint", "truncated option flag"));
    }
    match buf.get_u8() {
        0 => Ok(None),
        1 => {
            if buf.remaining() < 4 {
                return Err(CpsError::corrupt("checkpoint", "truncated window"));
            }
            Ok(Some(TimeWindow::new(buf.get_u32_le())))
        }
        other => Err(CpsError::corrupt(
            "checkpoint",
            format!("bad option flag {other}"),
        )),
    }
}

fn put_records(buf: &mut Vec<u8>, records: &[AtypicalRecord]) {
    buf.put_u32_le(records.len() as u32);
    for r in records {
        encode_atypical(r, buf);
    }
}

fn get_records(buf: &mut &[u8]) -> Result<Vec<AtypicalRecord>> {
    if buf.remaining() < 4 {
        return Err(CpsError::corrupt("checkpoint", "truncated record list"));
    }
    let n = buf.get_u32_le() as usize;
    if buf.remaining() < n * RECORD_SIZE {
        return Err(CpsError::corrupt("checkpoint", "truncated record data"));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(decode_atypical(&buf[..RECORD_SIZE]));
        buf.advance(RECORD_SIZE);
    }
    Ok(out)
}

fn put_clusters(buf: &mut Vec<u8>, clusters: &[AtypicalCluster]) {
    buf.put_u32_le(clusters.len() as u32);
    for c in clusters {
        encode_cluster(c, buf);
    }
}

fn get_clusters(buf: &mut &[u8]) -> Result<Vec<AtypicalCluster>> {
    if buf.remaining() < 4 {
        return Err(CpsError::corrupt("checkpoint", "truncated cluster list"));
    }
    let n = buf.get_u32_le() as usize;
    let mut out = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        out.push(decode_cluster(buf)?);
    }
    Ok(out)
}

impl MergerCkpt {
    /// Serializes into `buf`.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        buf.put_u32_le(self.progress.len() as u32);
        for &(clock, open_floor, boundary_floor, done) in &self.progress {
            put_opt_window(buf, clock);
            put_opt_window(buf, open_floor);
            put_opt_window(buf, boundary_floor);
            buf.put_u8(u8::from(done));
        }
        buf.put_u32_le(self.components.len() as u32);
        for component in &self.components {
            put_records(buf, component);
        }
    }

    /// Decodes from `buf`, advancing it.
    pub fn decode(buf: &mut &[u8]) -> Result<Self> {
        if buf.remaining() < 4 {
            return Err(CpsError::corrupt("checkpoint", "truncated merger state"));
        }
        let shards = buf.get_u32_le() as usize;
        let mut progress = Vec::with_capacity(shards);
        for _ in 0..shards {
            let clock = get_opt_window(buf)?;
            let open_floor = get_opt_window(buf)?;
            let boundary_floor = get_opt_window(buf)?;
            if buf.remaining() < 1 {
                return Err(CpsError::corrupt("checkpoint", "truncated done flag"));
            }
            let done = buf.get_u8() != 0;
            progress.push((clock, open_floor, boundary_floor, done));
        }
        if buf.remaining() < 4 {
            return Err(CpsError::corrupt("checkpoint", "truncated component count"));
        }
        let n = buf.get_u32_le() as usize;
        let mut components = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            components.push(get_records(buf)?);
        }
        Ok(Self {
            progress,
            components,
        })
    }
}

impl LiveCkpt {
    /// Serializes into `buf`.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        buf.put_u64_le(self.next_id);
        buf.put_u32_le(self.micros_by_day.len() as u32);
        for (day, micros) in &self.micros_by_day {
            buf.put_u32_le(*day);
            put_clusters(buf, micros);
        }
        buf.put_u32_le(self.region_f_by_day.len() as u32);
        for (day, f) in &self.region_f_by_day {
            buf.put_u32_le(*day);
            buf.put_u32_le(f.len() as u32);
            for sev in f {
                buf.put_u64_le(sev.as_secs());
            }
        }
        put_clusters(buf, &self.macros);
        buf.put_u32_le(self.persisted_days.len() as u32);
        for day in &self.persisted_days {
            buf.put_u32_le(*day);
        }
    }

    /// Decodes from `buf`, advancing it.
    pub fn decode(buf: &mut &[u8]) -> Result<Self> {
        if buf.remaining() < 12 {
            return Err(CpsError::corrupt("checkpoint", "truncated live state"));
        }
        let next_id = buf.get_u64_le();
        let n_days = buf.get_u32_le() as usize;
        let mut micros_by_day = Vec::with_capacity(n_days.min(1 << 16));
        for _ in 0..n_days {
            if buf.remaining() < 4 {
                return Err(CpsError::corrupt("checkpoint", "truncated day bucket"));
            }
            let day = buf.get_u32_le();
            micros_by_day.push((day, get_clusters(buf)?));
        }
        if buf.remaining() < 4 {
            return Err(CpsError::corrupt("checkpoint", "truncated F-vector count"));
        }
        let n_f = buf.get_u32_le() as usize;
        let mut region_f_by_day = Vec::with_capacity(n_f.min(1 << 16));
        for _ in 0..n_f {
            if buf.remaining() < 8 {
                return Err(CpsError::corrupt("checkpoint", "truncated F vector"));
            }
            let day = buf.get_u32_le();
            let len = buf.get_u32_le() as usize;
            if buf.remaining() < len * 8 {
                return Err(CpsError::corrupt("checkpoint", "truncated F values"));
            }
            let mut f = Vec::with_capacity(len);
            for _ in 0..len {
                f.push(Severity::from_secs(buf.get_u64_le()));
            }
            region_f_by_day.push((day, f));
        }
        let macros = get_clusters(buf)?;
        if buf.remaining() < 4 {
            return Err(CpsError::corrupt("checkpoint", "truncated persisted days"));
        }
        let n_p = buf.get_u32_le() as usize;
        if buf.remaining() < n_p * 4 {
            return Err(CpsError::corrupt("checkpoint", "truncated persisted days"));
        }
        let mut persisted_days = Vec::with_capacity(n_p);
        for _ in 0..n_p {
            persisted_days.push(buf.get_u32_le());
        }
        Ok(Self {
            next_id,
            micros_by_day,
            region_f_by_day,
            macros,
            persisted_days,
        })
    }
}

impl CheckpointDoc {
    /// Serializes the whole document (body only; framing is added by
    /// [`write_checkpoint`]).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.put_u64_le(self.last_seq);
        put_opt_window(&mut buf, self.current_window);
        buf.put_u64_le(self.ingest_seq);
        buf.put_u32_le(self.shards.len() as u32);
        for shard in &self.shards {
            buf.put_u32_le(shard.clock.raw());
            buf.put_u64_le(shard.sealed_sent);
            buf.put_u64_le(shard.wal_floor);
            buf.put_u32_le(shard.open.len() as u32);
            for event in &shard.open {
                put_records(&mut buf, event);
            }
        }
        self.merger.encode(&mut buf);
        self.live.encode(&mut buf);
        buf
    }

    /// Decodes a document body.
    pub fn decode(mut buf: &[u8]) -> Result<Self> {
        let buf = &mut buf;
        if buf.remaining() < 8 {
            return Err(CpsError::corrupt("checkpoint", "truncated header"));
        }
        let last_seq = buf.get_u64_le();
        let current_window = get_opt_window(buf)?;
        if buf.remaining() < 12 {
            return Err(CpsError::corrupt("checkpoint", "truncated ingest state"));
        }
        let ingest_seq = buf.get_u64_le();
        let n_shards = buf.get_u32_le() as usize;
        let mut shards = Vec::with_capacity(n_shards.min(1 << 16));
        for _ in 0..n_shards {
            if buf.remaining() < 24 {
                return Err(CpsError::corrupt("checkpoint", "truncated shard state"));
            }
            let clock = TimeWindow::new(buf.get_u32_le());
            let sealed_sent = buf.get_u64_le();
            let wal_floor = buf.get_u64_le();
            let n_open = buf.get_u32_le() as usize;
            let mut open = Vec::with_capacity(n_open.min(1 << 20));
            for _ in 0..n_open {
                open.push(get_records(buf)?);
            }
            shards.push(ShardCkpt {
                clock,
                open,
                sealed_sent,
                wal_floor,
            });
        }
        let merger = MergerCkpt::decode(buf)?;
        let live = LiveCkpt::decode(buf)?;
        if buf.has_remaining() {
            return Err(CpsError::corrupt("checkpoint", "trailing bytes"));
        }
        Ok(Self {
            last_seq,
            current_window,
            ingest_seq,
            shards,
            merger,
            live,
        })
    }
}

/// Writes the checkpoint atomically: `magic | version | len | crc | body`
/// to a temp file, synced, then renamed over [`checkpoint_path`]. A crash
/// anywhere leaves either the previous checkpoint or the new one — never
/// a torn mix.
pub fn write_checkpoint(io: &Io, wal_dir: &Path, doc: &CheckpointDoc) -> Result<()> {
    let body = doc.encode();
    let mut framed = Vec::with_capacity(16 + body.len());
    framed.put_slice(&CKPT_MAGIC);
    framed.put_u32_le(CKPT_VERSION);
    framed.put_u32_le(body.len() as u32);
    framed.put_u32_le(crc32(&body));
    framed.extend_from_slice(&body);
    let path = checkpoint_path(wal_dir);
    let tmp = path.with_extension("tmp");
    let mut w = io.create(&tmp)?;
    w.write_all(&framed)?;
    w.sync()?;
    drop(w);
    io.rename(&tmp, &path)?;
    Ok(())
}

/// Loads the checkpoint; `Ok(None)` when no checkpoint exists yet. A
/// present-but-invalid file is a typed [`CpsError::Corrupt`] — the
/// write protocol never leaves one, so damage is real.
pub fn load_checkpoint(io: &Io, wal_dir: &Path) -> Result<Option<CheckpointDoc>> {
    let path = checkpoint_path(wal_dir);
    if !path.exists() {
        return Ok(None);
    }
    let raw = io.read_to_vec(&path)?;
    if raw.len() < 16 {
        return Err(CpsError::corrupt("checkpoint", "file shorter than header"));
    }
    let mut head = &raw[..16];
    let mut magic = [0u8; 4];
    head.copy_to_slice(&mut magic);
    if magic != CKPT_MAGIC {
        return Err(CpsError::corrupt("checkpoint", "bad magic"));
    }
    let version = head.get_u32_le();
    if version != CKPT_VERSION {
        return Err(CpsError::VersionMismatch {
            found: version,
            expected: CKPT_VERSION,
        });
    }
    let len = head.get_u32_le() as usize;
    let expected_crc = head.get_u32_le();
    if raw.len() != 16 + len {
        return Err(CpsError::corrupt("checkpoint", "body length mismatch"));
    }
    let body = &raw[16..];
    if crc32(body) != expected_crc {
        return Err(CpsError::corrupt("checkpoint", "body checksum mismatch"));
    }
    CheckpointDoc::decode(body).map(Some)
}

#[cfg(test)]
mod tests {
    use super::*;
    use atypical::feature::{SpatialFeature, TemporalFeature};
    use cps_core::{ClusterId, SensorId};

    fn rec(s: u32, w: u32, secs: u64) -> AtypicalRecord {
        AtypicalRecord::new(
            SensorId::new(s),
            TimeWindow::new(w),
            Severity::from_secs(secs),
        )
    }

    fn cluster(id: u64) -> AtypicalCluster {
        let sf: SpatialFeature = [(SensorId::new(3), Severity::from_secs(90))]
            .into_iter()
            .collect();
        let tf: TemporalFeature = [(TimeWindow::new(7), Severity::from_secs(90))]
            .into_iter()
            .collect();
        AtypicalCluster::new(ClusterId::new(id), sf, tf)
    }

    #[test]
    fn wal_entry_roundtrip() {
        for (seq, op) in [
            (1, WalOp::Record(rec(4, 100, 120))),
            (2, WalOp::Advance(TimeWindow::new(101))),
            (u64::MAX, WalOp::Record(rec(0, 0, 0))),
        ] {
            let buf = encode_entry(seq, &op);
            assert_eq!(decode_entry(&buf).unwrap(), WalEntry { seq, op });
        }
    }

    #[test]
    fn wal_entry_rejects_damage() {
        let buf = encode_entry(9, &WalOp::Advance(TimeWindow::new(5)));
        assert!(decode_entry(&buf[..buf.len() - 1]).is_err());
        let mut bad_tag = buf.clone();
        bad_tag[8] = 9;
        assert!(decode_entry(&bad_tag).is_err());
        assert!(decode_entry(&[]).is_err());
    }

    fn sample_doc() -> CheckpointDoc {
        CheckpointDoc {
            last_seq: 42,
            current_window: Some(TimeWindow::new(100)),
            ingest_seq: 37,
            shards: vec![
                ShardCkpt {
                    clock: TimeWindow::new(100),
                    open: vec![vec![rec(1, 99, 60), rec(2, 100, 30)]],
                    sealed_sent: 5,
                    wal_floor: 3,
                },
                ShardCkpt::default(),
            ],
            merger: MergerCkpt {
                progress: vec![
                    (
                        Some(TimeWindow::new(100)),
                        Some(TimeWindow::new(99)),
                        None,
                        false,
                    ),
                    (None, None, None, true),
                ],
                components: vec![vec![rec(7, 95, 45)]],
            },
            live: LiveCkpt {
                next_id: 11,
                micros_by_day: vec![(0, vec![cluster(4)])],
                region_f_by_day: vec![(0, vec![Severity::from_secs(90), Severity::ZERO])],
                macros: vec![cluster(5)],
                persisted_days: vec![0],
            },
        }
    }

    #[test]
    fn checkpoint_doc_roundtrip() {
        let doc = sample_doc();
        assert_eq!(CheckpointDoc::decode(&doc.encode()).unwrap(), doc);
        let empty = CheckpointDoc::default();
        assert_eq!(CheckpointDoc::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn checkpoint_file_roundtrip_and_corruption() {
        let dir = std::env::temp_dir().join(format!("cps-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let io = Io::real();
        assert!(load_checkpoint(&io, &dir).unwrap().is_none());
        let doc = sample_doc();
        write_checkpoint(&io, &dir, &doc).unwrap();
        assert_eq!(load_checkpoint(&io, &dir).unwrap(), Some(doc));
        // Flip one body byte: typed corruption, not garbage state.
        let path = checkpoint_path(&dir);
        let mut raw = std::fs::read(&path).unwrap();
        let last = raw.len() - 1;
        raw[last] ^= 0x55;
        std::fs::write(&path, raw).unwrap();
        assert!(matches!(
            load_checkpoint(&io, &dir),
            Err(CpsError::Corrupt { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
