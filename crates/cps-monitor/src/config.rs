//! Monitor configuration, loadable from a small TOML subset.
//!
//! The accepted grammar is flat `key = value` lines plus one optional
//! `[replay]` section — enough for deployment configs without an external
//! TOML dependency:
//!
//! ```toml
//! shards = 4
//! channel_capacity = 4096
//! overflow = "block"          # or "drop"
//! delta_t_minutes = 15        # seal policy: gap after which events seal
//! min_event_records = 2       # seal policy: trust filter
//! indexed_integration = true  # inverted-index live integration (default)
//! parallelism = 0             # forest-snapshot workers: 0 = all cores,
//!                             # 1 = sequential; output identical either way
//! red_cell_miles = 2.0
//! snapshot_dir = "/var/lib/cps-monitor"
//!
//! [replay]
//! scale = "small"
//! seed = 42
//! days = 1
//!
//! [durability]
//! wal_dir = "/var/lib/cps-monitor/wal"
//! fsync = "group"             # "always" | "never" | "group"
//! group_commit_records = 256  # fsync cadence under "group"
//! checkpoint_interval_records = 50000   # 0 = never checkpoint
//! respawn_budget = 3          # worker respawns per shard; 0 = off
//! segment_bytes = 4194304     # WAL segment rotation size
//!
//! [serving]
//! publish_every_clusters = 1  # snapshot cadence in finalized clusters
//! publish_every_windows = 1   # snapshot cadence in window advances
//! cache_shards = 8            # result-cache lock shards
//! cache_capacity = 4096       # result-cache entries across all shards
//! cache = true                # false = recompute every query
//! ```

use cps_core::{Params, WindowSpec};
use std::collections::BTreeMap;
use std::path::PathBuf;

/// What `ingest` does when a shard's channel is full.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OverflowPolicy {
    /// Block the producer until the worker catches up (backpressure).
    Block,
    /// Drop the record and count it in the metrics.
    Drop,
}

/// Kill one shard's worker thread after it has processed a fixed number
/// of records (deterministic: the count is per-shard, not global). The
/// count is per worker incarnation: with supervision on, each respawned
/// worker dies again after `after_records` more records, so a long
/// enough feed deterministically exhausts any respawn budget.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorkerKill {
    /// Shard whose worker dies.
    pub shard: usize,
    /// Records the worker processes before exiting.
    pub after_records: u64,
}

/// Deterministically drop a contiguous burst of ingested records,
/// regardless of channel occupancy — simulates a sustained overflow.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DropBurst {
    /// Zero-based index (in ingest order) of the first dropped record.
    pub at_record: u64,
    /// Number of consecutive records dropped.
    pub len: u64,
}

/// Deterministic fault hooks for the test harness.
///
/// Defaults to no faults and is not part of the TOML config surface: the
/// hooks exist so `cps-testkit` can exercise worker death, drop
/// accounting, and scheduling perturbation without nondeterministic
/// thread timing. Production configs never set these.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultConfig {
    /// Kill one worker mid-stream.
    pub kill_worker: Option<WorkerKill>,
    /// Drop a contiguous burst of records at ingest.
    pub drop_burst: Option<DropBurst>,
    /// Seed for per-worker scheduling jitter (tiny random sleeps) so a
    /// seeded test can perturb worker/merger interleaving reproducibly.
    pub jitter_seed: Option<u64>,
}

/// When WAL appends reach durable storage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// fsync every append — no accepted record is ever lost, slowest.
    Always,
    /// Never fsync — the OS decides; a power cut may lose the unsynced
    /// tail (a process crash loses nothing).
    Never,
    /// Group commit: fsync every
    /// [`DurabilityConfig::group_commit_records`] appends.
    Group,
}

/// Durability knobs: the ingest WAL, periodic checkpoints, and shard
/// worker supervision. All default off (`wal_dir = None`) — the monitor
/// then behaves exactly as before this subsystem existed.
#[derive(Clone, Debug, PartialEq)]
pub struct DurabilityConfig {
    /// Root directory for per-shard WAL segments and the checkpoint
    /// document; `None` disables the whole subsystem.
    pub wal_dir: Option<PathBuf>,
    /// When appends are fsynced.
    pub fsync: FsyncPolicy,
    /// Appends per fsync under [`FsyncPolicy::Group`].
    pub group_commit_records: u64,
    /// Ingested records between checkpoints; `0` = never checkpoint
    /// (recovery then replays the whole WAL).
    pub checkpoint_interval_records: u64,
    /// How many times a dead shard worker is respawned from checkpoint +
    /// WAL replay before the shard is declared permanently failed;
    /// `0` disables supervision (a dead worker stays dead).
    pub respawn_budget: u32,
    /// WAL segment rotation size in bytes.
    pub segment_bytes: u64,
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        Self {
            wal_dir: None,
            fsync: FsyncPolicy::Group,
            group_commit_records: 256,
            checkpoint_interval_records: 0,
            respawn_budget: 0,
            segment_bytes: 4 << 20,
        }
    }
}

impl DurabilityConfig {
    /// Whether the WAL subsystem is on.
    pub fn enabled(&self) -> bool {
        self.wal_dir.is_some()
    }

    fn validate(&self) -> Result<(), String> {
        if self.wal_dir.is_none() {
            if self.checkpoint_interval_records > 0 {
                return Err(
                    "durability.checkpoint_interval_records requires durability.wal_dir"
                        .to_string(),
                );
            }
            if self.respawn_budget > 0 {
                return Err("durability.respawn_budget requires durability.wal_dir".to_string());
            }
        }
        if self.fsync == FsyncPolicy::Group && self.group_commit_records == 0 {
            return Err(
                "durability.group_commit_records must be positive under fsync = \"group\""
                    .to_string(),
            );
        }
        if self.segment_bytes < 1024 {
            return Err("durability.segment_bytes must be at least 1024".to_string());
        }
        Ok(())
    }
}

/// Snapshot-publication and result-cache knobs of the serving layer
/// (`cps-serve`). Publication is always on — the cadences only bound how
/// stale a pinned [`cps_serve::ReadView`] can be relative to the merger.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServingConfig {
    /// Publish after this many finalized micro-clusters (≥ 1; 1 = every
    /// admission, the freshest reads).
    pub publish_every_clusters: u64,
    /// Publish after the global clock advances this many windows (≥ 1),
    /// so quiet periods still refresh readers.
    pub publish_every_windows: u32,
    /// Lock shards of the result cache (≥ 1).
    pub cache_shards: usize,
    /// Total result-cache entries across all shards (≥ 1).
    pub cache_capacity: usize,
    /// Whether query results are cached at all; `false` recomputes every
    /// query against the pinned snapshot (useful for differential runs).
    pub cache: bool,
}

impl Default for ServingConfig {
    fn default() -> Self {
        Self {
            publish_every_clusters: 1,
            publish_every_windows: 1,
            cache_shards: 8,
            cache_capacity: 4096,
            cache: true,
        }
    }
}

impl ServingConfig {
    fn validate(&self) -> Result<(), String> {
        if self.publish_every_clusters == 0 {
            return Err("serving.publish_every_clusters must be at least 1".to_string());
        }
        if self.publish_every_windows == 0 {
            return Err("serving.publish_every_windows must be at least 1".to_string());
        }
        if self.cache_shards == 0 {
            return Err("serving.cache_shards must be at least 1".to_string());
        }
        if self.cache_capacity == 0 {
            return Err("serving.cache_capacity must be at least 1".to_string());
        }
        Ok(())
    }
}

/// Replay source for the binary and benchmarks: a simulated deployment.
#[derive(Clone, Debug, PartialEq)]
pub struct ReplayConfig {
    /// `cps-sim` scale name (`tiny`/`small`/`medium`/`paper`).
    pub scale: String,
    /// Simulation seed.
    pub seed: u64,
    /// Days to replay.
    pub days: u32,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        Self {
            scale: "small".to_string(),
            seed: 42,
            days: 1,
        }
    }
}

/// Full service configuration.
#[derive(Clone, Debug)]
pub struct MonitorConfig {
    /// Number of spatial shards (worker threads).
    pub shards: usize,
    /// Bounded capacity of each shard's record channel.
    pub channel_capacity: usize,
    /// Behavior when a shard channel is full.
    pub overflow: OverflowPolicy,
    /// Extraction parameters (δd/δt/δs/δsim, seal policy).
    pub params: Params,
    /// Time discretization of the deployment.
    pub spec: WindowSpec,
    /// Grid cell size for the incrementally maintained red zones.
    pub red_cell_miles: f64,
    /// Where completed day buckets are persisted; `None` disables
    /// persistence.
    pub snapshot_dir: Option<PathBuf>,
    /// Replay source used by the `cps-monitor` binary.
    pub replay: ReplayConfig,
    /// WAL, checkpoint, and supervision knobs (default: all off).
    pub durability: DurabilityConfig,
    /// Snapshot-publication cadence and result-cache knobs.
    pub serving: ServingConfig,
    /// Deterministic fault hooks; always [`FaultConfig::default`] (no
    /// faults) outside the test harness.
    pub faults: FaultConfig,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            channel_capacity: 4096,
            overflow: OverflowPolicy::Block,
            params: Params::paper_defaults(),
            spec: WindowSpec::PEMS,
            red_cell_miles: 2.0,
            snapshot_dir: None,
            replay: ReplayConfig::default(),
            durability: DurabilityConfig::default(),
            serving: ServingConfig::default(),
            faults: FaultConfig::default(),
        }
    }
}

impl MonitorConfig {
    /// Parses the TOML subset described in the module docs, starting from
    /// defaults so every key is optional.
    pub fn from_toml_str(text: &str) -> Result<Self, String> {
        let entries = parse_flat_toml(text)?;
        let mut config = MonitorConfig::default();
        for (key, value) in &entries {
            match key.as_str() {
                "shards" => config.shards = value.as_usize(key)?,
                "channel_capacity" => config.channel_capacity = value.as_usize(key)?,
                "overflow" => {
                    config.overflow = match value.as_str(key)? {
                        "block" => OverflowPolicy::Block,
                        "drop" => OverflowPolicy::Drop,
                        other => return Err(format!("overflow: unknown policy {other:?}")),
                    }
                }
                "delta_t_minutes" => {
                    config.params.delta_t_minutes = value.as_usize(key)? as u32;
                }
                "min_event_records" => {
                    config.params.min_event_records = value.as_usize(key)? as u32;
                }
                "delta_d_miles" => config.params.delta_d_miles = value.as_f64(key)?,
                "delta_s" => config.params.delta_s = value.as_f64(key)?,
                "delta_sim" => config.params.delta_sim = value.as_f64(key)?,
                "indexed_integration" => {
                    config.params.indexed_integration = value.as_bool(key)?;
                }
                "parallelism" => config.params.parallelism = value.as_usize(key)?,
                "window_minutes" => {
                    config.spec = WindowSpec::new(value.as_usize(key)? as u32);
                }
                "red_cell_miles" => config.red_cell_miles = value.as_f64(key)?,
                "snapshot_dir" => {
                    config.snapshot_dir = Some(PathBuf::from(value.as_str(key)?));
                }
                "replay.scale" => config.replay.scale = value.as_str(key)?.to_string(),
                "replay.seed" => config.replay.seed = value.as_usize(key)? as u64,
                "replay.days" => config.replay.days = value.as_usize(key)? as u32,
                "durability.wal_dir" => {
                    config.durability.wal_dir = Some(PathBuf::from(value.as_str(key)?));
                }
                "durability.fsync" => {
                    config.durability.fsync = match value.as_str(key)? {
                        "always" => FsyncPolicy::Always,
                        "never" => FsyncPolicy::Never,
                        "group" => FsyncPolicy::Group,
                        other => return Err(format!("durability.fsync: unknown policy {other:?}")),
                    }
                }
                "durability.group_commit_records" => {
                    config.durability.group_commit_records = value.as_usize(key)? as u64;
                }
                "durability.checkpoint_interval_records" => {
                    config.durability.checkpoint_interval_records = value.as_usize(key)? as u64;
                }
                "durability.respawn_budget" => {
                    config.durability.respawn_budget = value.as_usize(key)? as u32;
                }
                "durability.segment_bytes" => {
                    config.durability.segment_bytes = value.as_usize(key)? as u64;
                }
                "serving.publish_every_clusters" => {
                    config.serving.publish_every_clusters = value.as_usize(key)? as u64;
                }
                "serving.publish_every_windows" => {
                    config.serving.publish_every_windows = value.as_usize(key)? as u32;
                }
                "serving.cache_shards" => {
                    config.serving.cache_shards = value.as_usize(key)?;
                }
                "serving.cache_capacity" => {
                    config.serving.cache_capacity = value.as_usize(key)?;
                }
                "serving.cache" => config.serving.cache = value.as_bool(key)?,
                other => return Err(format!("unknown configuration key {other:?}")),
            }
        }
        config.validate()?;
        Ok(config)
    }

    /// Loads and parses a config file.
    pub fn load(path: &std::path::Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        Self::from_toml_str(&text)
    }

    /// Renders the config in the accepted TOML subset, such that
    /// `from_toml_str(c.to_toml())` reproduces `c` (modulo the fault
    /// hooks, which have no TOML surface).
    pub fn to_toml(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "shards = {}", self.shards);
        let _ = writeln!(out, "channel_capacity = {}", self.channel_capacity);
        let overflow = match self.overflow {
            OverflowPolicy::Block => "block",
            OverflowPolicy::Drop => "drop",
        };
        let _ = writeln!(out, "overflow = \"{overflow}\"");
        let _ = writeln!(out, "delta_t_minutes = {}", self.params.delta_t_minutes);
        let _ = writeln!(out, "min_event_records = {}", self.params.min_event_records);
        let _ = writeln!(out, "delta_d_miles = {}", self.params.delta_d_miles);
        let _ = writeln!(out, "delta_s = {}", self.params.delta_s);
        let _ = writeln!(out, "delta_sim = {}", self.params.delta_sim);
        let _ = writeln!(
            out,
            "indexed_integration = {}",
            self.params.indexed_integration
        );
        let _ = writeln!(out, "parallelism = {}", self.params.parallelism);
        let _ = writeln!(out, "window_minutes = {}", self.spec.window_minutes);
        let _ = writeln!(out, "red_cell_miles = {}", self.red_cell_miles);
        if let Some(dir) = &self.snapshot_dir {
            let _ = writeln!(out, "snapshot_dir = \"{}\"", dir.display());
        }
        let _ = writeln!(out, "\n[replay]");
        let _ = writeln!(out, "scale = \"{}\"", self.replay.scale);
        let _ = writeln!(out, "seed = {}", self.replay.seed);
        let _ = writeln!(out, "days = {}", self.replay.days);
        let _ = writeln!(out, "\n[durability]");
        let d = &self.durability;
        if let Some(dir) = &d.wal_dir {
            let _ = writeln!(out, "wal_dir = \"{}\"", dir.display());
        }
        let fsync = match d.fsync {
            FsyncPolicy::Always => "always",
            FsyncPolicy::Never => "never",
            FsyncPolicy::Group => "group",
        };
        let _ = writeln!(out, "fsync = \"{fsync}\"");
        let _ = writeln!(out, "group_commit_records = {}", d.group_commit_records);
        let _ = writeln!(
            out,
            "checkpoint_interval_records = {}",
            d.checkpoint_interval_records
        );
        let _ = writeln!(out, "respawn_budget = {}", d.respawn_budget);
        let _ = writeln!(out, "segment_bytes = {}", d.segment_bytes);
        let _ = writeln!(out, "\n[serving]");
        let s = &self.serving;
        let _ = writeln!(out, "publish_every_clusters = {}", s.publish_every_clusters);
        let _ = writeln!(out, "publish_every_windows = {}", s.publish_every_windows);
        let _ = writeln!(out, "cache_shards = {}", s.cache_shards);
        let _ = writeln!(out, "cache_capacity = {}", s.cache_capacity);
        let _ = writeln!(out, "cache = {}", s.cache);
        out
    }

    /// Checks cross-field invariants.
    pub fn validate(&self) -> Result<(), String> {
        if self.shards == 0 {
            return Err("shards must be at least 1".to_string());
        }
        if self.shards > u16::MAX as usize {
            return Err("shards must fit in u16".to_string());
        }
        if self.channel_capacity == 0 {
            return Err("channel_capacity must be at least 1".to_string());
        }
        if self.red_cell_miles <= 0.0 || self.red_cell_miles.is_nan() {
            return Err("red_cell_miles must be positive".to_string());
        }
        self.durability.validate()?;
        self.serving.validate()?;
        if let Some(kill) = self.faults.kill_worker {
            if kill.shard >= self.shards {
                return Err(format!(
                    "faults.kill_worker: shard {} out of range (shards = {})",
                    kill.shard, self.shards
                ));
            }
        }
        self.params.validate()
    }
}

/// One parsed TOML value.
#[derive(Clone, Debug, PartialEq)]
enum TomlValue {
    Str(String),
    Int(i64),
    Float(f64),
    Bool(bool),
}

impl TomlValue {
    fn as_usize(&self, key: &str) -> Result<usize, String> {
        match self {
            TomlValue::Int(n) if *n >= 0 => Ok(*n as usize),
            other => Err(format!(
                "{key}: expected a non-negative integer, got {other:?}"
            )),
        }
    }

    fn as_f64(&self, key: &str) -> Result<f64, String> {
        match self {
            TomlValue::Float(x) => Ok(*x),
            TomlValue::Int(n) => Ok(*n as f64),
            other => Err(format!("{key}: expected a number, got {other:?}")),
        }
    }

    fn as_str(&self, key: &str) -> Result<&str, String> {
        match self {
            TomlValue::Str(s) => Ok(s),
            other => Err(format!("{key}: expected a string, got {other:?}")),
        }
    }

    fn as_bool(&self, key: &str) -> Result<bool, String> {
        match self {
            TomlValue::Bool(b) => Ok(*b),
            other => Err(format!("{key}: expected true or false, got {other:?}")),
        }
    }
}

/// Parses `key = value` lines with optional `[section]` headers into
/// `section.key`-prefixed entries. Comments (`#`) and blank lines are
/// skipped.
fn parse_flat_toml(text: &str) -> Result<BTreeMap<String, TomlValue>, String> {
    let mut entries = BTreeMap::new();
    let mut section = String::new();
    for (lineno, raw_line) in text.lines().enumerate() {
        let line = strip_comment(raw_line).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            let name = name.trim();
            if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
                return Err(format!("line {}: bad section name {name:?}", lineno + 1));
            }
            section = name.to_string();
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!("line {}: expected `key = value`", lineno + 1));
        };
        let key = key.trim();
        if key.is_empty() || !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            return Err(format!("line {}: bad key {key:?}", lineno + 1));
        }
        let full_key = if section.is_empty() {
            key.to_string()
        } else {
            format!("{section}.{key}")
        };
        let value = parse_value(value.trim())
            .ok_or_else(|| format!("line {}: bad value for {key:?}", lineno + 1))?;
        if entries.insert(full_key.clone(), value).is_some() {
            return Err(format!("line {}: duplicate key {full_key:?}", lineno + 1));
        }
    }
    Ok(entries)
}

/// Drops a `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_value(text: &str) -> Option<TomlValue> {
    if let Some(inner) = text.strip_prefix('"').and_then(|t| t.strip_suffix('"')) {
        // Basic strings without escapes cover paths and policy names.
        if inner.contains('"') || inner.contains('\\') {
            return None;
        }
        return Some(TomlValue::Str(inner.to_string()));
    }
    match text {
        "true" => return Some(TomlValue::Bool(true)),
        "false" => return Some(TomlValue::Bool(false)),
        _ => {}
    }
    if let Ok(n) = text.parse::<i64>() {
        return Some(TomlValue::Int(n));
    }
    if let Ok(x) = text.parse::<f64>() {
        return Some(TomlValue::Float(x));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        MonitorConfig::default().validate().unwrap();
    }

    #[test]
    fn full_config_parses() {
        let config = MonitorConfig::from_toml_str(
            r#"
            # deployment
            shards = 8
            channel_capacity = 512     # per shard
            overflow = "drop"
            delta_t_minutes = 20
            min_event_records = 3
            indexed_integration = false
            parallelism = 2
            red_cell_miles = 1.5
            snapshot_dir = "/tmp/monitor # not a comment"

            [replay]
            scale = "tiny"
            seed = 7
            days = 2
            "#,
        )
        .unwrap();
        assert_eq!(config.shards, 8);
        assert_eq!(config.channel_capacity, 512);
        assert_eq!(config.overflow, OverflowPolicy::Drop);
        assert_eq!(config.params.delta_t_minutes, 20);
        assert_eq!(config.params.min_event_records, 3);
        assert!(!config.params.indexed_integration);
        assert_eq!(config.params.parallelism, 2);
        assert_eq!(config.red_cell_miles, 1.5);
        assert_eq!(
            config.snapshot_dir.as_deref(),
            Some(std::path::Path::new("/tmp/monitor # not a comment"))
        );
        assert_eq!(config.replay.scale, "tiny");
        assert_eq!(config.replay.seed, 7);
        assert_eq!(config.replay.days, 2);
    }

    #[test]
    fn empty_config_is_defaults() {
        let config = MonitorConfig::from_toml_str("").unwrap();
        assert_eq!(config.shards, MonitorConfig::default().shards);
        assert_eq!(config.overflow, OverflowPolicy::Block);
    }

    #[test]
    fn durability_section_parses() {
        let config = MonitorConfig::from_toml_str(
            r#"
            [durability]
            wal_dir = "/tmp/monitor-wal"
            fsync = "always"
            group_commit_records = 64
            checkpoint_interval_records = 1000
            respawn_budget = 2
            segment_bytes = 65536
            "#,
        )
        .unwrap();
        let d = &config.durability;
        assert_eq!(
            d.wal_dir.as_deref(),
            Some(std::path::Path::new("/tmp/monitor-wal"))
        );
        assert_eq!(d.fsync, FsyncPolicy::Always);
        assert_eq!(d.group_commit_records, 64);
        assert_eq!(d.checkpoint_interval_records, 1000);
        assert_eq!(d.respawn_budget, 2);
        assert_eq!(d.segment_bytes, 65536);
        assert!(d.enabled());
        assert!(!MonitorConfig::default().durability.enabled());
    }

    #[test]
    fn nonsensical_durability_combinations_are_rejected() {
        // Checkpoints and supervision both need a WAL to replay from.
        let err = MonitorConfig::from_toml_str("[durability]\ncheckpoint_interval_records = 100")
            .unwrap_err();
        assert!(err.contains("wal_dir"), "{err}");
        let err = MonitorConfig::from_toml_str("[durability]\nrespawn_budget = 1").unwrap_err();
        assert!(err.contains("wal_dir"), "{err}");
        // Group commit with a zero cadence would never fsync.
        let err = MonitorConfig::from_toml_str(
            "[durability]\nwal_dir = \"/tmp/x\"\nfsync = \"group\"\ngroup_commit_records = 0",
        )
        .unwrap_err();
        assert!(err.contains("group_commit_records"), "{err}");
        // Degenerate segments would rotate on every append.
        let err =
            MonitorConfig::from_toml_str("[durability]\nwal_dir = \"/tmp/x\"\nsegment_bytes = 10")
                .unwrap_err();
        assert!(err.contains("segment_bytes"), "{err}");
        // Unknown fsync policy.
        assert!(MonitorConfig::from_toml_str(
            "[durability]\nwal_dir = \"/tmp/x\"\nfsync = \"maybe\""
        )
        .is_err());
    }

    #[test]
    fn serving_section_parses() {
        let config = MonitorConfig::from_toml_str(
            r#"
            [serving]
            publish_every_clusters = 16
            publish_every_windows = 4
            cache_shards = 2
            cache_capacity = 128
            cache = false
            "#,
        )
        .unwrap();
        let s = &config.serving;
        assert_eq!(s.publish_every_clusters, 16);
        assert_eq!(s.publish_every_windows, 4);
        assert_eq!(s.cache_shards, 2);
        assert_eq!(s.cache_capacity, 128);
        assert!(!s.cache);
        assert_eq!(MonitorConfig::default().serving, ServingConfig::default());
    }

    #[test]
    fn degenerate_serving_knobs_are_rejected() {
        for bad in [
            "[serving]\npublish_every_clusters = 0",
            "[serving]\npublish_every_windows = 0",
            "[serving]\ncache_shards = 0",
            "[serving]\ncache_capacity = 0",
        ] {
            let err = MonitorConfig::from_toml_str(bad).unwrap_err();
            assert!(err.contains("serving."), "{err}");
        }
    }

    #[test]
    fn toml_roundtrip_preserves_config() {
        let mut config = MonitorConfig {
            shards: 3,
            overflow: OverflowPolicy::Drop,
            snapshot_dir: Some(PathBuf::from("/tmp/snap")),
            ..MonitorConfig::default()
        };
        config.durability.wal_dir = Some(PathBuf::from("/tmp/wal"));
        config.durability.fsync = FsyncPolicy::Never;
        config.durability.checkpoint_interval_records = 500;
        config.durability.respawn_budget = 4;
        config.serving.publish_every_clusters = 32;
        config.serving.cache = false;
        let reparsed = MonitorConfig::from_toml_str(&config.to_toml()).unwrap();
        assert_eq!(reparsed.shards, config.shards);
        assert_eq!(reparsed.overflow, config.overflow);
        assert_eq!(reparsed.snapshot_dir, config.snapshot_dir);
        assert_eq!(reparsed.durability, config.durability);
        assert_eq!(reparsed.serving, config.serving);
        assert_eq!(reparsed.replay, config.replay);
        assert_eq!(reparsed.spec, config.spec);
        // Defaults round-trip too (durability disabled).
        let default = MonitorConfig::default();
        let reparsed = MonitorConfig::from_toml_str(&default.to_toml()).unwrap();
        assert_eq!(reparsed.durability, default.durability);
    }

    #[test]
    fn bad_inputs_are_rejected() {
        assert!(MonitorConfig::from_toml_str("shards = 0").is_err());
        assert!(MonitorConfig::from_toml_str("shards = -3").is_err());
        assert!(MonitorConfig::from_toml_str("overflow = \"explode\"").is_err());
        assert!(MonitorConfig::from_toml_str("indexed_integration = 1").is_err());
        assert!(MonitorConfig::from_toml_str("mystery_key = 1").is_err());
        assert!(MonitorConfig::from_toml_str("shards 4").is_err());
        assert!(MonitorConfig::from_toml_str("shards = 2\nshards = 3").is_err());
        assert!(MonitorConfig::from_toml_str("[re play]\nscale = \"tiny\"").is_err());
    }
}
